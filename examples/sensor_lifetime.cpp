/// \file sensor_lifetime.cpp
/// "How long until this sensor lies to the clinician?" -- a 30-day
/// continuous glucose-monitoring run on ONE patient with a realistically
/// aging sensor: membrane fouling throttles the substrate supply, the
/// enzyme slowly denatures, the reference electrode wanders and occasional
/// interference storms hit the chamber. A QC check (blank + standard) runs
/// with every daily scan; the CUSUM drift detector trips twice over the
/// month, each time scheduling a recalibration campaign on the aged sensor
/// that pulls the reported glucose back onto the truth.
///
/// Emits sensor_lifetime.csv (per-day truth, estimate, drift statistic,
/// calibration epoch) and prints the recalibration log.
#include <cstdio>
#include <iostream>

#include "scenario/longitudinal.hpp"
#include "util/table.hpp"

int main() {
  using namespace idp;

  std::cout << "IDP example: 30-day sensor lifetime with adaptive "
               "recalibration\n\n";

  // --- one patient, one steady glucose channel ------------------------------
  // Constant mid-range truth: every deviation of the *estimate* is sensor
  // aging, not physiology.
  scenario::AnalytePlan glucose;
  glucose.target = bio::TargetId::kGlucose;
  glucose.baseline_mM = 2.0;
  const std::vector<scenario::AnalytePlan> plans{glucose};

  scenario::CohortSpec cohort_spec;
  cohort_spec.patients = 1;
  cohort_spec.seed = 30;
  cohort_spec.baseline_jitter = 0.0;
  const auto cohort = scenario::generate_cohort(cohort_spec, plans);

  // --- the aging sensor -----------------------------------------------------
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.02;        // ~63% transmission at day 30
  aging.enzyme_decay_per_day = 0.008;       // ~79% activity at day 30
  aging.reference_drift_V_per_day = -0.3e-3;
  aging.reference_walk_V_per_sqrt_day = 0.5e-3;
  aging.storms_per_day = 0.1;               // ~3 storm days a month
  aging.storm_current_A = 4e-9;
  aging.seed = 77;

  quant::CampaignConfig campaign;
  campaign.calibration_points = 5;
  campaign.blank_measurements = 6;
  campaign.ca_duration_s = 15.0;
  quant::CalibrationStore store(campaign);

  scenario::LongitudinalConfig config;
  for (int day = 0; day <= 30; ++day) {
    config.sample_times_h.push_back(day * 24.0);
  }
  config.engine_seed = 42;
  config.parallelism = 0;
  config.degradation = fault::DegradationModel(aging);
  config.recalibration.enabled = true;
  config.recalibration.cusum_threshold = 8.0;
  config.recalibration.min_interval_h = 7.0 * 24.0;  // service at most weekly
  config.recalibration.max_recalibrations = 3;
  const scenario::LongitudinalRunner runner(store, config);

  const scenario::CohortReport report = runner.run(plans, cohort);

  // --- the lifetime story ---------------------------------------------------
  util::ConsoleTable table({"day", "truth (mM)", "reported (mM)",
                            "error (mM)", "drift CUSUM", "epoch"});
  const auto& course = report.patients[0].channels[0];
  for (std::size_t t = 0; t < course.size(); t += 3) {
    const scenario::ChannelSample& s = course[t];
    table.add_row({util::format_fixed(s.sensor_age_days, 0),
                   util::format_fixed(s.truth_mM, 2),
                   util::format_fixed(s.estimate.value, 2),
                   util::format_fixed(s.estimate.value - s.truth_mM, 2),
                   util::format_fixed(s.drift_metric, 1),
                   std::to_string(s.calibration_epoch) +
                       (s.recalibrated ? " *" : "")});
  }
  std::cout << "Every third day of the time-course (* = recalibrated):\n";
  table.print(std::cout);

  std::cout << "\nRecalibration log:\n";
  for (const scenario::RecalibrationEvent& event : report.recalibrations) {
    std::printf(
        "  day %4.1f  channel %zu  drift statistic %.1f -> campaign, "
        "epoch %u\n",
        event.sensor_age_days, event.channel, event.drift_metric,
        event.epoch);
  }

  const double week1 = report.rms_error_mM(0, 0.0, 7.0 * 24.0);
  const double week4 = report.rms_error_mM(0, 21.0 * 24.0, 31.0 * 24.0);
  std::printf(
      "\nRMS error week 1: %.3f mM | week 4 (two recalibrations later): "
      "%.3f mM\nmax drift statistic: %.1f | recalibrations: %zu\n",
      week1, week4, report.max_drift_metric(0), report.recalibrations.size());

  const std::string csv = "sensor_lifetime.csv";
  report.to_csv(csv);
  std::cout << "\nFull time-course written to " << csv
            << " (incl. sensor age, drift metric, QC residual, calibration "
               "epoch).\nWithout the recalibrations the week-4 estimates "
               "would still be read off the factory curve of a sensor that "
               "no longer exists.\n";

  // Smoke-test contract: the policy must actually have fired.
  if (report.recalibrations.size() < 2) {
    std::cerr << "expected at least two recalibrations over 30 days\n";
    return 1;
  }
  return 0;
}
