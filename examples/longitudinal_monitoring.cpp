/// \file longitudinal_monitoring.cpp
/// The closed diagnostic loop over time: a virtual cohort takes a repeated
/// oral drug regimen while eating meals; at every timepoint the platform
/// scans a two-channel panel (glucose chronoamperometry + benzphetamine CYP
/// voltammetry), inverts each response through a CalibrationStore-built
/// curve and reports concentration estimates with confidence intervals --
/// the paper's Section I-A scenario (patients metabolise the same dose very
/// differently, so the doctor needs measured levels, not assumptions).
#include <cstdio>
#include <iostream>

#include "scenario/longitudinal.hpp"
#include "util/table.hpp"

int main() {
  using namespace idp;

  std::cout << "IDP example: longitudinal cohort monitoring "
               "(drug + metabolite panel over 24 h)\n\n";

  // --- the monitored panel --------------------------------------------------
  // Glucose: meals as oral "doses" on a fasting baseline, one-compartment.
  scenario::AnalytePlan glucose;
  glucose.target = bio::TargetId::kGlucose;
  glucose.pk.volume_of_distribution_l = 15.0;
  glucose.pk.elimination_half_life_h = 1.5;
  glucose.pk.absorption_half_life_h = 0.4;
  glucose.pk.bioavailability = 0.8;
  glucose.pk.molar_mass_g_per_mol = 180.2;
  glucose.regimen =
      scenario::repeated_regimen(0.5, 6.0, 3, 6000.0, scenario::Route::kOral);
  glucose.baseline_mM = 1.5;

  // Benzphetamine: 2-compartment disposition, one oral dose every 12 h,
  // sized to cruise inside the CYP2B4 probe's 0.2-1.2 mM calibrated range.
  scenario::AnalytePlan drug;
  drug.target = bio::TargetId::kBenzphetamine;
  drug.pk.volume_of_distribution_l = 40.0;
  drug.pk.elimination_half_life_h = 8.0;
  drug.pk.absorption_half_life_h = 0.6;
  drug.pk.bioavailability = 0.7;
  drug.pk.peripheral_volume_l = 50.0;
  drug.pk.intercompartment_clearance_l_per_h = 8.0;
  drug.pk.molar_mass_g_per_mol = 239.4;
  drug.regimen =
      scenario::repeated_regimen(0.0, 12.0, 2, 9000.0, scenario::Route::kOral);
  const std::vector<scenario::AnalytePlan> plans{glucose, drug};

  // --- cohort and timeline --------------------------------------------------
  scenario::CohortSpec cohort_spec;
  cohort_spec.patients = 4;
  cohort_spec.seed = 2026;
  const auto cohort = scenario::generate_cohort(cohort_spec, plans);

  quant::CampaignConfig campaign;
  campaign.calibration_points = 5;
  campaign.blank_measurements = 6;
  campaign.ca_duration_s = 15.0;
  quant::CalibrationStore store(campaign);

  scenario::LongitudinalConfig config;
  config.sample_times_h = {0.0, 1.0, 2.0, 4.0, 8.0, 12.0, 13.0, 16.0, 24.0};
  config.engine_seed = 42;
  config.parallelism = 0;  // hardware concurrency, bitwise == sequential
  const scenario::LongitudinalRunner runner(store, config);

  const scenario::CohortReport report = runner.run(plans, cohort);

  // --- population view ------------------------------------------------------
  std::cout << "Cohort: " << cohort.size() << " virtual patients, "
            << config.sample_times_h.size() << " timepoints, "
            << plans.size() << " channels ("
            << report.sample_count() << " quantified samples)\n\n";

  util::ConsoleTable drug_table({"t (h)", "true p50 (mM)", "est p10",
                                 "est p50", "est p90"});
  for (std::size_t t = 0; t < report.sample_times_h.size(); ++t) {
    drug_table.add_row(
        {util::format_fixed(report.sample_times_h[t], 1),
         util::format_fixed(report.truth_percentiles[1][t].p50, 3),
         util::format_fixed(report.estimate_percentiles[1][t].p10, 3),
         util::format_fixed(report.estimate_percentiles[1][t].p50, 3),
         util::format_fixed(report.estimate_percentiles[1][t].p90, 3)});
  }
  std::cout << "Benzphetamine population time-course (CYP2B4 channel):\n";
  drug_table.print(std::cout);

  std::printf(
      "\nglucose RMS error: %.3f mM | drug RMS error: %.3f mM\n"
      "CI coverage: %.0f%% of samples | flags: %zu below-LOD, %zu "
      "out-of-range\n",
      report.rms_error_mM(0), report.rms_error_mM(1),
      100.0 * report.ci_coverage(),
      report.flag_count(quant::QuantFlag::kBelowLod),
      report.flag_count(quant::QuantFlag::kBelowRange |
                        quant::QuantFlag::kAboveRange));

  const std::string csv = "longitudinal_monitoring.csv";
  report.to_csv(csv);
  std::cout << "\nPer-sample time-courses written to " << csv
            << " (patient, channel, time, truth, estimate, CI, flags).\n"
            << "Every estimate came from inverting a cached calibration "
               "campaign -- raw current traces never leave the platform.\n";
  return 0;
}
