/// \file design_explorer.cpp
/// The paper's core idea in action: systematic design-space exploration.
/// Given a clinician's panel, enumerate the platform design space, check
/// every design rule (readout resolution, chamber interference, CDS
/// caveats, mux capacity, budgets), cost the feasible candidates and print
/// the Pareto front; then virtually validate the recommended design.
#include <iostream>

#include "core/elaborate.hpp"
#include "core/explorer.hpp"
#include "core/report.hpp"

int main() {
  using namespace idp;

  std::cout << "IDP example: design-space exploration for a custom panel\n";

  // A neuro-chemistry panel: glutamate and glucose in a matrix that
  // contains dopamine -- the interferent the paper singles out.
  plat::PanelSpec panel;
  panel.name = "neuro-panel";
  panel.targets = {
      plat::TargetRequirement{.target = bio::TargetId::kGlucose},
      plat::TargetRequirement{.target = bio::TargetId::kGlutamate},
      plat::TargetRequirement{.target = bio::TargetId::kCholesterol},
  };
  panel.matrix_interferents = {bio::TargetId::kDopamine};
  panel.max_area_mm2 = 12.0;
  panel.max_power_uw = 400.0;

  const plat::ComponentCatalog catalog = plat::ComponentCatalog::standard();
  const plat::ExplorationResult result = plat::explore(panel, catalog);

  std::cout << "\nevaluated " << result.evaluations.size()
            << " candidates, feasible " << result.feasible_count()
            << ", Pareto " << result.pareto.size() << "\n\n";
  plat::print_exploration(std::cout, result);

  // Why do single-chamber candidates fail? Show the design-rule hits.
  for (const auto& eval : result.evaluations) {
    if (!eval.feasible() &&
        eval.candidate.structure ==
            plat::StructureKind::kSingleChamberSharedRef &&
        !eval.candidate.cds && !eval.candidate.chopper) {
      std::cout << "\nwhy a single-chamber design is rejected here:\n";
      plat::print_violations(std::cout, eval);
      break;
    }
  }

  if (result.best) {
    const auto& best = result.evaluations[*result.best];
    std::cout << "\nrecommended: " << best.candidate.summary() << " ("
              << best.cost.area_mm2 << " mm^2, " << best.cost.power_uw
              << " uW, " << best.cost.panel_time_s << " s panel)\n";
    std::cout << "\nvirtual validation of the recommended design:\n";
    plat::ElaborationOptions opt;
    opt.calibration_points = 4;
    opt.blank_measurements = 5;
    plat::ElaboratedPlatform platform(best.candidate, catalog, opt);
    const plat::ValidationReport report = platform.validate_panel(panel);
    plat::print_validation(std::cout, report);
  }
  return 0;
}
