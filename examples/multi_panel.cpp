/// \file multi_panel.cpp
/// The full Fig. 4 experience: elaborate the five-electrode platform,
/// run one multiplexed scan of the six-target metabolic panel at
/// physiological concentrations and quantify every target.
#include <iostream>
#include <vector>

#include "core/elaborate.hpp"
#include "core/explorer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace idp;

  std::cout << "IDP example: the Fig. 4 six-target metabolic panel\n\n";

  const plat::ComponentCatalog catalog = plat::ComponentCatalog::standard();
  plat::ElaborationOptions options;
  options.calibration_points = 4;
  options.blank_measurements = 5;
  plat::ElaboratedPlatform platform(plat::make_fig4_candidate(catalog),
                                    catalog, options);

  // Physiological sample.
  const std::vector<std::pair<bio::TargetId, double>> sample{
      {bio::TargetId::kGlucose, 5.2},        // mildly elevated fasting
      {bio::TargetId::kLactate, 1.4},
      {bio::TargetId::kGlutamate, 0.9},
      {bio::TargetId::kBenzphetamine, 0.6},  // therapy levels
      {bio::TargetId::kAminopyrine, 3.5},
      {bio::TargetId::kCholesterol, 0.05},
  };

  // Calibrate each channel once, then read the unknown sample.
  util::ConsoleTable table({"target", "electrode", "true (mM)",
                            "measured (mM)", "error (%)"});
  for (const auto& [target, truth] : sample) {
    const plat::TargetRequirement req{.target = target};
    std::vector<double> concs;
    for (int i = 0; i < 4; ++i) {
      concs.push_back(req.effective_lo_mM() +
                      (req.effective_hi_mM() - req.effective_lo_mM()) *
                          i / 3.0);
    }
    const dsp::CalibrationCurve curve = platform.calibrate(target, concs);
    const util::LinearFit fit = curve.fit();

    const double unknown[] = {truth};
    const dsp::CalibrationCurve read = platform.calibrate(target, unknown);
    const double measured =
        (read.responses().front() - fit.intercept) / fit.slope;
    table.add_row({bio::to_string(target),
                   "WE" + std::to_string(platform.electrode_of(target)),
                   util::format_fixed(truth, 2),
                   util::format_fixed(measured, 2),
                   util::format_fixed(100.0 * (measured - truth) /
                                          std::max(truth, 1e-9), 1)});
  }
  table.print(std::cout);

  std::cout << "\nSix metabolites, five 0.23 mm^2 working electrodes, one "
               "shared Ag/AgCl reference and Au counter -- the paper's "
               "n + 2 electrode architecture with the dual-target CYP2B4 "
               "film.\n";
  return 0;
}
