/// \file drug_monitoring.cpp
/// Therapeutic drug monitoring with cytochrome P450 voltammetry: the
/// paper's Section I-A motivation (patients metabolise the same dose very
/// differently, so measuring the circulating level lets the doctor tune
/// the therapy). One CYP2B4 electrode resolves two co-administered drugs
/// by their reduction potentials.
#include <iostream>
#include <vector>

#include "afe/frontend.hpp"
#include "bio/library.hpp"
#include "dsp/peaks.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace idp;
  using namespace idp::util::literals;

  std::cout << "IDP example: dual-drug monitoring on one CYP2B4 film\n\n";

  const std::vector<bio::TargetId> drugs{bio::TargetId::kBenzphetamine,
                                         bio::TargetId::kAminopyrine};
  bio::ProbePtr probe = bio::make_cyp_probe(drugs, 0.23_mm2, /*gain=*/50.0);

  afe::AfeConfig fe_config;
  fe_config.tia = afe::oxidase_class_tia();  // small catalytic currents
  fe_config.adc = afe::AdcSpec{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                               .sample_rate = 10.0};
  afe::AnalogFrontEnd frontend(fe_config);
  sim::MeasurementEngine engine;

  sim::CyclicVoltammetryProtocol protocol;
  protocol.e_start = 100_mV;
  protocol.e_vertex = -700_mV;
  protocol.scan_rate = 20_mV_per_s;  // the cell-faithful limit

  auto read_panel = [&](double benz_mM, double amino_mM) {
    probe->set_bulk_concentration("benzphetamine", benz_mM);
    probe->set_bulk_concentration("aminopyrine", amino_mM);
    return engine.run_cyclic_voltammetry(sim::Channel{probe.get(), nullptr},
                                         protocol, frontend);
  };

  // Calibrate each drug's response at its reduction potential.
  const sim::CvCurve blank = read_panel(0.0, 0.0);
  const double b_benz = dsp::reduction_response_at(blank, -250_mV);
  const double b_amino = dsp::reduction_response_at(blank, -400_mV);
  const sim::CvCurve cal = read_panel(1.0, 4.0);
  const double s_benz =
      (dsp::reduction_response_at(cal, -250_mV) - b_benz) / 1.0;
  const double s_amino =
      (dsp::reduction_response_at(cal, -400_mV) - b_amino) / 4.0;

  util::ConsoleTable table({"sample", "benz true (mM)", "benz est (mM)",
                            "amino true (mM)", "amino est (mM)"});
  const double samples[][2] = {{0.4, 2.0}, {0.8, 6.0}, {1.2, 1.0}};
  for (const auto& s : samples) {
    const sim::CvCurve cv = read_panel(s[0], s[1]);
    const double benz_est =
        (dsp::reduction_response_at(cv, -250_mV) - b_benz) / s_benz;
    const double amino_est =
        (dsp::reduction_response_at(cv, -400_mV) - b_amino) / s_amino;
    table.add_row({"-", util::format_fixed(s[0], 2),
                   util::format_fixed(benz_est, 2),
                   util::format_fixed(s[1], 2),
                   util::format_fixed(amino_est, 2)});
  }
  table.print(std::cout);
  std::cout << "\nBoth drugs are quantified from ONE voltammogram: peak "
               "position identifies the molecule (-250 vs -400 mV, Table "
               "II), peak height its concentration -- the paper's "
               "single-probe multi-target scheme.\n";
  return 0;
}
