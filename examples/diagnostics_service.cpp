/// \file diagnostics_service.cpp
/// The platform as a *service*: a multi-tenant diagnostics runtime serving
/// a mixed request stream -- panel scans, quantified single-analyte reads
/// and QC checks at stat/routine/batch priority -- from dozens of live
/// patient sessions. Demonstrates the three service-layer guarantees:
/// (1) replaying a recorded request log is bitwise identical at any
/// parallelism, (2) live serving through the bounded priority queue
/// produces exactly the replayed results, and (3) admission control
/// rejects explicitly instead of dropping silently. Writes the response
/// and telemetry CSVs a deployment would stream.
#include <cstdio>
#include <iostream>

#include "serve/result_sink.hpp"
#include "serve/scheduler.hpp"
#include "serve/traffic.hpp"
#include "util/table.hpp"

int main() {
  using namespace idp;

  std::cout << "IDP example: multi-tenant diagnostics service runtime\n\n";

  // --- the deployment -------------------------------------------------------
  // One calibration store (the factory lab) backs the whole service; the
  // panel is a two-channel metabolic monitor.
  quant::CampaignConfig campaign;
  campaign.calibration_points = 5;
  campaign.blank_measurements = 6;
  campaign.ca_duration_s = 10.0;
  quant::CalibrationStore store(campaign);

  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose, bio::TargetId::kLactate};
  config.engine_seed = 2026;
  // Sensors age in the field; the service recalibrates each session's
  // sensor on a 7-day maintenance cadence (warm per-session epochs).
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.04;
  aging.enzyme_decay_per_day = 0.015;
  aging.seed = 99;
  config.degradation = fault::DegradationModel(aging);
  config.recalibration_interval_days = 7.0;
  serve::DiagnosticsService service(store, config);

  // --- a recorded day of traffic -------------------------------------------
  serve::TrafficSpec traffic;
  traffic.requests = 112;
  traffic.sessions = 24;
  traffic.tenants = 3;
  traffic.seed = 7;
  traffic.duration_h = 10.0 * 24.0;  // ten days: crosses the recal cadence
  const std::vector<serve::Request> log =
      serve::synthesize_traffic(traffic, service);
  std::printf(
      "Synthesized %zu requests from %zu sessions across %u tenants over "
      "%.0f h\n\n",
      log.size(), traffic.sessions, traffic.tenants, traffic.duration_h);

  // --- guarantee 1: deterministic replay ------------------------------------
  serve::SchedulerConfig sched_config;
  sched_config.queue.capacity = 256;
  sched_config.workers = 4;
  serve::Scheduler scheduler(service, sched_config);

  const std::vector<serve::Response> sequential = scheduler.replay(log, 1);
  const std::vector<serve::Response> parallel = scheduler.replay(log, 0);
  bool identical = sequential.size() == parallel.size();
  for (std::size_t i = 0; identical && i < sequential.size(); ++i) {
    const auto& a = sequential[i];
    const auto& b = parallel[i];
    identical = a.channels.size() == b.channels.size() &&
                a.qc_blank_residual == b.qc_blank_residual &&
                a.qc_standard_residual == b.qc_standard_residual;
    for (std::size_t c = 0; identical && c < a.channels.size(); ++c) {
      identical = a.channels[c].response == b.channels[c].response &&
                  a.channels[c].estimate.value == b.channels[c].estimate.value;
    }
  }
  std::printf("Replay at parallelism 1 vs hardware: %s\n\n",
              identical ? "bitwise identical" : "DIVERGED (bug!)");
  if (!identical) return 1;

  // --- guarantee 2: live serving matches the replay -------------------------
  serve::CsvResultSink sink("diagnostics_responses.csv",
                            "diagnostics_telemetry.csv");
  scheduler.start(&sink);
  std::size_t accepted = 0;
  for (const serve::Request& r : log) {
    if (scheduler.submit_wait(r) == serve::Admission::kAccepted) ++accepted;
  }
  scheduler.drain_and_stop();

  util::ConsoleTable latency({"class", "served", "queue p50 (ms)",
                              "queue p99 (ms)", "service p50 (ms)",
                              "service p99 (ms)"});
  for (std::size_t p = 0; p < serve::kPriorityCount; ++p) {
    const serve::PriorityTelemetry t =
        scheduler.telemetry(static_cast<serve::Priority>(p));
    latency.add_row(
        {serve::to_string(static_cast<serve::Priority>(p)),
         util::format_fixed(static_cast<double>(t.completed), 0),
         util::format_fixed(1e3 * t.queue_wait.percentile(0.50), 3),
         util::format_fixed(1e3 * t.queue_wait.percentile(0.99), 3),
         util::format_fixed(1e3 * t.service_time.percentile(0.50), 3),
         util::format_fixed(1e3 * t.service_time.percentile(0.99), 3)});
  }
  std::cout << "Live service over " << sched_config.workers
            << " workers (accepted " << accepted << "/" << log.size()
            << "):\n";
  latency.print(std::cout);

  const serve::RegistryStats stats = service.sessions().stats();
  std::printf(
      "\nSessions: %zu live | %llu requests served | warm calibration "
      "hits: %llu | field recalibrations built: %llu\n",
      stats.sessions, static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.warm_hits),
      static_cast<unsigned long long>(stats.calibrations_built));

  // --- guarantee 3: explicit admission control ------------------------------
  serve::SchedulerConfig tiny;
  tiny.queue.capacity = 4;
  tiny.queue.stat_reserve = 1;
  tiny.workers = 1;
  serve::Scheduler overload(service, tiny);
  // No workers started: the queue fills and the service *rejects*.
  std::size_t rejected = 0;
  for (const serve::Request& r : log) {
    if (overload.submit(r) == serve::Admission::kRejectedFull) ++rejected;
  }
  std::printf(
      "\nOverload drill (capacity 4, no workers): %zu of %zu requests "
      "rejected explicitly -- never dropped silently (queue depth %zu, "
      "accepted %llu).\n",
      rejected, log.size(), overload.queue().depth(),
      static_cast<unsigned long long>(overload.queue().accepted()));

  // --- guarantee 4: graceful degradation under overload ---------------------
  // Shed watermarks turn sustained depth into *early* explicit rejection
  // of the lowest-value classes: batch sheds first, then routine, stat
  // never -- the queue keeps headroom for the traffic whose latency
  // matters. (No workers: depth only grows, so the watermarks provably
  // drive every verdict.)
  serve::SchedulerConfig degrading;
  degrading.queue.capacity = 32;
  degrading.queue.stat_reserve = 4;
  degrading.queue.batch_shed_depth = 8;
  degrading.queue.routine_shed_depth = 16;
  degrading.workers = 1;
  serve::Scheduler shedding(service, degrading);
  for (const serve::Request& r : log) {
    (void)shedding.submit(r);
  }
  const serve::QueueStats qs = shedding.queue_stats();
  std::printf(
      "Degradation drill (capacity 32, shed batch@8 routine@16): "
      "accepted %llu | shed %llu | rejected full %llu of %zu offered\n",
      static_cast<unsigned long long>(qs.accepted),
      static_cast<unsigned long long>(qs.shed),
      static_cast<unsigned long long>(qs.rejected_full), log.size());
  if (qs.accepted + qs.shed + qs.rejected_full != log.size()) {
    std::printf("accounting hole: some admission went unexplained (bug!)\n");
    return 1;
  }

  std::cout << "\nPer-request responses written to diagnostics_responses.csv "
               "(deterministic, request-id order);\nwall-clock telemetry to "
               "diagnostics_telemetry.csv (completion order).\n";
  return 0;
}
