/// \file quickstart.cpp
/// Quickstart: measure glucose with a single calibrated biosensor.
///
/// Builds the paper's glucose-oxidase electrode (Table I / Table III), runs
/// a chronoamperometric measurement through the oxidase-grade acquisition
/// chain (Fig. 1/2), and prints the calibration metrics of Section II-B.
#include <iostream>
#include <vector>

#include "afe/frontend.hpp"
#include "bio/library.hpp"
#include "dsp/calibration.hpp"
#include "dsp/response.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace idp;
  using namespace idp::util::literals;

  std::cout << "IDP quickstart: glucose chronoamperometry\n\n";

  // 1. A calibrated glucose-oxidase probe on a 0.23 mm^2 electrode (Fig. 4).
  bio::ProbePtr probe = bio::make_probe(bio::TargetId::kGlucose);

  // 2. The oxidase-grade acquisition chain: +/-10 uA, 10 nA resolution.
  afe::AfeConfig fe_config;
  fe_config.tia = afe::oxidase_class_tia();
  fe_config.adc = afe::AdcSpec{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                               .sample_rate = 10.0};
  afe::AnalogFrontEnd frontend(fe_config);

  // 3. Measure a calibration series at +550 mV (Table I potential).
  sim::MeasurementEngine engine;
  sim::ChronoamperometryProtocol protocol;
  protocol.potential = 550_mV;
  protocol.duration = 60_s;

  dsp::CalibrationCurve curve;
  const sim::Channel channel{probe.get(), nullptr};
  for (int b = 0; b < 6; ++b) {  // Eq. 5 blanks
    probe->set_bulk_concentration("glucose", 0.0);
    const sim::Trace t = engine.run_chronoamperometry(channel, protocol, frontend);
    curve.add_blank(t.mean_in_window(48_s, 60_s));
  }
  util::ConsoleTable table({"glucose (mM)", "steady current (nA)"});
  for (double c_mM : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    probe->set_bulk_concentration("glucose", c_mM);  // mM == mol/m^3
    const sim::Trace t = engine.run_chronoamperometry(channel, protocol, frontend);
    const double i_ss = t.mean_in_window(48_s, 60_s);
    curve.add_point(c_mM, i_ss);
    table.add_row({util::format_fixed(c_mM, 1),
                   util::format_fixed(util::current_to_nA(i_ss), 1)});
  }
  table.print(std::cout);

  // 4. Section II-B metrology.
  const auto range = curve.linear_range(0.07);
  const double s_meas = util::sensitivity_to_uA_per_mM_cm2(
      (range.found ? range.fit.slope : curve.fit().slope) / probe->area());
  std::cout << "\nsensitivity : " << s_meas
            << " uA/(mM cm^2)   [paper Table III: 27.7]\n";
  std::cout << "LOD (Eq. 5) : "
            << util::concentration_to_uM(curve.lod_concentration(0.07))
            << " uM            [paper Table III: 575]\n";
  if (range.found) {
    std::cout << "linear range: " << range.c_low << " - " << range.c_high
              << " mM       [paper Table III: 0.5 - 4]\n";
  }
  return 0;
}
