/// \file glucose_monitor.cpp
/// Continuous glucose monitoring, GlucoMen(R)Day-style (the paper's
/// Section I cites this FDA-approved microdialysis monitor): track a
/// changing glucose level over 10 minutes of repeated chronoamperometric
/// reads and flag hypo-/hyper-glycemic excursions.
#include <iostream>
#include <vector>

#include "afe/frontend.hpp"
#include "bio/library.hpp"
#include "dsp/smoothing.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace idp;
  using namespace idp::util::literals;

  std::cout << "IDP example: continuous glucose monitoring\n\n";

  bio::ProbePtr probe = bio::make_probe(bio::TargetId::kGlucose);
  afe::AfeConfig fe_config;
  fe_config.tia = afe::oxidase_class_tia();
  fe_config.adc = afe::AdcSpec{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                               .sample_rate = 10.0};
  fe_config.reduction.cds = true;  // long-term drift matters here
  afe::AnalogFrontEnd frontend(fe_config);
  sim::MeasurementEngine engine;

  // One-point calibration at 5 mM (a typical fasting level).
  sim::ChronoamperometryProtocol protocol;
  protocol.potential = 550_mV;
  protocol.duration = 60_s;
  const sim::Channel channel{probe.get(), nullptr};
  probe->set_bulk_concentration("glucose", 5.0);
  const sim::Trace cal =
      engine.run_chronoamperometry(channel, protocol, frontend);
  const double i_per_mM = cal.mean_in_window(48_s, 60_s) / 5.0;

  // A glucose excursion: meal rise, then insulin-driven fall.
  const std::vector<double> profile_mM{5.0, 5.5, 7.0, 9.0, 8.0,
                                       6.5, 5.0, 4.0, 3.2, 3.0};
  util::ConsoleTable table({"t (min)", "true (mM)", "estimated (mM)",
                            "status"});
  for (std::size_t k = 0; k < profile_mM.size(); ++k) {
    probe->set_bulk_concentration("glucose", profile_mM[k]);
    const sim::Trace t =
        engine.run_chronoamperometry(channel, protocol, frontend);
    const double estimate = t.mean_in_window(48_s, 60_s) / i_per_mM;
    const char* status = estimate < 3.9   ? "HYPOGLYCEMIA alert"
                         : estimate > 8.0 ? "hyperglycemia warning"
                                          : "in range";
    table.add_row({std::to_string(k), util::format_fixed(profile_mM[k], 1),
                   util::format_fixed(estimate, 1), status});
  }
  table.print(std::cout);
  std::cout << "\nEach row is one 60 s chronoamperometric read at +550 mV "
               "through the CDS-corrected oxidase-grade chain.\n";
  return 0;
}
