/// \file fig1_potentiostat.cpp
/// Reproduces Fig. 1: the potentiostat + transimpedance readout. Reports
/// loop regulation (static error, microsecond-scale settling into the cell)
/// and the two Section II-C readout classes (full scale, resolution,
/// bandwidth, noise), plus the current-to-frequency alternative [26][27].
#include <iostream>

#include "bench_common.hpp"
#include "afe/adc.hpp"
#include "afe/i2f.hpp"
#include "afe/potentiostat.hpp"
#include "afe/tia.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;
using namespace idp::util::literals;

void print_potentiostat() {
  bench::banner("Fig. 1 -- potentiostat loop characterisation");
  afe::PotentiostatSpec spec;
  spec.control_amp.offset_v = 0.0;
  const afe::Potentiostat pstat(spec);
  const chem::CellImpedance z;

  util::ConsoleTable table({"C_dl (nF)", "step (V)", "settling (us)",
                            "final error (mV)", "settled"});
  for (double c_dl_nf : {10.0, 46.0, 230.0}) {
    const auto tr =
        pstat.step_response(0.5, z, c_dl_nf * 1e-9, 5e-3, 2e-8);
    table.add_row({util::format_fixed(c_dl_nf, 0), "0.50",
                   util::format_fixed(tr.settling_time * 1e6, 1),
                   util::format_fixed(
                       std::fabs(tr.e_re.back() - 0.5) * 1e3, 3),
                   tr.settled ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nLoop settles in microseconds -- justifying the "
               "quasi-static treatment at electrochemical time scales.\n";
}

void print_readout_classes() {
  bench::banner("Fig. 1 -- transimpedance readout classes (Section II-C)");
  util::ConsoleTable table({"class", "Rf (kohm)", "full scale (uA)",
                            "resolution (nA)", "bandwidth (Hz)",
                            "white noise (pA/rtHz)", "meets spec"});
  const afe::AdcSpec adc{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                         .sample_rate = 10.0};
  struct Row {
    const char* name;
    afe::TiaSpec tia;
    double required_fs;
    double required_res;
  };
  const Row rows[] = {
      {"oxidase (10uA/10nA)", afe::oxidase_class_tia(), 10e-6, 10e-9},
      {"CYP (100uA/100nA)", afe::cyp_class_tia(), 100e-6, 100e-9},
      {"lab-grade", afe::lab_grade_tia(), 1e-6, 1e-11},
  };
  for (const Row& row : rows) {
    const afe::Tia tia(row.tia);
    const afe::SarAdc sar(adc);
    const double lsb_current = sar.lsb() / row.tia.feedback_resistance;
    const bool ok = tia.full_scale_current() >= row.required_fs * 0.99 &&
                    lsb_current <= row.required_res;
    table.add_row(
        {row.name,
         util::format_fixed(row.tia.feedback_resistance / 1e3, 0),
         util::format_fixed(util::current_to_uA(tia.full_scale_current()), 1),
         util::format_fixed(lsb_current * 1e9, 2),
         util::format_fixed(tia.bandwidth(), 0),
         util::format_fixed(tia.input_noise_density() * 1e12, 2),
         ok ? "yes" : "n/a"});
  }
  table.print(std::cout);
}

void print_i2f_alternative() {
  bench::banner("Fig. 1 alternative -- current-to-frequency readout");
  const afe::CurrentToFrequency i2f(afe::I2fSpec{});
  util::ConsoleTable table(
      {"gate time (s)", "resolution (nA)", "f @ 100 nA (Hz)"});
  for (double gate : {0.001, 0.01, 0.1, 1.0}) {
    table.add_row({util::format_sig(gate, 3),
                   util::format_sig(i2f.resolution(gate) * 1e9, 3),
                   util::format_fixed(i2f.frequency(100e-9), 0)});
  }
  table.print(std::cout);
  std::cout << "\nA 1 ms gate already meets the 10 nA oxidase requirement; "
               "longer gates trade throughput for resolution.\n";
}

void bm_loop_transient(benchmark::State& state) {
  afe::PotentiostatSpec spec;
  const afe::Potentiostat pstat(spec);
  const chem::CellImpedance z;
  for (auto _ : state) {
    const auto tr = pstat.step_response(0.5, z, 46e-9, 2e-3, 1e-8);
    benchmark::DoNotOptimize(tr.settling_time);
  }
  state.SetLabel("2 ms loop transient at 10 ns resolution");
}
BENCHMARK(bm_loop_transient)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_potentiostat();
  print_readout_classes();
  print_i2f_alternative();
  return idp::bench::run_benchmarks(argc, argv);
}
