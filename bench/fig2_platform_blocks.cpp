/// \file fig2_platform_blocks.cpp
/// Reproduces Fig. 2: the building-block diagram of the biosensing
/// platform. Prints the component inventory (voltage generation,
/// potentiostat, mux, readout classes, ADC) with the catalog's area/power
/// budget, then exercises the assembled chain end to end on a mixed
/// two-target acquisition and reports how faithfully concentrations are
/// recovered through every block.
#include <iostream>

#include "bench_common.hpp"
#include "core/catalog.hpp"
#include "core/elaborate.hpp"
#include "core/explorer.hpp"
#include "dsp/peaks.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;

void print_block_inventory() {
  bench::banner("Fig. 2 -- platform building blocks (catalog view)");
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  util::ConsoleTable table({"block", "role", "area (mm^2)", "power (uW)"});
  table.add_row({"fixed DAC", "chronoamperometry potential",
                 util::format_fixed(cat.fixed_dac().area_mm2, 3),
                 util::format_fixed(cat.fixed_dac().power_uw, 0)});
  table.add_row({"sweep generator", "cyclic voltammetry ramp (<= 20 mV/s)",
                 util::format_fixed(cat.sweep_generator().area_mm2, 3),
                 util::format_fixed(cat.sweep_generator().power_uw, 0)});
  for (const auto& r : cat.readouts()) {
    if (r.cls == plat::ReadoutClass::kLabGrade) continue;
    table.add_row({r.name, to_string(r.cls),
                   util::format_fixed(r.area_mm2, 3),
                   util::format_fixed(r.power_uw, 0)});
  }
  const auto& mux = cat.mux_for(8);
  table.add_row({"analog mux (8:1)", "working-electrode sharing",
                 util::format_fixed(mux.area_mm2, 3),
                 util::format_fixed(mux.power_uw, 0)});
  table.add_row({"SAR ADC (12b)", "digitisation",
                 util::format_fixed(cat.adc_area_mm2(), 3),
                 util::format_fixed(cat.adc_power_uw(), 0)});
  table.add_row({"chopper option", "flicker suppression",
                 util::format_fixed(cat.chopper_cost().area_mm2, 3),
                 util::format_fixed(cat.chopper_cost().power_uw, 0)});
  table.add_row({"CDS option", "blank-electrode subtraction",
                 util::format_fixed(cat.cds_cost().area_mm2, 3),
                 util::format_fixed(cat.cds_cost().power_uw, 0)});
  table.print(std::cout);
}

void print_chain_accuracy() {
  bench::banner("Fig. 2 -- assembled chain accuracy (truth vs recovered)");
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  plat::ElaborationOptions opt;
  opt.calibration_points = 5;
  opt.blank_measurements = 6;
  plat::ElaboratedPlatform platform(plat::make_fig4_candidate(cat), cat, opt);

  // Calibrate glucose + cholesterol channels through the integrated AFE,
  // then present "unknown" samples and invert the calibration.
  util::ConsoleTable table({"target", "truth (mM)", "recovered (mM)",
                            "error (%)"});
  struct Unknown {
    bio::TargetId id;
    double truth;
  };
  for (const Unknown u : {Unknown{bio::TargetId::kGlucose, 2.4},
                          Unknown{bio::TargetId::kLactate, 1.3},
                          Unknown{bio::TargetId::kCholesterol, 0.05}}) {
    const plat::TargetRequirement req{.target = u.id};
    std::vector<double> concs;
    for (int i = 0; i < 5; ++i) {
      concs.push_back(req.effective_lo_mM() +
                      (req.effective_hi_mM() - req.effective_lo_mM()) * i / 4.0);
    }
    dsp::CalibrationCurve curve = platform.calibrate(u.id, concs);
    const util::LinearFit fit = curve.fit();
    // "Measure" the unknown: one more acquisition at the true value.
    const double truth[] = {u.truth};
    dsp::CalibrationCurve one = platform.calibrate(u.id, truth);
    const double response = one.responses().front();
    const double recovered = (response - fit.intercept) / fit.slope;
    table.add_row({bio::to_string(u.id), util::format_fixed(u.truth, 2),
                   util::format_fixed(recovered, 2),
                   util::format_fixed(
                       100.0 * (recovered - u.truth) / u.truth, 1)});
  }
  table.print(std::cout);
  std::cout << "\nConcentrations are recovered through waveform generator ->"
            << " potentiostat -> cell -> TIA -> ADC -> DSP within a few "
               "percent.\n";
}

void bm_chain_acquisition(benchmark::State& state) {
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  plat::ElaborationOptions opt;
  plat::ElaboratedPlatform platform(plat::make_fig4_candidate(cat), cat, opt);
  const double concs[] = {2.0};
  for (auto _ : state) {
    dsp::CalibrationCurve c =
        platform.calibrate(bio::TargetId::kGlucose, concs);
    benchmark::DoNotOptimize(c.responses().front());
  }
  state.SetLabel("blanks + one 60 s acquisition through the full chain");
}
BENCHMARK(bm_chain_acquisition)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_block_inventory();
  print_chain_accuracy();
  return idp::bench::run_benchmarks(argc, argv);
}
