/// \file ablation_nanostructure.cpp
/// Ablation A5 -- Section III's closing remark: benzphetamine and
/// aminopyrine "have a much lower sensitivity ... which can be further
/// enhanced by employing nanostructured electrodes". Sweeps the CNT gain
/// and reports when the dual-target CYP2B4 electrode becomes readable by
/// each integrated readout class.
#include <iostream>

#include "bench_common.hpp"
#include "core/constraints.hpp"
#include "core/explorer.hpp"
#include "dsp/peaks.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;

void print_gain_sweep() {
  bench::banner("A5 -- nanostructuration gain vs readability of the "
                "CYP2B4 electrode (0.23 mm^2)");
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  util::ConsoleTable table(
      {"gain", "benz i(range hi) (nA)", "amino i(range hi) (nA)",
       "OX-grade (10 nA) ok", "CYP-grade (100 nA) ok"});
  const double pad = cat.electrode_pad_area_mm2() * 1e-6;
  for (double gain : {1.0, 5.0, 20.0, 50.0}) {
    const double i_benz =
        gain * plat::expected_current(bio::TargetId::kBenzphetamine, 1.2, pad);
    const double i_amino =
        gain * plat::expected_current(bio::TargetId::kAminopyrine, 8.0, pad);
    const auto& ox = cat.readout(plat::ReadoutClass::kOxidaseGrade);
    const auto& cyp = cat.readout(plat::ReadoutClass::kCypGrade);
    const bool ox_ok = std::min(i_benz, i_amino) >= 2.0 * ox.resolution_a;
    const bool cyp_ok = std::min(i_benz, i_amino) >= 2.0 * cyp.resolution_a;
    table.add_row({util::format_fixed(gain, 0),
                   util::format_sig(util::current_to_nA(i_benz), 3),
                   util::format_sig(util::current_to_nA(i_amino), 3),
                   ox_ok ? "yes" : "NO", cyp_ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nWithout nanostructuring neither integrated class resolves "
               "the benzphetamine row -- matching the paper's caveat; with "
               "the CNT gain the fine-resolution oxidase-grade channel "
               "suffices.\n";
}

void print_measured_sensitivity() {
  bench::banner("A5 -- measured dual-film sensitivity vs gain "
                "(virtual CV calibration)");
  util::ConsoleTable table({"gain", "benz S (uA/(mM cm^2))",
                            "amino S (uA/(mM cm^2))"});
  sim::MeasurementEngine engine = bench::quiet_engine();
  for (double gain : {1.0, 10.0, 50.0}) {
    const bio::TargetId ids[] = {bio::TargetId::kBenzphetamine,
                                 bio::TargetId::kAminopyrine};
    bio::ProbePtr probe = bio::make_cyp_probe(ids, 0.23e-6, gain);
    afe::AnalogFrontEnd fe = bench::lab_frontend();
    auto response = [&](const std::string& drug, double c, double e0) {
      probe->set_bulk_concentration(drug, c);
      sim::CyclicVoltammetryProtocol p;
      p.e_start = 0.1;
      p.e_vertex = -0.70;
      p.scan_rate = 0.02;
      const sim::CvCurve curve = engine.run_cyclic_voltammetry(
          sim::Channel{probe.get(), nullptr}, p, fe);
      probe->set_bulk_concentration(drug, 0.0);
      return dsp::reduction_response_at(curve, e0, 0.05);
    };
    const double s_benz = (response("benzphetamine", 1.2, -0.25) -
                           response("benzphetamine", 0.2, -0.25)) /
                          1.0;
    const double s_amino = (response("aminopyrine", 8.0, -0.40) -
                            response("aminopyrine", 0.8, -0.40)) /
                           7.2;
    table.add_row(
        {util::format_fixed(gain, 0),
         util::format_sig(
             util::sensitivity_to_uA_per_mM_cm2(s_benz / probe->area()), 3),
         util::format_sig(
             util::sensitivity_to_uA_per_mM_cm2(s_amino / probe->area()),
             3)});
  }
  table.print(std::cout);
  std::cout << "\n(Paper planar baselines: 0.28 and 2.8 uA/(mM cm^2); the "
               "gain scales both until drug transport limits.)\n";
}

void bm_nano_probe_construction(benchmark::State& state) {
  const bio::TargetId ids[] = {bio::TargetId::kBenzphetamine,
                               bio::TargetId::kAminopyrine};
  for (auto _ : state) {
    bio::ProbePtr probe = bio::make_cyp_probe(ids, 0.23e-6, 50.0);
    benchmark::DoNotOptimize(probe.get());
  }
  state.SetLabel("dual-film construction incl. per-target kcat calibration");
}
BENCHMARK(bm_nano_probe_construction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_gain_sweep();
  print_measured_sensitivity();
  return idp::bench::run_benchmarks(argc, argv);
}
