/// \file serve_load.cpp
/// Service-runtime load benchmark: open-loop mixed traffic (panel scans,
/// quantified reads, QC checks at stat/routine/batch priority) from
/// thousands of sessions pushed through the live scheduler, reporting
/// sustained throughput plus p50/p90/p99 queue-wait and service-time
/// latency per priority class as benchmark counters, the replay path's
/// parallel scaling, the live telemetry-bus fan-out tax at 0/2/8
/// subscribers, and the fault-tolerant replay's throughput under
/// injected loss and a shard-crash failover. Writes google-benchmark JSON
/// to BENCH_serve.json
/// (override with --benchmark_out=...) so successive PRs accumulate a
/// comparable service-workload measurement.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netsim/sim_network.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard_coordinator.hpp"
#include "serve/traffic.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace idp;

/// Short-protocol campaign: the load bench measures the *service layer*
/// (queueing, dispatch, session state, leasing), so each virtual
/// measurement is kept short -- 1 s of simulated chronoamperometry -- to
/// make a >= 10k-request run affordable in CI.
quant::CampaignConfig bench_campaign() {
  quant::CampaignConfig config;
  config.calibration_points = 4;
  config.blank_measurements = 4;
  config.ca_duration_s = 1.0;
  return config;
}

serve::ServiceConfig bench_service_config() {
  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose, bio::TargetId::kLactate};
  config.engine_seed = 515;
  return config;
}

serve::TrafficSpec bench_traffic(std::size_t requests) {
  serve::TrafficSpec spec;
  spec.requests = requests;
  spec.sessions = 2000;
  spec.tenants = 8;
  spec.devices = 2;
  spec.seed = 17;
  spec.duration_h = 24.0;
  return spec;
}

void report_priority_latency(benchmark::State& state,
                             const serve::Scheduler& scheduler) {
  for (std::size_t p = 0; p < serve::kPriorityCount; ++p) {
    const auto priority = static_cast<serve::Priority>(p);
    const serve::PriorityTelemetry t = scheduler.telemetry(priority);
    const std::string prefix = serve::to_string(priority);
    state.counters[prefix + "_served"] +=
        static_cast<double>(t.completed);
    // One canonical summary row per histogram (the same count/min/max/
    // p50/p90/p99 schema the metrics registry and telemetry CSVs export).
    const std::pair<const char*, util::LatencySummary> series[] = {
        {"queue", t.queue_wait.summary()},
        {"service", t.service_time.summary()}};
    for (const auto& [tag, summary] : series) {
      const std::string base = prefix + "_" + std::string(tag) + "_";
      state.counters[base + "p50_ms"] = 1e3 * summary.p50;
      state.counters[base + "p90_ms"] = 1e3 * summary.p90;
      state.counters[base + "p99_ms"] = 1e3 * summary.p99;
    }
  }
}

/// The headline load run: >= 10k mixed requests from 2000 sessions pushed
/// open-loop (with backpressure) through the live scheduler at hardware
/// worker parallelism.
void BM_ServeLoad(benchmark::State& state) {
  const auto requests = static_cast<std::size_t>(state.range(0));
  static quant::CalibrationStore store(bench_campaign());
  static serve::DiagnosticsService service(store, bench_service_config());
  // Built per invocation (synthesis is milliseconds): a function-local
  // static would freeze the first Arg's log and silently mislabel any
  // additional ->Arg() sizes.
  const std::vector<serve::Request> log =
      serve::synthesize_traffic(bench_traffic(requests), service);

  std::size_t completed = 0;
  for (auto _ : state) {
    serve::SchedulerConfig config;
    config.queue.capacity = 4096;
    config.queue.stat_reserve = 64;
    config.workers = 0;  // hardware concurrency
    serve::Scheduler scheduler(service, config);
    scheduler.start();
    for (const serve::Request& r : log) {
      benchmark::DoNotOptimize(scheduler.submit_wait(r));
    }
    scheduler.drain_and_stop();
    completed += scheduler.completed();
    state.PauseTiming();
    report_priority_latency(state, scheduler);
    state.counters["queue_high_water"] =
        static_cast<double>(scheduler.queue().high_water());
    state.counters["rejected"] +=
        static_cast<double>(scheduler.queue().rejected());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.SetLabel(std::to_string(requests) +
                 " mixed requests x 2000 sessions, hw workers");
}
BENCHMARK(BM_ServeLoad)
    ->Arg(10000)
    ->ArgName("requests")
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Replay-path scaling: the same recorded log executed deterministically
/// at parallelism 1 / 2 / 4 / hardware (bitwise identical results; the
/// timing difference is the whole point).
void BM_ServeReplay(benchmark::State& state) {
  static quant::CalibrationStore store(bench_campaign());
  static serve::DiagnosticsService service(store, bench_service_config());
  static const std::vector<serve::Request> log = [] {
    serve::TrafficSpec spec = bench_traffic(512);
    spec.sessions = 128;
    return serve::synthesize_traffic(spec, service);
  }();

  serve::Scheduler scheduler(service);
  std::size_t responses = 0;
  for (auto _ : state) {
    const std::vector<serve::Response> out =
        scheduler.replay(log, static_cast<std::size_t>(state.range(0)));
    responses += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.SetLabel("512-request log, deterministic replay");
}
BENCHMARK(BM_ServeReplay)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->ArgName("parallelism")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Observability tax: the deterministic replay with the full observability
/// stack attached (TraceRecorder spans from every lease/execution/epoch
/// event plus service-level metrics counters) against the bare replay.
/// Target: the observed run stays within 5% of the bare run's wall time
/// -- compare the two variants' real_time in BENCH_serve.json.
void BM_ObsOverhead(benchmark::State& state) {
  static quant::CalibrationStore store(bench_campaign());
  static const std::vector<serve::Request> log = [] {
    serve::DiagnosticsService reference(store, bench_service_config());
    serve::TrafficSpec spec = bench_traffic(512);
    spec.sessions = 128;
    return serve::synthesize_traffic(spec, reference);
  }();

  const bool observed = state.range(0) != 0;
  serve::DiagnosticsService service(store, bench_service_config());
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  if (observed) {
    service.set_trace(&trace);
    service.set_metrics(&metrics);
  }
  serve::Scheduler scheduler(service);
  std::size_t responses = 0;
  for (auto _ : state) {
    if (observed) trace.clear();  // clearing is part of the tracing cost
    const std::vector<serve::Response> out = scheduler.replay(log, 0);
    responses += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  if (observed) {
    state.counters["trace_events"] = static_cast<double>(trace.size());
    state.counters["metric_series"] = static_cast<double>(metrics.size());
  }
  state.SetLabel(std::string("512-request log, hw parallelism, ") +
                 (observed ? "trace + metrics attached (<5% target)"
                           : "bare replay"));
}
BENCHMARK(BM_ObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("observed")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Live-streaming tax: the 512-request deterministic replay with a
/// TelemetryBus attached and N concurrently-draining subscribers fanned
/// out (N = 0 measures pure framing + publish cost, nobody listening).
/// Each subscriber is a large drop-oldest queue drained by its own
/// thread, so the publisher never backpressures and the measured delta
/// is the fan-out itself. Target: the 2-subscriber run stays within 5%
/// of the 0-subscriber run's wall time -- compare the variants'
/// real_time in BENCH_serve.json.
void BM_TelemetryFanout(benchmark::State& state) {
  static quant::CalibrationStore store(bench_campaign());
  static const std::vector<serve::Request> log = [] {
    serve::DiagnosticsService reference(store, bench_service_config());
    serve::TrafficSpec spec = bench_traffic(512);
    spec.sessions = 128;
    return serve::synthesize_traffic(spec, reference);
  }();

  const auto subscribers = static_cast<std::size_t>(state.range(0));
  serve::DiagnosticsService service(store, bench_service_config());
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  service.set_trace(&trace);
  service.set_metrics(&metrics);
  serve::Scheduler scheduler(service);

  std::size_t responses = 0;
  std::uint64_t frames = 0, delivered = 0, dropped = 0;
  for (auto _ : state) {
    trace.clear();
    // A fresh bus per iteration: close() is permanent by design, and the
    // setup cost (a few allocations + thread spawns) is part of what a
    // live dashboard attachment costs.
    obs::TelemetryBus bus;
    std::vector<std::thread> drains;
    for (std::size_t i = 0; i < subscribers; ++i) {
      obs::SubscriberConfig cfg;
      cfg.name = "drain-" + std::to_string(i);
      cfg.capacity = 1u << 14;
      cfg.policy = obs::OverflowPolicy::kDropOldest;
      drains.emplace_back([sub = bus.subscribe(cfg)] {
        obs::Frame frame;
        while (sub->pop(frame)) benchmark::DoNotOptimize(frame.sequence);
      });
    }
    scheduler.set_stream(&bus);
    const std::vector<serve::Response> out = scheduler.replay(log, 0);
    scheduler.set_stream(nullptr);
    bus.close();
    for (std::thread& t : drains) t.join();
    responses += out.size();
    frames = bus.frames_published();
    delivered = dropped = 0;
    for (const obs::SubscriberStats& s : bus.subscriber_stats()) {
      delivered += s.delivered;
      dropped += s.dropped;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["frames_published"] = static_cast<double>(frames);
  state.counters["frames_delivered"] = static_cast<double>(delivered);
  state.counters["frames_dropped"] = static_cast<double>(dropped);
  state.SetLabel("512-request log, hw parallelism, " +
                 std::to_string(subscribers) +
                 " draining subscriber(s)" +
                 (subscribers == 2 ? " (<5% over 0-subscriber target)" : ""));
}
BENCHMARK(BM_TelemetryFanout)
    ->Arg(0)
    ->Arg(2)
    ->Arg(8)
    ->ArgName("subscribers")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Shard-count scaling of the distributed replay path: the same recorded
/// log routed across K in-process shards and merged back through the
/// coordinator (perfect transport; the network cost modelled here is the
/// routing + envelope + sorted-merge overhead, not wire latency). K=1 vs
/// BM_ServeReplay isolates the coordinator's own tax.
void BM_ShardedReplay(benchmark::State& state) {
  static quant::CalibrationStore store(bench_campaign());
  static const std::vector<serve::Request> log = [] {
    serve::DiagnosticsService service(store, bench_service_config());
    serve::TrafficSpec spec = bench_traffic(512);
    spec.sessions = 128;
    return serve::synthesize_traffic(spec, service);
  }();

  const auto shards = static_cast<std::size_t>(state.range(0));
  serve::ShardClusterConfig cluster_config;
  cluster_config.router.shards = shards;
  serve::ShardCluster cluster(store, bench_service_config(), cluster_config);
  std::size_t responses = 0;
  for (auto _ : state) {
    const serve::ShardedReplayResult result = cluster.replay(log, 0);
    responses += result.responses.size();
    benchmark::DoNotOptimize(result.responses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.SetLabel("512-request log, merged across " +
                 std::to_string(shards) + " shard(s), hw parallelism");
}
BENCHMARK(BM_ShardedReplay)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("shards")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Fault-tolerance tax of the distributed replay: the same recorded log
/// through the retrying/failover replay path over the simulated network
/// at 0% / 1% / 5% message loss across 2 shards, plus a one-shard-crash
/// failover run. The counters expose what the recovery cost in virtual
/// time and extra work; throughput shows what it cost in wall time.
void BM_FaultedReplay(benchmark::State& state) {
  static quant::CalibrationStore store(bench_campaign());
  static const std::vector<serve::Request> log = [] {
    serve::DiagnosticsService service(store, bench_service_config());
    serve::TrafficSpec spec = bench_traffic(512);
    spec.sessions = 128;
    return serve::synthesize_traffic(spec, service);
  }();

  const double drop_prob = static_cast<double>(state.range(0)) / 1000.0;
  const bool crash_one_shard = state.range(1) != 0;
  serve::ShardClusterConfig cluster_config;
  cluster_config.router.shards = 2;
  serve::ShardCluster cluster(store, bench_service_config(), cluster_config);

  std::size_t responses = 0;
  serve::FaultStats faults;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    test::SimNetConfig net;
    net.seed = 29;
    net.max_delay_ticks = 24;
    net.duplicate_prob = 0.05;
    net.drop_prob = drop_prob;
    if (crash_one_shard) {
      // The 512 initial dispatches alone advance the clock past tick 512,
      // so the outage must reach well into the delivery phase to bite.
      net.crashes = {{.shard = cluster.route(log[0].session),
                      .from_tick = 10,
                      .until_tick = 900}};
    }
    test::SimNetTransport transport(net);
    const serve::FaultTolerantReplayResult result =
        cluster.replay_fault_tolerant(log, 0, &transport);
    responses += result.responses.size();
    faults = result.faults;  // identical every iteration (seeded)
    ++iterations;
    benchmark::DoNotOptimize(result.responses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["retries"] = static_cast<double>(faults.retries);
  state.counters["reroutes"] = static_cast<double>(faults.reroutes);
  state.counters["dropped"] = static_cast<double>(faults.messages_dropped);
  state.counters["failovers"] = static_cast<double>(faults.shard_failovers);
  state.counters["final_tick"] = static_cast<double>(faults.final_tick);
  state.SetLabel("512-request log, 2 shards, drop=" +
                 std::to_string(state.range(0)) + "permille" +
                 (crash_one_shard ? ", one shard crashed [10,900)" : ""));
}
BENCHMARK(BM_FaultedReplay)
    ->Args({0, 0})
    ->Args({10, 0})
    ->Args({50, 0})
    ->Args({10, 1})
    ->ArgNames({"drop_permille", "crash"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Queue-layer micro-benchmark: admission + dispatch cycles per second
/// through the bounded priority queue (no measurement work), the ceiling
/// the service front door imposes.
void BM_RequestQueueCycle(benchmark::State& state) {
  serve::RequestQueue queue(serve::RequestQueueConfig{.capacity = 1024});
  serve::Request request;
  request.priority = serve::Priority::kRoutine;
  std::size_t cycles = 0;
  serve::QueuedRequest out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.try_push(request));
    benchmark::DoNotOptimize(queue.try_pop(out));
    ++cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_RequestQueueCycle);

}  // namespace

int main(int argc, char** argv) {
  std::printf("hardware threads: %zu\n",
              idp::util::ThreadPool::default_parallelism());
  // CI uploads BENCH_serve.json next to BENCH_hot_path.json/BENCH_cohort.json.
  return idp::bench::run_benchmarks_with_default_out(argc, argv,
                                                     "BENCH_serve.json");
}
