/// \file fig3_time_response.cpp
/// Reproduces Fig. 3: the time response of a glucose biosensor after a
/// sample injection. The paper's figure shows ~30 s to steady state; we
/// inject 2 mM glucose at t = 10 s, print the sampled series and report
/// t90 and the transient response time ((dV/dt)max, Section II-B).
#include <iostream>

#include "bench_common.hpp"
#include "bio/library.hpp"
#include "dsp/response.hpp"
#include "dsp/smoothing.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;
using namespace idp::util::literals;

sim::Trace run_injection() {
  bio::ProbePtr probe = bio::make_probe(bio::TargetId::kGlucose);
  sim::EngineConfig cfg;
  cfg.seed = 2026;
  sim::MeasurementEngine engine(cfg);
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 100.0;
  const sim::InjectionEvent inj{10.0, "glucose", 2.0};
  return engine.run_chronoamperometry(sim::Channel{probe.get(), nullptr}, p,
                                      fe, {&inj, 1});
}

void print_fig3() {
  bench::banner("Fig. 3 -- glucose biosensor time response (2 mM injected "
                "at t = 10 s)");
  const sim::Trace trace = run_injection();

  // Display the Savitzky-Golay smoothed series (the raw 10 Hz samples carry
  // the sensor's nA-level noise; the paper's figure shows the filtered
  // response).
  const std::vector<double> smooth = dsp::savitzky_golay(trace.value(), 8);
  util::ConsoleTable series({"t (s)", "current (nA, smoothed)"});
  for (double t = 5.0; t <= 100.0; t += 5.0) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (std::fabs(trace.time_at(i) - t) <
          std::fabs(trace.time_at(idx) - t)) {
        idx = i;
      }
    }
    series.add_row({util::format_fixed(t, 0),
                    util::format_fixed(util::current_to_nA(smooth[idx]), 1)});
  }
  series.print(std::cout);

  const dsp::StepResponse r = dsp::analyze_step(trace, 10.0, 15.0);
  std::cout << "\nsteady-state current : "
            << util::current_to_nA(r.steady_state) << " nA\n";
  std::cout << "t90 (steady-state response time) : " << r.t90
            << " s   [paper Fig. 3: ~30 s]\n";
  std::cout << "transient response time (max dV/dt) : " << r.transient_time
            << " s\n";
  std::cout << "sample throughput (response+recovery ~ 2x t90) : "
            << dsp::sample_throughput(r.t90, r.t90) * 3600.0
            << " samples/hour\n";

  trace.to_csv("fig3_time_response.csv", "current_A");
  std::cout << "\nfull series written to fig3_time_response.csv\n";
}

void bm_injection_run(benchmark::State& state) {
  for (auto _ : state) {
    const sim::Trace t = run_injection();
    benchmark::DoNotOptimize(t.size());
  }
  state.SetLabel("100 s injection experiment");
}
BENCHMARK(bm_injection_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  return idp::bench::run_benchmarks(argc, argv);
}
