/// \file ablation_electrode_scaling.cpp
/// Ablation A2 -- Section III's miniaturisation argument: scaling the
/// working electrode down shrinks the double-layer background, and in the
/// microelectrode regime radial diffusion boosts the signal *per area*, so
/// the signal-to-background ratio improves.
#include <iostream>

#include "bench_common.hpp"
#include "chem/electrode.hpp"
#include "chem/kinetics.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;

void print_ablation() {
  bench::banner("A2 -- electrode scaling (glucose-like signal, 1 mM, "
                "20 mV/s background)");
  util::ConsoleTable table({"area (mm^2)", "radius (um)", "micro?",
                            "i_dl (nA)", "planar signal (nA)",
                            "radial-enhanced signal (nA)",
                            "signal/background"});
  const double s_si = util::sensitivity_from_uA_per_mM_cm2(27.7);
  const double conc = 1.0;          // 1 mM
  const double d = 6.7e-10;         // glucose diffusivity
  for (double area_mm2 : {2.3, 0.23, 0.023, 0.0023, 0.00023}) {
    const double area = area_mm2 * 1e-6;
    const chem::Electrode we(chem::ElectrodeRole::kWorking,
                             chem::ElectrodeMaterial::kGold,
                             chem::ElectrodeGeometry{area});
    const double i_dl = we.charging_current(0.020);
    const double planar = s_si * area * conc;
    // Radial (edge) diffusion floor of the equivalent microdisc.
    const double radius = we.geometry().characteristic_radius();
    const double radial =
        chem::microdisc_limiting_current(2, d, conc, radius);
    const double signal = std::max(planar, radial);
    table.add_row(
        {util::format_sig(area_mm2, 3),
         util::format_fixed(radius * 1e6, 1),
         we.geometry().is_microelectrode() ? "yes" : "no",
         util::format_sig(util::current_to_nA(i_dl), 3),
         util::format_sig(util::current_to_nA(planar), 3),
         util::format_sig(util::current_to_nA(radial), 3),
         util::format_sig(signal / i_dl, 3)});
  }
  table.print(std::cout);
  std::cout << "\nBackground scales with area while the microdisc signal "
               "scales with radius: below the ~25 um micro threshold the "
               "signal/background ratio climbs -- Section III's case for "
               "scaling the pads down (and for faster time response).\n";
}

void bm_electrode_model(benchmark::State& state) {
  const chem::Electrode we(chem::ElectrodeRole::kWorking,
                           chem::ElectrodeMaterial::kGold,
                           chem::ElectrodeGeometry{0.23e-6},
                           chem::Nanostructure::kCarbonNanotube);
  for (auto _ : state) {
    benchmark::DoNotOptimize(we.charging_current(0.02));
    benchmark::DoNotOptimize(we.double_layer_capacitance());
  }
}
BENCHMARK(bm_electrode_model);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  return idp::bench::run_benchmarks(argc, argv);
}
