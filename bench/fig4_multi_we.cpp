/// \file fig4_multi_we.cpp
/// Reproduces Fig. 4 / Section III: the five-working-electrode platform
/// (0.23 mm^2 Au pads, shared Ag RE and Au CE) measuring the six-target
/// metabolic panel -- glucose, lactate, glutamate, benzphetamine +
/// aminopyrine (one dual-target CYP2B4 film) and cholesterol (CYP11A1).
/// Validates every target against Table III and prints the multiplexed
/// scan timeline.
#include <iostream>

#include "bench_common.hpp"
#include "chem/cell.hpp"
#include "core/elaborate.hpp"
#include "core/explorer.hpp"
#include "core/report.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;

void print_biointerface() {
  bench::banner("Fig. 4 -- biointerface layout");
  const chem::ThreeElectrodeCell cell = chem::make_fig4_cell(5);
  std::cout << "working electrodes : " << cell.working_count()
            << " x Au, " << util::area_to_mm2(cell.working(0).area())
            << " mm^2 each\n";
  std::cout << "reference          : Ag ("
            << util::area_to_mm2(cell.reference().area()) << " mm^2)\n";
  std::cout << "counter            : Au ("
            << util::area_to_mm2(cell.counter().area())
            << " mm^2, adequate = "
            << (cell.counter_adequate() ? "yes" : "NO") << ")\n";
  std::cout << "total electrodes   : " << cell.electrode_count()
            << " (the paper's n + 2 for n = 5)\n";
}

void print_panel_validation() {
  bench::banner("Fig. 4 -- six-target panel validated on the integrated "
                "platform");
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  plat::ElaborationOptions opt;
  opt.calibration_points = 5;
  opt.blank_measurements = 6;
  plat::ElaboratedPlatform platform(plat::make_fig4_candidate(cat), cat, opt);
  const plat::ValidationReport report =
      platform.validate_panel(plat::fig4_panel());
  plat::print_validation(std::cout, report);
  std::cout << "\n(The CYP2B4 film is nanostructured per the paper's "
               "Section III enhancement; sensitivities on that electrode "
               "therefore exceed the planar Rh-graphite Table III rows "
               "by design.)\n";
}

void print_scan_timeline() {
  bench::banner("Fig. 4 -- multiplexed panel scan timeline");
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  plat::ElaborationOptions opt;
  plat::ElaboratedPlatform platform(plat::make_fig4_candidate(cat), cat, opt);
  const std::vector<std::pair<bio::TargetId, double>> concs{
      {bio::TargetId::kGlucose, 2.0},    {bio::TargetId::kLactate, 1.0},
      {bio::TargetId::kGlutamate, 1.0},  {bio::TargetId::kBenzphetamine, 0.7},
      {bio::TargetId::kAminopyrine, 4.0}, {bio::TargetId::kCholesterol, 0.045},
  };
  const sim::PanelScanResult scan = platform.scan(concs);
  util::ConsoleTable table({"WE", "probe", "technique", "start (s)",
                            "stop (s)"});
  for (std::size_t i = 0; i < scan.entries.size(); ++i) {
    const auto& e = scan.entries[i];
    table.add_row({"WE" + std::to_string(i), e.probe_name,
                   bio::to_string(e.technique),
                   util::format_fixed(e.start_time, 1),
                   util::format_fixed(e.stop_time, 1)});
  }
  table.print(std::cout);
  std::cout << "\nfull six-target panel read in "
            << util::format_fixed(scan.total_time, 0)
            << " s through one shared mux + per-class readout.\n";
}

void bm_panel_scan(benchmark::State& state) {
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  plat::ElaborationOptions opt;
  plat::ElaboratedPlatform platform(plat::make_fig4_candidate(cat), cat, opt);
  const std::vector<std::pair<bio::TargetId, double>> concs{
      {bio::TargetId::kGlucose, 2.0}, {bio::TargetId::kCholesterol, 0.045}};
  for (auto _ : state) {
    const sim::PanelScanResult scan = platform.scan(concs);
    benchmark::DoNotOptimize(scan.total_time);
  }
  state.SetLabel("five-electrode multiplexed scan (~330 s simulated)");
}
BENCHMARK(bm_panel_scan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_biointerface();
  print_panel_validation();
  print_scan_timeline();
  return idp::bench::run_benchmarks(argc, argv);
}
