/// \file bench_common.hpp
/// Shared helpers for the reproduction benches: each bench binary first
/// prints the paper-shaped table/series it regenerates, then runs its
/// google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "afe/frontend.hpp"
#include "sim/engine.hpp"

namespace idp::bench {

/// Lab-grade acquisition chain (pA-class bench instrument): used whenever a
/// bench reproduces *literature* characterisation numbers (Table III was
/// measured on lab potentiostats, not the integrated AFE).
inline afe::AnalogFrontEnd lab_frontend(std::uint64_t seed = 7) {
  afe::AfeConfig c;
  c.tia = afe::lab_grade_tia();
  c.adc = afe::AdcSpec{.bits = 16, .v_low = -10.0, .v_high = 10.0,
                       .sample_rate = 10.0};
  c.seed = seed;
  return afe::AnalogFrontEnd(c);
}

/// Noise-free engine for deterministic shape benches.
inline sim::MeasurementEngine quiet_engine() {
  sim::EngineConfig cfg;
  cfg.sensor_noise = false;
  return sim::MeasurementEngine(cfg);
}

/// Standard bench epilogue: run the registered google-benchmark timings.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// run_benchmarks with a default JSON trajectory output (the BENCH_*.json
/// files CI uploads); an explicit --benchmark_out on the command line wins.
inline int run_benchmarks_with_default_out(int argc, char** argv,
                                           const std::string& default_out) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=" + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  return run_benchmarks(n, args.data());
}

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace idp::bench
