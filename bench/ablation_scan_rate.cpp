/// \file ablation_scan_rate.cpp
/// Ablation A1 -- the Section II-C claim that the electrochemical cell only
/// answers faithfully up to ~20 mV/s: sweeping the dual-target CYP2B4 film
/// faster shifts the quasi-reversible peaks away from their Table II
/// signatures and eventually merges them.
#include <iostream>

#include "bench_common.hpp"
#include "bio/library.hpp"
#include "dsp/peaks.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;

struct RateResult {
  double e_benz = 0.0;
  double e_amino = 0.0;
  int peaks_found = 0;
};

RateResult sweep_at(double scan_rate) {
  const bio::TargetId ids[] = {bio::TargetId::kBenzphetamine,
                               bio::TargetId::kAminopyrine};
  bio::ProbePtr probe = bio::make_cyp_probe(ids);
  probe->set_bulk_concentration("benzphetamine", 0.7);
  probe->set_bulk_concentration("aminopyrine", 4.4);

  sim::MeasurementEngine engine = bench::quiet_engine();
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::CyclicVoltammetryProtocol p;
  p.e_start = 0.1;
  p.e_vertex = -0.75;
  p.scan_rate = scan_rate;
  p.sample_rate = std::max(10.0, 200.0 * scan_rate / 0.02);
  const sim::CvCurve curve =
      engine.run_cyclic_voltammetry(sim::Channel{probe.get(), nullptr}, p, fe);

  dsp::PeakOptions opt;
  opt.min_prominence = 0.5e-9;
  opt.min_separation = 10;
  RateResult out;
  for (const auto& peak : dsp::find_reduction_peaks(curve, opt)) {
    if (std::fabs(peak.position - (-0.25)) < 0.08) {
      out.e_benz = peak.position;
      ++out.peaks_found;
    } else if (std::fabs(peak.position - (-0.40)) < 0.08) {
      out.e_amino = peak.position;
      ++out.peaks_found;
    }
  }
  return out;
}

void print_ablation() {
  bench::banner("A1 -- scan-rate ablation on the dual-target CYP2B4 film "
                "(paper signatures: -250 mV and -400 mV)");
  util::ConsoleTable table({"scan rate (mV/s)", "Ep benz (mV)",
                            "Ep amino (mV)", "separation (mV)",
                            "both resolved"});
  for (double rate_mV : {5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
    const RateResult r = sweep_at(rate_mV * 1e-3);
    const bool both = r.peaks_found >= 2;
    table.add_row(
        {util::format_fixed(rate_mV, 0),
         both || r.e_benz != 0.0
             ? util::format_fixed(util::potential_to_mV(r.e_benz), 0)
             : "lost",
         both || r.e_amino != 0.0
             ? util::format_fixed(util::potential_to_mV(r.e_amino), 0)
             : "lost",
         both ? util::format_fixed(
                    util::potential_to_mV(r.e_benz - r.e_amino), 0)
              : "--",
         both ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nAt <= 20 mV/s the two signatures sit at their Table II "
               "potentials; faster sweeps shift the quasi-reversible waves "
               "cathodically and degrade target identification -- the "
               "paper's rationale for the 20 mV/s limit.\n";
}

void bm_sweep(benchmark::State& state) {
  for (auto _ : state) {
    const RateResult r = sweep_at(0.02);
    benchmark::DoNotOptimize(r.peaks_found);
  }
}
BENCHMARK(bm_sweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  return idp::bench::run_benchmarks(argc, argv);
}
