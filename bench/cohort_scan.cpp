/// \file cohort_scan.cpp
/// Cohort-scan performance trajectory: throughput of the longitudinal
/// scenario engine (patients x timepoints x channels quantified panel
/// measurements) at several parallelism levels, plus the calibration
/// campaign build. Writes google-benchmark JSON to BENCH_cohort.json
/// (override with --benchmark_out=...) so successive PRs accumulate a
/// comparable cohort-workload measurement.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "scenario/longitudinal.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace idp;

quant::CampaignConfig bench_campaign() {
  quant::CampaignConfig config;
  config.calibration_points = 4;
  config.blank_measurements = 4;
  config.ca_duration_s = 10.0;
  return config;
}

std::vector<scenario::AnalytePlan> bench_plans() {
  // Two chronoamperometric metabolite channels: the cohort sweep is then
  // purely CPU-bound chemistry, the honest scaling measurement.
  scenario::AnalytePlan glucose;
  glucose.target = bio::TargetId::kGlucose;
  glucose.pk.volume_of_distribution_l = 15.0;
  glucose.pk.elimination_half_life_h = 1.5;
  glucose.pk.absorption_half_life_h = 0.4;
  glucose.pk.bioavailability = 0.8;
  glucose.pk.molar_mass_g_per_mol = 180.2;
  glucose.regimen =
      scenario::repeated_regimen(0.5, 6.0, 2, 6000.0, scenario::Route::kOral);
  glucose.baseline_mM = 1.2;

  scenario::AnalytePlan lactate;
  lactate.target = bio::TargetId::kLactate;
  lactate.pk.volume_of_distribution_l = 30.0;
  lactate.pk.elimination_half_life_h = 0.8;
  lactate.pk.absorption_half_life_h = 0.2;
  lactate.pk.bioavailability = 1.0;
  lactate.pk.molar_mass_g_per_mol = 90.1;
  lactate.regimen = {scenario::DoseEvent{1.0, 4000.0,
                                         scenario::Route::kIvBolus}};
  lactate.baseline_mM = 0.8;
  return {glucose, lactate};
}

/// Cohort scan at a given parallelism: 6 patients x 4 timepoints x 2
/// channels = 48 quantified measurements per iteration. The calibration
/// store is pre-built (campaigns are a one-time cost measured separately).
void BM_CohortScan(benchmark::State& state) {
  static const std::vector<scenario::AnalytePlan> plans = bench_plans();
  static quant::CalibrationStore store(bench_campaign());
  // Build the campaigns up front so the timed loop measures only scans
  // (the one-time campaign cost has its own benchmark below).
  static const bool campaigns_built = [] {
    for (const scenario::AnalytePlan& plan : plans) {
      (void)store.quantifier(plan.target);
    }
    return true;
  }();
  (void)campaigns_built;
  static const std::vector<scenario::VirtualPatient> cohort = [] {
    scenario::CohortSpec spec;
    spec.patients = 6;
    spec.seed = 7;
    return scenario::generate_cohort(spec, plans);
  }();

  scenario::LongitudinalConfig config;
  config.sample_times_h = {0.0, 1.0, 2.5, 6.5};
  config.engine_seed = 99;
  config.parallelism = static_cast<std::size_t>(state.range(0));
  const scenario::LongitudinalRunner runner(store, config);

  std::size_t samples = 0;
  for (auto _ : state) {
    const scenario::CohortReport report = runner.run(plans, cohort);
    samples += report.sample_count();
    benchmark::DoNotOptimize(report.patients.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.SetLabel("6 patients x 4 timepoints x 2 channels");
}
BENCHMARK(BM_CohortScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->ArgName("parallelism")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// One-time cost the scans amortise: a full campaign (blanks +
/// concentration sweep + fit + inversion) for one oxidase target.
void BM_CalibrationCampaign(benchmark::State& state) {
  for (auto _ : state) {
    quant::CalibrationStore store(bench_campaign());
    benchmark::DoNotOptimize(&store.quantifier(bio::TargetId::kGlucose));
  }
  state.SetLabel("4 blanks + 4 points x 10 s virtual measurements");
}
BENCHMARK(BM_CalibrationCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("hardware threads: %zu\n",
              idp::util::ThreadPool::default_parallelism());
  // CI uploads BENCH_cohort.json next to BENCH_hot_path.json.
  return idp::bench::run_benchmarks_with_default_out(argc, argv,
                                                     "BENCH_cohort.json");
}
