/// \file table1_oxidases.cpp
/// Reproduces Table I: the four oxidase biosensors and their applied
/// potentials. For each row we build the calibrated probe, verify that the
/// H2O2-mediated current switches on at the recommended potential (signal
/// at E_applied >> signal a quarter volt below it, where the H2O2
/// oxidation kinetics shut off) and is near its plateau (further
/// overpotential gains < 15%).
#include <iostream>

#include "bench_common.hpp"
#include "bio/library.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;
using namespace idp::util::literals;

/// Steady chronoamperometric current at 1 mM via the quiet engine.
double steady_current(bio::Probe& probe, const std::string& target,
                      double potential) {
  sim::MeasurementEngine engine = bench::quiet_engine();
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  probe.set_bulk_concentration(target, 1.0);
  sim::ChronoamperometryProtocol p;
  p.potential = potential;
  p.duration = 60.0;
  const sim::Trace t =
      engine.run_chronoamperometry(sim::Channel{&probe, nullptr}, p, fe);
  return t.mean_in_window(50.0, 60.0) - probe.blank_current();
}

void print_table1() {
  bench::banner("Table I -- oxidases used to develop biosensors");
  util::ConsoleTable table({"Oxidase species", "Target", "Applied (paper)",
                            "i @ E_app (nA)", "i @ E-250mV (nA)",
                            "i @ E+100mV (nA)", "onset OK", "plateau OK"});
  for (const auto& row : bio::table1_oxidases()) {
    bio::ProbePtr probe = bio::make_table1_probe(row);
    const std::string target = bio::to_string(row.target);
    const double i_on = steady_current(*probe, target, row.applied_potential);
    const double i_low =
        steady_current(*probe, target, row.applied_potential - 0.25);
    const double i_high =
        steady_current(*probe, target, row.applied_potential + 0.10);
    const bool onset_ok = i_on > 5.0 * std::max(i_low, 1e-12);
    const bool plateau_ok = i_high < 1.15 * i_on;
    table.add_row({row.oxidase, target,
                   util::format_fixed(util::potential_to_mV(
                                          row.applied_potential), 0) + " mV",
                   util::format_fixed(util::current_to_nA(i_on), 1),
                   util::format_fixed(util::current_to_nA(i_low), 1),
                   util::format_fixed(util::current_to_nA(i_high), 1),
                   onset_ok ? "yes" : "NO", plateau_ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nShape check: every oxidase turns on at its Table I "
               "potential and sits on the H2O2 oxidation plateau there.\n";
}

void bm_glucose_chronoamperometry(benchmark::State& state) {
  bio::ProbePtr probe = bio::make_probe(bio::TargetId::kGlucose);
  probe->set_bulk_concentration("glucose", 2.0);
  sim::MeasurementEngine engine = bench::quiet_engine();
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 60.0;
  for (auto _ : state) {
    const sim::Trace t =
        engine.run_chronoamperometry(sim::Channel{probe.get(), nullptr}, p, fe);
    benchmark::DoNotOptimize(t.value().back());
  }
  state.SetLabel("60 s chronoamperometry, 5 ms physics step");
}
BENCHMARK(bm_glucose_chronoamperometry)->Unit(benchmark::kMillisecond);

void bm_probe_construction(benchmark::State& state) {
  for (auto _ : state) {
    bio::ProbePtr probe = bio::make_probe(bio::TargetId::kGlucose);
    benchmark::DoNotOptimize(probe.get());
  }
  state.SetLabel("includes secant auto-calibration of vmax");
}
BENCHMARK(bm_probe_construction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  return idp::bench::run_benchmarks(argc, argv);
}
