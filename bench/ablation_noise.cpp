/// \file ablation_noise.cpp
/// Ablation A3 -- Section II-C's flicker-noise countermeasures: LOD of the
/// glucose channel through the integrated AFE with {raw, chopper, CDS,
/// chopper+CDS}, plus the paper's caveat that a blank working electrode
/// subtracts the *signal* of directly electroactive targets (etoposide).
#include <iostream>

#include "bench_common.hpp"
#include "bio/library.hpp"
#include "dsp/calibration.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;
using namespace idp::util::literals;

struct NoiseVariant {
  const char* name;
  bool chopper;
  bool cds;
};

/// Glucose calibration through the integrated oxidase-grade AFE.
dsp::CalibrationCurve calibrate_glucose(const NoiseVariant& variant,
                                        std::uint64_t seed) {
  bio::ProbePtr probe = bio::make_probe(bio::TargetId::kGlucose);
  sim::EngineConfig cfg;
  cfg.seed = seed;
  sim::MeasurementEngine engine(cfg);
  afe::AfeConfig fe_cfg;
  fe_cfg.tia = afe::oxidase_class_tia();
  fe_cfg.adc = afe::AdcSpec{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                            .sample_rate = 10.0};
  fe_cfg.reduction.chopper = variant.chopper;
  fe_cfg.reduction.cds = variant.cds;
  fe_cfg.seed = seed * 13 + 7;
  afe::AnalogFrontEnd fe(fe_cfg);

  sim::ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 60.0;
  auto response = [&](double c) {
    probe->set_bulk_concentration("glucose", c);
    const sim::Trace t =
        engine.run_chronoamperometry(sim::Channel{probe.get(), nullptr}, p, fe);
    return t.mean_in_window(48.0, 60.0);
  };
  dsp::CalibrationCurve curve;
  for (int b = 0; b < 8; ++b) curve.add_blank(response(0.0));
  for (double c : {0.5, 1.5, 2.5, 4.0}) curve.add_point(c, response(c));
  return curve;
}

void print_lod_table() {
  bench::banner("A3 -- glucose LOD through the integrated AFE vs noise "
                "countermeasure (paper Table III LOD: 575 uM)");
  const NoiseVariant variants[] = {
      {"raw", false, false},
      {"chopper", true, false},
      {"CDS (blank WE)", false, true},
      {"chopper + CDS", true, true},
  };
  util::ConsoleTable table({"readout variant", "blank sigma (nA)",
                            "LOD (uM)", "vs raw"});
  double raw_lod = 0.0;
  for (const NoiseVariant& v : variants) {
    const dsp::CalibrationCurve curve = calibrate_glucose(v, 2026);
    const double lod = util::concentration_to_uM(curve.lod_concentration());
    if (raw_lod == 0.0) raw_lod = lod;
    table.add_row({v.name,
                   util::format_fixed(
                       util::current_to_nA(curve.blank_sigma()), 2),
                   util::format_fixed(lod, 0),
                   util::format_fixed(lod / raw_lod, 2)});
  }
  table.print(std::cout);
  std::cout << "\nChopping removes amplifier flicker; CDS removes the "
               "correlated solution drift; combined they approach the "
               "white-noise floor.\n";
}

void print_direct_oxidizer_caveat() {
  bench::banner("A3 -- the Section II-C caveat: CDS vs a directly "
                "electroactive target (etoposide)");
  util::ConsoleTable table({"variant", "etoposide slope (uA/(mM cm^2))",
                            "signal retained"});
  double slope_raw = 0.0;
  for (const NoiseVariant v :
       {NoiseVariant{"raw", false, false}, NoiseVariant{"CDS", false, true}}) {
    bio::ProbePtr probe = bio::make_probe(bio::TargetId::kEtoposide);
    sim::EngineConfig cfg;
    cfg.seed = 11;
    sim::MeasurementEngine engine(cfg);
    afe::AfeConfig fe_cfg;
    fe_cfg.tia = afe::oxidase_class_tia();
    fe_cfg.adc = afe::AdcSpec{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                              .sample_rate = 10.0};
    fe_cfg.reduction.cds = v.cds;
    afe::AnalogFrontEnd fe(fe_cfg);
    sim::ChronoamperometryProtocol p;
    p.potential = 0.80;
    p.duration = 40.0;
    auto response = [&](double c) {
      probe->set_bulk_concentration("etoposide", c);
      const sim::Trace t = engine.run_chronoamperometry(
          sim::Channel{probe.get(), nullptr}, p, fe);
      return t.mean_in_window(32.0, 40.0);
    };
    const double slope = (response(0.08) - response(0.01)) / 0.07;
    if (slope_raw == 0.0) slope_raw = slope;
    table.add_row(
        {v.name,
         util::format_sig(
             util::sensitivity_to_uA_per_mM_cm2(slope / probe->area()), 3),
         util::format_fixed(100.0 * slope / slope_raw, 0) + " %"});
  }
  table.print(std::cout);
  std::cout << "\nThe blank electrode oxidises etoposide too, so CDS "
               "subtracts ~90% of the signal -- \"the extra WE is not "
               "helpful\" for such molecules, exactly as the paper warns.\n";
}

void bm_noise_calibration(benchmark::State& state) {
  for (auto _ : state) {
    const dsp::CalibrationCurve c =
        calibrate_glucose(NoiseVariant{"raw", false, false}, 1);
    benchmark::DoNotOptimize(c.blank_sigma());
  }
  state.SetLabel("8 blanks + 4 points, 60 s each");
}
BENCHMARK(bm_noise_calibration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_lod_table();
  print_direct_oxidizer_caveat();
  return idp::bench::run_benchmarks(argc, argv);
}
