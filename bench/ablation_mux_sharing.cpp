/// \file ablation_mux_sharing.cpp
/// Ablation A4 -- Section II-A's resource-sharing discussion (and De Venuto
/// et al. [23]): multiplexing one readout across the working electrodes
/// saves silicon and power at the cost of a serial panel time. Sweeps the
/// panel width and prints both corners, then shows the explorer's Pareto
/// front for the Fig. 4 panel.
#include <iostream>

#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

namespace {

using namespace idp;

plat::PanelSpec oxidase_panel(std::size_t n) {
  // A widening panel of chronoamperometric channels (glucose/lactate/
  // glutamate cycled) to isolate the sharing trade-off.
  const bio::TargetId pool[] = {bio::TargetId::kGlucose,
                                bio::TargetId::kLactate,
                                bio::TargetId::kGlutamate};
  plat::PanelSpec panel;
  panel.name = "sharing-sweep";
  for (std::size_t i = 0; i < n; ++i) {
    panel.targets.push_back(
        plat::TargetRequirement{.target = pool[i % 3]});
  }
  return panel;
}

void print_sharing_sweep() {
  bench::banner("A4 -- dedicated vs muxed readout as the panel widens");
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  util::ConsoleTable table({"WEs", "dedicated area (mm^2)",
                            "muxed area (mm^2)", "dedicated power (uW)",
                            "muxed power (uW)", "dedicated time (s)",
                            "muxed time (s)"});
  for (std::size_t n : {2u, 4u, 6u, 8u}) {
    const plat::PanelSpec panel = oxidase_panel(n);
    plat::PlatformCandidate cand;
    for (std::size_t i = 0; i < n; ++i) {
      plat::WorkingElectrodePlan plan;
      plan.targets = {panel.targets[i].target};
      plan.technique = bio::Technique::kChronoamperometry;
      plan.readout = plat::ReadoutClass::kOxidaseGrade;
      cand.electrodes.push_back(plan);
    }
    cand.sharing = plat::ReadoutSharing::kDedicatedPerElectrode;
    const plat::CostEstimate ded = estimate_cost(cand, panel, cat);
    cand.sharing = plat::ReadoutSharing::kMuxedPerClass;
    const plat::CostEstimate mux = estimate_cost(cand, panel, cat);
    table.add_row({std::to_string(n), util::format_fixed(ded.area_mm2, 2),
                   util::format_fixed(mux.area_mm2, 2),
                   util::format_fixed(ded.power_uw, 0),
                   util::format_fixed(mux.power_uw, 0),
                   util::format_fixed(ded.panel_time_s, 0),
                   util::format_fixed(mux.panel_time_s, 0)});
  }
  table.print(std::cout);
  std::cout << "\nThe electronics saving grows linearly with the panel "
               "while the muxed panel time grows linearly too -- the "
               "crossover is a user-weighted choice, which is exactly what "
               "the explorer's Pareto front exposes:\n";
}

void print_fig4_front() {
  bench::banner("A4 -- explorer Pareto front for the Fig. 4 panel");
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  const plat::ExplorationResult result = explore(plat::fig4_panel(), cat);
  // Print only the Pareto front to keep the table readable.
  util::ConsoleTable table({"candidate", "area (mm^2)", "power (uW)",
                            "panel time (s)", "best"});
  for (std::size_t idx : result.pareto) {
    const auto& e = result.evaluations[idx];
    table.add_row({e.candidate.summary(),
                   util::format_fixed(e.cost.area_mm2, 2),
                   util::format_fixed(e.cost.power_uw, 0),
                   util::format_fixed(e.cost.panel_time_s, 0),
                   (result.best && *result.best == idx) ? "<--" : ""});
  }
  table.print(std::cout);
  std::cout << "\n" << result.evaluations.size()
            << " candidates evaluated, " << result.feasible_count()
            << " feasible, " << result.pareto.size()
            << " on the Pareto front.\n";
}

void bm_explore(benchmark::State& state) {
  const plat::ComponentCatalog cat = plat::ComponentCatalog::standard();
  for (auto _ : state) {
    const plat::ExplorationResult result = explore(plat::fig4_panel(), cat);
    benchmark::DoNotOptimize(result.feasible_count());
  }
  state.SetLabel("full design-space enumeration + DRC + costing");
}
BENCHMARK(bm_explore)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sharing_sweep();
  print_fig4_front();
  return idp::bench::run_benchmarks(argc, argv);
}
