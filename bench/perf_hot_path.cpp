/// \file perf_hot_path.cpp
/// Hot-path performance trajectory bench: times the tridiagonal solver
/// kernel (scalar and SoA lane-batched), a single diffusion-field step,
/// single-channel CA/CV runs, the multiplexed panel scan at several
/// (parallelism, lane width) points and a full design-space exploration.
/// Writes google-benchmark JSON to
/// BENCH_hot_path.json (override with --benchmark_out=...) so successive
/// PRs accumulate a measurable performance history.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "afe/frontend.hpp"
#include "afe/mux.hpp"
#include "bench_common.hpp"
#include "bio/library.hpp"
#include "chem/diffusion.hpp"
#include "chem/grid.hpp"
#include "chem/tridiag.hpp"
#include "core/explorer.hpp"
#include "core/panel.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace idp;

// ---------------------------------------------------------------- kernels

void BM_TridiagSolveAlloc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> lower(n, -1.0), diag(n, 4.0), upper(n, -1.0), rhs(n, 1.0);
  lower[0] = upper[n - 1] = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chem::solve_tridiagonal(lower, diag, upper, rhs));
  }
}
BENCHMARK(BM_TridiagSolveAlloc)->Arg(64)->Arg(301);

void BM_TridiagSolveInplace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> lower(n, -1.0), diag(n, 4.0), upper(n, -1.0), rhs(n, 1.0);
  std::vector<double> scratch(n), out(n);
  lower[0] = upper[n - 1] = 0.0;
  for (auto _ : state) {
    chem::solve_tridiagonal_inplace(lower, diag, upper, rhs, scratch, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TridiagSolveInplace)->Arg(64)->Arg(301);

/// The SoA lane-batched Thomas sweep at n=64 nodes: per-system cost should
/// fall as the lane loop vectorizes (items_processed reports systems/sec,
/// so lanes:1 vs lanes:8 compares like-for-like).
void BM_TridiagSolveBatched(benchmark::State& state) {
  const std::size_t n = 64;
  const auto lanes = static_cast<std::size_t>(state.range(0));
  std::vector<double> lower(n * lanes, -1.0), diag(n * lanes, 4.0),
      upper(n * lanes, -1.0), rhs(n * lanes, 1.0);
  std::vector<double> scratch(n * lanes), out(n * lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    lower[l] = upper[(n - 1) * lanes + l] = 0.0;
  }
  for (auto _ : state) {
    chem::solve_tridiagonal_batched(n, lanes, lower, diag, upper, rhs, scratch,
                                    out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_TridiagSolveBatched)->Arg(1)->Arg(4)->Arg(8)->ArgName("lanes");

void BM_DiffusionFieldStep(benchmark::State& state) {
  chem::Grid1D grid = chem::Grid1D::membrane_bulk(50e-6, 26, 1.18, 60e-6);
  chem::DiffusionField field(grid, 1.0e-9, 1.0);
  field.set_bulk_concentration(1.0);
  field.set_electrode_rate(1.0e-5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.step(5.0e-3));
  }
}
BENCHMARK(BM_DiffusionFieldStep);

// ------------------------------------------------------- single channels

void BM_SingleChannelCA(benchmark::State& state) {
  static bio::ProbePtr probe = [] {
    auto p = bio::make_probe(bio::TargetId::kGlucose);
    p->set_bulk_concentration("glucose", 2.0);
    return p;
  }();
  sim::MeasurementEngine engine{sim::EngineConfig{}};
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::ChronoamperometryProtocol p;
  p.potential = 0.55;
  p.duration = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_chronoamperometry(
        sim::Channel{probe.get(), nullptr}, p, fe));
  }
}
BENCHMARK(BM_SingleChannelCA);

void BM_SingleChannelCV(benchmark::State& state) {
  static bio::ProbePtr probe = [] {
    auto p = bio::make_probe(bio::TargetId::kCholesterol);
    p->set_bulk_concentration("cholesterol", 0.045);
    return p;
  }();
  sim::MeasurementEngine engine{sim::EngineConfig{}};
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::CyclicVoltammetryProtocol p;
  p.e_start = 0.1;
  p.e_vertex = -0.65;
  p.scan_rate = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_cyclic_voltammetry(
        sim::Channel{probe.get(), nullptr}, p, fe));
  }
}
BENCHMARK(BM_SingleChannelCV);

// ----------------------------------------------------------- panel scan

/// The batched-kernel panel: eight oxidase CA channels (distinct probe
/// instances so parallel runs never share mutable state) that the engine
/// gathers into SoA lane groups. Probes are calibrated once and shared
/// across iterations (every run resets probe state before stepping).
struct OxidasePanelProbes {
  std::vector<bio::ProbePtr> probes;
  OxidasePanelProbes() {
    const bio::TargetId ids[] = {
        bio::TargetId::kGlucose,   bio::TargetId::kLactate,
        bio::TargetId::kGlutamate, bio::TargetId::kGlucose,
        bio::TargetId::kLactate,   bio::TargetId::kGlutamate,
        bio::TargetId::kGlucose,   bio::TargetId::kLactate};
    for (bio::TargetId id : ids) {
      probes.push_back(bio::make_probe(id));
    }
    probes[0]->set_bulk_concentration("glucose", 2.0);
    probes[1]->set_bulk_concentration("lactate", 1.0);
    probes[2]->set_bulk_concentration("glutamate", 0.1);
    probes[3]->set_bulk_concentration("glucose", 1.4);
    probes[4]->set_bulk_concentration("lactate", 0.6);
    probes[5]->set_bulk_concentration("glutamate", 0.05);
    probes[6]->set_bulk_concentration("glucose", 0.8);
    probes[7]->set_bulk_concentration("lactate", 1.8);
  }
};

/// Eight-channel CA panel at (parallelism, lane width). lanes=1 is the
/// pre-batching scalar path; lanes=4/8 step that many channels in lockstep
/// through the SoA tridiagonal solve. The lanes:1 vs lanes:8 ratio at
/// parallelism 1 is the headline batched-kernel speedup tracked in
/// bench/baselines/BENCH_hot_path.json.
void BM_PanelScan(benchmark::State& state) {
  static OxidasePanelProbes fixture;
  const auto parallelism = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));

  std::vector<sim::Channel> channels;
  std::vector<sim::ChannelProtocol> protocols;
  std::vector<std::unique_ptr<afe::AnalogFrontEnd>> fes;
  std::vector<afe::AnalogFrontEnd*> fe_ptrs;
  sim::ChronoamperometryProtocol ca;
  ca.potential = 0.55;
  ca.duration = 20.0;
  for (std::size_t i = 0; i < fixture.probes.size(); ++i) {
    channels.push_back(sim::Channel{fixture.probes[i].get(), nullptr});
    protocols.emplace_back(ca);
    fes.push_back(std::make_unique<afe::AnalogFrontEnd>(
        bench::lab_frontend(10 + i).config()));
    fe_ptrs.push_back(fes.back().get());
  }

  sim::EngineConfig cfg;
  cfg.batch_lanes = lanes;
  sim::MeasurementEngine engine{cfg};
  for (auto _ : state) {
    afe::AnalogMux mux(afe::MuxSpec{});
    benchmark::DoNotOptimize(
        engine.run_panel(channels, protocols, fe_ptrs, mux, parallelism));
  }
}
BENCHMARK(BM_PanelScan)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({0, 1})
    ->Args({0, 8})
    ->ArgNames({"parallelism", "lanes"})
    ->UseRealTime();  // wall-clock is the honest metric for parallel runs

/// The Fig. 4 style mixed panel: three oxidase CA channels + two CYP/direct
/// CV channels, at the default (auto) lane width -- the production shape,
/// where the engine batches what it can and runs the rest scalar.
struct MixedPanelProbes {
  std::vector<bio::ProbePtr> probes;
  MixedPanelProbes() {
    probes.push_back(bio::make_probe(bio::TargetId::kGlucose));
    probes.push_back(bio::make_probe(bio::TargetId::kLactate));
    probes.push_back(bio::make_probe(bio::TargetId::kGlutamate));
    probes.push_back(bio::make_probe(bio::TargetId::kCholesterol));
    probes.push_back(bio::make_probe(bio::TargetId::kDopamine));
    probes[0]->set_bulk_concentration("glucose", 2.0);
    probes[1]->set_bulk_concentration("lactate", 1.0);
    probes[2]->set_bulk_concentration("glutamate", 0.1);
    probes[3]->set_bulk_concentration("cholesterol", 0.045);
    probes[4]->set_bulk_concentration("dopamine", 0.001);
  }
};

void BM_MixedPanelScan(benchmark::State& state) {
  static MixedPanelProbes fixture;
  const auto parallelism = static_cast<std::size_t>(state.range(0));

  std::vector<sim::Channel> channels;
  std::vector<sim::ChannelProtocol> protocols;
  std::vector<std::unique_ptr<afe::AnalogFrontEnd>> fes;
  std::vector<afe::AnalogFrontEnd*> fe_ptrs;
  sim::ChronoamperometryProtocol ca;
  ca.potential = 0.55;
  ca.duration = 20.0;
  sim::CyclicVoltammetryProtocol cv;
  cv.e_start = 0.1;
  cv.e_vertex = -0.65;
  cv.scan_rate = 0.02;
  for (std::size_t i = 0; i < fixture.probes.size(); ++i) {
    channels.push_back(sim::Channel{fixture.probes[i].get(), nullptr});
    if (fixture.probes[i]->technique() == bio::Technique::kChronoamperometry) {
      protocols.emplace_back(ca);
    } else {
      protocols.emplace_back(cv);
    }
    fes.push_back(std::make_unique<afe::AnalogFrontEnd>(
        bench::lab_frontend(10 + i).config()));
    fe_ptrs.push_back(fes.back().get());
  }

  sim::MeasurementEngine engine{sim::EngineConfig{}};
  for (auto _ : state) {
    afe::AnalogMux mux(afe::MuxSpec{});
    benchmark::DoNotOptimize(
        engine.run_panel(channels, protocols, fe_ptrs, mux, parallelism));
  }
}
BENCHMARK(BM_MixedPanelScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->ArgName("parallelism")
    ->UseRealTime();

// ------------------------------------------------------------- explorer

void BM_ExplorerEvaluate(benchmark::State& state) {
  const plat::PanelSpec panel = plat::fig4_panel();
  const plat::ComponentCatalog catalog = plat::ComponentCatalog::standard();
  plat::ExplorerOptions options;
  options.parallelism = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plat::explore(panel, catalog, options));
  }
}
BENCHMARK(BM_ExplorerEvaluate)->Arg(1)->Arg(0)->ArgName("parallelism")->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::printf("hardware threads: %zu\n",
              idp::util::ThreadPool::default_parallelism());
  // CI uploads BENCH_hot_path.json as the measurement baseline.
  return idp::bench::run_benchmarks_with_default_out(argc, argv,
                                                     "BENCH_hot_path.json");
}
