/// \file table2_cyps.cpp
/// Reproduces Table II: the eleven CYP/drug couples and their reduction
/// potentials. For each row we build the calibrated CYP film, run a 20 mV/s
/// cyclic voltammogram with the drug at its mid-range concentration and
/// recover the cathodic peak position -- the paper's "electrochemical
/// signature" -- which must land within ~30 mV of the published value.
#include <iostream>

#include <algorithm>

#include "bench_common.hpp"
#include "bio/library.hpp"
#include "dsp/peaks.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace idp;
using namespace idp::util::literals;

struct PeakResult {
  double position = 0.0;
  bool found = false;
};

PeakResult measure_peak(bio::TargetId id) {
  const bio::TargetSpec& spec = bio::spec(id);
  bio::ProbePtr probe = bio::make_probe(id);
  // Identify the signature at the low end of the linear range: there the
  // surface (heme) wave -- which sits exactly at the Table II potential --
  // dominates over the catalytic wave, whose apex shifts cathodically with
  // turnover. This mirrors how signatures are assigned in practice.
  probe->set_bulk_concentration(bio::to_string(id),
                                std::min(spec.linear_lo_mM, 0.2));

  sim::MeasurementEngine engine = bench::quiet_engine();
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::CyclicVoltammetryProtocol p;
  p.e_start = spec.operating_potential + 0.30;
  p.e_vertex = spec.operating_potential - 0.30;
  p.scan_rate = 20_mV_per_s;
  const sim::CvCurve curve =
      engine.run_cyclic_voltammetry(sim::Channel{probe.get(), nullptr}, p, fe);

  dsp::PeakOptions opt;
  opt.min_prominence = 0.3e-9;
  PeakResult out;
  double best_distance = 1e9;
  for (const auto& peak : dsp::find_reduction_peaks(curve, opt)) {
    const double d = std::fabs(peak.position - spec.operating_potential);
    if (d < best_distance) {
      best_distance = d;
      out.position = peak.position;
      out.found = true;
    }
  }
  return out;
}

void print_table2() {
  bench::banner(
      "Table II -- cytochrome P450 biosensors and reduction potentials");
  util::ConsoleTable table({"CYP species", "Target drug", "E_red paper (mV)",
                            "E_peak measured (mV)", "delta (mV)", "within "
                            "30 mV"});
  int ok_count = 0;
  for (const auto& row : bio::table2_cyps()) {
    const PeakResult peak = measure_peak(row.target);
    const double paper_mV = util::potential_to_mV(row.reduction_potential);
    const double meas_mV =
        peak.found ? util::potential_to_mV(peak.position) : 0.0;
    const double delta = meas_mV - paper_mV;
    const bool ok = peak.found && std::fabs(delta) <= 30.0;
    ok_count += ok ? 1 : 0;
    table.add_row({row.isoform, bio::to_string(row.target),
                   util::format_fixed(paper_mV, 0),
                   peak.found ? util::format_fixed(meas_mV, 0) : "none",
                   peak.found ? util::format_fixed(delta, 0) : "--",
                   ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n" << ok_count << "/11 reduction potentials recovered "
            << "within 30 mV of the paper's Table II values.\n";
}

void bm_cyp_cv(benchmark::State& state) {
  bio::ProbePtr probe = bio::make_probe(bio::TargetId::kCholesterol);
  probe->set_bulk_concentration("cholesterol", 0.045);
  sim::MeasurementEngine engine = bench::quiet_engine();
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::CyclicVoltammetryProtocol p;
  p.e_start = -0.1;
  p.e_vertex = -0.7;
  p.scan_rate = 20_mV_per_s;
  for (auto _ : state) {
    const sim::CvCurve curve = engine.run_cyclic_voltammetry(
        sim::Channel{probe.get(), nullptr}, p, fe);
    benchmark::DoNotOptimize(curve.size());
  }
  state.SetLabel("60 s CV sweep, 5 ms physics step");
}
BENCHMARK(bm_cyp_cv)->Unit(benchmark::kMillisecond);

void bm_peak_detection(benchmark::State& state) {
  bio::ProbePtr probe = bio::make_probe(bio::TargetId::kCholesterol);
  probe->set_bulk_concentration("cholesterol", 0.045);
  sim::MeasurementEngine engine = bench::quiet_engine();
  afe::AnalogFrontEnd fe = bench::lab_frontend();
  sim::CyclicVoltammetryProtocol p;
  p.e_start = -0.1;
  p.e_vertex = -0.7;
  p.scan_rate = 20_mV_per_s;
  const sim::CvCurve curve =
      engine.run_cyclic_voltammetry(sim::Channel{probe.get(), nullptr}, p, fe);
  dsp::PeakOptions opt;
  opt.min_prominence = 0.3e-9;
  for (auto _ : state) {
    const auto peaks = dsp::find_reduction_peaks(curve, opt);
    benchmark::DoNotOptimize(peaks.size());
  }
}
BENCHMARK(bm_peak_detection)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  return idp::bench::run_benchmarks(argc, argv);
}
