/// \file cohort.cpp
/// Seeded virtual-patient cohort generation.

#include "scenario/cohort.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/random.hpp"

namespace idp::scenario {

namespace {

/// Lognormal multiplier with sigma `jitter` (1.0 when jitter is disabled).
double jitter_factor(util::Rng& rng, double jitter) {
  if (jitter <= 0.0) return 1.0;
  return std::exp(rng.gaussian(jitter));
}

}  // namespace

double VirtualPatient::true_concentration_mM(const AnalytePlan& plan,
                                             std::size_t analyte,
                                             double t_h) const {
  const PatientAnalyte& pa = analytes.at(analyte);
  return pa.baseline_mM + pa.model.concentration_mM(plan.regimen, t_h);
}

std::vector<VirtualPatient> generate_cohort(
    const CohortSpec& spec, std::span<const AnalytePlan> plans) {
  util::require(!plans.empty(), "cohort needs at least one analyte plan");
  util::require(plans.size() <= kMaxAnalytesPerPatient,
                "more analyte plans than the seed-packing scheme supports");
  util::require(spec.patients >= 1, "cohort needs at least one patient");

  std::vector<VirtualPatient> cohort;
  cohort.reserve(spec.patients);
  for (std::size_t p = 0; p < spec.patients; ++p) {
    VirtualPatient patient;
    patient.id = p;
    patient.analytes.reserve(plans.size());
    for (std::size_t a = 0; a < plans.size(); ++a) {
      // Seed depends on (cohort seed, patient, analyte) only, so cohorts
      // are extendable and analyte order is immaterial to other analytes.
      util::Rng rng(spec.seed +
                    (p * kMaxAnalytesPerPatient + a + 1) * kScenarioSeedStride);

      PkParameters pk = plans[a].pk;
      const double v_scale = jitter_factor(rng, spec.volume_jitter);
      pk.volume_of_distribution_l *= v_scale;
      if (pk.peripheral_volume_l > 0.0) pk.peripheral_volume_l *= v_scale;
      pk.elimination_half_life_h *= jitter_factor(rng, spec.clearance_jitter);
      pk.absorption_half_life_h *= jitter_factor(rng, spec.absorption_jitter);
      pk.bioavailability = std::min(
          1.0, pk.bioavailability * jitter_factor(rng, spec.bioavailability_jitter));

      PatientAnalyte pa{PkModel(pk),
                        plans[a].baseline_mM * jitter_factor(rng, spec.baseline_jitter)};
      patient.analytes.push_back(std::move(pa));
    }
    cohort.push_back(std::move(patient));
  }
  return cohort;
}

}  // namespace idp::scenario
