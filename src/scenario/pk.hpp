/// \file pk.hpp
/// Pharmacokinetic dosing models: the time-varying analyte concentrations a
/// longitudinal diagnostic workflow actually sees. Closed-form one- and
/// two-compartment models (IV bolus and first-order oral absorption) are
/// superposed over a dosing regimen, so evaluation at any time is exact,
/// cheap and trivially deterministic -- no ODE integration in the scenario
/// hot path.
#pragma once

#include <span>
#include <vector>

namespace idp::scenario {

/// How a dose enters the body.
enum class Route {
  kIvBolus,  ///< instantaneous appearance in the central compartment
  kOral,     ///< first-order absorption with bioavailability F
};

/// One administration event.
struct DoseEvent {
  double time_h = 0.0;   ///< [h] on the scenario timeline
  double dose_mg = 0.0;  ///< administered mass [mg]
  Route route = Route::kOral;
};

/// A dosing schedule (kept sorted by time by the helpers; evaluation
/// tolerates any order).
using Regimen = std::vector<DoseEvent>;

/// `count` equal doses every `interval_h` hours starting at `first_time_h`.
Regimen repeated_regimen(double first_time_h, double interval_h, int count,
                         double dose_mg, Route route);

/// Model parameters. Two-compartment disposition is enabled by a positive
/// peripheral volume; otherwise the peripheral terms are ignored.
struct PkParameters {
  double volume_of_distribution_l = 40.0;  ///< central volume V1 [L]
  double elimination_half_life_h = 6.0;    ///< t1/2 of elimination from V1
  double absorption_half_life_h = 0.5;     ///< oral absorption t1/2
  double bioavailability = 0.9;            ///< oral F in (0, 1]
  double peripheral_volume_l = 0.0;        ///< V2 [L]; > 0 => 2-compartment
  double intercompartment_clearance_l_per_h = 0.0;  ///< Q between V1 and V2
  double molar_mass_g_per_mol = 300.0;     ///< converts mg/L -> mM
};

/// Closed-form plasma-concentration model. Rate constants and the
/// two-compartment hybrid exponents are precomputed at construction;
/// concentration queries are const and thread-safe.
class PkModel {
 public:
  PkModel() : PkModel(PkParameters{}) {}
  explicit PkModel(PkParameters params);

  const PkParameters& parameters() const { return params_; }
  bool two_compartment() const { return two_compartment_; }

  /// Hybrid disposition exponents [1/h]: for one-compartment models both
  /// equal the elimination rate constant.
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Central-compartment concentration of a single dose at `t_h` hours
  /// after the *dose* (0 before it) [mg/L].
  double single_dose_mg_per_l(const DoseEvent& dose, double t_h) const;

  /// Superposed concentration of a whole regimen at scenario time `t_h`.
  double concentration_mg_per_l(std::span<const DoseEvent> regimen,
                                double t_h) const;

  /// Same, converted to the platform's concentration unit [mol/m^3 == mM].
  double concentration_mM(std::span<const DoseEvent> regimen,
                          double t_h) const;

 private:
  PkParameters params_;
  bool two_compartment_ = false;
  double ke_ = 0.0;   ///< elimination rate constant k10 [1/h]
  double ka_ = 0.0;   ///< absorption rate constant [1/h]
  double k12_ = 0.0;  ///< central -> peripheral [1/h]
  double k21_ = 0.0;  ///< peripheral -> central [1/h]
  double alpha_ = 0.0;
  double beta_ = 0.0;
};

}  // namespace idp::scenario
