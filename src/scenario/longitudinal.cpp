/// \file longitudinal.cpp
/// Longitudinal scenario engine implementation: deterministic parallel
/// cohort sweep with sensor aging, QC-driven drift detection, adaptive
/// recalibration, per-channel quantification, population aggregation and
/// CSV export.

#include "scenario/longitudinal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "sim/batch.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace idp::scenario {

namespace {

/// Domain tag separating front-end noise seeds from the cohort-jitter
/// seeds, which use the same (patient, channel) packing: with the tag, a
/// user reusing one seed for CohortSpec::seed and engine_seed still gets
/// independent jitter and noise streams.
constexpr std::uint64_t kFrontEndSeedDomain = 0x517cc1b727220a95ULL;
/// QC checks digitise through their *own* front ends (seeded from this
/// domain, same (patient, channel) packing): the diagnostic front end
/// carries a persistent electronic-noise stream that every sample
/// advances, so sharing it would let the QC reads shift the scan noise.
constexpr std::uint64_t kQcFrontEndSeedDomain = 0x6a09e667f3bcc909ULL;

/// Run-id domains for the QC checks and recalibration campaigns. They are
/// disjoint from the diagnostic-scan ids ((p*T + t)*C + c + 1, small) and
/// from the factory-campaign blocks (target * block, small); together with
/// the dedicated QC front ends this is what makes enabling monitoring
/// leave the diagnostic-scan noise streams untouched.
constexpr std::uint64_t kQcRunDomain = 1ULL << 40;
constexpr std::uint64_t kRecalRunDomain = 1ULL << 41;

/// p10/p50/p90 band of an unsorted sample set (one sort, three reads via
/// the shared util::percentiles_of helper).
PercentileBand band_of(std::vector<double>& values) {
  constexpr double kBandQs[] = {0.10, 0.50, 0.90};
  const std::vector<double> ps = util::percentiles_of(values, kBandQs);
  return PercentileBand{ps[0], ps[1], ps[2]};
}

/// Scalar response of one seeded measurement under either protocol.
double measure_response(const sim::MeasurementEngine& engine,
                        std::uint64_t run_id, const sim::Channel& channel,
                        const sim::ChannelProtocol& protocol,
                        afe::AnalogFrontEnd& fe, bio::TargetId target) {
  if (std::holds_alternative<sim::ChronoamperometryProtocol>(protocol)) {
    const auto& proto = std::get<sim::ChronoamperometryProtocol>(protocol);
    const sim::Trace trace =
        engine.run_chronoamperometry_seeded(run_id, channel, proto, fe);
    return quant::panel_response(target, trace, sim::CvCurve{});
  }
  const auto& proto = std::get<sim::CyclicVoltammetryProtocol>(protocol);
  const sim::CvCurve curve =
      engine.run_cyclic_voltammetry_seeded(run_id, channel, proto, fe);
  return quant::panel_response(target, sim::Trace{}, curve);
}

/// Per-channel monitoring state of one patient's sensor: which calibration
/// currently inverts the responses, what the QC checks should read, and the
/// drift statistics accumulated against that expectation.
struct ChannelMonitor {
  const quant::Quantifier* quantifier = nullptr;  ///< active calibration
  quant::Calibration owned;      ///< storage once recalibrated
  quant::DriftDetector detector;
  double qc_concentration = 0.0; ///< the QC kit's standard [mM], fixed
  double expected_blank = 0.0;   ///< predicted blank response
  double expected_qc = 0.0;      ///< predicted QC-standard response
  double sigma = 1.0;            ///< standardisation scale
  double last_recal_h = -std::numeric_limits<double>::infinity();
  std::uint32_t epoch = 0;

  /// Re-derive the QC expectations from the active calibration. The sigma
  /// floor (1 fA -- far below any physical response sigma) keeps the
  /// standardised residuals finite even for a noise-free campaign: a
  /// noiseless calibration then yields an immediately-tripping huge z
  /// instead of an infinity that DriftDetector::observe rejects.
  void rebase() {
    expected_blank = quantifier->blank_mean();
    expected_qc = util::evaluate(quantifier->fit(), qc_concentration);
    sigma = std::max(quantifier->response_sigma(), 1e-15);
  }
};

}  // namespace

std::size_t CohortReport::sample_count() const {
  std::size_t n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const auto& channel : p.channels) n += channel.size();
  }
  return n;
}

std::size_t CohortReport::flag_count(quant::QuantFlag flags) const {
  std::size_t n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const auto& channel : p.channels) {
      for (const ChannelSample& s : channel) {
        if ((s.estimate.flags & flags) != quant::QuantFlag::kNone) ++n;
      }
    }
  }
  return n;
}

double CohortReport::rms_error_mM(std::size_t channel) const {
  return rms_error_mM(channel, -std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity());
}

double CohortReport::rms_error_mM(std::size_t channel, double t_low_h,
                                  double t_high_h) const {
  util::require(channel < targets.size(), "channel index out of range");
  double ss = 0.0;
  std::size_t n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const ChannelSample& s : p.channels[channel]) {
      if (s.time_h < t_low_h || s.time_h >= t_high_h) continue;
      const double e = s.estimate.value - s.truth_mM;
      ss += e * e;
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::sqrt(ss / static_cast<double>(n));
}

double CohortReport::ci_coverage() const {
  std::size_t covered = 0, n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const auto& channel : p.channels) {
      for (const ChannelSample& s : channel) {
        ++n;
        if (s.estimate.ci_low <= s.truth_mM &&
            s.truth_mM <= s.estimate.ci_high) {
          ++covered;
        }
      }
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(covered) / static_cast<double>(n);
}

double CohortReport::max_drift_metric(std::size_t channel) const {
  util::require(channel < targets.size(), "channel index out of range");
  double worst = 0.0;
  for (const PatientTimeCourse& p : patients) {
    for (const ChannelSample& s : p.channels[channel]) {
      worst = std::max(worst, s.drift_metric);
    }
  }
  return worst;
}

void CohortReport::to_csv(const std::string& path) const {
  util::CsvWriter csv(
      path, {"patient", "channel", "time_h", "truth_mM", "estimate_mM",
             "ci_low_mM", "ci_high_mM", "flags", "sensor_age_days",
             "drift_metric", "qc_residual", "calibration_epoch",
             "recalibrated"});
  for (const PatientTimeCourse& p : patients) {
    for (std::size_t c = 0; c < p.channels.size(); ++c) {
      for (const ChannelSample& s : p.channels[c]) {
        const double row[] = {
            static_cast<double>(p.patient_id),
            static_cast<double>(c),
            s.time_h,
            s.truth_mM,
            s.estimate.value,
            s.estimate.ci_low,
            s.estimate.ci_high,
            static_cast<double>(static_cast<std::uint32_t>(s.estimate.flags)),
            s.sensor_age_days,
            s.drift_metric,
            s.qc_residual,
            static_cast<double>(s.calibration_epoch),
            s.recalibrated ? 1.0 : 0.0};
        csv.write_row(row);
      }
    }
  }
}

void CohortReport::publish_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("scenario.cohort.patients")
      .set(patients.size());
  registry.counter("scenario.cohort.samples").set(sample_count());
  // No unlabeled recalibration total: the per-channel series sum to it
  // (MetricsSnapshot::sum), and publishing both would double-count.
  for (std::size_t c = 0; c < targets.size(); ++c) {
    obs::MetricLabels labels;
    labels.channel = static_cast<std::int32_t>(c);
    std::uint64_t recals = 0;
    for (const RecalibrationEvent& e : recalibrations) {
      if (e.channel == c) ++recals;
    }
    registry.counter("scenario.cohort.recalibrations", labels).set(recals);
    registry.gauge("quant.drift.max_cusum", labels)
        .set(max_drift_metric(c));
    registry.gauge("scenario.cohort.rms_error_mM", labels)
        .set(rms_error_mM(c));
  }
}

LongitudinalRunner::LongitudinalRunner(quant::CalibrationStore& store,
                                       LongitudinalConfig config)
    : store_(store), config_(std::move(config)) {
  util::require(!config_.sample_times_h.empty(),
                "scenario needs at least one sample time");
  util::require(std::is_sorted(config_.sample_times_h.begin(),
                               config_.sample_times_h.end()),
                "sample times must be sorted");
  config_.recalibration.validate();
}

CohortReport LongitudinalRunner::run(
    std::span<const AnalytePlan> plans,
    std::span<const VirtualPatient> cohort) const {
  util::require(!plans.empty(), "scenario needs at least one analyte plan");
  util::require(plans.size() <= kMaxAnalytesPerPatient,
                "more channels than the front-end seed packing supports");
  util::require(!cohort.empty(), "scenario needs at least one patient");
  for (const VirtualPatient& p : cohort) {
    util::require(p.analytes.size() == plans.size(),
                  "cohort was generated for a different plan set");
  }

  const quant::CampaignConfig& campaign = store_.config();
  const std::size_t n_channels = plans.size();
  const std::size_t n_times = config_.sample_times_h.size();
  const quant::RecalibrationPolicy& policy = config_.recalibration;

  // Calibrate (or fetch) every channel up front -- outside the patient
  // fan-out, so runs never contend on campaign construction -- and keep
  // stable pointers into the store's cache.
  std::vector<sim::ChannelProtocol> protocols;
  std::vector<const quant::Quantifier*> quantifiers;
  protocols.reserve(n_channels);
  quantifiers.reserve(n_channels);
  for (const AnalytePlan& plan : plans) {
    protocols.push_back(quant::default_protocol_for(campaign, plan.target));
    quantifiers.push_back(&store_.quantifier(plan.target, protocols.back()));
  }

  sim::EngineConfig engine_config;
  engine_config.seed = config_.engine_seed;
  const sim::MeasurementEngine engine(engine_config);

  CohortReport report;
  report.targets.reserve(n_channels);
  for (const AnalytePlan& plan : plans) report.targets.push_back(plan.target);
  report.sample_times_h = config_.sample_times_h;
  report.patients.resize(cohort.size());

  // One job per patient: each owns its probes, front ends and monitoring
  // state, its timeline runs in order, and every measurement's noise
  // derives from the global (patient, timepoint, channel) index plus a
  // per-purpose run-id domain -- deterministic at any parallelism.
  const sim::BatchRunner runner(config_.parallelism);
  runner.run(cohort.size(), [&](std::size_t p) {
    const VirtualPatient& patient = cohort[p];
    PatientTimeCourse course;
    course.patient_id = patient.id;
    course.channels.assign(n_channels, {});

    std::vector<bio::ProbePtr> probes;
    std::vector<afe::AnalogFrontEnd> frontends;
    std::vector<afe::AnalogFrontEnd> qc_frontends;
    std::vector<ChannelMonitor> monitors(n_channels);
    probes.reserve(n_channels);
    frontends.reserve(n_channels);
    if (policy.enabled) qc_frontends.reserve(n_channels);
    for (std::size_t c = 0; c < n_channels; ++c) {
      probes.push_back(quant::make_campaign_probe(campaign, plans[c].target));
      frontends.emplace_back(quant::campaign_frontend_config(
          campaign,
          config_.engine_seed + kFrontEndSeedDomain +
              (p * kMaxAnalytesPerPatient + c + 1) * kScenarioSeedStride));
      if (policy.enabled) {
        qc_frontends.emplace_back(quant::campaign_frontend_config(
            campaign,
            config_.engine_seed + kQcFrontEndSeedDomain +
                (p * kMaxAnalytesPerPatient + c + 1) * kScenarioSeedStride));
      }
      course.channels[c].reserve(n_times);

      ChannelMonitor& monitor = monitors[c];
      monitor.quantifier = quantifiers[c];
      if (policy.enabled) {
        monitor.detector = quant::DriftDetector(policy.detector);
        // The QC kit ships one standard per channel, mixed to a fixed
        // fraction of the *factory* calibrated window.
        monitor.qc_concentration =
            quantifiers[c]->c_low() +
            policy.qc_fraction *
                (quantifiers[c]->c_high() - quantifiers[c]->c_low());
        monitor.rebase();
      }
    }

    for (std::size_t t = 0; t < n_times; ++t) {
      const double time_h = config_.sample_times_h[t];
      const double age_days =
          std::max(0.0, (time_h - config_.sensor_install_h) / 24.0);
      for (std::size_t c = 0; c < n_channels; ++c) {
        ChannelMonitor& monitor = monitors[c];
        const fault::SensorState sensor = config_.degradation.state_at(
            age_days, fault::SensorSite{patient.id, c});
        const sim::Channel channel{probes[c].get(), nullptr, sensor};
        const std::string target_name = bio::to_string(plans[c].target);

        double drift_metric = 0.0;
        double qc_residual = 0.0;
        bool recalibrated_now = false;
        if (policy.enabled) {
          // QC checks through the aged sensor: a blank and the standard,
          // standardised against the active calibration's prediction.
          const std::uint64_t qc_base =
              kQcRunDomain + ((p * n_times + t) * n_channels + c) * 2;
          probes[c]->set_bulk_concentration(target_name, 0.0);
          const double r_blank =
              measure_response(engine, qc_base + 1, channel, protocols[c],
                               qc_frontends[c], plans[c].target);
          monitor.detector.observe((r_blank - monitor.expected_blank) /
                                   monitor.sigma);
          probes[c]->set_bulk_concentration(target_name,
                                            monitor.qc_concentration);
          const double r_qc =
              measure_response(engine, qc_base + 2, channel, protocols[c],
                               qc_frontends[c], plans[c].target);
          qc_residual = (r_qc - monitor.expected_qc) / monitor.sigma;
          monitor.detector.observe(qc_residual);
          drift_metric = monitor.detector.cusum();
          const double ewma_now = monitor.detector.ewma();

          const bool interval_ok =
              time_h - monitor.last_recal_h >= policy.min_interval_h;
          const bool budget_ok =
              monitor.epoch <
              static_cast<std::uint32_t>(policy.max_recalibrations);
          if (policy.triggered(monitor.detector) && interval_ok &&
              budget_ok) {
            // Field recalibration: rerun the campaign on this sensor in
            // its *current* state, from a run-id block owned by
            // (patient, channel, epoch).
            const std::uint64_t block =
                kRecalRunDomain +
                ((p * kMaxAnalytesPerPatient + c) *
                     (static_cast<std::uint64_t>(policy.max_recalibrations) +
                      1) +
                 monitor.epoch) *
                    quant::CalibrationStore::kRunsPerCampaignBlock;
            monitor.owned = store_.recalibrate(plans[c].target, protocols[c],
                                               sensor, block);
            monitor.quantifier = &monitor.owned.quantifier;
            monitor.epoch += 1;
            monitor.last_recal_h = time_h;
            monitor.rebase();
            monitor.detector.reset();
            recalibrated_now = true;
            course.recalibrations.push_back(RecalibrationEvent{
                patient.id, c, time_h, age_days, drift_metric, ewma_now,
                monitor.epoch});
          }
        }

        ChannelSample sample;
        sample.time_h = time_h;
        sample.truth_mM = patient.true_concentration_mM(plans[c], c, time_h);
        sample.sensor_age_days = age_days;
        sample.drift_metric = drift_metric;
        sample.qc_residual = qc_residual;
        sample.calibration_epoch = monitor.epoch;
        sample.recalibrated = recalibrated_now;
        probes[c]->set_bulk_concentration(target_name, sample.truth_mM);

        const std::uint64_t run_id = (p * n_times + t) * n_channels + c + 1;
        sample.response = measure_response(engine, run_id, channel,
                                           protocols[c], frontends[c],
                                           plans[c].target);
        sample.estimate = monitor.quantifier->quantify(sample.response);
        course.channels[c].push_back(sample);
      }
    }
    report.patients[p] = std::move(course);
  });

  // Population aggregates (sequential -- cheap compared to the scans).
  report.estimate_percentiles.assign(n_channels, {});
  report.truth_percentiles.assign(n_channels, {});
  for (std::size_t c = 0; c < n_channels; ++c) {
    report.estimate_percentiles[c].resize(n_times);
    report.truth_percentiles[c].resize(n_times);
    for (std::size_t t = 0; t < n_times; ++t) {
      std::vector<double> est, truth;
      est.reserve(cohort.size());
      truth.reserve(cohort.size());
      for (const PatientTimeCourse& p : report.patients) {
        est.push_back(p.channels[c][t].estimate.value);
        truth.push_back(p.channels[c][t].truth_mM);
      }
      report.estimate_percentiles[c][t] = band_of(est);
      report.truth_percentiles[c][t] = band_of(truth);
    }
  }
  // Flatten the per-patient recalibration logs in patient order (the jobs
  // ran concurrently; the merge restores a deterministic order).
  for (const PatientTimeCourse& p : report.patients) {
    report.recalibrations.insert(report.recalibrations.end(),
                                 p.recalibrations.begin(),
                                 p.recalibrations.end());
  }
  return report;
}

}  // namespace idp::scenario
