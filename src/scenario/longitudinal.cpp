/// \file longitudinal.cpp
/// Longitudinal scenario engine implementation: deterministic parallel
/// cohort sweep, per-channel quantification, population aggregation, CSV
/// export.

#include "scenario/longitudinal.hpp"

#include <algorithm>
#include <cmath>

#include "sim/batch.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace idp::scenario {

namespace {

/// Domain tag separating front-end noise seeds from the cohort-jitter
/// seeds, which use the same (patient, channel) packing: with the tag, a
/// user reusing one seed for CohortSpec::seed and engine_seed still gets
/// independent jitter and noise streams.
constexpr std::uint64_t kFrontEndSeedDomain = 0x517cc1b727220a95ULL;

/// Interpolated percentile of an already-sorted sample set (q in [0, 1]).
double percentile_sorted(std::span<const double> sorted, double q) {
  util::require(!sorted.empty(), "percentile of empty sample set");
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// p10/p50/p90 band of an unsorted sample set (one sort, three reads).
PercentileBand band_of(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
  return PercentileBand{percentile_sorted(values, 0.10),
                        percentile_sorted(values, 0.50),
                        percentile_sorted(values, 0.90)};
}

}  // namespace

std::size_t CohortReport::sample_count() const {
  std::size_t n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const auto& channel : p.channels) n += channel.size();
  }
  return n;
}

std::size_t CohortReport::flag_count(quant::QuantFlag flags) const {
  std::size_t n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const auto& channel : p.channels) {
      for (const ChannelSample& s : channel) {
        if ((s.estimate.flags & flags) != quant::QuantFlag::kNone) ++n;
      }
    }
  }
  return n;
}

double CohortReport::rms_error_mM(std::size_t channel) const {
  util::require(channel < targets.size(), "channel index out of range");
  double ss = 0.0;
  std::size_t n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const ChannelSample& s : p.channels[channel]) {
      const double e = s.estimate.value - s.truth_mM;
      ss += e * e;
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::sqrt(ss / static_cast<double>(n));
}

double CohortReport::ci_coverage() const {
  std::size_t covered = 0, n = 0;
  for (const PatientTimeCourse& p : patients) {
    for (const auto& channel : p.channels) {
      for (const ChannelSample& s : channel) {
        ++n;
        if (s.estimate.ci_low <= s.truth_mM &&
            s.truth_mM <= s.estimate.ci_high) {
          ++covered;
        }
      }
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(covered) / static_cast<double>(n);
}

void CohortReport::to_csv(const std::string& path) const {
  util::CsvWriter csv(path,
                      {"patient", "channel", "time_h", "truth_mM",
                       "estimate_mM", "ci_low_mM", "ci_high_mM", "flags"});
  for (const PatientTimeCourse& p : patients) {
    for (std::size_t c = 0; c < p.channels.size(); ++c) {
      for (const ChannelSample& s : p.channels[c]) {
        const double row[] = {
            static_cast<double>(p.patient_id),
            static_cast<double>(c),
            s.time_h,
            s.truth_mM,
            s.estimate.value,
            s.estimate.ci_low,
            s.estimate.ci_high,
            static_cast<double>(static_cast<std::uint32_t>(s.estimate.flags))};
        csv.write_row(row);
      }
    }
  }
}

LongitudinalRunner::LongitudinalRunner(quant::CalibrationStore& store,
                                       LongitudinalConfig config)
    : store_(store), config_(std::move(config)) {
  util::require(!config_.sample_times_h.empty(),
                "scenario needs at least one sample time");
  util::require(std::is_sorted(config_.sample_times_h.begin(),
                               config_.sample_times_h.end()),
                "sample times must be sorted");
}

CohortReport LongitudinalRunner::run(
    std::span<const AnalytePlan> plans,
    std::span<const VirtualPatient> cohort) const {
  util::require(!plans.empty(), "scenario needs at least one analyte plan");
  util::require(plans.size() <= kMaxAnalytesPerPatient,
                "more channels than the front-end seed packing supports");
  util::require(!cohort.empty(), "scenario needs at least one patient");
  for (const VirtualPatient& p : cohort) {
    util::require(p.analytes.size() == plans.size(),
                  "cohort was generated for a different plan set");
  }

  const quant::CampaignConfig& campaign = store_.config();
  const std::size_t n_channels = plans.size();
  const std::size_t n_times = config_.sample_times_h.size();

  // Calibrate (or fetch) every channel up front -- outside the patient
  // fan-out, so runs never contend on campaign construction -- and keep
  // stable pointers into the store's cache.
  std::vector<sim::ChannelProtocol> protocols;
  std::vector<const quant::Quantifier*> quantifiers;
  protocols.reserve(n_channels);
  quantifiers.reserve(n_channels);
  for (const AnalytePlan& plan : plans) {
    protocols.push_back(quant::default_protocol_for(campaign, plan.target));
    quantifiers.push_back(&store_.quantifier(plan.target, protocols.back()));
  }

  sim::EngineConfig engine_config;
  engine_config.seed = config_.engine_seed;
  const sim::MeasurementEngine engine(engine_config);

  CohortReport report;
  report.targets.reserve(n_channels);
  for (const AnalytePlan& plan : plans) report.targets.push_back(plan.target);
  report.sample_times_h = config_.sample_times_h;
  report.patients.resize(cohort.size());

  // One job per patient: each owns its probes and front ends, its timeline
  // runs in order, and every measurement's noise derives from the global
  // (patient, timepoint, channel) index -- deterministic at any parallelism.
  const sim::BatchRunner runner(config_.parallelism);
  runner.run(cohort.size(), [&](std::size_t p) {
    const VirtualPatient& patient = cohort[p];
    PatientTimeCourse course;
    course.patient_id = patient.id;
    course.channels.assign(n_channels, {});

    std::vector<bio::ProbePtr> probes;
    std::vector<afe::AnalogFrontEnd> frontends;
    probes.reserve(n_channels);
    frontends.reserve(n_channels);
    for (std::size_t c = 0; c < n_channels; ++c) {
      probes.push_back(quant::make_campaign_probe(campaign, plans[c].target));
      frontends.emplace_back(quant::campaign_frontend_config(
          campaign,
          config_.engine_seed + kFrontEndSeedDomain +
              (p * kMaxAnalytesPerPatient + c + 1) * kScenarioSeedStride));
      course.channels[c].reserve(n_times);
    }

    for (std::size_t t = 0; t < n_times; ++t) {
      const double time_h = config_.sample_times_h[t];
      for (std::size_t c = 0; c < n_channels; ++c) {
        ChannelSample sample;
        sample.time_h = time_h;
        sample.truth_mM = patient.true_concentration_mM(plans[c], c, time_h);
        probes[c]->set_bulk_concentration(bio::to_string(plans[c].target),
                                          sample.truth_mM);

        const std::uint64_t run_id = (p * n_times + t) * n_channels + c + 1;
        const sim::Channel channel{probes[c].get(), nullptr};
        if (std::holds_alternative<sim::ChronoamperometryProtocol>(
                protocols[c])) {
          const auto& proto =
              std::get<sim::ChronoamperometryProtocol>(protocols[c]);
          const sim::Trace trace = engine.run_chronoamperometry_seeded(
              run_id, channel, proto, frontends[c]);
          sample.response =
              quant::panel_response(plans[c].target, trace, sim::CvCurve{});
        } else {
          const auto& proto =
              std::get<sim::CyclicVoltammetryProtocol>(protocols[c]);
          const sim::CvCurve curve = engine.run_cyclic_voltammetry_seeded(
              run_id, channel, proto, frontends[c]);
          sample.response =
              quant::panel_response(plans[c].target, sim::Trace{}, curve);
        }
        sample.estimate = quantifiers[c]->quantify(sample.response);
        course.channels[c].push_back(sample);
      }
    }
    report.patients[p] = std::move(course);
  });

  // Population aggregates (sequential -- cheap compared to the scans).
  report.estimate_percentiles.assign(n_channels, {});
  report.truth_percentiles.assign(n_channels, {});
  for (std::size_t c = 0; c < n_channels; ++c) {
    report.estimate_percentiles[c].resize(n_times);
    report.truth_percentiles[c].resize(n_times);
    for (std::size_t t = 0; t < n_times; ++t) {
      std::vector<double> est, truth;
      est.reserve(cohort.size());
      truth.reserve(cohort.size());
      for (const PatientTimeCourse& p : report.patients) {
        est.push_back(p.channels[c][t].estimate.value);
        truth.push_back(p.channels[c][t].truth_mM);
      }
      report.estimate_percentiles[c][t] = band_of(est);
      report.truth_percentiles[c][t] = band_of(truth);
    }
  }
  return report;
}

}  // namespace idp::scenario
