/// \file pk.cpp
/// Closed-form pharmacokinetic model implementation: one/two-compartment
/// disposition, IV bolus and first-order oral absorption, superposition
/// over dosing regimens.

#include "scenario/pk.hpp"

#include <cmath>

#include "util/error.hpp"

namespace idp::scenario {

namespace {

constexpr double kLn2 = 0.6931471805599453;

/// Two exponential rates are "the same" when their relative difference is
/// below this; the flip-flop formulas then switch to their analytic limits
/// to avoid catastrophic cancellation.
constexpr double kRateTie = 1e-9;

bool close_rates(double a, double b) {
  return std::fabs(a - b) <= kRateTie * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace

Regimen repeated_regimen(double first_time_h, double interval_h, int count,
                         double dose_mg, Route route) {
  util::require(interval_h > 0.0, "dose interval must be positive");
  util::require(count >= 1, "regimen needs at least one dose");
  util::require(dose_mg > 0.0, "dose must be positive");
  Regimen regimen;
  regimen.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    regimen.push_back(DoseEvent{
        first_time_h + static_cast<double>(i) * interval_h, dose_mg, route});
  }
  return regimen;
}

PkModel::PkModel(PkParameters params) : params_(params) {
  util::require(params_.volume_of_distribution_l > 0.0,
                "central volume must be positive");
  util::require(params_.elimination_half_life_h > 0.0,
                "elimination half-life must be positive");
  util::require(params_.absorption_half_life_h > 0.0,
                "absorption half-life must be positive");
  util::require(
      params_.bioavailability > 0.0 && params_.bioavailability <= 1.0,
      "bioavailability must be in (0, 1]");
  util::require(params_.molar_mass_g_per_mol > 0.0,
                "molar mass must be positive");

  ke_ = kLn2 / params_.elimination_half_life_h;
  ka_ = kLn2 / params_.absorption_half_life_h;

  two_compartment_ = params_.peripheral_volume_l > 0.0;
  if (two_compartment_) {
    util::require(params_.intercompartment_clearance_l_per_h > 0.0,
                  "two-compartment model needs a positive Q");
    k12_ = params_.intercompartment_clearance_l_per_h /
           params_.volume_of_distribution_l;
    k21_ = params_.intercompartment_clearance_l_per_h /
           params_.peripheral_volume_l;
    // Hybrid exponents: alpha + beta = k10 + k12 + k21,
    // alpha * beta = k10 * k21.
    const double sum = ke_ + k12_ + k21_;
    const double disc = std::sqrt(sum * sum - 4.0 * ke_ * k21_);
    alpha_ = 0.5 * (sum + disc);
    beta_ = 0.5 * (sum - disc);
    // Flip-flop collision: the oral triexponential divides by (ka - alpha)
    // and (ka - beta). When fitted parameters land ka exactly on a
    // disposition exponent, nudge ka by one part in 10^6 -- a relative
    // concentration error of the same order, far below the platform's
    // measurement noise, instead of an evaluation-time throw.
    if (close_rates(ka_, alpha_) || close_rates(ka_, beta_)) {
      ka_ *= 1.0 + 1e-6;
    }
  } else {
    alpha_ = beta_ = ke_;
  }
}

double PkModel::single_dose_mg_per_l(const DoseEvent& dose, double t_h) const {
  const double t = t_h - dose.time_h;
  if (t < 0.0 || dose.dose_mg <= 0.0) return 0.0;
  const double v1 = params_.volume_of_distribution_l;

  if (!two_compartment_) {
    if (dose.route == Route::kIvBolus) {
      return dose.dose_mg / v1 * std::exp(-ke_ * t);
    }
    // Bateman equation; flip-flop limit when ka ~ ke.
    const double fd_v = params_.bioavailability * dose.dose_mg / v1;
    if (close_rates(ka_, ke_)) {
      return fd_v * ka_ * t * std::exp(-ka_ * t);
    }
    return fd_v * ka_ / (ka_ - ke_) *
           (std::exp(-ke_ * t) - std::exp(-ka_ * t));
  }

  // Two-compartment disposition.
  if (dose.route == Route::kIvBolus) {
    const double c0 = dose.dose_mg / v1;
    const double spread = alpha_ - beta_;
    const double a = c0 * (alpha_ - k21_) / spread;
    const double b = c0 * (k21_ - beta_) / spread;
    return a * std::exp(-alpha_ * t) + b * std::exp(-beta_ * t);
  }
  // Oral, two-compartment: triexponential with C(0) = 0. The third
  // coefficient is -(A + B), which enforces the zero initial condition
  // without a separately derived formula. The constructor nudged ka off
  // any disposition exponent, so the denominators are never zero.
  const double scale = params_.bioavailability * dose.dose_mg * ka_ / v1;
  const double a =
      scale * (k21_ - alpha_) / ((ka_ - alpha_) * (beta_ - alpha_));
  const double b = scale * (k21_ - beta_) / ((ka_ - beta_) * (alpha_ - beta_));
  return a * std::exp(-alpha_ * t) + b * std::exp(-beta_ * t) -
         (a + b) * std::exp(-ka_ * t);
}

double PkModel::concentration_mg_per_l(std::span<const DoseEvent> regimen,
                                       double t_h) const {
  double c = 0.0;
  for (const DoseEvent& dose : regimen) {
    c += single_dose_mg_per_l(dose, t_h);
  }
  return c;
}

double PkModel::concentration_mM(std::span<const DoseEvent> regimen,
                                 double t_h) const {
  // mg/L divided by g/mol is mmol/L == mol/m^3.
  return concentration_mg_per_l(regimen, t_h) / params_.molar_mass_g_per_mol;
}

}  // namespace idp::scenario
