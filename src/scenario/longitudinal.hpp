/// \file longitudinal.hpp
/// The longitudinal scenario engine: sweeps a virtual-patient cohort over a
/// dosing timeline, runs one panel measurement per (patient, timepoint,
/// channel), quantifies every response through quant::Quantifier and
/// aggregates the diagnostic time-courses into a CohortReport. This is the
/// first workload whose throughput scales as patients x timepoints x
/// channels -- exactly the shape the deterministic batch runtime was built
/// for: all randomness derives from (patient, timepoint, channel) indices,
/// so results are bitwise identical at every parallelism level.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "quant/calibration_store.hpp"
#include "scenario/cohort.hpp"

namespace idp::scenario {

/// Scenario execution knobs.
struct LongitudinalConfig {
  std::vector<double> sample_times_h;  ///< panel-scan instants [h]
  std::uint64_t engine_seed = 99;      ///< measurement-noise seed
  /// Worker threads over *patients* (a patient's timeline is inherently
  /// sequential: its probes and front ends carry state between scans).
  /// 0 = hardware concurrency, 1 = sequential.
  std::size_t parallelism = 0;
};

/// One quantified measurement of one channel at one timepoint.
struct ChannelSample {
  double time_h = 0.0;
  double truth_mM = 0.0;    ///< ground-truth analyte concentration
  double response = 0.0;    ///< measured scalar panel response
  quant::ConcentrationEstimate estimate;  ///< the reported diagnosis
};

/// One patient's diagnostic time-course, per channel.
struct PatientTimeCourse {
  std::uint64_t patient_id = 0;
  std::vector<std::vector<ChannelSample>> channels;  ///< [channel][timepoint]
};

/// Population percentile band of one channel at one timepoint.
struct PercentileBand {
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

/// Cohort-scale outcome: per-patient time-courses plus population
/// aggregates over the *estimated* (reported) and true concentrations.
struct CohortReport {
  std::vector<bio::TargetId> targets;
  std::vector<double> sample_times_h;
  std::vector<PatientTimeCourse> patients;
  std::vector<std::vector<PercentileBand>> estimate_percentiles;  ///< [ch][t]
  std::vector<std::vector<PercentileBand>> truth_percentiles;     ///< [ch][t]

  std::size_t sample_count() const;
  /// Samples carrying any of the given flag bits.
  std::size_t flag_count(quant::QuantFlag flags) const;
  /// RMS of (estimate - truth) over one channel's samples [mM].
  double rms_error_mM(std::size_t channel) const;
  /// Fraction of samples whose confidence interval covers the truth.
  double ci_coverage() const;

  /// Export every sample as CSV (columns: patient, channel, time_h,
  /// truth_mM, estimate_mM, ci_low_mM, ci_high_mM, flags).
  void to_csv(const std::string& path) const;
};

/// Executes longitudinal scenarios against a calibration store. The store
/// provides both the measurement configuration (probes, front ends,
/// protocols -- scans must measure exactly the way campaigns calibrated)
/// and the quantifiers that invert the responses.
class LongitudinalRunner {
 public:
  LongitudinalRunner(quant::CalibrationStore& store, LongitudinalConfig config);

  const LongitudinalConfig& config() const { return config_; }

  /// Run the full cohort x timeline sweep. Every patient's analytes must
  /// match `plans` (same generate_cohort call). Bitwise deterministic for a
  /// fixed (store config, engine seed, cohort) at any parallelism.
  CohortReport run(std::span<const AnalytePlan> plans,
                   std::span<const VirtualPatient> cohort) const;

 private:
  quant::CalibrationStore& store_;
  LongitudinalConfig config_;
};

}  // namespace idp::scenario
