/// \file longitudinal.hpp
/// The longitudinal scenario engine: sweeps a virtual-patient cohort over a
/// dosing timeline, runs one panel measurement per (patient, timepoint,
/// channel), quantifies every response through quant::Quantifier and
/// aggregates the diagnostic time-courses into a CohortReport. This is the
/// first workload whose throughput scales as patients x timepoints x
/// channels -- exactly the shape the deterministic batch runtime was built
/// for: all randomness derives from (patient, timepoint, channel) indices,
/// so results are bitwise identical at every parallelism level.
///
/// Sensor lifetime: every channel carries wall-clock sensor age, so a
/// configured fault::DegradationModel makes week-4 scans see a degraded
/// sensor (fouling, enzyme decay, drifting reference and electronics,
/// interference storms). When the quant::RecalibrationPolicy is enabled the
/// runner additionally measures per-timepoint QC checks (a blank plus a
/// known standard) through the same aged sensor, feeds the standardised
/// residuals to a quant::DriftDetector, and schedules recalibration
/// campaigns through the CalibrationStore when drift trips -- swapping each
/// sensor onto its freshly fitted curve. QC and recalibration runs draw
/// from run-id domains disjoint from the diagnostic scans and digitise
/// through dedicated front ends, so enabling monitoring leaves every
/// diagnostic measurement before the first recalibration bitwise
/// unchanged, and an identity degradation model with monitoring off
/// reproduces pre-fault results bitwise (pinned by the golden fixtures).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/degradation.hpp"
#include "quant/calibration_store.hpp"
#include "quant/drift.hpp"
#include "scenario/cohort.hpp"

namespace idp::obs {
class MetricsRegistry;
}

namespace idp::scenario {

/// Scenario execution knobs.
struct LongitudinalConfig {
  std::vector<double> sample_times_h;  ///< panel-scan instants [h]
  std::uint64_t engine_seed = 99;      ///< measurement-noise seed
  /// Worker threads over *patients* (a patient's timeline is inherently
  /// sequential: its probes and front ends carry state between scans).
  /// 0 = hardware concurrency, 1 = sequential.
  std::size_t parallelism = 0;

  /// Sensor aging model; the identity default keeps every sensor pristine.
  fault::DegradationModel degradation{};
  /// Timeline instant the sensors were installed [h]; sensor age at a scan
  /// is (sample_time - install) / 24 days, clamped to >= 0.
  double sensor_install_h = 0.0;
  /// QC monitoring + adaptive recalibration; disabled by default (no QC
  /// measurements are taken at all).
  quant::RecalibrationPolicy recalibration{};
};

/// One quantified measurement of one channel at one timepoint, with its
/// sensor-condition and calibration provenance.
struct ChannelSample {
  double time_h = 0.0;
  double truth_mM = 0.0;    ///< ground-truth analyte concentration
  double response = 0.0;    ///< measured scalar panel response
  quant::ConcentrationEstimate estimate;  ///< the reported diagnosis

  // --- provenance (fault subsystem) --------------------------------------
  double sensor_age_days = 0.0;  ///< sensor wall-clock age at this scan
  /// Drift statistic (two-sided CUSUM) after this timepoint's QC checks;
  /// 0 when monitoring is disabled.
  double drift_metric = 0.0;
  /// Standardised residual of the latest QC-standard check.
  double qc_residual = 0.0;
  /// Which calibration produced the estimate: 0 = factory campaign,
  /// k = after the k-th recalibration of this sensor.
  std::uint32_t calibration_epoch = 0;
  /// True when a recalibration completed immediately before this scan.
  bool recalibrated = false;
};

/// One completed recalibration of one sensor channel.
struct RecalibrationEvent {
  std::uint64_t patient_id = 0;
  std::size_t channel = 0;
  double time_h = 0.0;
  double sensor_age_days = 0.0;
  /// Detector statistics at trigger time. Either can have tripped the
  /// policy: compare drift_metric (the two-sided CUSUM) against
  /// cusum_threshold and |ewma| against ewma_threshold.
  double drift_metric = 0.0;
  double ewma = 0.0;
  std::uint32_t epoch = 0;     ///< calibration epoch this event started
};

/// One patient's diagnostic time-course, per channel.
struct PatientTimeCourse {
  std::uint64_t patient_id = 0;
  std::vector<std::vector<ChannelSample>> channels;  ///< [channel][timepoint]
  std::vector<RecalibrationEvent> recalibrations;    ///< in time order
};

/// Population percentile band of one channel at one timepoint.
struct PercentileBand {
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

/// Cohort-scale outcome: per-patient time-courses plus population
/// aggregates over the *estimated* (reported) and true concentrations.
struct CohortReport {
  std::vector<bio::TargetId> targets;
  std::vector<double> sample_times_h;
  std::vector<PatientTimeCourse> patients;
  std::vector<std::vector<PercentileBand>> estimate_percentiles;  ///< [ch][t]
  std::vector<std::vector<PercentileBand>> truth_percentiles;     ///< [ch][t]
  /// Every recalibration across the cohort, ordered by (patient, time).
  std::vector<RecalibrationEvent> recalibrations;

  std::size_t sample_count() const;
  /// Samples carrying any of the given flag bits.
  std::size_t flag_count(quant::QuantFlag flags) const;
  /// RMS of (estimate - truth) over one channel's samples [mM].
  double rms_error_mM(std::size_t channel) const;
  /// RMS error of one channel restricted to samples with
  /// t_low_h <= time < t_high_h (lifetime studies slice error by age).
  double rms_error_mM(std::size_t channel, double t_low_h,
                      double t_high_h) const;
  /// Fraction of samples whose confidence interval covers the truth.
  double ci_coverage() const;
  /// Largest drift statistic observed on one channel.
  double max_drift_metric(std::size_t channel) const;

  /// Export every sample as CSV (columns: patient, channel, time_h,
  /// truth_mM, estimate_mM, ci_low_mM, ci_high_mM, flags, plus the
  /// sensor_age_days / drift_metric / qc_residual / calibration_epoch /
  /// recalibrated provenance).
  void to_csv(const std::string& path) const;

  /// Publish the cohort's monitoring outcome into a metrics registry
  /// (scenario.cohort.* counters, per-channel recalibration counts and
  /// peak drift statistics). Runs at the sequential aggregation point, so
  /// the published values inherit the report's parallelism invariance.
  void publish_metrics(obs::MetricsRegistry& registry) const;
};

/// Executes longitudinal scenarios against a calibration store. The store
/// provides both the measurement configuration (probes, front ends,
/// protocols -- scans must measure exactly the way campaigns calibrated)
/// and the quantifiers that invert the responses.
class LongitudinalRunner {
 public:
  LongitudinalRunner(quant::CalibrationStore& store, LongitudinalConfig config);

  const LongitudinalConfig& config() const { return config_; }

  /// Run the full cohort x timeline sweep. Every patient's analytes must
  /// match `plans` (same generate_cohort call). Bitwise deterministic for a
  /// fixed (store config, engine seed, cohort, degradation model, policy)
  /// at any parallelism.
  CohortReport run(std::span<const AnalytePlan> plans,
                   std::span<const VirtualPatient> cohort) const;

 private:
  quant::CalibrationStore& store_;
  LongitudinalConfig config_;
};

}  // namespace idp::scenario
