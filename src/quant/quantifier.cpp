/// \file quantifier.cpp
/// Monotone linear-range inversion of a calibration curve with uncertainty
/// propagated from blank sigma and fit residuals.

#include "quant/quantifier.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::quant {

Quantifier::Quantifier(const dsp::CalibrationCurve& curve,
                       QuantifierOptions options)
    : coverage_z_(options.coverage_z) {
  util::require(options.coverage_z > 0.0, "coverage_z must be positive");
  util::require(curve.distinct_concentration_count() >= 2,
                "need >= 2 distinct concentrations to invert");

  const dsp::LinearRange range = curve.linear_range(options.linear_tolerance);
  if (range.found) {
    fit_ = range.fit;
    from_linear_range_ = true;
    c_low_ = range.c_low;
    c_high_ = range.c_high;
  } else {
    fit_ = curve.fit();
    c_low_ = curve.concentrations().front();
    c_high_ = curve.concentrations().back();
  }
  util::require(std::fabs(fit_.slope) > 0.0,
                "zero-sensitivity curve is not invertible");

  // Response uncertainty on a *single* future measurement: the blank noise
  // floor plus the scatter of the calibration points about the fit. The two
  // are close to independent, so they add in quadrature.
  const double sigma_b = curve.blank_count() >= 2 ? curve.blank_sigma() : 0.0;
  response_sigma_ =
      std::sqrt(sigma_b * sigma_b + fit_.residual_rms * fit_.residual_rms);

  if (curve.blank_count() >= 2) {
    lod_known_ = true;
    blank_mean_ = curve.blank_mean();
    lod_signal_ = curve.lod_signal();
  }
  valid_ = true;
}

ConcentrationEstimate Quantifier::quantify(double response) const {
  util::require(valid_, "quantifier not built from a curve");
  ConcentrationEstimate est;

  // Monotone inversion of the straight fit.
  const double raw = (response - fit_.intercept) / fit_.slope;
  est.value = std::clamp(raw, c_low_, c_high_);
  if (raw < c_low_) est.flags |= QuantFlag::kBelowRange;
  if (raw > c_high_) est.flags |= QuantFlag::kAboveRange;
  if (!from_linear_range_) est.flags |= QuantFlag::kGlobalFit;

  // CI around the unclamped inversion, propagated through the slope and
  // floored at zero (concentrations are non-negative).
  const double half_width =
      coverage_z_ * response_sigma_ / std::fabs(fit_.slope);
  est.ci_low = std::max(0.0, raw - half_width);
  est.ci_high = std::max(0.0, raw + half_width);

  // Eq. 5 detection decision: the signal excursion above the blank (in the
  // direction the sensitivity points) must clear 3 sigma_b.
  if (lod_known_) {
    const double excursion = (response - blank_mean_) *
                             (fit_.slope >= 0.0 ? 1.0 : -1.0);
    if (excursion < lod_signal_ - blank_mean_) {
      est.flags |= QuantFlag::kBelowLod;
    }
  }
  return est;
}

}  // namespace idp::quant
