/// \file calibration_store.hpp
/// Automated calibration campaigns and the per-(probe, protocol) curve
/// cache. A campaign is the virtual analogue of what a wet lab does before a
/// clinical deployment: repeated blanks (Eq. 5) plus a concentration sweep
/// over the probe's specified linear range, measured through the same
/// engine + front-end class the deployment will use, fitted into a
/// dsp::CalibrationCurve and inverted into a quant::Quantifier.
///
/// Determinism: every campaign derives its run ids from the target alone
/// (disjoint blocks) and owns its probe and front end, so curves are
/// bitwise reproducible no matter in which order, from which thread, or at
/// which parallelism level the store builds them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>

#include "afe/frontend.hpp"
#include "bio/library.hpp"
#include "fault/sensor_state.hpp"
#include "quant/quantifier.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace idp::quant {

/// Everything a calibration campaign (and the scenario runner that must
/// measure *the same way*) needs to know about the acquisition setup.
struct CampaignConfig {
  std::uint64_t seed = 0x1d9b;   ///< engine noise seed for campaign runs
  int calibration_points = 6;    ///< concentrations per sweep (>= 3)
  int blank_measurements = 8;    ///< Eq. 5 blank repeats (>= 2)
  double ca_duration_s = 30.0;   ///< chronoamperometry window
  double sample_rate_hz = 10.0;  ///< ADC rate
  double probe_area_m2 = 0.23e-6;
  /// Sensitivity gain applied to CYP drug films (the paper's Section III
  /// nanostructuration headroom; planar CYP baselines produce currents too
  /// small for the integrated readout otherwise).
  double cyp_sensitivity_gain = 50.0;
  QuantifierOptions quantifier;
};

/// Probe configured exactly as campaigns measure it (area + family gain).
bio::ProbePtr make_campaign_probe(const CampaignConfig& config,
                                  bio::TargetId target);

/// Lab-grade acquisition chain used by campaigns and scenario scans.
afe::AfeConfig campaign_frontend_config(const CampaignConfig& config,
                                        std::uint64_t seed);

/// The protocol a target is measured with by default: chronoamperometry at
/// the Table I potential for oxidase/direct probes (+250 mV overdrive for
/// direct oxidisers), a cathodic sweep past the Table II reduction potential
/// for CYP probes.
sim::ChannelProtocol default_protocol_for(const CampaignConfig& config,
                                          bio::TargetId target);

/// Scalar response of one measurement: tail-window mean for amperograms,
/// baseline-corrected reduction response at the target's potential for
/// voltammograms. This is the quantity calibration curves are built from,
/// so quantification must read scans back with the same function.
double panel_response(bio::TargetId target, const sim::Trace& ca,
                      const sim::CvCurve& cv);

/// Value-identity key of a protocol (two protocols with equal parameters
/// share one cached curve).
std::string protocol_key(const sim::ChannelProtocol& protocol);

/// One campaign product: the fitted calibration data set plus the
/// quantifier inverting it.
struct Calibration {
  dsp::CalibrationCurve curve;
  Quantifier quantifier;
};

/// Builds and caches calibration curves + quantifiers per
/// (target, protocol). Thread-safe: lookups lock briefly; campaign runs
/// execute outside the lock, and concurrent builders of the same key agree
/// bitwise (first insert wins). Cached entries have stable addresses.
class CalibrationStore {
 public:
  /// Run-id block size of one campaign: cached campaigns own block
  /// [target * kRunsPerCampaignBlock, ...), and recalibrate() callers must
  /// space their blocks by the same stride (validated there).
  static constexpr std::uint64_t kRunsPerCampaignBlock = 4096;

  explicit CalibrationStore(CampaignConfig config = {});

  const CampaignConfig& config() const { return config_; }

  /// Curve / quantifier under the target's default protocol.
  const Quantifier& quantifier(bio::TargetId target);
  const dsp::CalibrationCurve& curve(bio::TargetId target);

  /// Curve / quantifier under an explicit protocol.
  const Quantifier& quantifier(bio::TargetId target,
                               const sim::ChannelProtocol& protocol);
  const dsp::CalibrationCurve& curve(bio::TargetId target,
                                     const sim::ChannelProtocol& protocol);

  /// Run the campaigns for several targets concurrently (0 = hardware
  /// concurrency, 1 = sequential); resulting curves are bitwise identical
  /// to on-demand sequential builds.
  void prepare(std::span<const bio::TargetId> targets,
               std::size_t parallelism = 0);

  /// Number of cached (target, protocol) entries.
  std::size_t cached_count() const;

  /// Run a *recalibration* campaign: the same blanks + sweep as a cached
  /// campaign, but measured through a sensor in the given degraded state --
  /// the field-servicing step the adaptive RecalibrationPolicy schedules
  /// when drift detection trips. Results are never cached (they belong to
  /// one sensor at one age). `run_id_block` is the caller-owned run-id
  /// block (the campaign consumes blank_measurements + calibration_points
  /// consecutive ids starting at run_id_block + 1, and derives its
  /// front-end seed from the block), so concurrent recalibrations of
  /// different sensors stay bitwise deterministic. Thread-safe and const.
  Calibration recalibrate(bio::TargetId target,
                          const sim::ChannelProtocol& protocol,
                          const fault::SensorState& sensor,
                          std::uint64_t run_id_block) const;

 private:
  using Entry = Calibration;
  using Key = std::pair<bio::TargetId, std::string>;

  /// Shared campaign core: blanks + concentration sweep through one probe
  /// and front end, fitted and inverted (no cache interaction).
  Calibration build_calibration(bio::TargetId target,
                                const sim::ChannelProtocol& protocol,
                                const fault::SensorState& sensor,
                                std::uint64_t first_run_id,
                                std::uint64_t frontend_seed) const;
  /// The cached pristine-sensor campaign for one key.
  Entry build_entry(bio::TargetId target,
                    const sim::ChannelProtocol& protocol) const;
  const Entry& entry(bio::TargetId target,
                     const sim::ChannelProtocol& protocol);

  CampaignConfig config_;
  sim::MeasurementEngine engine_;  ///< used through const _seeded calls only
  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Entry>> cache_;
};

}  // namespace idp::quant
