/// \file calibration_store.cpp
/// Calibration campaign execution and the per-(target, protocol) cache.

#include "quant/calibration_store.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dsp/peaks.hpp"
#include "sim/batch.hpp"
#include "util/error.hpp"

namespace idp::quant {

namespace {

std::uint64_t target_index(bio::TargetId id) {
  return static_cast<std::uint64_t>(id);
}

double ca_potential_for(const bio::TargetSpec& spec) {
  // Direct oxidisers are driven 250 mV past their formal potential.
  return spec.family == bio::ProbeFamily::kDirectOxidation
             ? spec.operating_potential + 0.25
             : spec.operating_potential;
}

}  // namespace

bio::ProbePtr make_campaign_probe(const CampaignConfig& config,
                                  bio::TargetId target) {
  const double gain =
      bio::spec(target).family == bio::ProbeFamily::kCytochromeP450
          ? config.cyp_sensitivity_gain
          : 1.0;
  return bio::make_probe(target, config.probe_area_m2, gain);
}

afe::AfeConfig campaign_frontend_config(const CampaignConfig& config,
                                        std::uint64_t seed) {
  afe::AfeConfig fe;
  fe.tia = afe::lab_grade_tia();
  fe.adc = afe::AdcSpec{.bits = 16, .v_low = -10.0, .v_high = 10.0,
                        .sample_rate = config.sample_rate_hz};
  fe.seed = seed;
  return fe;
}

sim::ChannelProtocol default_protocol_for(const CampaignConfig& config,
                                          bio::TargetId target) {
  const bio::TargetSpec& spec = bio::spec(target);
  if (spec.family == bio::ProbeFamily::kCytochromeP450) {
    sim::CyclicVoltammetryProtocol cv;
    cv.e_start = 0.1;
    cv.e_vertex = spec.operating_potential - 0.25;
    cv.scan_rate = 0.02;  // the cell-faithful limit
    cv.cycles = 1;
    cv.sample_rate = config.sample_rate_hz;
    return cv;
  }
  sim::ChronoamperometryProtocol ca;
  ca.potential = ca_potential_for(spec);
  ca.duration = config.ca_duration_s;
  ca.sample_rate = config.sample_rate_hz;
  return ca;
}

double panel_response(bio::TargetId target, const sim::Trace& ca,
                      const sim::CvCurve& cv) {
  if (!ca.empty()) {
    const double t_end = ca.time().back();
    return ca.mean_in_window(0.8 * t_end, t_end);
  }
  return dsp::reduction_response_at(cv, bio::spec(target).operating_potential,
                                    0.05);
}

std::string protocol_key(const sim::ChannelProtocol& protocol) {
  // %.17g is round-trip precision for double: distinct protocols can never
  // collide to one cache key.
  char buf[192];
  if (std::holds_alternative<sim::ChronoamperometryProtocol>(protocol)) {
    const auto& p = std::get<sim::ChronoamperometryProtocol>(protocol);
    std::snprintf(buf, sizeof buf, "ca|%.17g|%.17g|%.17g", p.potential,
                  p.duration, p.sample_rate);
  } else {
    const auto& p = std::get<sim::CyclicVoltammetryProtocol>(protocol);
    std::snprintf(buf, sizeof buf, "cv|%.17g|%.17g|%.17g|%d|%.17g", p.e_start,
                  p.e_vertex, p.scan_rate, p.cycles, p.sample_rate);
  }
  return buf;
}

namespace {

sim::EngineConfig campaign_engine_config(std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

CalibrationStore::CalibrationStore(CampaignConfig config)
    : config_(config), engine_(campaign_engine_config(config.seed)) {
  util::require(config_.calibration_points >= 3,
                "campaign needs >= 3 calibration points");
  util::require(config_.blank_measurements >= 2,
                "campaign needs >= 2 blanks for Eq. 5");
  util::require(
      static_cast<std::uint64_t>(config_.calibration_points) +
              static_cast<std::uint64_t>(config_.blank_measurements) <
          kRunsPerCampaignBlock,
      "campaign exceeds the per-target run-id block");
}

Calibration CalibrationStore::build_calibration(
    bio::TargetId target, const sim::ChannelProtocol& protocol,
    const fault::SensorState& sensor, std::uint64_t first_run_id,
    std::uint64_t frontend_seed) const {
  const bio::TargetSpec& spec = bio::spec(target);
  bio::ProbePtr probe = make_campaign_probe(config_, target);
  afe::AnalogFrontEnd frontend(
      campaign_frontend_config(config_, frontend_seed));
  const std::string name = bio::to_string(target);

  std::uint64_t next_id = first_run_id;
  auto run_once = [&]() -> double {
    const std::uint64_t run_id = ++next_id;
    const sim::Channel channel{probe.get(), nullptr, sensor};
    if (std::holds_alternative<sim::ChronoamperometryProtocol>(protocol)) {
      const auto& p = std::get<sim::ChronoamperometryProtocol>(protocol);
      const sim::Trace trace =
          engine_.run_chronoamperometry_seeded(run_id, channel, p, frontend);
      return panel_response(target, trace, sim::CvCurve{});
    }
    const auto& p = std::get<sim::CyclicVoltammetryProtocol>(protocol);
    const sim::CvCurve curve =
        engine_.run_cyclic_voltammetry_seeded(run_id, channel, p, frontend);
    return panel_response(target, sim::Trace{}, curve);
  };

  Calibration calibration;
  probe->set_bulk_concentration(name, 0.0);
  for (int b = 0; b < config_.blank_measurements; ++b) {
    calibration.curve.add_blank(run_once());
  }

  // Concentration sweep across the probe's specified linear range
  // (mM == mol/m^3), endpoints included.
  const double lo = std::max(spec.linear_lo_mM, 1e-6);
  const double hi = spec.linear_hi_mM;
  util::ensure(hi > lo, "probe spec has a degenerate linear range");
  const int n = config_.calibration_points;
  for (int i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    const double c = lo + f * (hi - lo);
    probe->set_bulk_concentration(name, c);
    calibration.curve.add_point(c, run_once());
  }

  calibration.quantifier = Quantifier(calibration.curve, config_.quantifier);
  return calibration;
}

CalibrationStore::Entry CalibrationStore::build_entry(
    bio::TargetId target, const sim::ChannelProtocol& protocol) const {
  // The cached pristine campaign keeps its historical seeding (run-id
  // block by target, front-end seed by target) so cached curves stay
  // bitwise stable across releases -- the golden figure-of-merit fixture
  // pins this.
  return build_calibration(
      target, protocol, fault::SensorState{},
      target_index(target) * CalibrationStore::kRunsPerCampaignBlock,
      config_.seed + 1000003 * (target_index(target) + 1));
}

Calibration CalibrationStore::recalibrate(bio::TargetId target,
                                          const sim::ChannelProtocol& protocol,
                                          const fault::SensorState& sensor,
                                          std::uint64_t run_id_block) const {
  util::require(
      static_cast<std::uint64_t>(config_.blank_measurements) +
              static_cast<std::uint64_t>(config_.calibration_points) <
          kRunsPerCampaignBlock,
      "campaign exceeds the per-block run-id budget");
  // The front-end seed derives from the run-id block, so two
  // recalibrations of different sensors (or of one sensor at different
  // ages) never share an electronics noise stream.
  return build_calibration(target, protocol, sensor, run_id_block,
                           config_.seed + 0x5ca1ab1eULL +
                               run_id_block * 0x9e3779b97f4a7c15ULL);
}

const CalibrationStore::Entry& CalibrationStore::entry(
    bio::TargetId target, const sim::ChannelProtocol& protocol) {
  const Key key{target, protocol_key(protocol)};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return *it->second;
  }
  // Build outside the lock (campaigns are seconds of simulated chemistry).
  // A concurrent builder of the same key produces a bitwise identical
  // entry; the first insert wins and the duplicate is discarded.
  auto built = std::make_unique<Entry>(build_entry(target, protocol));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = cache_.try_emplace(key, std::move(built));
  return *it->second;
}

const Quantifier& CalibrationStore::quantifier(bio::TargetId target) {
  return quantifier(target, default_protocol_for(config_, target));
}

const dsp::CalibrationCurve& CalibrationStore::curve(bio::TargetId target) {
  return curve(target, default_protocol_for(config_, target));
}

const Quantifier& CalibrationStore::quantifier(
    bio::TargetId target, const sim::ChannelProtocol& protocol) {
  return entry(target, protocol).quantifier;
}

const dsp::CalibrationCurve& CalibrationStore::curve(
    bio::TargetId target, const sim::ChannelProtocol& protocol) {
  return entry(target, protocol).curve;
}

void CalibrationStore::prepare(std::span<const bio::TargetId> targets,
                               std::size_t parallelism) {
  // Dedupe while preserving order, then fan the campaigns out.
  std::vector<bio::TargetId> todo;
  for (bio::TargetId t : targets) {
    if (std::find(todo.begin(), todo.end(), t) == todo.end()) {
      todo.push_back(t);
    }
  }
  const sim::BatchRunner runner(parallelism);
  runner.run(todo.size(), [&](std::size_t i) {
    (void)entry(todo[i], default_protocol_for(config_, todo[i]));
  });
}

std::size_t CalibrationStore::cached_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace idp::quant
