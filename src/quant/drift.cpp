/// \file drift.cpp
/// EWMA + CUSUM drift detector and recalibration-policy validation.

#include "quant/drift.hpp"

#include <cmath>

#include "util/error.hpp"

namespace idp::quant {

DriftDetector::DriftDetector(DriftDetectorOptions options)
    : options_(options) {
  util::require(options_.ewma_lambda > 0.0 && options_.ewma_lambda <= 1.0,
                "EWMA lambda must be in (0, 1]");
  util::require(options_.cusum_slack >= 0.0,
                "CUSUM slack must be non-negative");
}

void DriftDetector::observe(double standardized_residual) {
  util::require(std::isfinite(standardized_residual),
                "QC residual must be finite");
  const double l = options_.ewma_lambda;
  ewma_ = count_ == 0 ? standardized_residual
                      : (1.0 - l) * ewma_ + l * standardized_residual;
  const double k = options_.cusum_slack;
  s_pos_ = std::max(0.0, s_pos_ + standardized_residual - k);
  s_neg_ = std::max(0.0, s_neg_ - standardized_residual - k);
  ++count_;
}

void DriftDetector::reset() {
  ewma_ = 0.0;
  s_pos_ = 0.0;
  s_neg_ = 0.0;
  count_ = 0;
}

bool RecalibrationPolicy::triggered(const DriftDetector& d) const {
  if (d.observation_count() == 0) return false;
  return d.cusum() >= cusum_threshold ||
         std::fabs(d.ewma()) >= ewma_threshold;
}

void RecalibrationPolicy::validate() const {
  if (!enabled) return;
  util::require(qc_fraction > 0.0 && qc_fraction <= 1.0,
                "QC fraction must be in (0, 1]");
  util::require(cusum_threshold > 0.0 && ewma_threshold > 0.0,
                "drift thresholds must be positive");
  util::require(min_interval_h >= 0.0,
                "recalibration interval must be non-negative");
  util::require(max_recalibrations >= 0,
                "max recalibrations must be non-negative");
  // Construction validates the detector options.
  (void)DriftDetector(detector);
}

}  // namespace idp::quant
