/// \file drift.hpp
/// Sensor-drift detection and the adaptive recalibration policy.
///
/// A deployed sensor is monitored through periodic QC checks: a blank and a
/// known mid-range standard are measured through the *same* degraded sensor
/// the diagnostic scans use, each response is standardised against what the
/// current calibration predicts, and the residual stream feeds an EWMA plus
/// a two-sided CUSUM -- the classic change-detection pair: EWMA reacts to
/// sustained shifts, CUSUM accumulates small persistent ones. When either
/// statistic crosses its threshold the RecalibrationPolicy schedules a
/// fresh CalibrationStore campaign on the aged sensor, and the detector
/// restarts against the new curve.
#pragma once

#include <cstddef>

namespace idp::quant {

/// Change-detection tuning. Residuals are standardised (units of the
/// calibration's propagated response sigma), so the knobs are dimensionless.
struct DriftDetectorOptions {
  /// EWMA forgetting factor in (0, 1]: z_t = (1-l)*z_{t-1} + l*x_t.
  double ewma_lambda = 0.2;
  /// CUSUM slack k: drifts below k sigma per check are treated as noise.
  double cusum_slack = 0.5;
};

/// Streaming EWMA + two-sided CUSUM over standardised QC residuals.
class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorOptions options = {});

  /// Feed one standardised residual (measured - predicted) / sigma.
  void observe(double standardized_residual);

  /// Exponentially-weighted mean of the residual stream.
  double ewma() const { return ewma_; }
  /// Two-sided CUSUM statistic: max of the upward and downward sums.
  double cusum() const { return s_pos_ > s_neg_ ? s_pos_ : s_neg_; }
  double cusum_positive() const { return s_pos_; }
  double cusum_negative() const { return s_neg_; }
  std::size_t observation_count() const { return count_; }

  /// Restart (after a recalibration re-zeroes the residuals).
  void reset();

  const DriftDetectorOptions& options() const { return options_; }

 private:
  DriftDetectorOptions options_;
  double ewma_ = 0.0;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
  std::size_t count_ = 0;
};

/// When and how a monitored sensor is recalibrated. Disabled by default --
/// scenarios without a policy behave exactly as before (no QC measurements
/// are taken at all).
struct RecalibrationPolicy {
  bool enabled = false;

  /// QC standard concentration, as a fraction of the calibrated window:
  /// c_qc = c_low + qc_fraction * (c_high - c_low).
  double qc_fraction = 0.5;

  DriftDetectorOptions detector;

  /// Trigger thresholds. The CUSUM threshold is in accumulated sigma; the
  /// EWMA threshold is on the raw EWMA value (its steady-state sigma is
  /// sqrt(lambda / (2 - lambda)) ~= 0.33 for the default lambda).
  double cusum_threshold = 8.0;
  double ewma_threshold = 1.5;

  /// Scheduling limits: never recalibrate more often than min_interval_h
  /// and at most max_recalibrations times per sensor life.
  double min_interval_h = 24.0;
  int max_recalibrations = 8;

  /// Pure trigger predicate on the detector statistics.
  bool triggered(const DriftDetector& d) const;

  /// Throws std::invalid_argument on nonsensical tuning.
  void validate() const;
};

}  // namespace idp::quant
