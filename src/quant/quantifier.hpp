/// \file quantifier.hpp
/// Inverse quantification: the diagnostic read-back step the platform exists
/// for. A calibration curve maps concentration -> response; the Quantifier
/// inverts its certified linear range so a measured panel response becomes a
/// concentration *estimate with uncertainty* -- what the clinician actually
/// receives. Out-of-range responses clamp to the calibrated window and are
/// flagged rather than silently extrapolated.
#pragma once

#include <cstdint>

#include "dsp/calibration.hpp"

namespace idp::quant {

/// Why an estimate should (not) be trusted. Flags are a bitmask: one sample
/// can simultaneously sit below the LOD and below the calibrated range.
enum class QuantFlag : std::uint32_t {
  kNone = 0,
  kBelowRange = 1u << 0,  ///< response under the linear range; value clamped
  kAboveRange = 1u << 1,  ///< response over the linear range; value clamped
  kBelowLod = 1u << 2,    ///< signal excursion within Vb + 3 sigma_b (Eq. 5)
  kGlobalFit = 1u << 3,   ///< no certified linear range; global fit inverted
};

constexpr QuantFlag operator|(QuantFlag a, QuantFlag b) {
  return static_cast<QuantFlag>(static_cast<std::uint32_t>(a) |
                                static_cast<std::uint32_t>(b));
}
constexpr QuantFlag operator&(QuantFlag a, QuantFlag b) {
  return static_cast<QuantFlag>(static_cast<std::uint32_t>(a) &
                                static_cast<std::uint32_t>(b));
}
inline QuantFlag& operator|=(QuantFlag& a, QuantFlag b) { return a = a | b; }
constexpr bool has_flag(QuantFlag flags, QuantFlag bit) {
  return (flags & bit) != QuantFlag::kNone;
}

/// A concentration read back from one measured response [mol/m^3 == mM].
/// The confidence interval is centred on the *unclamped* inversion (so a
/// truth just outside the calibrated window can still be covered) and
/// floored at zero concentration.
struct ConcentrationEstimate {
  double value = 0.0;    ///< clamped to the calibrated range
  double ci_low = 0.0;   ///< lower confidence bound
  double ci_high = 0.0;  ///< upper confidence bound
  QuantFlag flags = QuantFlag::kNone;

  bool ok() const { return flags == QuantFlag::kNone; }
  bool clamped() const {
    return has_flag(flags, QuantFlag::kBelowRange) ||
           has_flag(flags, QuantFlag::kAboveRange);
  }
  bool below_lod() const { return has_flag(flags, QuantFlag::kBelowLod); }
};

/// Quantifier construction knobs.
struct QuantifierOptions {
  /// Linear-range detection tolerance handed to CalibrationCurve.
  double linear_tolerance = 0.07;
  /// Half-width of the confidence interval in units of the propagated
  /// response sigma. 3.0 matches the paper's 3 sigma_b LOD convention
  /// (Eq. 5), so "truth inside the CI" and "signal above the LOD" make the
  /// same statistical promise.
  double coverage_z = 3.0;
};

/// Inverts one probe's calibration curve. The constructor extracts
/// everything it needs (fit, range, blank statistics), so a Quantifier is a
/// small value type independent of the curve's lifetime, and quantify() is
/// const and thread-safe.
class Quantifier {
 public:
  /// Invalid quantifier (valid() == false); quantify() throws.
  Quantifier() = default;

  /// Build from a calibration data set. Requires an invertible (non-zero
  /// slope) fit over >= 2 distinct concentrations; uses the certified
  /// linear range when one exists and flags kGlobalFit otherwise.
  explicit Quantifier(const dsp::CalibrationCurve& curve,
                      QuantifierOptions options = {});

  bool valid() const { return valid_; }

  /// Invert one measured response into a concentration estimate.
  ConcentrationEstimate quantify(double response) const;

  /// Calibrated (invertible) concentration window [mol/m^3].
  double c_low() const { return c_low_; }
  double c_high() const { return c_high_; }
  /// Slope of the inverted fit [response / (mol/m^3)].
  double slope() const { return fit_.slope; }
  const util::LinearFit& fit() const { return fit_; }
  /// Propagated response sigma: sqrt(sigma_b^2 + residual_rms^2).
  double response_sigma() const { return response_sigma_; }
  /// Eq. 5 decision threshold in signal units (only meaningful when the
  /// curve carried >= 2 blanks; otherwise the LOD flag is disabled).
  bool lod_known() const { return lod_known_; }
  double lod_signal() const { return lod_signal_; }
  double blank_mean() const { return blank_mean_; }

 private:
  bool valid_ = false;
  util::LinearFit fit_;
  bool from_linear_range_ = false;
  double c_low_ = 0.0;
  double c_high_ = 0.0;
  double response_sigma_ = 0.0;
  double coverage_z_ = 3.0;
  bool lod_known_ = false;
  double lod_signal_ = 0.0;
  double blank_mean_ = 0.0;
};

}  // namespace idp::quant
