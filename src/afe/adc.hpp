/// \file adc.hpp
/// Successive-approximation ADC model: quantisation, clipping and sample
/// rate. Combined with the TIA gain it realises the paper's 10 nA / 100 nA
/// current resolution requirements.
#pragma once

#include <cstdint>

namespace idp::afe {

/// SAR ADC parameters.
struct AdcSpec {
  int bits = 12;
  double v_low = -1.0;   ///< input range low [V]
  double v_high = +1.0;  ///< input range high [V]
  double sample_rate = 10.0;  ///< [Hz]; biosensing signals are slow
};

/// Ideal-linearity SAR ADC.
class SarAdc {
 public:
  explicit SarAdc(AdcSpec spec);

  /// Digitise a voltage: returns the code (0 .. 2^bits - 1), clipped.
  std::uint32_t convert(double v) const;

  /// Voltage corresponding to a code (code centre).
  double voltage_of(std::uint32_t code) const;

  /// Convenience: quantise a voltage through convert + voltage_of.
  double quantize(double v) const { return voltage_of(convert(v)); }

  /// One least-significant-bit step [V].
  double lsb() const;

  std::uint32_t code_count() const { return 1u << spec_.bits; }
  const AdcSpec& spec() const { return spec_; }

 private:
  AdcSpec spec_;
};

}  // namespace idp::afe
