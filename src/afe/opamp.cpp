/// \file opamp.cpp
/// Behavioral op-amp implementation: finite DC gain, single-pole
/// bandwidth, slew limiting and output saturation.

#include "afe/opamp.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace idp::afe {

OpAmp::OpAmp(OpAmpParams params) : params_(params) {
  util::require(params_.dc_gain > 1.0, "dc gain must exceed unity");
  util::require(params_.gbw_hz > 0.0, "GBW must be positive");
  util::require(params_.rail_high_v > params_.rail_low_v, "bad rails");
}

double OpAmp::step(double v_plus, double v_minus, double dt) {
  util::require(dt > 0.0, "dt must be positive");
  // One-pole model: vout tracks A0*(vd + offset) with pole at gbw/A0.
  const double v_target =
      params_.dc_gain * (v_plus - v_minus + params_.offset_v);
  const double pole_hz = params_.gbw_hz / params_.dc_gain;
  const double alpha = 1.0 - std::exp(-2.0 * std::numbers::pi * pole_hz * dt);
  v_out_ += alpha * (v_target - v_out_);
  v_out_ = std::clamp(v_out_, params_.rail_low_v, params_.rail_high_v);
  return v_out_;
}

}  // namespace idp::afe
