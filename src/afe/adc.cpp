/// \file adc.cpp
/// SAR ADC model implementation: code quantisation, rail clipping and
/// LSB sizing for the paper's 10 nA / 100 nA resolution budgets.

#include "afe/adc.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::afe {

SarAdc::SarAdc(AdcSpec spec) : spec_(spec) {
  util::require(spec_.bits >= 4 && spec_.bits <= 24, "bits out of range");
  util::require(spec_.v_high > spec_.v_low, "bad input range");
  util::require(spec_.sample_rate > 0.0, "sample rate must be positive");
}

double SarAdc::lsb() const {
  return (spec_.v_high - spec_.v_low) / static_cast<double>(code_count());
}

std::uint32_t SarAdc::convert(double v) const {
  const double clipped = std::clamp(v, spec_.v_low, spec_.v_high);
  const auto code = static_cast<std::int64_t>(
      std::floor((clipped - spec_.v_low) / lsb()));
  const std::int64_t max_code = static_cast<std::int64_t>(code_count()) - 1;
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(code, 0, max_code));
}

double SarAdc::voltage_of(std::uint32_t code) const {
  const std::uint32_t c = std::min(code, code_count() - 1);
  return spec_.v_low + (static_cast<double>(c) + 0.5) * lsb();
}

}  // namespace idp::afe
