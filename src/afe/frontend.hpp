/// \file frontend.hpp
/// The assembled acquisition chain of Fig. 2: TIA + ADC + optional flicker
/// countermeasures (chopper modulation, correlated double sampling with a
/// blank working electrode).
///
/// The front end operates sample-by-sample at the ADC rate; the measurement
/// engine feeds it the "true" electrode currents (already carrying the
/// electrochemical noise of the sensor) and receives digitised current
/// estimates back.
#pragma once

#include <cstdint>

#include "afe/adc.hpp"
#include "afe/tia.hpp"
#include "util/random.hpp"

namespace idp::afe {

/// Flicker-noise countermeasures (Section II-C).
struct NoiseReduction {
  bool chopper = false;  ///< modulate above the 1/f corner before amplifying
  bool cds = false;      ///< subtract a blank working electrode

  /// Residual fraction of amplifier flicker that survives chopping.
  double chopper_residual = 0.05;
  /// White-noise penalty of chopping (ripple folding).
  double chopper_white_penalty = 1.1;
  /// Residual fraction of amplifier flicker after CDS (the two samples are
  /// taken close in time through the same amplifier).
  double cds_residual = 0.2;
};

/// Complete front-end configuration.
struct AfeConfig {
  TiaSpec tia;
  AdcSpec adc;
  NoiseReduction reduction;
  std::uint64_t seed = 42;  ///< noise generator seed (deterministic)
};

/// One digitising channel of the platform's readout.
class AnalogFrontEnd {
 public:
  explicit AnalogFrontEnd(AfeConfig config);

  /// Digitise one sample.
  /// \param i_signal  current of the active working electrode [A]
  /// \param i_blank   current of the blank working electrode [A]; used only
  ///                  when CDS is enabled (pass 0 otherwise)
  /// \return digitised current estimate [A]
  double sample(double i_signal, double i_blank = 0.0);

  /// Electronics aging (fault subsystem): the chain reads
  /// gain * i + offset at its input until the next call. The measurement
  /// engine applies the channel's SensorState here at scan start; the
  /// identity (1, 0) is an exact no-op. Gain must be positive.
  void set_drift(double gain, double offset_A);
  double drift_gain() const { return drift_gain_; }
  double drift_offset() const { return drift_offset_; }

  /// RMS of the electronic noise added per sample [A] (white part).
  double white_noise_rms() const { return white_rms_; }

  /// Effective amplifier flicker RMS after the enabled countermeasures [A].
  double effective_flicker_rms() const;

  /// ADC least-significant bit expressed in input current [A].
  double lsb_current() const;

  /// Full-scale input current [A].
  double full_scale_current() const { return tia_.full_scale_current(); }

  const AfeConfig& config() const { return config_; }

 private:
  AfeConfig config_;
  Tia tia_;
  SarAdc adc_;
  util::Rng rng_;
  util::PinkNoise flicker_;
  double white_rms_ = 0.0;
  double drift_gain_ = 1.0;    ///< aging gain error (1 = nominal)
  double drift_offset_ = 0.0;  ///< aging input offset current [A]
};

}  // namespace idp::afe
