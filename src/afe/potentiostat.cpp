/// \file potentiostat.cpp
/// Potentiostat control-loop solution: DC operating point and step
/// response of the three-electrode loop against a cell impedance.

#include "afe/potentiostat.hpp"

#include <cmath>

#include "util/error.hpp"

namespace idp::afe {

Potentiostat::Potentiostat(PotentiostatSpec spec) : spec_(spec) {
  util::require(spec_.uncompensated_fraction >= 0.0 &&
                    spec_.uncompensated_fraction <= 1.0,
                "uncompensated fraction must be in [0,1]");
}

double Potentiostat::applied_potential(double setpoint, double cell_current,
                                       const chem::CellImpedance& z) const {
  const double a0 = spec_.control_amp.dc_gain;
  const double closed_loop = setpoint * a0 / (1.0 + a0);
  const double r_u = spec_.uncompensated_fraction * z.r_solution;
  return closed_loop + spec_.control_amp.offset_v - cell_current * r_u;
}

double Potentiostat::static_error(double setpoint) const {
  const double a0 = spec_.control_amp.dc_gain;
  return std::fabs(setpoint / (1.0 + a0)) +
         std::fabs(spec_.control_amp.offset_v);
}

Potentiostat::Transient Potentiostat::step_response(
    double step_v, const chem::CellImpedance& z, double c_dl, double duration,
    double dt) const {
  util::require(duration > 0.0 && dt > 0.0 && dt < duration, "bad timing");
  util::require(c_dl > 0.0, "double-layer capacitance must be positive");

  // Loop: control amp output drives CE; the cell is Rce in series with the
  // solution resistance and the WE double-layer capacitance to (virtual)
  // ground. The RE taps the node between Rce and Rs.
  OpAmp amp(spec_.control_amp);
  Transient out;
  double v_cdl = 0.0;  // voltage on the double-layer capacitance
  const double r_total = z.r_counter + z.r_solution;
  const auto n_steps = static_cast<std::size_t>(duration / dt);
  out.t.reserve(n_steps);
  out.e_re.reserve(n_steps);

  const double tol = 0.01 * std::fabs(step_v);
  double last_outside = 0.0;
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    // Cell current from amp output through Rce+Rs into Cdl.
    const double v_ce = amp.output();
    const double i_cell = (v_ce - v_cdl) / r_total;
    v_cdl += i_cell / c_dl * dt;
    // RE potential: node between Rce and Rs.
    const double e_re = v_ce - i_cell * z.r_counter;
    // Feedback: non-inverting input holds the setpoint, inverting input
    // senses the RE (classic adder-free Fig. 1 topology).
    amp.step(step_v, e_re, dt);
    out.t.push_back(t);
    out.e_re.push_back(e_re);
    if (std::fabs(e_re - step_v) > tol) last_outside = t;
  }
  out.settling_time = last_outside;
  out.settled =
      !out.e_re.empty() && std::fabs(out.e_re.back() - step_v) <= tol;
  return out;
}

}  // namespace idp::afe
