/// \file i2f.cpp
/// Current-to-frequency converter implementation: charge-packet
/// integration loop and pulse counting over a gate window.

#include "afe/i2f.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::afe {

CurrentToFrequency::CurrentToFrequency(I2fSpec spec) : spec_(spec) {
  util::require(spec_.c_int > 0.0 && spec_.v_threshold > 0.0 &&
                    spec_.max_frequency > 0.0,
                "invalid I2F parameters");
}

double CurrentToFrequency::frequency(double i_in) const {
  const double f = std::fabs(i_in) / (spec_.c_int * spec_.v_threshold);
  return std::min(f, spec_.max_frequency);
}

std::uint64_t CurrentToFrequency::count(double i_in, double gate_time) const {
  util::require(gate_time > 0.0, "gate time must be positive");
  return static_cast<std::uint64_t>(std::floor(frequency(i_in) * gate_time));
}

double CurrentToFrequency::current_from_count(std::uint64_t n,
                                              double gate_time) const {
  util::require(gate_time > 0.0, "gate time must be positive");
  return static_cast<double>(n) / gate_time * spec_.c_int * spec_.v_threshold;
}

double CurrentToFrequency::resolution(double gate_time) const {
  util::require(gate_time > 0.0, "gate time must be positive");
  return spec_.c_int * spec_.v_threshold / gate_time;
}

}  // namespace idp::afe
