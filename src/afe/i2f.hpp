/// \file i2f.hpp
/// Current-to-frequency converter: the alternative readout Section II-C
/// cites ([26], [27]) -- the input current charges an integration capacitor
/// to a threshold, emitting one pulse per charge packet; counting pulses
/// over a gate time digitises the current without a linear ADC.
#pragma once

#include <cstdint>

namespace idp::afe {

/// I-to-F design parameters.
struct I2fSpec {
  double c_int = 10.0e-12;     ///< integration capacitor [F]
  double v_threshold = 1.0;    ///< comparator threshold [V]
  double max_frequency = 1.0e6;  ///< comparator/reset speed limit [Hz]
};

/// Behavioral current-to-frequency converter.
class CurrentToFrequency {
 public:
  explicit CurrentToFrequency(I2fSpec spec);

  /// Output frequency for a constant input current [Hz]: i / (C * Vth),
  /// clipped at the comparator limit.
  double frequency(double i_in) const;

  /// Count pulses over `gate_time` seconds for a constant current,
  /// including the fractional-count quantisation (floor).
  std::uint64_t count(double i_in, double gate_time) const;

  /// Estimate the current back from a pulse count.
  double current_from_count(std::uint64_t n, double gate_time) const;

  /// Current quantisation step for a given gate time [A]: one count.
  double resolution(double gate_time) const;

  const I2fSpec& spec() const { return spec_; }

 private:
  I2fSpec spec_;
};

}  // namespace idp::afe
