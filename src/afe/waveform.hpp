/// \file waveform.hpp
/// Voltage-generator waveforms (Section II-C): a fixed potential for
/// chronoamperometry, a slow triangular sweep for cyclic voltammetry, and a
/// staircase for multi-level protocols.
#pragma once

#include <memory>
#include <vector>

namespace idp::afe {

/// A potential-vs-time program fed to the potentiostat.
class Waveform {
 public:
  virtual ~Waveform() = default;
  /// Potential at time t [V]; t beyond duration() holds the final value.
  virtual double value(double t) const = 0;
  /// Total programmed duration [s].
  virtual double duration() const = 0;
  /// Sweep direction at time t: +1 rising, -1 falling, 0 constant.
  virtual int direction(double t) const = 0;
};

using WaveformPtr = std::unique_ptr<Waveform>;

/// Fixed potential for `duration` seconds (chronoamperometry).
class ConstantWaveform final : public Waveform {
 public:
  ConstantWaveform(double level, double duration);
  double value(double) const override { return level_; }
  double duration() const override { return duration_; }
  int direction(double) const override { return 0; }

 private:
  double level_;
  double duration_;
};

/// Symmetric triangular sweep between e_start and e_vertex at `scan_rate`
/// V/s, repeated for `cycles` cycles (cyclic voltammetry). The paper's cells
/// only respond faithfully up to ~20 mV/s -- enforcing that is the platform
/// layer's job; the waveform itself accepts any positive rate.
class TriangleWaveform final : public Waveform {
 public:
  TriangleWaveform(double e_start, double e_vertex, double scan_rate,
                   int cycles = 1);
  double value(double t) const override;
  double duration() const override;
  int direction(double t) const override;

  double scan_rate() const { return scan_rate_; }
  double e_start() const { return e_start_; }
  double e_vertex() const { return e_vertex_; }
  int cycles() const { return cycles_; }
  /// Time of one half-sweep [s].
  double half_period() const;

 private:
  double e_start_;
  double e_vertex_;
  double scan_rate_;
  int cycles_;
};

/// Piecewise-constant staircase: level[i] held for dwell seconds each.
class StaircaseWaveform final : public Waveform {
 public:
  StaircaseWaveform(std::vector<double> levels, double dwell);
  double value(double t) const override;
  double duration() const override;
  int direction(double) const override { return 0; }

 private:
  std::vector<double> levels_;
  double dwell_;
};

}  // namespace idp::afe
