/// \file mux.hpp
/// Analog multiplexer for sharing one readout chain among several working
/// electrodes (Section II-A / Fig. 2 / De Venuto et al. [23]).
#pragma once

#include <cstddef>

namespace idp::afe {

/// Mux design parameters.
struct MuxSpec {
  std::size_t channels = 8;
  double r_on = 100.0;             ///< on-resistance [ohm]
  double settle_time = 5.0e-3;     ///< time to wait after switching [s]
  double charge_injection = 1.0e-12;  ///< injected charge per switch [C]
  double injection_tau = 1.0e-3;   ///< decay constant of the spike [s]
  double crosstalk = 1.0e-4;       ///< off-channel current leakage fraction
};

/// Behavioral analog mux. Switching to a channel starts a charge-injection
/// transient; `artifact_current(t)` reports the spurious current it adds to
/// the readout t seconds after the switch.
class AnalogMux {
 public:
  explicit AnalogMux(MuxSpec spec);

  /// Select a channel (index < channels); records the switch time.
  void select(std::size_t channel, double now);

  std::size_t selected() const { return selected_; }

  /// True once the post-switch settling window has elapsed.
  bool settled(double now) const;

  /// Spurious current injected by the switch transition [A] at time `now`.
  double artifact_current(double now) const;

  /// Same artifact model, evaluated against an explicit switch instant
  /// instead of the mux's internal state. This is what the parallel panel
  /// scan uses: channel start times are scheduled up front, so every channel
  /// can evaluate its own artifact concurrently on the shared (const) mux.
  double artifact_current(double now, double switch_time) const;

  /// Instant of the most recent actual channel change (-inf-like before the
  /// first switch, matching a mux that has been settled forever).
  double last_switch() const { return last_switch_; }

  /// Current leaking in from one off channel carrying i_off [A].
  double crosstalk_current(double i_off) const { return spec_.crosstalk * i_off; }

  const MuxSpec& spec() const { return spec_; }

 private:
  MuxSpec spec_;
  std::size_t selected_ = 0;
  double last_switch_ = -1.0e18;
};

}  // namespace idp::afe
