/// \file tia.cpp
/// Transimpedance amplifier implementation: gain/noise transfer of the
/// current-to-voltage stage and the paper's two readout design classes.

#include "afe/tia.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace idp::afe {

Tia::Tia(TiaSpec spec) : spec_(spec) {
  util::require(spec_.feedback_resistance > 0.0, "Rf must be positive");
  util::require(spec_.feedback_capacitance > 0.0, "Cf must be positive");
  util::require(spec_.opamp.rail_high_v > 0.0 && spec_.opamp.rail_low_v < 0.0,
                "TIA rails must straddle zero");
}

double Tia::output_voltage(double i_in) const {
  const double v = -spec_.feedback_resistance * i_in;
  return std::clamp(v, spec_.opamp.rail_low_v, spec_.opamp.rail_high_v);
}

double Tia::current_from_voltage(double v_out) const {
  return -v_out / spec_.feedback_resistance;
}

double Tia::full_scale_current() const {
  return spec_.opamp.rail_high_v / spec_.feedback_resistance;
}

double Tia::bandwidth() const {
  return 1.0 / (2.0 * std::numbers::pi * spec_.feedback_resistance *
                spec_.feedback_capacitance);
}

double Tia::settle(double i_in, double dt) {
  const double target = output_voltage(i_in);
  const double tau =
      spec_.feedback_resistance * spec_.feedback_capacitance;
  const double alpha = 1.0 - std::exp(-dt / tau);
  v_out_ += alpha * (target - v_out_);
  return v_out_;
}

double Tia::input_noise_density() const {
  const double thermal =
      4.0 * util::kBoltzmann * util::kStandardTemperatureK /
      spec_.feedback_resistance;  // A^2/Hz
  const double en = spec_.opamp.noise_nv_rthz * 1e-9;
  const double from_voltage = en / spec_.feedback_resistance;
  const double in = spec_.opamp.current_noise_fa_rthz * 1e-15;
  return std::sqrt(thermal + from_voltage * from_voltage + in * in);
}

double Tia::flicker_corner() const { return spec_.opamp.flicker_corner_hz; }

TiaSpec oxidase_class_tia() {
  TiaSpec s;
  s.feedback_resistance = 1.0e5;  // 1 V rail / 100 kohm = 10 uA full scale
  s.feedback_capacitance = 3.2e-9;  // ~500 Hz bandwidth
  s.opamp.rail_high_v = 1.0;
  s.opamp.rail_low_v = -1.0;
  s.target_resolution = 10.0e-9;  // Section II-C requirement
  s.flicker_current_rms = 4.0e-9;
  return s;
}

TiaSpec cyp_class_tia() {
  TiaSpec s;
  s.feedback_resistance = 1.0e4;  // 1 V rail / 10 kohm = 100 uA full scale
  s.feedback_capacitance = 3.2e-8;
  s.opamp.rail_high_v = 1.0;
  s.opamp.rail_low_v = -1.0;
  s.target_resolution = 100.0e-9;
  s.flicker_current_rms = 40.0e-9;
  return s;
}

TiaSpec lab_grade_tia() {
  TiaSpec s;
  s.feedback_resistance = 1.0e7;  // 100 nA full scale per volt
  s.feedback_capacitance = 1.6e-9;
  s.opamp.rail_high_v = 10.0;
  s.opamp.rail_low_v = -10.0;
  s.opamp.noise_nv_rthz = 5.0;
  s.opamp.flicker_corner_hz = 1.0;
  s.target_resolution = 10.0e-12;
  s.flicker_current_rms = 1.0e-12;
  return s;
}

}  // namespace idp::afe
