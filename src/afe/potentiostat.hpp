/// \file potentiostat.hpp
/// Potentiostat model (Fig. 1): a control amplifier drives the counter
/// electrode so that the reference electrode tracks the programmed
/// potential while the working electrode sits at the virtual ground of the
/// transimpedance stage.
///
/// Two views are provided:
///   * a quasi-static view (regulation error, uncompensated-resistance
///     drop) used by the measurement engine, where electrochemical time
///     scales (seconds) dwarf electrical ones (microseconds); and
///   * a microsecond-scale transient simulation used by the Fig. 1 bench to
///     characterise loop settling.
#pragma once

#include <vector>

#include "afe/opamp.hpp"
#include "chem/cell.hpp"

namespace idp::afe {

/// Potentiostat design parameters.
struct PotentiostatSpec {
  OpAmpParams control_amp;
  /// Fraction of the solution resistance between RE and WE that the loop
  /// cannot compensate (RE placement); multiplies the cell current into a
  /// potential error.
  double uncompensated_fraction = 0.1;
};

/// Fig. 1 potentiostat.
class Potentiostat {
 public:
  explicit Potentiostat(PotentiostatSpec spec);

  /// Quasi-static potential actually applied across WE/RE when the loop is
  /// asked for `setpoint` while `cell_current` flows [V]:
  ///   E = setpoint * A/(1+A) + offset - i * Ru.
  double applied_potential(double setpoint, double cell_current,
                           const chem::CellImpedance& z) const;

  /// Static regulation error |applied - setpoint| at zero current [V].
  double static_error(double setpoint) const;

  /// Result of a small-signal loop transient.
  struct Transient {
    std::vector<double> t;     ///< time [s]
    std::vector<double> e_re;  ///< reference-electrode potential [V]
    double settling_time = 0.0;  ///< time to stay within 1% of the step [s]
    bool settled = false;
  };

  /// Simulate the loop answering a potential step of `step_v` into a cell
  /// with the given impedance and working-electrode double-layer
  /// capacitance. dt should be well below 1/gbw (e.g. 10 ns).
  Transient step_response(double step_v, const chem::CellImpedance& z,
                          double c_dl, double duration, double dt) const;

  const PotentiostatSpec& spec() const { return spec_; }

 private:
  PotentiostatSpec spec_;
};

}  // namespace idp::afe
