/// \file waveform.cpp
/// Waveform generator implementation: sampling of constant
/// (chronoamperometry), triangular (cyclic voltammetry) and staircase
/// potential programs.

#include "afe/waveform.hpp"

#include <cmath>

#include "util/error.hpp"

namespace idp::afe {

ConstantWaveform::ConstantWaveform(double level, double duration)
    : level_(level), duration_(duration) {
  util::require(duration > 0.0, "duration must be positive");
}

TriangleWaveform::TriangleWaveform(double e_start, double e_vertex,
                                   double scan_rate, int cycles)
    : e_start_(e_start),
      e_vertex_(e_vertex),
      scan_rate_(scan_rate),
      cycles_(cycles) {
  util::require(scan_rate > 0.0, "scan rate must be positive");
  util::require(cycles >= 1, "need at least one cycle");
  util::require(e_vertex != e_start, "degenerate sweep window");
}

double TriangleWaveform::half_period() const {
  return std::fabs(e_vertex_ - e_start_) / scan_rate_;
}

double TriangleWaveform::duration() const {
  return 2.0 * half_period() * static_cast<double>(cycles_);
}

double TriangleWaveform::value(double t) const {
  if (t <= 0.0) return e_start_;
  const double hp = half_period();
  const double total = duration();
  const double tc = std::min(t, total);
  const double phase = std::fmod(tc, 2.0 * hp);
  const double sign = (e_vertex_ > e_start_) ? 1.0 : -1.0;
  if (t >= total) return e_start_;
  if (phase <= hp) return e_start_ + sign * scan_rate_ * phase;
  return e_vertex_ - sign * scan_rate_ * (phase - hp);
}

int TriangleWaveform::direction(double t) const {
  if (t < 0.0 || t >= duration()) return 0;
  const double hp = half_period();
  const double phase = std::fmod(t, 2.0 * hp);
  const bool first_half = phase < hp;
  const bool rising_first = e_vertex_ > e_start_;
  return (first_half == rising_first) ? +1 : -1;
}

StaircaseWaveform::StaircaseWaveform(std::vector<double> levels, double dwell)
    : levels_(std::move(levels)), dwell_(dwell) {
  util::require(!levels_.empty(), "staircase needs at least one level");
  util::require(dwell > 0.0, "dwell must be positive");
}

double StaircaseWaveform::value(double t) const {
  if (t <= 0.0) return levels_.front();
  const auto idx = static_cast<std::size_t>(t / dwell_);
  if (idx >= levels_.size()) return levels_.back();
  return levels_[idx];
}

double StaircaseWaveform::duration() const {
  return dwell_ * static_cast<double>(levels_.size());
}

}  // namespace idp::afe
