/// \file tia.hpp
/// Transimpedance amplifier: converts the working-electrode current into a
/// voltage (Fig. 1, right half). Two design classes match the paper's
/// Section II-C requirements:
///   * oxidase class: +/-10 uA full scale, 10 nA resolution;
///   * CYP class:    +/-100 uA full scale, 100 nA resolution.
#pragma once

#include "afe/opamp.hpp"

namespace idp::afe {

/// TIA design parameters. The output is v = -Rf * i, clipped at the rails;
/// full-scale current = rail / Rf.
struct TiaSpec {
  double feedback_resistance = 1.0e5;   ///< Rf [ohm]
  double feedback_capacitance = 1.6e-9; ///< Cf [F]; bandwidth = 1/(2 pi Rf Cf)
  OpAmpParams opamp;
  /// Design-target resolvable current step [nA-scale]; realised by the ADC
  /// quantisation, recorded here for catalog/reporting purposes.
  double target_resolution = 10.0e-9;
  /// Input-referred 1/f (flicker) noise of the integrated CMOS stage,
  /// expressed as an RMS current over the 0.01..5 Hz biosensing band [A].
  /// This is the component chopping suppresses (Section II-C); lab-grade
  /// instruments make it negligible.
  double flicker_current_rms = 4.0e-9;
};

/// Behavioral transimpedance stage.
class Tia {
 public:
  explicit Tia(TiaSpec spec);

  /// Ideal (settled, noiseless) output voltage for input current i [A].
  double output_voltage(double i_in) const;

  /// Inverse transfer: current implied by an output voltage.
  double current_from_voltage(double v_out) const;

  /// Full-scale input current [A] (output at the rail).
  double full_scale_current() const;

  /// -3 dB bandwidth [Hz] = 1/(2 pi Rf Cf).
  double bandwidth() const;

  /// First-order settling toward the ideal output; returns the new output.
  double settle(double i_in, double dt);
  double output() const { return v_out_; }
  void reset() { v_out_ = 0.0; }

  /// White input-referred current-noise density [A/sqrt(Hz)]:
  /// thermal of Rf plus op-amp voltage noise divided by Rf plus op-amp
  /// current noise.
  double input_noise_density() const;

  /// 1/f corner of the input-referred current noise [Hz] (inherited from
  /// the op-amp voltage noise).
  double flicker_corner() const;

  const TiaSpec& spec() const { return spec_; }

 private:
  TiaSpec spec_;
  double v_out_ = 0.0;
};

/// Catalog preset: oxidase-grade readout (+/-10 uA FS, 10 nA resolution).
TiaSpec oxidase_class_tia();

/// Catalog preset: CYP-grade readout (+/-100 uA FS, 100 nA resolution).
TiaSpec cyp_class_tia();

/// Catalog preset: bench-top laboratory potentiostat readout (pA-grade),
/// used to reproduce the *literature* characterisation of Table III, which
/// the paper's authors measured on lab instruments rather than the
/// integrated AFE.
TiaSpec lab_grade_tia();

}  // namespace idp::afe
