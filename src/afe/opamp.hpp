/// \file opamp.hpp
/// Behavioral operational-amplifier model used by the potentiostat control
/// loop and the transimpedance stage (Fig. 1 of the paper).
#pragma once

namespace idp::afe {

/// Small-signal + noise parameters of an op-amp.
struct OpAmpParams {
  double dc_gain = 1.0e5;          ///< open-loop DC gain [V/V]
  double gbw_hz = 1.0e6;           ///< gain-bandwidth product [Hz]
  double offset_v = 0.5e-3;        ///< input-referred offset [V]
  double noise_nv_rthz = 20.0;     ///< white input voltage noise [nV/sqrt(Hz)]
  double flicker_corner_hz = 100.0;///< 1/f corner of the voltage noise [Hz]
  double current_noise_fa_rthz = 100.0;  ///< input current noise [fA/sqrt(Hz)]
  double rail_low_v = -1.5;
  double rail_high_v = +1.5;
};

/// One-pole time-domain op-amp: dominant pole at gbw/dc_gain, output clipped
/// to the rails. Adequate for loop-settling studies at the microsecond
/// scale; the measurement engine treats the amplifier quasi-statically.
class OpAmp {
 public:
  explicit OpAmp(OpAmpParams params);

  /// Advance by dt with inputs (v_plus, v_minus); returns the new output.
  double step(double v_plus, double v_minus, double dt);

  double output() const { return v_out_; }
  void reset(double v_out = 0.0) { v_out_ = v_out; }
  const OpAmpParams& params() const { return params_; }

 private:
  OpAmpParams params_;
  double v_out_ = 0.0;
};

}  // namespace idp::afe
