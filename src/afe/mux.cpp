/// \file mux.cpp
/// Analog multiplexer implementation: channel switching, settling
/// transients and charge-injection artefacts when sharing one readout
/// chain among several working electrodes.

#include "afe/mux.hpp"

#include <cmath>

#include "util/error.hpp"

namespace idp::afe {

AnalogMux::AnalogMux(MuxSpec spec) : spec_(spec) {
  util::require(spec_.channels >= 1, "mux needs at least one channel");
  util::require(spec_.r_on > 0.0 && spec_.settle_time > 0.0 &&
                    spec_.injection_tau > 0.0,
                "invalid mux parameters");
  util::require(spec_.crosstalk >= 0.0 && spec_.crosstalk < 1.0,
                "crosstalk fraction out of range");
}

void AnalogMux::select(std::size_t channel, double now) {
  util::require(channel < spec_.channels, "mux channel out of range");
  if (channel != selected_) {
    selected_ = channel;
    last_switch_ = now;
  }
}

bool AnalogMux::settled(double now) const {
  return now - last_switch_ >= spec_.settle_time;
}

double AnalogMux::artifact_current(double now) const {
  return artifact_current(now, last_switch_);
}

double AnalogMux::artifact_current(double now, double switch_time) const {
  const double dt = now - switch_time;
  if (dt < 0.0) return 0.0;
  // Exponentially decaying charge-injection spike: integral equals the
  // injected charge.
  return spec_.charge_injection / spec_.injection_tau *
         std::exp(-dt / spec_.injection_tau);
}

}  // namespace idp::afe
