/// \file frontend.cpp
/// Acquisition-chain assembly: wires the TIA + ADC sampling path together
/// with the chopper / correlated-double-sampling flicker-noise
/// countermeasures of Fig. 2.

#include "afe/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::afe {

AnalogFrontEnd::AnalogFrontEnd(AfeConfig config)
    : config_(config),
      tia_(config.tia),
      adc_(config.adc),
      rng_(config.seed),
      flicker_(config.tia.flicker_current_rms, config.seed ^ 0x9e3779b97f4a7c15ULL) {
  // White electronic noise folded into the sampled band: the TIA bandwidth
  // acts as the anti-alias filter, ENBW = pi/2 * f3dB.
  const double enbw = 1.5708 * tia_.bandwidth();
  white_rms_ = tia_.input_noise_density() * std::sqrt(enbw);
}

double AnalogFrontEnd::effective_flicker_rms() const {
  double f = config_.tia.flicker_current_rms;
  if (config_.reduction.chopper) f *= config_.reduction.chopper_residual;
  if (config_.reduction.cds) f *= config_.reduction.cds_residual;
  return f;
}

double AnalogFrontEnd::lsb_current() const {
  return adc_.lsb() / config_.tia.feedback_resistance;
}

void AnalogFrontEnd::set_drift(double gain, double offset_A) {
  util::require(gain > 0.0, "AFE drift gain must be positive");
  drift_gain_ = gain;
  drift_offset_ = offset_A;
}

double AnalogFrontEnd::sample(double i_signal, double i_blank) {
  // CDS subtracts the blank channel in the analog domain; the blank's own
  // white noise is already embedded in i_blank by the caller, so the
  // sqrt(2) white penalty arises naturally.
  double i_eff = config_.reduction.cds ? (i_signal - i_blank) : i_signal;

  // Electronics aging: gain/offset error at the chain input. The identity
  // (1, 0) multiplies and adds out exactly.
  i_eff = i_eff * drift_gain_ + drift_offset_;

  // Amplifier flicker (suppressed by the enabled countermeasures) and white
  // electronic noise.
  const double flicker_scale =
      (config_.tia.flicker_current_rms > 0.0)
          ? effective_flicker_rms() / config_.tia.flicker_current_rms
          : 0.0;
  double white = white_rms_;
  if (config_.reduction.chopper) white *= config_.reduction.chopper_white_penalty;
  i_eff += flicker_.sample() * flicker_scale + rng_.gaussian(white);

  // TIA transfer (includes rail clipping) and ADC quantisation.
  const double v = tia_.output_voltage(i_eff);
  const double v_q = adc_.quantize(v);
  return tia_.current_from_voltage(v_q);
}

}  // namespace idp::afe
