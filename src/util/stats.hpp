/// \file stats.hpp
/// Descriptive statistics and least-squares fitting used by the calibration
/// and metrology pipeline (LOD per Eq. 5, sensitivity per Eq. 6, NLmax per
/// Eq. 7 of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace idp::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 if fewer than 2 samples.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation.
double stddev(std::span<const double> xs);

/// Root-mean-square value.
double rms(std::span<const double> xs);

/// Median (copies and partially sorts); 0 for empty input.
double median(std::span<const double> xs);

/// Maximum absolute value; 0 for empty input.
double max_abs(std::span<const double> xs);

/// Minimum / maximum (throw std::invalid_argument on empty input).
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford). Numerically stable;
/// used by long-running noise measurements where storing samples is wasteful.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Result of an ordinary least-squares straight-line fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;      ///< coefficient of determination
  double residual_rms = 0.0;   ///< RMS of (y - fit)
  double max_abs_residual = 0.0;  ///< max |y - fit| -- feeds NLmax (Eq. 7)
};

/// Least-squares fit; requires xs.size() == ys.size() >= 2 (throws otherwise).
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Evaluate a fit at x.
inline double evaluate(const LinearFit& f, double x) {
  return f.slope * x + f.intercept;
}

}  // namespace idp::util
