/// \file stats.hpp
/// Descriptive statistics and least-squares fitting used by the calibration
/// and metrology pipeline (LOD per Eq. 5, sensitivity per Eq. 6, NLmax per
/// Eq. 7 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace idp::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 if fewer than 2 samples.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation.
double stddev(std::span<const double> xs);

/// Root-mean-square value.
double rms(std::span<const double> xs);

/// Median (copies and partially sorts); 0 for empty input.
double median(std::span<const double> xs);

/// Maximum absolute value; 0 for empty input.
double max_abs(std::span<const double> xs);

/// Minimum / maximum (throw std::invalid_argument on empty input).
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Interpolated percentile of an already-sorted sample set, q in [0, 1]
/// (throws std::invalid_argument on an empty span). The rank is
/// q * (n - 1) with linear interpolation between neighbouring order
/// statistics -- a single sample is every percentile of itself.
double percentile_sorted(std::span<const double> sorted, double q);

/// Read several interpolated percentiles of an unsorted sample set: sorts
/// `values` in place once, then reads one percentile per entry of `qs`
/// (throws std::invalid_argument on an empty sample set).
std::vector<double> percentiles_of(std::vector<double>& values,
                                   std::span<const double> qs);

/// The canonical latency-statistic row every export shares: the metrics
/// registry's CSV snapshot, the serve telemetry-summary CSV and the bench
/// counters all emit exactly these statistics under exactly these column
/// names, so downstream tooling parses one schema. Every field is
/// order-independent (counts, exact extremes, bin-interpolated
/// percentiles), which keeps summaries of a deterministic replay bitwise
/// identical at any parallelism.
struct LatencySummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  friend bool operator==(const LatencySummary&,
                         const LatencySummary&) = default;
};

/// Column names of LatencySummary, in to_row() order:
/// count, min, max, p50, p90, p99.
const std::vector<std::string>& latency_summary_columns();

/// One numeric row matching latency_summary_columns().
std::vector<double> to_row(const LatencySummary& summary);

/// One occupied histogram bin: geometric bounds plus its sample count.
struct HistogramBinRow {
  std::size_t bin = 0;     ///< bin index
  double lower = 0.0;      ///< inclusive lower bound of the bin's span
  double upper = 0.0;      ///< exclusive upper bound
  std::uint64_t count = 0;
};

/// Streaming fixed-bin log-scale histogram for positive, latency-shaped
/// data (service times, queue waits): decades between `min_value` and
/// `max_value` are split into `bins_per_decade` geometric bins, add() is
/// O(1) with no allocation, and percentile() interpolates inside the
/// selected bin in log space. Exact extremes are tracked so percentile
/// estimates clamp into [min-seen, max-seen] (a one-sample histogram
/// reports that sample exactly). Values outside the configured span clamp
/// into the edge bins. Not thread-safe; callers aggregate under their own
/// lock and merge() per-thread instances.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double min_value = 1e-6, double max_value = 1e3,
                            std::size_t bins_per_decade = 16);

  void add(double value);
  std::size_t count() const { return count_; }
  double min_value() const { return min_value_; }  ///< configured span floor
  double max_value() const { return max_value_; }  ///< configured span ceiling
  std::size_t bins_per_decade() const {
    return static_cast<std::size_t>(bins_per_decade_);
  }
  double min() const;   ///< exact smallest added value (0 when empty)
  double max() const;   ///< exact largest added value (0 when empty)
  double mean() const;  ///< exact running mean (0 when empty)

  /// Interpolated percentile estimate, q in [0, 1]; 0 when empty.
  double percentile(double q) const;

  /// The canonical order-independent statistic row (count, exact min/max,
  /// p50/p90/p99) -- see LatencySummary.
  LatencySummary summary() const;

  /// Occupied bins as (index, lower, upper, count) rows, in bin order --
  /// the registry CSV export's per-bin detail. Empty bins are skipped.
  std::vector<HistogramBinRow> to_rows() const;

  /// Fold another histogram in; bin configurations must match.
  void merge(const LatencyHistogram& other);

  std::size_t bin_count() const { return counts_.size(); }

 private:
  double min_value_;
  double max_value_;
  double log_min_;
  double bins_per_decade_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

/// Streaming mean/variance accumulator (Welford). Numerically stable;
/// used by long-running noise measurements where storing samples is wasteful.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Result of an ordinary least-squares straight-line fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;      ///< coefficient of determination
  double residual_rms = 0.0;   ///< RMS of (y - fit)
  double max_abs_residual = 0.0;  ///< max |y - fit| -- feeds NLmax (Eq. 7)
};

/// Least-squares fit; requires xs.size() == ys.size() >= 2 (throws otherwise).
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Evaluate a fit at x.
inline double evaluate(const LinearFit& f, double x) {
  return f.slope * x + f.intercept;
}

}  // namespace idp::util
