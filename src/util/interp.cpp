/// \file interp.cpp
/// Piecewise-linear interpolation implementation over sorted abscissae.

#include "util/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idp::util {

bool strictly_increasing(std::span<const double> xs) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (!(xs[i] > xs[i - 1])) return false;
  }
  return true;
}

double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x) {
  require(xs.size() == ys.size(), "x/y size mismatch");
  require(xs.size() >= 2, "need at least two points");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const auto i = static_cast<std::size_t>(it - xs.begin());
  const double x0 = xs[i - 1], x1 = xs[i];
  const double y0 = ys[i - 1], y1 = ys[i];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

}  // namespace idp::util
