/// \file interp.cpp
/// Piecewise-linear interpolation implementation over sorted abscissae.

#include "util/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idp::util {

bool strictly_increasing(std::span<const double> xs) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (!(xs[i] > xs[i - 1])) return false;
  }
  return true;
}

namespace {

/// Interpolate along the segment [i-1, i] that brackets x (callers have
/// already dealt with out-of-range x, so 1 <= i < xs.size()).
double along_segment(std::span<const double> xs, std::span<const double> ys,
                     std::size_t i, double x) {
  const double x0 = xs[i - 1], x1 = xs[i];
  const double y0 = ys[i - 1], y1 = ys[i];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

}  // namespace

double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x) {
  require(xs.size() == ys.size(), "x/y size mismatch");
  require(xs.size() >= 2, "need at least two points");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  return along_segment(xs, ys, static_cast<std::size_t>(it - xs.begin()), x);
}

double interp_linear_clamped(std::span<const double> xs,
                             std::span<const double> ys, double x) {
  return interp_linear(xs, ys, x);
}

double interp_linear_extrapolate(std::span<const double> xs,
                                 std::span<const double> ys, double x) {
  require(xs.size() == ys.size(), "x/y size mismatch");
  require(xs.size() >= 2, "need at least two points");
  if (x < xs.front()) return along_segment(xs, ys, 1, x);
  if (x > xs.back()) return along_segment(xs, ys, xs.size() - 1, x);
  if (x == xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  return along_segment(xs, ys, static_cast<std::size_t>(it - xs.begin()), x);
}

}  // namespace idp::util
