/// \file table.cpp
/// Fixed-width console table printer implementation used by the bench
/// harnesses.

#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace idp::util {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
  align_.assign(headers_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::set_alignment(std::size_t column, Align align) {
  require(column < align_.size(), "column out of range");
  align_[column] = align;
}

namespace {
void print_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void print_cells(std::ostream& os, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths,
                 const std::vector<Align>& align) {
  os << '|';
  for (std::size_t c = 0; c < cells.size(); ++c) {
    os << ' ';
    if (align[c] == Align::kLeft) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
    } else {
      os << std::right << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |";
  }
  os << '\n';
}
}  // namespace

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  print_rule(os, widths);
  print_cells(os, headers_, widths, align_);
  print_rule(os, widths);
  for (const auto& row : rows_) print_cells(os, row, widths, align_);
  print_rule(os, widths);
}

std::string format_sig(double value, int digits) {
  std::ostringstream ss;
  ss << std::setprecision(digits) << value;
  return ss.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  return ss.str();
}

}  // namespace idp::util
