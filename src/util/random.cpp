/// \file random.cpp
/// Deterministic noise-source implementations: white, pink (Voss-McCartney
/// style) and Ornstein-Uhlenbeck drift processes with explicit seeds.

#include "util/random.hpp"

#include <bit>
#include <cmath>

namespace idp::util {

PinkNoise::PinkNoise(double sigma, std::uint64_t seed) : rng_(seed) {
  // The sum of kRows independent unit-variance rows has variance kRows;
  // normalise so the output RMS is ~sigma.
  scale_ = sigma / std::sqrt(static_cast<double>(kRows));
  for (auto& r : rows_) {
    r = rng_.gaussian();
    running_sum_ += r;
  }
}

double PinkNoise::sample() {
  // Voss-McCartney: on sample k, update row ctz(k) (the number of trailing
  // zeros selects geometrically less frequently updated rows).
  ++counter_;
  const int row = std::countr_zero(counter_) % kRows;
  running_sum_ -= rows_[static_cast<std::size_t>(row)];
  rows_[static_cast<std::size_t>(row)] = rng_.gaussian();
  running_sum_ += rows_[static_cast<std::size_t>(row)];
  return scale_ * running_sum_;
}

DriftProcess::DriftProcess(double sigma, double tau_s, std::uint64_t seed)
    : rng_(seed), sigma_(sigma), tau_(tau_s) {}

double DriftProcess::step(double dt) {
  // Exact discretisation of the OU process.
  const double a = std::exp(-dt / tau_);
  const double q = sigma_ * std::sqrt(1.0 - a * a);
  state_ = a * state_ + rng_.gaussian(q);
  return state_;
}

}  // namespace idp::util
