/// \file constants.hpp
/// Physical constants used throughout the platform, in SI units.
///
/// Concentrations are expressed in mol/m^3 throughout the code base, which
/// conveniently equals mmol/L (mM) -- the unit the paper's Table III uses.
#pragma once

namespace idp::util {

/// Faraday constant [C/mol].
inline constexpr double kFaraday = 96485.33212;

/// Molar gas constant [J/(mol K)].
inline constexpr double kGasConstant = 8.314462618;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Standard laboratory temperature used by the paper's cited measurements [K].
inline constexpr double kStandardTemperatureK = 298.15;

/// F/(R*T) at 298.15 K [1/V]; appears in all Butler-Volmer exponents.
inline constexpr double kFOverRT =
    kFaraday / (kGasConstant * kStandardTemperatureK);

/// Thermal voltage R*T/F at 298.15 K [V] (~25.69 mV).
inline constexpr double kThermalVoltage = 1.0 / kFOverRT;

}  // namespace idp::util
