/// \file table.hpp
/// Fixed-width console table printer used by the bench harnesses to emit the
/// same rows the paper's tables report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace idp::util {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple console table: set headers once, add rows of strings, print.
/// Column widths auto-size to content. Numeric cells should be formatted by
/// the caller (see format_si / format_fixed helpers).
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers
  /// (throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  /// Optional per-column alignment (default: left for col 0, right elsewhere).
  void set_alignment(std::size_t column, Align align);

  /// Render with +--- style rules.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Format a double with `digits` significant digits.
std::string format_sig(double value, int digits);

/// Format a double with fixed `decimals` decimal places.
std::string format_fixed(double value, int decimals);

}  // namespace idp::util
