/// \file thread_pool.hpp
/// A small fixed-size worker pool for the parallel batch runtime.
///
/// The pool is deliberately minimal: FIFO task queue, no futures, no work
/// stealing. Determinism of the simulation results never depends on the
/// scheduling order -- callers (sim::BatchRunner) make every task write to a
/// pre-assigned slot and derive all randomness from explicit run ids.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace idp::util {

/// Fixed-size thread pool with a shared FIFO queue.
class ThreadPool {
 public:
  /// \param threads  worker count; 0 means default_parallelism().
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw (wrap exceptions yourself);
  /// an escaping exception terminates the process.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running.
  void wait_idle();

  /// Hardware concurrency, never less than 1.
  static std::size_t default_parallelism();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace idp::util
