/// \file thread_pool.hpp
/// A small fixed-size worker pool for the parallel batch runtime.
///
/// The pool is deliberately minimal: FIFO task queue, no futures, no work
/// stealing. Determinism of the simulation results never depends on the
/// scheduling order -- callers (sim::BatchRunner) make every task write to a
/// pre-assigned slot and derive all randomness from explicit run ids.
///
/// The queue is unbounded by default; constructing with `max_queued > 0`
/// bounds it, at which point submit() blocks while the queue is full
/// (backpressure) and try_submit() rejects instead of blocking -- the two
/// admission-control behaviours the service runtime builds on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace idp::util {

/// Fixed-size thread pool with a shared FIFO queue.
class ThreadPool {
 public:
  /// \param threads     worker count; 0 means default_parallelism().
  /// \param max_queued  queue bound; 0 means unbounded. With a bound,
  ///                    submit() blocks while `max_queued` tasks are
  ///                    already waiting and try_submit() returns false.
  explicit ThreadPool(std::size_t threads = 0, std::size_t max_queued = 0);

  /// Shutdown semantics: the destructor first *drains* the queue -- every
  /// task already accepted (by submit or try_submit) runs to completion --
  /// then joins all workers. Tasks are never discarded; only submissions
  /// racing the destructor can fail, by throwing "pool is shutting down".
  /// Pinned by tests/util/thread_pool_test.cpp (DrainsQueueOnDestruction,
  /// DestructorDrainsTasksQueuedBehindSlowTask).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Queue bound (0 = unbounded).
  std::size_t max_queued() const { return max_queued_; }

  /// Tasks currently waiting in the queue (not the ones being executed).
  std::size_t queued() const;

  /// Enqueue a task; on a bounded pool this blocks while the queue is full
  /// (backpressure). Tasks must not throw (wrap exceptions yourself); an
  /// escaping exception terminates the process.
  void submit(std::function<void()> task);

  /// Non-blocking enqueue: returns false (and does not take the task) when
  /// a bounded queue is full; always true on an unbounded pool. Throws the
  /// same "pool is shutting down" error as submit() after shutdown began.
  bool try_submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running.
  void wait_idle();

  /// Hardware concurrency, never less than 1.
  static std::size_t default_parallelism();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::condition_variable space_;  ///< signalled on pop of a bounded queue
  std::size_t max_queued_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace idp::util
