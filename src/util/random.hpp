/// \file random.hpp
/// Deterministic random sources for noise modelling.
///
/// Every stochastic component of the platform takes an explicit seed so that
/// simulations, tests and benches are bit-reproducible run to run.
#pragma once

#include <array>
#include <cstdint>
#include <random>

namespace idp::util {

/// Thin deterministic wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Standard-normal deviate.
  double gaussian() { return normal_(engine_); }

  /// Normal deviate with the given standard deviation.
  double gaussian(double sigma) { return sigma * normal_(engine_); }

  /// Uniform deviate in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform_(engine_);
  }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) { return engine_() % n; }

  /// Re-seed (resets the distribution caches too).
  void reseed(std::uint64_t seed) {
    engine_.seed(seed);
    normal_.reset();
    uniform_.reset();
  }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

/// Pink (1/f) noise generator, Voss-McCartney algorithm with 16 octave rows.
///
/// Produces samples whose power spectral density falls off as ~1/f over
/// roughly 16 octaves below half the sampling rate. Used to model flicker
/// noise of the analog front-end and slow electrode drift. Output is scaled
/// so that the long-run standard deviation is approximately `sigma`.
class PinkNoise {
 public:
  /// \param sigma   target RMS amplitude of the generated sequence
  /// \param seed    RNG seed (deterministic)
  PinkNoise(double sigma, std::uint64_t seed);

  /// Next pink-noise sample.
  double sample();

 private:
  static constexpr int kRows = 16;
  Rng rng_;
  std::array<double, kRows> rows_{};
  double running_sum_ = 0.0;
  std::uint32_t counter_ = 0;
  double scale_ = 1.0;
};

/// First-order Gauss-Markov (Ornstein-Uhlenbeck) drift process.
///
/// Models slow baseline wander of an electrochemical cell: correlated over
/// `tau` seconds with stationary standard deviation `sigma`.
class DriftProcess {
 public:
  DriftProcess(double sigma, double tau_s, std::uint64_t seed);

  /// Advance by dt seconds and return the new drift value.
  double step(double dt);

  /// Current value without advancing.
  double value() const { return state_; }

  void reset() { state_ = 0.0; }

 private:
  Rng rng_;
  double sigma_;
  double tau_;
  double state_ = 0.0;
};

}  // namespace idp::util
