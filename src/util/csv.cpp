/// \file csv.cpp
/// CSV writer/reader implementation: streaming output for traces and
/// tables, RFC 4180 parsing for the golden-trace fixtures.

#include "util/csv.hpp"

#include <cstdio>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace idp::util {

std::string fmt_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : out_(path), n_columns_(columns.size()) {
  ensure(out_.good(), "cannot open CSV file: " + path);
  require(!columns.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
  out_.precision(std::numeric_limits<double>::max_digits10);
}

void CsvWriter::write_row(std::span<const double> values) {
  require(values.size() == n_columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::span<const std::string> cells) {
  require(cells.size() == n_columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  ensure(false, "CSV has no column named '" + name + "'");
  return 0;  // unreachable
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  if (text.empty()) return table;

  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;       // inside a quoted cell
  bool cell_started = false; // current record has at least one character
  bool any_cell = false;     // current record has at least one finished cell

  auto end_cell = [&]() {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
    any_cell = true;
  };
  auto end_record = [&]() {
    end_cell();
    if (table.header.empty()) {
      table.header = std::move(row);
    } else {
      ensure(row.size() == table.header.size(),
             "CSV row width mismatch: expected " +
                 std::to_string(table.header.size()) + " cells, got " +
                 std::to_string(row.size()));
      table.rows.push_back(std::move(row));
    }
    row.clear();
    any_cell = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;  // doubled quote -> literal quote
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);  // commas and newlines are literal inside quotes
      }
      continue;
    }
    switch (c) {
      case '"':
        ensure(!cell_started, "stray quote inside unquoted CSV cell");
        quoted = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        // CRLF record end; a bare CR is not a separator per RFC 4180.
        ensure(i + 1 < text.size() && text[i + 1] == '\n',
               "bare CR in CSV outside a quoted cell");
        break;
      case '\n':
        if (cell_started || any_cell) {
          end_record();
        }  // else: blank line, skipped
        break;
      default:
        cell.push_back(c);
        cell_started = true;
        break;
    }
  }
  ensure(!quoted, "unterminated quoted CSV cell");
  // Final record without a trailing newline.
  if (cell_started || any_cell) end_record();
  return table;
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ensure(in.good(), "cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace idp::util
