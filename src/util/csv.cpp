/// \file csv.cpp
/// CSV writer implementation for dumping traces and tables to disk.

#include "util/csv.hpp"

#include <limits>

#include "util/error.hpp"

namespace idp::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : out_(path), n_columns_(columns.size()) {
  ensure(out_.good(), "cannot open CSV file: " + path);
  require(!columns.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
  out_.precision(std::numeric_limits<double>::max_digits10);
}

void CsvWriter::write_row(std::span<const double> values) {
  require(values.size() == n_columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace idp::util
