/// \file stats.cpp
/// Statistics implementation: descriptive moments and least-squares line
/// fitting for the calibration/metrology pipeline.

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double hi = copy[mid];
  const double lo = *std::max_element(copy.begin(),
                                      copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double max_abs(std::span<const double> xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, std::fabs(x));
  return m;
}

double min_value(std::span<const double> xs) {
  require(!xs.empty(), "min_value of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require(!xs.empty(), "max_value of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile_sorted(std::span<const double> sorted, double q) {
  require(!sorted.empty(), "percentile of empty sample set");
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> percentiles_of(std::vector<double>& values,
                                   std::span<const double> qs) {
  require(!values.empty(), "percentiles of empty sample set");
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(percentile_sorted(values, q));
  return out;
}

LatencyHistogram::LatencyHistogram(double min_value, double max_value,
                                   std::size_t bins_per_decade)
    : min_value_(min_value),
      max_value_(max_value),
      log_min_(std::log10(min_value)),
      bins_per_decade_(static_cast<double>(bins_per_decade)) {
  require(min_value > 0.0 && max_value > min_value,
          "histogram needs 0 < min_value < max_value");
  require(bins_per_decade > 0, "histogram needs at least one bin per decade");
  const double decades = std::log10(max_value) - log_min_;
  counts_.assign(static_cast<std::size_t>(
                     std::ceil(decades * bins_per_decade_)) +
                     1,
                 0);
}

void LatencyHistogram::add(double value) {
  if (count_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;
  double bin = 0.0;
  if (value > min_value_) {
    bin = (std::log10(value) - log_min_) * bins_per_decade_;
  }
  const auto idx = static_cast<std::size_t>(std::max(0.0, bin));
  ++counts_[std::min(idx, counts_.size() - 1)];
}

double LatencyHistogram::min() const { return count_ == 0 ? 0.0 : min_seen_; }

double LatencyHistogram::max() const { return count_ == 0 ? 0.0 : max_seen_; }

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_ - 1);
  // The extreme ranks are tracked exactly; interpolation only applies to
  // interior ranks.
  if (rank <= 0.0) return min_seen_;
  if (rank >= static_cast<double>(count_ - 1)) return max_seen_;
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (rank < next || b == counts_.size() - 1) {
      // Interpolate inside the bin in log space: the bin spans one
      // geometric step starting at 10^(log_min + b / bins_per_decade).
      const double frac =
          std::clamp((rank - cumulative) / static_cast<double>(counts_[b]),
                     0.0, 1.0);
      const double log_lo =
          log_min_ + static_cast<double>(b) / bins_per_decade_;
      const double value =
          std::pow(10.0, log_lo + frac / bins_per_decade_);
      return std::clamp(value, min_seen_, max_seen_);
    }
    cumulative = next;
  }
  return max_seen_;
}

const std::vector<std::string>& latency_summary_columns() {
  static const std::vector<std::string> kColumns{"count", "min", "max",
                                                 "p50",   "p90", "p99"};
  return kColumns;
}

std::vector<double> to_row(const LatencySummary& summary) {
  return {static_cast<double>(summary.count),
          summary.min,
          summary.max,
          summary.p50,
          summary.p90,
          summary.p99};
}

LatencySummary LatencyHistogram::summary() const {
  LatencySummary s;
  s.count = count_;
  s.min = min();
  s.max = max();
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

std::vector<HistogramBinRow> LatencyHistogram::to_rows() const {
  std::vector<HistogramBinRow> rows;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    HistogramBinRow row;
    row.bin = b;
    row.lower = std::pow(10.0, log_min_ + static_cast<double>(b) /
                                              bins_per_decade_);
    row.upper = std::pow(10.0, log_min_ + static_cast<double>(b + 1) /
                                              bins_per_decade_);
    row.count = counts_[b];
    rows.push_back(row);
  }
  return rows;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Compare the full configured geometry, not just the derived bin count:
  // different max_values can round to the same bin count (e.g. spans of
  // 999 vs 1000 at 16 bins/decade), which would silently mis-attribute the
  // merged tail.
  require(counts_.size() == other.counts_.size() &&
              min_value_ == other.min_value_ &&
              max_value_ == other.max_value_ &&
              bins_per_decade_ == other.bins_per_decade_,
          "histogram bin configurations differ");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_seen_ = other.min_seen_;
    max_seen_ = other.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "x/y size mismatch");
  require(xs.size() >= 2, "need at least two points");
  const double n = static_cast<double>(xs.size());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  require(sxx > 0.0, "degenerate fit: all x identical");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  double max_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - evaluate(fit, xs[i]);
    ss_res += r * r;
    max_res = std::max(max_res, std::fabs(r));
  }
  fit.residual_rms = std::sqrt(ss_res / n);
  fit.max_abs_residual = max_res;
  fit.r_squared = (syy > 0.0) ? 1.0 - ss_res / syy : 1.0;
  return fit;
}

}  // namespace idp::util
