/// \file stats.cpp
/// Statistics implementation: descriptive moments and least-squares line
/// fitting for the calibration/metrology pipeline.

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double hi = copy[mid];
  const double lo = *std::max_element(copy.begin(),
                                      copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double max_abs(std::span<const double> xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, std::fabs(x));
  return m;
}

double min_value(std::span<const double> xs) {
  require(!xs.empty(), "min_value of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require(!xs.empty(), "max_value of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "x/y size mismatch");
  require(xs.size() >= 2, "need at least two points");
  const double n = static_cast<double>(xs.size());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  require(sxx > 0.0, "degenerate fit: all x identical");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  double max_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - evaluate(fit, xs[i]);
    ss_res += r * r;
    max_res = std::max(max_res, std::fabs(r));
  }
  fit.residual_rms = std::sqrt(ss_res / n);
  fit.max_abs_residual = max_res;
  fit.r_squared = (syy > 0.0) ? 1.0 - ss_res / syy : 1.0;
  return fit;
}

}  // namespace idp::util
