/// \file error.hpp
/// Precondition / invariant helpers. Constructor preconditions throw
/// std::invalid_argument; violated runtime invariants throw idp::util::Error.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace idp::util {

/// Error thrown when a runtime invariant of the platform is violated
/// (as opposed to a caller mistake, which throws std::invalid_argument).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Validate a caller-supplied argument; throws std::invalid_argument.
/// The const char* overload keeps the passing path allocation-free (checks
/// sit inside per-step solver loops); message formatting happens only on
/// failure.
inline void require(bool condition, const char* message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::invalid_argument(std::string(loc.function_name()) + ": " + message);
  }
}

inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::invalid_argument(std::string(loc.function_name()) + ": " + message);
  }
}

/// Validate an internal invariant; throws idp::util::Error.
inline void ensure(bool condition, const char* message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(loc.function_name()) + ": " + message);
  }
}

inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(loc.function_name()) + ": " + message);
  }
}

}  // namespace idp::util
