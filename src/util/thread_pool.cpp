/// \file thread_pool.cpp
/// Fixed-size worker pool implementation: FIFO queue (optionally bounded),
/// condition-variable wakeups and an idle barrier used by the batch runtime
/// and the service scheduler.

#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace idp::util {

std::size_t ThreadPool::default_parallelism() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t max_queued)
    : max_queued_(max_queued) {
  if (threads == 0) threads = default_parallelism();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  space_.notify_all();  // blocked submitters observe the shutdown
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::submit(std::function<void()> task) {
  util::require(static_cast<bool>(task), "empty task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    util::require(!stop_, "pool is shutting down");
    if (max_queued_ > 0) {
      space_.wait(lock,
                  [this] { return stop_ || queue_.size() < max_queued_; });
      util::require(!stop_, "pool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  util::require(static_cast<bool>(task), "empty task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    util::require(!stop_, "pool is shutting down");
    if (max_queued_ > 0 && queue_.size() >= max_queued_) return false;
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    if (max_queued_ > 0) space_.notify_one();
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace idp::util
