/// \file interp.hpp
/// Piecewise-linear interpolation on a sorted abscissa, used for resampling
/// voltammograms and time traces. Two named variants make the out-of-range
/// semantics explicit at the call site: clamp to the boundary ordinates, or
/// extend the boundary segments.
#pragma once

#include <span>

namespace idp::util {

/// Linear interpolation of (xs, ys) at x. xs must be strictly increasing.
/// Values outside [xs.front(), xs.back()] clamp to the boundary ordinates.
/// Throws std::invalid_argument on size mismatch or fewer than 2 points.
double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x);

/// Explicitly-clamping spelling of interp_linear: outside the abscissa
/// range the boundary *ordinate* is returned unchanged. Call sites whose
/// correctness depends on the clamp should use this name so the semantics
/// are visible in the code.
double interp_linear_clamped(std::span<const double> xs,
                             std::span<const double> ys, double x);

/// Linear interpolation that *extrapolates* outside [xs.front(), xs.back()]
/// by extending the first / last segment's straight line instead of
/// clamping. Same preconditions as interp_linear.
double interp_linear_extrapolate(std::span<const double> xs,
                                 std::span<const double> ys, double x);

/// True if xs is strictly increasing.
bool strictly_increasing(std::span<const double> xs);

}  // namespace idp::util
