/// \file interp.hpp
/// Piecewise-linear interpolation on a sorted abscissa, used for resampling
/// voltammograms and time traces.
#pragma once

#include <span>

namespace idp::util {

/// Linear interpolation of (xs, ys) at x. xs must be strictly increasing.
/// Values outside [xs.front(), xs.back()] clamp to the boundary ordinates.
/// Throws std::invalid_argument on size mismatch or fewer than 2 points.
double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x);

/// True if xs is strictly increasing.
bool strictly_increasing(std::span<const double> xs);

}  // namespace idp::util
