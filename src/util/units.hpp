/// \file units.hpp
/// User-defined literals and conversion helpers for the quantities the
/// platform manipulates. Internally everything is SI:
///   potential [V], current [A], time [s], length [m], area [m^2],
///   concentration [mol/m^3] (== mM), diffusivity [m^2/s].
///
/// The literals let call sites read like the paper:
///   `ca.applied_potential = 650_mV;`  `inj.concentration = 2.0_mM;`
#pragma once

namespace idp::util::literals {

// --- potential -------------------------------------------------------------
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// --- current ---------------------------------------------------------------
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uA(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nA(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_pA(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// --- time ------------------------------------------------------------------
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_s(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_ms(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_us(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_min(long double v) { return static_cast<double>(v) * 60.0; }
constexpr double operator""_min(unsigned long long v) { return static_cast<double>(v) * 60.0; }

// --- length / area ---------------------------------------------------------
constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_mm(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_mm2(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_cm2(long double v) { return static_cast<double>(v) * 1e-4; }

// --- concentration (mol/m^3 == mM) ------------------------------------------
constexpr double operator""_M(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_mM(long double v) { return static_cast<double>(v); }
constexpr double operator""_mM(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_uM(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uM(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// --- frequency / rates -------------------------------------------------------
constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_Hz(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_MHz(unsigned long long v) { return static_cast<double>(v) * 1e6; }
/// CV scan rate literal, mV/s -> V/s.
constexpr double operator""_mV_per_s(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mV_per_s(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

}  // namespace idp::util::literals

namespace idp::util {

/// Sensitivity unit conversion. The paper's Table III reports sensitivities
/// in uA/(mM cm^2); internally we keep A per (mol/m^3) per m^2 of electrode:
/// 1 uA/(mM cm^2) = 1e-6 A / (1 mol/m^3 * 1e-4 m^2) = 1e-2 A m / mol.
constexpr double sensitivity_from_uA_per_mM_cm2(double s) { return s * 1e-2; }

/// Inverse of sensitivity_from_uA_per_mM_cm2 (for report printing).
constexpr double sensitivity_to_uA_per_mM_cm2(double s) { return s * 1e2; }

/// Concentration conversions for reporting.
constexpr double concentration_to_uM(double c_mol_m3) { return c_mol_m3 * 1e3; }
constexpr double concentration_to_mM(double c_mol_m3) { return c_mol_m3; }

/// Current conversions for reporting.
constexpr double current_to_nA(double i_A) { return i_A * 1e9; }
constexpr double current_to_uA(double i_A) { return i_A * 1e6; }

/// Potential conversion for reporting.
constexpr double potential_to_mV(double e_V) { return e_V * 1e3; }

/// Area conversions for reporting.
constexpr double area_to_mm2(double a_m2) { return a_m2 * 1e6; }
constexpr double area_to_cm2(double a_m2) { return a_m2 * 1e4; }

}  // namespace idp::util
