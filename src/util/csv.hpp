/// \file csv.hpp
/// CSV input/output: a streaming writer for traces and tables (e.g. the
/// Fig. 3 time-response series) plus an RFC 4180 reader used by the
/// golden-trace regression fixtures. Quoting rules follow RFC 4180: cells
/// containing commas, quotes, CR or LF are quoted, embedded quotes are
/// doubled, and both LF and CRLF record separators are accepted on read.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace idp::util {

/// Quote one cell per RFC 4180 when (and only when) it needs quoting.
std::string csv_escape(const std::string& cell);

/// One double as "%.17g": round-trip precision with a stable spelling, so
/// bitwise-equal values always format to identical bytes. The shared
/// formatter of every byte-deterministic export (trace CSV/JSONL, metrics
/// CSV/JSONL).
std::string fmt_g17(double v);

/// Streams rows of doubles or strings to a CSV file. Throws
/// idp::util::Error if the file cannot be opened. Doubles are written with
/// round-trip (max_digits10) precision so written values parse back bitwise.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Write one numeric data row; must match the column count.
  void write_row(std::span<const double> values);

  /// Write one textual data row (cells are RFC 4180-escaped); must match
  /// the column count.
  void write_row(std::span<const std::string> cells);

  /// Flush and close (also done by the destructor).
  void close();

 private:
  std::ofstream out_;
  std::size_t n_columns_;
};

/// One parsed CSV table: a header row plus data rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named header column; throws idp::util::Error if missing.
  std::size_t column(const std::string& name) const;
};

/// Parse CSV text per RFC 4180: quoted cells may embed commas, doubled
/// quotes and newlines; records end in LF or CRLF; a trailing newline is
/// optional. Every row must have as many cells as the header (throws
/// idp::util::Error otherwise). Empty input yields an empty table.
CsvTable parse_csv(const std::string& text);

/// Read and parse a CSV file; throws idp::util::Error if unreadable.
CsvTable read_csv(const std::string& path);

}  // namespace idp::util
