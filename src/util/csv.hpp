/// \file csv.hpp
/// Minimal CSV writer so benches/examples can dump traces (e.g. the Fig. 3
/// time-response series) for external plotting.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace idp::util {

/// Streams rows of doubles to a CSV file. Throws idp::util::Error if the
/// file cannot be opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Write one data row; must match the column count.
  void write_row(std::span<const double> values);

  /// Flush and close (also done by the destructor).
  void close();

 private:
  std::ofstream out_;
  std::size_t n_columns_;
};

}  // namespace idp::util
