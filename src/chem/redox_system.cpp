/// \file redox_system.cpp
/// Redox-system solver implementation: a diffusing redox couple coupled
/// to Butler-Volmer electrode kinetics, time stepped for CV and
/// chronoamperometry.

#include "chem/redox_system.hpp"

#include "util/constants.hpp"
#include "util/error.hpp"

namespace idp::chem {

namespace {
Grid1D make_grid(const SolutionRedoxConfig& c) {
  return Grid1D::expanding(c.grid_h0, c.grid_beta, c.domain_length);
}
}  // namespace

SolutionRedoxSystem::SolutionRedoxSystem(const SolutionRedoxConfig& config)
    : config_(config),
      red_(make_grid(config), config.d_red, config.c_red_bulk),
      ox_(make_grid(config), config.d_ox, config.c_ox_bulk) {
  util::require(config.area > 0.0, "area must be positive");
  util::require(config.c_red_bulk >= 0.0 && config.c_ox_bulk >= 0.0,
                "negative bulk concentration");
  red_.set_bulk_concentration(config.c_red_bulk);
  ox_.set_bulk_concentration(config.c_ox_bulk);
}

double SolutionRedoxSystem::step(double e, double dt) {
  const BvRates rates = butler_volmer_rates(config_.couple, e);

  // Semi-implicit boundary coupling: each field treats its own consumption
  // implicitly and the partner's surface concentration explicitly; a second
  // Picard pass tightens the coupling (adequate for dt <= ~10 ms at CV scan
  // rates, verified against Randles-Sevcik in the tests).
  const double c_ox_surf_old = ox_.at_electrode();

  red_.set_electrode_rate(rates.kf);
  red_.set_electrode_injection(rates.kb * c_ox_surf_old);
  const double j_ox_from_red = red_.step(dt);  // kf * c_red_new

  ox_.set_electrode_rate(rates.kb);
  ox_.set_electrode_injection(j_ox_from_red);
  const double j_red_from_ox = ox_.step(dt);  // kb * c_ox_new

  // Net anodic rate after the update.
  const double v_net = j_ox_from_red - j_red_from_ox;
  return static_cast<double>(config_.couple.n) * util::kFaraday *
         config_.area * v_net;
}

void SolutionRedoxSystem::reset() {
  red_.fill(config_.c_red_bulk);
  ox_.fill(config_.c_ox_bulk);
}

void SolutionRedoxSystem::set_bulk_red(double c) {
  config_.c_red_bulk = c;
  red_.set_bulk_concentration(c);
}

void SolutionRedoxSystem::set_bulk_ox(double c) {
  config_.c_ox_bulk = c;
  ox_.set_bulk_concentration(c);
}

}  // namespace idp::chem
