/// \file batched_diffusion.cpp
/// SoA lane-batched backward-Euler diffusion stepping. Every expression in
/// the assembly mirrors DiffusionField::step op-for-op per lane; only the
/// storage layout (node-major, lane-minor) and the loop structure differ,
/// which is exactly what keeps lane values bitwise identical to the scalar
/// path while letting the compiler vectorize across lanes.

#include "chem/batched_diffusion.hpp"

#include <algorithm>

#include "chem/tridiag.hpp"
#include "util/error.hpp"

namespace idp::chem {

BatchedDiffusionField::BatchedDiffusionField(Grid1D grid, std::size_t lanes)
    : grid_(std::move(grid)), lanes_(lanes) {
  util::require(lanes_ >= 1, "lane count must be >= 1");
  util::require(grid_.size() >= 2, "batched field needs >= 2 nodes");
  const std::size_t n = grid_.size();
  lane_configured_.assign(lanes_, 0);
  far_.assign(lanes_, FarBoundary::kBulkReservoir);
  d_scale_.assign(lanes_, 1.0);
  c_bulk_.assign(lanes_, 0.0);
  k_het_.assign(lanes_, 0.0);
  injection_.assign(lanes_, 0.0);
  flux_.assign(lanes_, 0.0);
  d_.assign(n * lanes_, 0.0);
  d_face_.assign((n - 1) * lanes_, 0.0);
  c_.assign(n * lanes_, 0.0);
  source_.assign(n * lanes_, 0.0);
  lower_.resize(n * lanes_);
  diag_.resize(n * lanes_);
  upper_.resize(n * lanes_);
  rhs_.resize(n * lanes_);
  scratch_.resize(n * lanes_);
}

void BatchedDiffusionField::check_lane(std::size_t lane) const {
  util::require(lane < lanes_, "lane index out of range");
}

void BatchedDiffusionField::configure_lane(std::size_t lane,
                                           std::span<const double> diffusivity,
                                           double c_init) {
  check_lane(lane);
  util::require(diffusivity.size() == grid_.size(),
                "diffusivity size mismatch");
  for (double d : diffusivity) {
    util::require(d > 0.0, "diffusivity must be positive");
  }
  util::require(c_init >= 0.0, "negative concentration");
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    d_[i * lanes_ + lane] = diffusivity[i];
  }
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    c_[i * lanes_ + lane] = c_init;
  }
  c_bulk_[lane] = c_init;
  d_scale_[lane] = 1.0;
  rebuild_face_diffusivity(lane);
  if (!lane_configured_[lane]) {
    lane_configured_[lane] = 1;
    ++configured_;
  }
}

void BatchedDiffusionField::configure_lane(std::size_t lane, double diffusivity,
                                           double c_init) {
  const std::vector<double> d(grid_.size(), diffusivity);
  configure_lane(lane, d, c_init);
}

void BatchedDiffusionField::rebuild_face_diffusivity(std::size_t lane) {
  // Same harmonic interface mean + scale branch as
  // DiffusionField::rebuild_face_diffusivity (scale 1 reproduces the
  // constructed values bitwise).
  const double scale = d_scale_[lane];
  for (std::size_t i = 0; i + 1 < grid_.size(); ++i) {
    const double di = d_[i * lanes_ + lane];
    const double dj = d_[(i + 1) * lanes_ + lane];
    const double harmonic = 2.0 * di * dj / (di + dj);
    d_face_[i * lanes_ + lane] = scale == 1.0 ? harmonic : scale * harmonic;
  }
}

void BatchedDiffusionField::set_far_boundary(std::size_t lane, FarBoundary fb) {
  check_lane(lane);
  far_[lane] = fb;
}

void BatchedDiffusionField::set_bulk_concentration(std::size_t lane, double c) {
  check_lane(lane);
  util::require(c >= 0.0, "negative concentration");
  c_bulk_[lane] = c;
}

void BatchedDiffusionField::set_electrode_rate(std::size_t lane, double k_het) {
  check_lane(lane);
  util::require(k_het >= 0.0, "negative rate constant");
  k_het_[lane] = k_het;
}

void BatchedDiffusionField::set_electrode_injection(std::size_t lane,
                                                    double flux) {
  check_lane(lane);
  injection_[lane] = flux;
}

void BatchedDiffusionField::set_source(std::size_t lane,
                                       std::span<const double> source_per_node) {
  check_lane(lane);
  util::require(source_per_node.size() == grid_.size(),
                "source size mismatch");
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    source_[i * lanes_ + lane] = source_per_node[i];
  }
  source_set_ = true;
}

void BatchedDiffusionField::fill(std::size_t lane, double c) {
  check_lane(lane);
  util::require(c >= 0.0, "negative concentration");
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    c_[i * lanes_ + lane] = c;
  }
}

void BatchedDiffusionField::set_diffusivity_scale(std::size_t lane,
                                                  double scale) {
  check_lane(lane);
  util::require(scale > 0.0, "diffusivity scale must be positive");
  if (scale == d_scale_[lane]) return;
  d_scale_[lane] = scale;
  rebuild_face_diffusivity(lane);
}

double BatchedDiffusionField::diffusivity_scale(std::size_t lane) const {
  check_lane(lane);
  return d_scale_[lane];
}

double BatchedDiffusionField::electrode_flux(std::size_t lane) const {
  check_lane(lane);
  return flux_[lane];
}

void BatchedDiffusionField::step(double dt) {
  util::require(dt > 0.0, "dt must be positive");
  util::require(configured_ == lanes_, "unconfigured lane in batched step");
  const std::size_t n = grid_.size();
  const std::size_t W = lanes_;

  // Node 0 (electrode): half cell with Robin consumption + injection. The
  // geometric factors are lane-invariant and hoisted; each lane's a01 is the
  // same dt*d_face/ (h*w) quotient as the scalar assembly.
  {
    const double w0 = grid_.cv(0);
    const double h0w0 = grid_.h(0) * w0;
    // The band, concentration, source and per-lane parameter arrays are
    // separately owned vectors that never alias; `ivdep` tells the
    // vectorizer so (it cannot prove it across this many pointers and
    // bails out otherwise, leaving the division-heavy assembly scalar).
#pragma GCC ivdep
    for (std::size_t l = 0; l < W; ++l) {
      const double a01 = dt * d_face_[l] / h0w0;
      upper_[l] = -a01;
      diag_[l] = 1.0 + a01 + dt * k_het_[l] / w0;
      lower_[l] = 0.0;
      rhs_[l] = c_[l] + dt * (injection_[l] / w0 + source_[l]);
    }
  }

  // Interior nodes.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double w = grid_.cv(i);
    const double hlw = grid_.h(i - 1) * w;
    const double huw = grid_.h(i) * w;
    const std::size_t row = i * W;
    const std::size_t face_lo = (i - 1) * W;
    const std::size_t face_hi = i * W;
#pragma GCC ivdep
    for (std::size_t l = 0; l < W; ++l) {
      const double al = dt * d_face_[face_lo + l] / hlw;
      const double au = dt * d_face_[face_hi + l] / huw;
      lower_[row + l] = -al;
      upper_[row + l] = -au;
      diag_[row + l] = 1.0 + al + au;
      rhs_[row + l] = c_[row + l] + dt * source_[row + l];
    }
  }

  // Far boundary, per lane (the one lane-divergent branch; it touches a
  // single matrix row, so it costs nothing on the vectorized sweep).
  {
    const std::size_t row = (n - 1) * W;
    const double w = grid_.cv(n - 1);
    const double hlw = grid_.h(n - 2) * w;
    for (std::size_t l = 0; l < W; ++l) {
      if (far_[l] == FarBoundary::kBulkReservoir) {
        lower_[row + l] = 0.0;
        upper_[row + l] = 0.0;
        diag_[row + l] = 1.0;
        rhs_[row + l] = c_bulk_[l];
      } else {  // sealed half cell
        const double al = dt * d_face_[(n - 2) * W + l] / hlw;
        lower_[row + l] = -al;
        upper_[row + l] = 0.0;
        diag_[row + l] = 1.0 + al;
        rhs_[row + l] = c_[row + l] + dt * source_[row + l];
      }
    }
  }

  solve_tridiagonal_batched(n, W, lower_, diag_, upper_, rhs_, scratch_, c_);
  // Same defensive clamp as the scalar path (explicit sink sources can
  // undershoot zero).
  for (double& c : c_) c = std::max(c, 0.0);

  if (source_set_) {
    std::fill(source_.begin(), source_.end(), 0.0);
    source_set_ = false;
  }
  for (std::size_t l = 0; l < W; ++l) {
    flux_[l] = k_het_[l] * c_[l];
  }
}

double BatchedDiffusionField::total_per_area(std::size_t lane) const {
  check_lane(lane);
  double total = 0.0;
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    total += c_[i * lanes_ + lane] * grid_.cv(i);
  }
  return total;
}

}  // namespace idp::chem
