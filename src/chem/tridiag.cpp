/// \file tridiag.cpp
/// Thomas algorithm implementation: the tridiagonal inner kernel of the
/// implicit diffusion step.

#include "chem/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/error.hpp"

namespace idp::chem {

namespace {

/// True when the two spans share any element (partial overlaps included).
/// std::less gives the total pointer order the raw < lacks across objects.
bool overlaps(std::span<const double> a, std::span<const double> b) {
  const std::less<const double*> lt;
  return lt(a.data(), b.data() + b.size()) && lt(b.data(), a.data() + a.size());
}

}  // namespace

void solve_tridiagonal_inplace(std::span<const double> lower,
                               std::span<const double> diag,
                               std::span<const double> upper,
                               std::span<const double> rhs,
                               std::span<double> scratch,
                               std::span<double> out) {
  const std::size_t n = diag.size();
  util::require(n >= 1, "empty system");
  util::require(lower.size() == n && upper.size() == n && rhs.size() == n,
                "band size mismatch");
  util::require(scratch.size() == n && out.size() == n,
                "scratch/out size mismatch");
  util::require(!overlaps(scratch, out) && !overlaps(scratch, rhs) &&
                    !overlaps(scratch, lower) && !overlaps(scratch, diag) &&
                    !overlaps(scratch, upper),
                "scratch must not alias any other argument");
  util::require(!overlaps(out, lower) && !overlaps(out, diag) &&
                    !overlaps(out, upper),
                "out must not alias a band");
  util::require(rhs.data() == out.data() || !overlaps(out, rhs),
                "rhs/out must alias exactly or not at all");

  // Forward elimination: scratch holds the modified upper band (c'),
  // out holds the modified right-hand side (d'). rhs[i] is consumed before
  // out[i] is written, so rhs == out aliasing is safe.
  double denom = diag[0];
  util::ensure(std::fabs(denom) > 0.0, "singular tridiagonal system");
  scratch[0] = upper[0] / denom;
  out[0] = rhs[0] / denom;
  for (std::size_t i = 1; i < n; ++i) {
    denom = diag[i] - lower[i] * scratch[i - 1];
    util::ensure(std::fabs(denom) > 0.0, "singular tridiagonal system");
    scratch[i] = upper[i] / denom;
    out[i] = (rhs[i] - lower[i] * out[i - 1]) / denom;
  }
  // Backward substitution in place.
  for (std::size_t i = n - 1; i-- > 0;) {
    out[i] -= scratch[i] * out[i + 1];
  }
}

void solve_tridiagonal_batched(std::size_t n, std::size_t lanes,
                               std::span<const double> lower,
                               std::span<const double> diag,
                               std::span<const double> upper,
                               std::span<const double> rhs,
                               std::span<double> scratch,
                               std::span<double> out) {
  util::require(n >= 1, "empty system");
  util::require(lanes >= 1, "empty lane batch");
  const std::size_t total = n * lanes;
  util::require(lower.size() == total && diag.size() == total &&
                    upper.size() == total && rhs.size() == total,
                "band size mismatch");
  util::require(scratch.size() == total && out.size() == total,
                "scratch/out size mismatch");
  util::require(!overlaps(scratch, out) && !overlaps(scratch, rhs) &&
                    !overlaps(scratch, lower) && !overlaps(scratch, diag) &&
                    !overlaps(scratch, upper),
                "scratch must not alias any other argument");
  util::require(!overlaps(out, lower) && !overlaps(out, diag) &&
                    !overlaps(out, upper),
                "out must not alias a band");
  util::require(rhs.data() == out.data() || !overlaps(out, rhs),
                "rhs/out must alias exactly or not at all");

  const double* const lo = lower.data();
  const double* const di = diag.data();
  const double* const up = upper.data();
  const double* const rh = rhs.data();
  double* const sc = scratch.data();
  double* const ou = out.data();

  // Forward elimination, node-major with the lane loop innermost. min_abs
  // folds |denom| across every row of every lane so the singularity check
  // runs once after the sweep instead of branching per element.
  //
  // Each row runs three lane passes instead of one: (1) compute denom,
  // update out, park denom in scratch; (2) fold |denom| into min_abs;
  // (3) overwrite scratch with the modified upper band. Per element the
  // operations and their order are exactly those of the fused loop -- same
  // divisions, same operands -- so results stay bitwise identical; the
  // split exists because a scalar float min reduction inside the lane loop
  // defeats autovectorization of the division-heavy passes (FP min folds
  // are not reassociable under strict IEEE semantics, and gcc refuses the
  // whole loop rather than peel the fold out itself).
  //
  // The `ivdep` pragmas assert what the overlap preconditions above already
  // guarantee at runtime: within one row the store range [row, row+lanes)
  // and the load range [prev, prev+lanes) are adjacent and disjoint, and
  // scratch/out never alias the bands, so the lane loop carries no
  // dependence the vectorizer must preserve.
  double min_abs = std::numeric_limits<double>::infinity();
#pragma GCC ivdep
  for (std::size_t l = 0; l < lanes; ++l) {
    const double denom = di[l];
    ou[l] = rh[l] / denom;
    sc[l] = denom;
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    min_abs = std::min(min_abs, std::fabs(sc[l]));
  }
#pragma GCC ivdep
  for (std::size_t l = 0; l < lanes; ++l) {
    sc[l] = up[l] / sc[l];
  }
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t row = i * lanes;
    const std::size_t prev = row - lanes;
#pragma GCC ivdep
    for (std::size_t l = 0; l < lanes; ++l) {
      const double denom = di[row + l] - lo[row + l] * sc[prev + l];
      ou[row + l] = (rh[row + l] - lo[row + l] * ou[prev + l]) / denom;
      sc[row + l] = denom;
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      min_abs = std::min(min_abs, std::fabs(sc[row + l]));
    }
#pragma GCC ivdep
    for (std::size_t l = 0; l < lanes; ++l) {
      sc[row + l] = up[row + l] / sc[row + l];
    }
  }
  util::ensure(min_abs > 0.0, "singular tridiagonal system");
  // Backward substitution in place.
  for (std::size_t i = n - 1; i-- > 0;) {
    const std::size_t row = i * lanes;
    const std::size_t next = row + lanes;
#pragma GCC ivdep
    for (std::size_t l = 0; l < lanes; ++l) {
      ou[row + l] -= sc[row + l] * ou[next + l];
    }
  }
}

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  std::vector<double> scratch(diag.size()), x(diag.size());
  solve_tridiagonal_inplace(lower, diag, upper, rhs, scratch, x);
  return x;
}

}  // namespace idp::chem
