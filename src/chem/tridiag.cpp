/// \file tridiag.cpp
/// Thomas algorithm implementation: the tridiagonal inner kernel of the
/// implicit diffusion step.

#include "chem/tridiag.hpp"

#include <cmath>
#include <functional>

#include "util/error.hpp"

namespace idp::chem {

namespace {

/// True when the two spans share any element (partial overlaps included).
/// std::less gives the total pointer order the raw < lacks across objects.
bool overlaps(std::span<const double> a, std::span<const double> b) {
  const std::less<const double*> lt;
  return lt(a.data(), b.data() + b.size()) && lt(b.data(), a.data() + a.size());
}

}  // namespace

void solve_tridiagonal_inplace(std::span<const double> lower,
                               std::span<const double> diag,
                               std::span<const double> upper,
                               std::span<const double> rhs,
                               std::span<double> scratch,
                               std::span<double> out) {
  const std::size_t n = diag.size();
  util::require(n >= 1, "empty system");
  util::require(lower.size() == n && upper.size() == n && rhs.size() == n,
                "band size mismatch");
  util::require(scratch.size() == n && out.size() == n,
                "scratch/out size mismatch");
  util::require(!overlaps(scratch, out) && !overlaps(scratch, rhs) &&
                    !overlaps(scratch, lower) && !overlaps(scratch, diag) &&
                    !overlaps(scratch, upper),
                "scratch must not alias any other argument");
  util::require(!overlaps(out, lower) && !overlaps(out, diag) &&
                    !overlaps(out, upper),
                "out must not alias a band");
  util::require(rhs.data() == out.data() || !overlaps(out, rhs),
                "rhs/out must alias exactly or not at all");

  // Forward elimination: scratch holds the modified upper band (c'),
  // out holds the modified right-hand side (d'). rhs[i] is consumed before
  // out[i] is written, so rhs == out aliasing is safe.
  double denom = diag[0];
  util::ensure(std::fabs(denom) > 0.0, "singular tridiagonal system");
  scratch[0] = upper[0] / denom;
  out[0] = rhs[0] / denom;
  for (std::size_t i = 1; i < n; ++i) {
    denom = diag[i] - lower[i] * scratch[i - 1];
    util::ensure(std::fabs(denom) > 0.0, "singular tridiagonal system");
    scratch[i] = upper[i] / denom;
    out[i] = (rhs[i] - lower[i] * out[i - 1]) / denom;
  }
  // Backward substitution in place.
  for (std::size_t i = n - 1; i-- > 0;) {
    out[i] -= scratch[i] * out[i + 1];
  }
}

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  std::vector<double> scratch(diag.size()), x(diag.size());
  solve_tridiagonal_inplace(lower, diag, upper, rhs, scratch, x);
  return x;
}

}  // namespace idp::chem
