/// \file tridiag.cpp
/// Thomas algorithm implementation: the tridiagonal inner kernel of the
/// implicit diffusion step.

#include "chem/tridiag.hpp"

#include <cmath>

#include "util/error.hpp"

namespace idp::chem {

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  const std::size_t n = diag.size();
  util::require(n >= 1, "empty system");
  util::require(lower.size() == n && upper.size() == n && rhs.size() == n,
                "band size mismatch");

  std::vector<double> c_prime(n), d_prime(n);
  double denom = diag[0];
  util::ensure(std::fabs(denom) > 0.0, "singular tridiagonal system");
  c_prime[0] = upper[0] / denom;
  d_prime[0] = rhs[0] / denom;
  for (std::size_t i = 1; i < n; ++i) {
    denom = diag[i] - lower[i] * c_prime[i - 1];
    util::ensure(std::fabs(denom) > 0.0, "singular tridiagonal system");
    c_prime[i] = upper[i] / denom;
    d_prime[i] = (rhs[i] - lower[i] * d_prime[i - 1]) / denom;
  }
  std::vector<double> x(n);
  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = d_prime[i] - c_prime[i] * x[i + 1];
  }
  return x;
}

}  // namespace idp::chem
