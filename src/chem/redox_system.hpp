/// \file redox_system.hpp
/// A diffusing redox couple coupled to Butler-Volmer electrode kinetics:
/// the canonical "textbook CV" system, used both as a validation vehicle
/// for the solver (Cottrell, Randles-Sevcik) and as the model for directly
/// electroactive species (dopamine, etoposide) that the paper singles out
/// as defeating blank-electrode correction.
#pragma once

#include "chem/diffusion.hpp"
#include "chem/grid.hpp"
#include "chem/redox.hpp"

namespace idp::chem {

/// Configuration for a SolutionRedoxSystem.
struct SolutionRedoxConfig {
  RedoxCouple couple;
  double area = 0.23e-6;        ///< electrode area [m^2]
  double d_red = 6.5e-10;       ///< diffusivity of the reduced form [m^2/s]
  double d_ox = 6.5e-10;        ///< diffusivity of the oxidised form [m^2/s]
  double c_red_bulk = 1.0;      ///< bulk concentration of R [mol/m^3]
  double c_ox_bulk = 0.0;       ///< bulk concentration of O [mol/m^3]
  double grid_h0 = 0.5e-6;      ///< first grid spacing [m]
  double grid_beta = 1.10;      ///< grid expansion factor
  double domain_length = 400e-6;  ///< diffusion domain [m]
};

/// Two diffusion fields (R and O) sharing a grid, exchanging matter at the
/// electrode according to Butler-Volmer kinetics. Advancing by dt at a given
/// electrode potential returns the faradaic current (anodic positive).
class SolutionRedoxSystem {
 public:
  explicit SolutionRedoxSystem(const SolutionRedoxConfig& config);

  /// Advance by dt [s] at electrode potential e [V vs Ag/AgCl]; returns the
  /// faradaic current [A], anodic positive.
  double step(double e, double dt);

  /// Reset both profiles to their bulk values.
  void reset();

  /// Change the bulk concentration of the reduced form (re-equilibrates the
  /// reservoir boundary; the profile itself relaxes by diffusion).
  void set_bulk_red(double c);
  /// Change the bulk concentration of the oxidised form.
  void set_bulk_ox(double c);

  double red_at_electrode() const { return red_.at_electrode(); }
  double ox_at_electrode() const { return ox_.at_electrode(); }
  const RedoxCouple& couple() const { return config_.couple; }
  double area() const { return config_.area; }

 private:
  SolutionRedoxConfig config_;
  DiffusionField red_;
  DiffusionField ox_;
};

}  // namespace idp::chem
