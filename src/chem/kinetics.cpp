/// \file kinetics.cpp
/// Closed-form electrochemistry reference results: Cottrell transients,
/// Randles-Sevcik peaks and related validation formulas.

#include "chem/kinetics.hpp"

#include <cmath>
#include <numbers>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace idp::chem {

double cottrell_current(int n, double area, double conc, double diffusivity,
                        double t) {
  util::require(t > 0.0, "Cottrell needs t > 0");
  util::require(n >= 1 && area > 0.0 && conc >= 0.0 && diffusivity > 0.0,
                "invalid Cottrell parameters");
  return static_cast<double>(n) * util::kFaraday * area * conc *
         std::sqrt(diffusivity / (std::numbers::pi * t));
}

double randles_sevcik_peak_current(int n, double area, double diffusivity,
                                   double conc, double scan_rate) {
  util::require(n >= 1 && area > 0.0 && conc >= 0.0 && diffusivity > 0.0 &&
                    scan_rate > 0.0,
                "invalid Randles-Sevcik parameters");
  const double nn = static_cast<double>(n);
  return 0.4463 * nn * util::kFaraday * area * conc *
         std::sqrt(nn * util::kFaraday * scan_rate * diffusivity /
                   (util::kGasConstant * util::kStandardTemperatureK));
}

double reversible_anodic_peak_potential(double e_half, int n) {
  return e_half + 1.109 * util::kThermalVoltage / static_cast<double>(n);
}

double reversible_cathodic_peak_potential(double e_half, int n) {
  return e_half - 1.109 * util::kThermalVoltage / static_cast<double>(n);
}

double laviron_surface_peak_current(int n, double area, double coverage,
                                    double scan_rate) {
  util::require(n >= 1 && area > 0.0 && coverage >= 0.0 && scan_rate > 0.0,
                "invalid Laviron parameters");
  const double nn = static_cast<double>(n);
  return nn * nn * util::kFaraday * util::kFaraday * area * coverage *
         scan_rate /
         (4.0 * util::kGasConstant * util::kStandardTemperatureK);
}

double surface_wave_fwhm(int n) {
  return 3.53 * util::kThermalVoltage / static_cast<double>(n);
}

double microdisc_limiting_current(int n, double diffusivity, double conc,
                                  double radius) {
  util::require(n >= 1 && diffusivity > 0.0 && conc >= 0.0 && radius > 0.0,
                "invalid microdisc parameters");
  return 4.0 * static_cast<double>(n) * util::kFaraday * diffusivity * conc *
         radius;
}

}  // namespace idp::chem
