/// \file kinetics.hpp
/// Closed-form electrochemical reference results used to validate the
/// numerical solver (and handy for quick estimates in the platform explorer).
#pragma once

namespace idp::chem {

/// Cottrell current of a diffusion-limited chronoamperometric step:
///   i(t) = n F A C sqrt(D / (pi t)).
/// \param n     electrons transferred
/// \param area  electrode area [m^2]
/// \param conc  bulk concentration [mol/m^3]
/// \param diffusivity [m^2/s]
/// \param t     time since the potential step [s], > 0
double cottrell_current(int n, double area, double conc, double diffusivity,
                        double t);

/// Randles-Sevcik peak current of a reversible, diffusion-controlled CV:
///   ip = 0.4463 n F A C sqrt(n F v D / (R T)).
/// \param scan_rate [V/s]
double randles_sevcik_peak_current(int n, double area, double diffusivity,
                                   double conc, double scan_rate);

/// Anodic peak potential of a reversible couple: Ep = E_half + 1.109 RT/(nF).
double reversible_anodic_peak_potential(double e_half, int n);

/// Cathodic peak potential of a reversible couple: Ep = E_half - 1.109 RT/(nF).
double reversible_cathodic_peak_potential(double e_half, int n);

/// Peak current of a reversible *surface-confined* couple (Laviron):
///   ip = n^2 F^2 A Gamma v / (4 R T).
/// \param coverage  surface coverage Gamma [mol/m^2]
double laviron_surface_peak_current(int n, double area, double coverage,
                                    double scan_rate);

/// Full width at half maximum of a reversible surface wave: 3.53 RT/(nF)
/// (the textbook 90.6/n mV at 25 C).
double surface_wave_fwhm(int n);

/// Steady-state limiting current of a microdisc electrode of radius r:
///   i = 4 n F D C r.
double microdisc_limiting_current(int n, double diffusivity, double conc,
                                  double radius);

}  // namespace idp::chem
