/// \file species.hpp
/// Dissolved chemical species and their transport properties.
///
/// Concentrations are mol/m^3 (== mM) everywhere; diffusivities are m^2/s.
#pragma once

#include <string>

namespace idp::chem {

/// A dissolved species taking part in transport and reactions.
struct Species {
  std::string name;
  double diffusivity = 1.0e-9;  ///< aqueous bulk diffusivity [m^2/s]
  int charge = 0;               ///< signed elementary charge (informative)
};

/// Catalogue of species referenced by the paper. Diffusivities are standard
/// aqueous values at 25 C (order 1e-9 m^2/s; H2O2 deliberately at the low
/// end, which is what lets the paper assume negligible inter-electrode
/// cross-talk in shared chambers).
namespace species {

inline const Species hydrogen_peroxide{"H2O2", 1.43e-9, 0};
inline const Species oxygen{"O2", 2.10e-9, 0};
inline const Species glucose{"glucose", 6.7e-10, 0};
inline const Species lactate{"lactate", 1.03e-9, -1};
inline const Species glutamate{"glutamate", 7.6e-10, -1};
inline const Species cholesterol{"cholesterol", 2.5e-10, 0};
inline const Species benzphetamine{"benzphetamine", 5.5e-10, 0};
inline const Species aminopyrine{"aminopyrine", 6.0e-10, 0};
inline const Species clozapine{"clozapine", 5.0e-10, 0};
inline const Species erythromycin{"erythromycin", 4.0e-10, 0};
inline const Species indinavir{"indinavir", 4.2e-10, 0};
inline const Species bupropion{"bupropion", 5.8e-10, 0};
inline const Species lidocaine{"lidocaine", 6.3e-10, 0};
inline const Species torsemide{"torsemide", 4.8e-10, 0};
inline const Species diclofenac{"diclofenac", 5.2e-10, 0};
inline const Species p_nitrophenol{"p-nitrophenol", 8.0e-10, 0};
inline const Species dopamine{"dopamine", 6.0e-10, 0};
inline const Species etoposide{"etoposide", 4.5e-10, 0};
inline const Species ferrocyanide{"Fe(CN)6^4-", 6.5e-10, -4};

}  // namespace species

}  // namespace idp::chem
