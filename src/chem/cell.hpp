/// \file cell.hpp
/// Three-electrode electrochemical cells and their physical layout
/// (Section II of the paper: single sensor, n+2-electrode multi-WE sensor,
/// 1-D / 2-D arrays, separate chambers).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chem/electrode.hpp"

namespace idp::chem {

/// Solution resistances seen by the potentiostat loop (used by the AFE model
/// to compute regulation error and settling).
struct CellImpedance {
  double r_solution = 1.0e3;   ///< RE-to-WE electrolyte resistance [ohm]
  double r_counter = 5.0e2;    ///< CE interface + spreading resistance [ohm]
};

/// A three-electrode cell: one or more working electrodes sharing one
/// reference and one counter electrode -- the paper's "n + 2 electrodes for
/// n targets" structure. Invariants: >= 1 WE, RE is Ag, CE present.
class ThreeElectrodeCell {
 public:
  ThreeElectrodeCell(std::vector<Electrode> working, Electrode reference,
                     Electrode counter,
                     CellImpedance impedance = CellImpedance{});

  std::size_t working_count() const { return working_.size(); }
  const Electrode& working(std::size_t i) const;
  const Electrode& reference() const { return reference_; }
  const Electrode& counter() const { return counter_; }
  const CellImpedance& impedance() const { return impedance_; }

  /// Total electrode count = n WE + RE + CE (the paper's n+2).
  std::size_t electrode_count() const { return working_.size() + 2; }

  /// The counter electrode should carry the summed WE current without
  /// becoming rate-limiting; flag when its area is below the summed WE area.
  bool counter_adequate() const;

  /// Sum of working-electrode geometric areas [m^2].
  double total_working_area() const;

 private:
  std::vector<Electrode> working_;
  Electrode reference_;
  Electrode counter_;
  CellImpedance impedance_;
};

/// Convenience factory for the paper's Fig. 4 biointerface: `n_we` gold
/// working electrodes of 0.23 mm^2, a gold counter electrode sized to the
/// summed WE area, and an Ag reference.
ThreeElectrodeCell make_fig4_cell(std::size_t n_we);

}  // namespace idp::chem
