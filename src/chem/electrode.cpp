/// \file electrode.cpp
/// Electrode implementation: geometry, material properties and
/// nanostructuration enhancement factors (Section III).

#include "chem/electrode.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace idp::chem {

std::string to_string(ElectrodeMaterial m) {
  switch (m) {
    case ElectrodeMaterial::kGold: return "Au";
    case ElectrodeMaterial::kSilver: return "Ag";
    case ElectrodeMaterial::kPlatinum: return "Pt";
    case ElectrodeMaterial::kGlassyCarbon: return "glassy carbon";
    case ElectrodeMaterial::kScreenPrintedCarbon: return "screen-printed C";
    case ElectrodeMaterial::kRhodiumGraphite: return "Rh-graphite";
  }
  return "?";
}

std::string to_string(Nanostructure n) {
  switch (n) {
    case Nanostructure::kNone: return "bare";
    case Nanostructure::kCarbonNanotube: return "MWCNT";
    case Nanostructure::kCobaltOxide: return "CoOx-nano";
    case Nanostructure::kColloidalClay: return "colloidal clay";
    case Nanostructure::kZirconiaNano: return "ZrO2-nano";
  }
  return "?";
}

std::string to_string(ElectrodeRole r) {
  switch (r) {
    case ElectrodeRole::kWorking: return "WE";
    case ElectrodeRole::kReference: return "RE";
    case ElectrodeRole::kCounter: return "CE";
  }
  return "?";
}

double ElectrodeGeometry::characteristic_radius() const {
  return std::sqrt(area / std::numbers::pi);
}

bool ElectrodeGeometry::is_microelectrode() const {
  return characteristic_radius() < 25.0e-6;
}

Electrode::Electrode(ElectrodeRole role, ElectrodeMaterial material,
                     ElectrodeGeometry geometry, Nanostructure nano)
    : role_(role), material_(material), geometry_(geometry), nano_(nano) {
  util::require(geometry_.area > 0.0, "electrode area must be positive");
  if (role_ == ElectrodeRole::kReference) {
    util::require(material_ == ElectrodeMaterial::kSilver,
                  "reference electrode must be Ag/AgCl in this platform");
    util::require(nano_ == Nanostructure::kNone,
                  "reference electrodes are not nanostructured");
  }
}

double Electrode::roughness_factor() const {
  switch (nano_) {
    case Nanostructure::kNone: return 1.0;
    case Nanostructure::kCarbonNanotube: return 4.0;
    case Nanostructure::kCobaltOxide: return 3.0;
    case Nanostructure::kColloidalClay: return 1.8;
    case Nanostructure::kZirconiaNano: return 2.2;
  }
  return 1.0;
}

namespace {
/// Specific double-layer capacitance [F/m^2] (20..35 uF/cm^2 textbook range).
double specific_capacitance(ElectrodeMaterial m) {
  switch (m) {
    case ElectrodeMaterial::kGold: return 0.20;
    case ElectrodeMaterial::kSilver: return 0.22;
    case ElectrodeMaterial::kPlatinum: return 0.25;
    case ElectrodeMaterial::kGlassyCarbon: return 0.28;
    case ElectrodeMaterial::kScreenPrintedCarbon: return 0.35;
    case ElectrodeMaterial::kRhodiumGraphite: return 0.30;
  }
  return 0.25;
}
}  // namespace

double Electrode::double_layer_capacitance() const {
  return specific_capacitance(material_) * effective_area();
}

double Electrode::charging_current(double de_dt) const {
  return double_layer_capacitance() * de_dt;
}

}  // namespace idp::chem
