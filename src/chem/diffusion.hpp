/// \file diffusion.hpp
/// Implicit (backward-Euler) finite-volume solver for 1-D diffusion with
/// reaction sources -- the workhorse behind every simulated electrode.
///
/// The formulation is mass-conservative: with sealed boundaries the total
/// amount of substance is preserved to solver precision, which the property
/// tests check. The electrode boundary supports simultaneously
///   * a first-order heterogeneous consumption (flux_out = k_het * c(0)),
///     used for species oxidised/reduced at the electrode, and
///   * an injection flux (mol m^-2 s^-1), used for species *produced* at the
///     electrode (e.g. the reduced half of a redox couple).
/// The far boundary is either a Dirichlet bulk reservoir or a no-flux wall.
#pragma once

#include <span>
#include <vector>

#include "chem/grid.hpp"

namespace idp::chem {

/// Far-boundary condition of a diffusion field.
enum class FarBoundary {
  kBulkReservoir,  ///< Dirichlet: concentration pinned to bulk value
  kSealed,         ///< no-flux wall (used by conservation tests / chambers)
};

/// Concentration field of one species on a 1-D grid, advanced implicitly.
class DiffusionField {
 public:
  /// \param grid          spatial grid (node 0 = electrode surface)
  /// \param diffusivity   per-node diffusivity [m^2/s]; must match grid size.
  ///                      Layered media (membrane vs bulk) use different
  ///                      values per node; interface values use harmonic
  ///                      means so flux continuity holds.
  /// \param c_init        initial uniform concentration [mol/m^3]
  DiffusionField(Grid1D grid, std::vector<double> diffusivity, double c_init);

  /// Convenience: uniform diffusivity everywhere.
  DiffusionField(Grid1D grid, double diffusivity, double c_init);

  // --- boundary & source configuration (persist across steps) -------------
  void set_far_boundary(FarBoundary fb) { far_ = fb; }
  /// Bulk reservoir concentration (Dirichlet value). Also the value new
  /// solution entering the domain carries.
  void set_bulk_concentration(double c);
  /// First-order heterogeneous rate constant at the electrode [m/s].
  void set_electrode_rate(double k_het);
  /// Production flux of this species at the electrode [mol m^-2 s^-1].
  void set_electrode_injection(double flux);
  /// Volumetric source for the *next* step [mol m^-3 s^-1] per node; cleared
  /// automatically after each step.
  void set_source(std::span<const double> source_per_node);

  /// Reset the whole profile to a uniform concentration.
  void fill(double c);

  /// Uniformly scale the effective diffusivity to `scale` times the
  /// constructed base values (must be > 0). Models a fouling film whose
  /// growing diffusion resistance throttles transport without rebuilding
  /// the field: the concentration profile and boundary state persist.
  /// Scale 1 restores the exact constructed coefficients.
  void set_diffusivity_scale(double scale);
  double diffusivity_scale() const { return d_scale_; }

  // --- time stepping -------------------------------------------------------
  /// Advance by dt seconds; returns the electrode *consumption* flux
  /// J = k_het * c(0, t+dt) in mol m^-2 s^-1 (>= 0).
  double step(double dt);

  // --- observers -----------------------------------------------------------
  double at_electrode() const { return c_.front(); }
  double at(std::size_t i) const { return c_[i]; }
  std::size_t size() const { return c_.size(); }
  const Grid1D& grid() const { return grid_; }
  const std::vector<double>& concentrations() const { return c_; }
  /// Integral of c over the domain [mol/m^2]; exact FV sum.
  double total_per_area() const;

 private:
  /// Shared validation + buffer setup of both constructors (grid_ and d_
  /// must already be initialised).
  void init(double c_init);
  /// Recompute d_face_ from the base diffusivities and the current scale.
  void rebuild_face_diffusivity();

  Grid1D grid_;
  std::vector<double> d_;        ///< per-node *base* diffusivity
  std::vector<double> d_face_;   ///< harmonic-mean interface diffusivity
                                 ///< (includes the fouling scale)
  double d_scale_ = 1.0;         ///< uniform scale on the base diffusivity
  std::vector<double> c_;
  std::vector<double> source_;
  bool source_set_ = false;

  FarBoundary far_ = FarBoundary::kBulkReservoir;
  double c_bulk_ = 0.0;
  double k_het_ = 0.0;
  double injection_ = 0.0;

  // persistent buffers for the tridiagonal assembly and solve; step() reuses
  // them so steady-state stepping performs zero heap allocations
  std::vector<double> lower_, diag_, upper_, rhs_, scratch_;
};

/// Build a per-node diffusivity vector for a membrane+bulk grid: nodes inside
/// the membrane get d_membrane, the rest d_bulk.
std::vector<double> layered_diffusivity(const Grid1D& grid, double d_membrane,
                                        double d_bulk);

}  // namespace idp::chem
