/// \file grid.hpp
/// One-dimensional spatial grids for the diffusion solver.
///
/// Electrochemical diffusion layers are thin (micrometres) near the electrode
/// and grow as sqrt(D t); an exponentially expanding grid (Feldberg) covers
/// both scales with a few tens of nodes. Enzyme-membrane sensors additionally
/// need a uniform fine region across the membrane.
#pragma once

#include <cstddef>
#include <vector>

namespace idp::chem {

/// Immutable 1-D grid. Node 0 sits on the electrode surface (x = 0); the last
/// node is the bulk boundary. Spacing h(i) separates nodes i and i+1; each
/// node owns a finite-volume control cell of width cv(i) (half cells at the
/// two boundaries), so that sum(cv) == domain length exactly.
class Grid1D {
 public:
  /// Uniform grid with n nodes spanning [0, length].
  static Grid1D uniform(double length, std::size_t n);

  /// Expanding grid: first spacing h0, each next spacing multiplied by beta,
  /// until `length` is covered. beta in [1, 1.5] keeps FD error acceptable.
  static Grid1D expanding(double h0, double beta, double length);

  /// Membrane + bulk grid: uniform fine region across [0, membrane_thickness]
  /// with n_membrane nodes, then expanding spacings (factor beta) out to
  /// membrane_thickness + bulk_length. The membrane/bulk interface falls
  /// exactly on a node.
  static Grid1D membrane_bulk(double membrane_thickness, std::size_t n_membrane,
                              double beta, double bulk_length);

  std::size_t size() const { return x_.size(); }
  double x(std::size_t i) const { return x_[i]; }
  /// Spacing between node i and i+1 (i < size()-1).
  double h(std::size_t i) const { return h_[i]; }
  /// Finite-volume cell width owned by node i.
  double cv(std::size_t i) const { return cv_[i]; }
  double length() const { return x_.back(); }

  /// Number of leading nodes inside the membrane region (0 for plain grids);
  /// the node at the interface counts as membrane.
  std::size_t membrane_nodes() const { return membrane_nodes_; }

  const std::vector<double>& nodes() const { return x_; }

 private:
  explicit Grid1D(std::vector<double> x, std::size_t membrane_nodes = 0);

  std::vector<double> x_;   ///< node positions
  std::vector<double> h_;   ///< spacings, size()-1 entries
  std::vector<double> cv_;  ///< control-volume widths
  std::size_t membrane_nodes_ = 0;
};

}  // namespace idp::chem
