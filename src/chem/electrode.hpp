/// \file electrode.hpp
/// Electrode geometry, materials and nanostructuration (Section III of the
/// paper: Au working/counter electrodes, Ag reference, 0.23 mm^2 area,
/// carbon-nanotube / rhodium-graphite functionalisation).
#pragma once

#include <string>

namespace idp::chem {

/// Role of an electrode in a three-electrode cell.
enum class ElectrodeRole { kWorking, kReference, kCounter };

/// Electrode bulk material (determines double-layer capacitance and which
/// roles it can credibly serve).
enum class ElectrodeMaterial {
  kGold,
  kSilver,           ///< reference electrodes (Ag/AgCl)
  kPlatinum,
  kGlassyCarbon,
  kScreenPrintedCarbon,
  kRhodiumGraphite,  ///< used by Shumyantseva et al. for CYP2B4 [16]
};

/// Nanostructuration of the working electrode surface. The paper notes that
/// nanostructures raise sensitivity (via effective area / electron transfer)
/// at the price of a larger background.
enum class Nanostructure {
  kNone,
  kCarbonNanotube,   ///< used for glucose/lactate/glutamate/cholesterol [8][15]
  kCobaltOxide,      ///< cholesterol biosensor of Salimi et al. [11]
  kColloidalClay,    ///< CYP2B4 films of Shumyantseva et al. [17]
  kZirconiaNano,     ///< CYP2B6 films of Peng et al. [19]
};

/// Human-readable names (for reports).
std::string to_string(ElectrodeMaterial m);
std::string to_string(Nanostructure n);
std::string to_string(ElectrodeRole r);

/// Planar electrode geometry. The paper's platform uses 0.23 mm^2 pads;
/// electrodes with a characteristic radius below ~25 um behave as
/// microelectrodes (faster response, smaller background).
struct ElectrodeGeometry {
  double area = 0.23e-6;  ///< [m^2] == 0.23 mm^2, Fig. 4 default

  /// Radius of the equivalent disc [m].
  double characteristic_radius() const;
  /// True if the equivalent disc radius is below the micro threshold (25 um).
  bool is_microelectrode() const;
};

/// A physical electrode: role + material + geometry + nanostructure.
/// Invariants: positive area; reference electrodes must be silver (Ag/AgCl
/// in this platform); enforced at construction.
class Electrode {
 public:
  Electrode(ElectrodeRole role, ElectrodeMaterial material,
            ElectrodeGeometry geometry,
            Nanostructure nano = Nanostructure::kNone);

  ElectrodeRole role() const { return role_; }
  ElectrodeMaterial material() const { return material_; }
  Nanostructure nanostructure() const { return nano_; }
  double area() const { return geometry_.area; }
  const ElectrodeGeometry& geometry() const { return geometry_; }

  /// Electroactive-surface multiplier contributed by the nanostructure
  /// (>= 1; CNT forests expose several times the geometric area).
  double roughness_factor() const;

  /// Geometric area times roughness [m^2].
  double effective_area() const { return area() * roughness_factor(); }

  /// Double-layer capacitance [F]: specific capacitance of the material
  /// times the *effective* area (nanostructures raise the background too,
  /// which is exactly the trade-off Section III discusses).
  double double_layer_capacitance() const;

  /// Capacitive background current for a potential ramp dE/dt [A]:
  /// i_dl = C_dl * dE/dt. This is the non-faradaic background of CV.
  double charging_current(double de_dt) const;

 private:
  ElectrodeRole role_;
  ElectrodeMaterial material_;
  ElectrodeGeometry geometry_;
  Nanostructure nano_;
};

}  // namespace idp::chem
