/// \file redox.cpp
/// Redox couple kinetics implementation: Butler-Volmer rate law and
/// Nernst equilibrium potentials (IUPAC sign convention).

#include "chem/redox.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace idp::chem {

namespace {
constexpr double kRateCap = 1.0e3;  // m/s or 1/s; effectively "infinitely fast"
}

BvRates butler_volmer_rates(const RedoxCouple& couple, double e) {
  const double f = util::kFOverRT;
  const double eta = e - couple.e0;
  const double n = static_cast<double>(couple.n);
  BvRates r;
  r.kf = std::min(kRateCap,
                  couple.k0 * std::exp((1.0 - couple.alpha) * n * f * eta));
  r.kb = std::min(kRateCap, couple.k0 * std::exp(-couple.alpha * n * f * eta));
  return r;
}

double nernst_potential(const RedoxCouple& couple, double c_ox, double c_red) {
  util::require(c_ox > 0.0 && c_red > 0.0,
                "Nernst requires positive concentrations");
  const double n = static_cast<double>(couple.n);
  return couple.e0 + util::kThermalVoltage / n * std::log(c_ox / c_red);
}

SurfaceRates laviron_rates(const RedoxCouple& couple, double ks, double e) {
  util::require(ks > 0.0, "surface rate must be positive");
  const double f = util::kFOverRT;
  const double eta = e - couple.e0;
  const double n = static_cast<double>(couple.n);
  SurfaceRates r;
  r.k_ox = std::min(kRateCap, ks * std::exp((1.0 - couple.alpha) * n * f * eta));
  r.k_red = std::min(kRateCap, ks * std::exp(-couple.alpha * n * f * eta));
  return r;
}

}  // namespace idp::chem
