/// \file tridiag.hpp
/// Thomas algorithm for tridiagonal systems -- the inner kernel of the
/// implicit (backward-Euler) diffusion step.
#pragma once

#include <span>
#include <vector>

namespace idp::chem {

/// Solve the tridiagonal system
///   lower[i]*x[i-1] + diag[i]*x[i] + upper[i]*x[i+1] = rhs[i]
/// (lower[0] and upper[n-1] are ignored) without allocating: the forward
/// elimination stores the modified upper band in `scratch` and the modified
/// right-hand side directly in `out`, which the backward pass then overwrites
/// with the solution. `rhs` and `out` may alias the same storage (each rhs
/// element is read before its slot is written); `scratch` must not alias any
/// other argument and `out` must not alias a band (both enforced). All spans
/// must have equal size >= 1; the matrix must be non-singular (diagonally
/// dominant in our use).
///
/// This is the zero-allocation kernel the simulation hot path runs once per
/// species per time step; DiffusionField owns persistent scratch/output
/// buffers so steady-state stepping never touches the heap.
void solve_tridiagonal_inplace(std::span<const double> lower,
                               std::span<const double> diag,
                               std::span<const double> upper,
                               std::span<const double> rhs,
                               std::span<double> scratch,
                               std::span<double> out);

/// Allocating convenience wrapper around solve_tridiagonal_inplace; returns
/// the solution vector. Prefer the in-place form in per-step code.
std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs);

/// Lane-batched Thomas solve over `lanes` independent tridiagonal systems
/// stored structure-of-arrays: element i of lane l lives at `[i*lanes + l]`
/// in every span (node-major, lane-minor), so the elimination recurrence
/// walks nodes in the outer loop while the inner lane loop touches
/// contiguous memory -- the layout the compiler auto-vectorizes.
///
/// Per lane the arithmetic is the exact op-for-op sequence of
/// solve_tridiagonal_inplace (division, multiply, subtract in the same
/// order), so each lane's solution is bitwise identical to a scalar solve
/// of that lane -- the kernel-equivalence property test pins this. The one
/// structural difference: singularity is detected by folding the minimum
/// |denom| across the forward pass and checking once at the end (IEEE
/// division by zero yields inf, not a trap, so deferring the check changes
/// nothing for non-singular systems and keeps the inner loop branch-free).
///
/// `rhs` and `out` may alias the same storage; `scratch` must not alias any
/// other argument and `out` must not alias a band (both enforced). All
/// spans must have size n*lanes with n >= 1 and lanes >= 1. `lanes == 1`
/// degenerates to the scalar solve (same layout, same bits).
void solve_tridiagonal_batched(std::size_t n, std::size_t lanes,
                               std::span<const double> lower,
                               std::span<const double> diag,
                               std::span<const double> upper,
                               std::span<const double> rhs,
                               std::span<double> scratch,
                               std::span<double> out);

}  // namespace idp::chem
