/// \file tridiag.hpp
/// Thomas algorithm for tridiagonal systems -- the inner kernel of the
/// implicit (backward-Euler) diffusion step.
#pragma once

#include <span>
#include <vector>

namespace idp::chem {

/// Solve the tridiagonal system
///   lower[i]*x[i-1] + diag[i]*x[i] + upper[i]*x[i+1] = rhs[i]
/// (lower[0] and upper[n-1] are ignored). All spans must have equal size
/// >= 1; the matrix must be non-singular (diagonally dominant in our use).
/// Returns the solution vector.
std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs);

}  // namespace idp::chem
