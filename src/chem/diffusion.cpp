/// \file diffusion.cpp
/// Implicit finite-volume diffusion solver implementation:
/// backward-Euler matrix assembly and stepping via the Thomas algorithm.

#include "chem/diffusion.hpp"

#include <algorithm>

#include "chem/tridiag.hpp"
#include "util/error.hpp"

namespace idp::chem {

DiffusionField::DiffusionField(Grid1D grid, std::vector<double> diffusivity,
                               double c_init)
    : grid_(std::move(grid)), d_(std::move(diffusivity)) {
  init(c_init);
}

DiffusionField::DiffusionField(Grid1D grid, double diffusivity, double c_init)
    : grid_(std::move(grid)), d_(grid_.size(), diffusivity) {
  init(c_init);
}

void DiffusionField::init(double c_init) {
  util::require(d_.size() == grid_.size(), "diffusivity size mismatch");
  for (double d : d_) util::require(d > 0.0, "diffusivity must be positive");
  util::require(c_init >= 0.0, "negative concentration");
  c_.assign(grid_.size(), c_init);
  c_bulk_ = c_init;
  source_.assign(grid_.size(), 0.0);
  d_face_.resize(grid_.size() - 1);
  rebuild_face_diffusivity();
  const std::size_t n = grid_.size();
  lower_.resize(n);
  diag_.resize(n);
  upper_.resize(n);
  rhs_.resize(n);
  scratch_.resize(n);
}

void DiffusionField::rebuild_face_diffusivity() {
  // Harmonic interface mean of the scaled per-node diffusivities; a uniform
  // scale factors out, so applying it after the mean is exact (and scale 1
  // reproduces the constructed values bitwise).
  for (std::size_t i = 0; i + 1 < grid_.size(); ++i) {
    const double harmonic = 2.0 * d_[i] * d_[i + 1] / (d_[i] + d_[i + 1]);
    d_face_[i] = d_scale_ == 1.0 ? harmonic : d_scale_ * harmonic;
  }
}

void DiffusionField::set_diffusivity_scale(double scale) {
  util::require(scale > 0.0, "diffusivity scale must be positive");
  if (scale == d_scale_) return;
  d_scale_ = scale;
  rebuild_face_diffusivity();
}

void DiffusionField::set_bulk_concentration(double c) {
  util::require(c >= 0.0, "negative concentration");
  c_bulk_ = c;
}

void DiffusionField::set_electrode_rate(double k_het) {
  util::require(k_het >= 0.0, "negative rate constant");
  k_het_ = k_het;
}

void DiffusionField::set_electrode_injection(double flux) {
  injection_ = flux;
}

void DiffusionField::set_source(std::span<const double> source_per_node) {
  util::require(source_per_node.size() == source_.size(),
                "source size mismatch");
  std::copy(source_per_node.begin(), source_per_node.end(), source_.begin());
  source_set_ = true;
}

void DiffusionField::fill(double c) {
  util::require(c >= 0.0, "negative concentration");
  std::fill(c_.begin(), c_.end(), c);
}

double DiffusionField::step(double dt) {
  util::require(dt > 0.0, "dt must be positive");
  const std::size_t n = grid_.size();

  // Node 0 (electrode): half cell with Robin consumption + injection.
  {
    const double w0 = grid_.cv(0);
    const double a01 = dt * d_face_[0] / (grid_.h(0) * w0);
    upper_[0] = -a01;
    diag_[0] = 1.0 + a01 + dt * k_het_ / w0;
    lower_[0] = 0.0;
    rhs_[0] = c_[0] + dt * (injection_ / w0 + source_[0]);
  }

  // Interior nodes.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double w = grid_.cv(i);
    const double al = dt * d_face_[i - 1] / (grid_.h(i - 1) * w);
    const double au = dt * d_face_[i] / (grid_.h(i) * w);
    lower_[i] = -al;
    upper_[i] = -au;
    diag_[i] = 1.0 + al + au;
    rhs_[i] = c_[i] + dt * source_[i];
  }

  // Far boundary.
  if (far_ == FarBoundary::kBulkReservoir) {
    lower_[n - 1] = 0.0;
    upper_[n - 1] = 0.0;
    diag_[n - 1] = 1.0;
    rhs_[n - 1] = c_bulk_;
  } else {  // sealed half cell
    const double w = grid_.cv(n - 1);
    const double al = dt * d_face_[n - 2] / (grid_.h(n - 2) * w);
    lower_[n - 1] = -al;
    upper_[n - 1] = 0.0;
    diag_[n - 1] = 1.0 + al;
    rhs_[n - 1] = c_[n - 1] + dt * source_[n - 1];
  }

  solve_tridiagonal_inplace(lower_, diag_, upper_, rhs_, scratch_, c_);
  // Implicit diffusion keeps concentrations non-negative for non-negative
  // inputs, but explicit sink sources can undershoot; clamp defensively.
  for (double& c : c_) c = std::max(c, 0.0);

  if (source_set_) {
    std::fill(source_.begin(), source_.end(), 0.0);
    source_set_ = false;
  }
  return k_het_ * c_.front();
}

double DiffusionField::total_per_area() const {
  double total = 0.0;
  for (std::size_t i = 0; i < c_.size(); ++i) total += c_[i] * grid_.cv(i);
  return total;
}

std::vector<double> layered_diffusivity(const Grid1D& grid, double d_membrane,
                                        double d_bulk) {
  util::require(d_membrane > 0.0 && d_bulk > 0.0,
                "diffusivities must be positive");
  std::vector<double> d(grid.size(), d_bulk);
  for (std::size_t i = 0; i < grid.membrane_nodes() && i < d.size(); ++i) {
    d[i] = d_membrane;
  }
  return d;
}

}  // namespace idp::chem
