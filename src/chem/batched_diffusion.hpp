/// \file batched_diffusion.hpp
/// Structure-of-arrays lane batch of independent 1-D diffusion fields that
/// share one grid and step in lockstep through a single batched tridiagonal
/// solve.
///
/// Each lane is a full DiffusionField: its own diffusivity profile, far
/// boundary, bulk value, electrode rate/injection, fouling scale, and
/// volumetric sources. What the lanes share is the *grid geometry* (node
/// positions, control volumes), which is what makes the Thomas sweep
/// vectorizable: every per-node array is stored node-major / lane-minor
/// (`[i*lanes + lane]`), so the elimination recurrence walks nodes in the
/// outer loop while the inner lane loop touches contiguous memory.
///
/// Per lane the assembly and solve are the exact op-for-op arithmetic of
/// DiffusionField::step, so lane values are bitwise identical to a scalar
/// field advanced with the same inputs, regardless of lane count or lane
/// order -- the kernel-equivalence property test pins this. The workspace
/// honours the zero-allocation steady-state contract: all buffers are sized
/// at construction and step() never touches the heap.
#pragma once

#include <span>
#include <vector>

#include "chem/diffusion.hpp"
#include "chem/grid.hpp"

namespace idp::chem {

/// N independent diffusion fields on one grid, advanced in lockstep.
class BatchedDiffusionField {
 public:
  /// Workspace for `lanes` fields on `grid` (node 0 = electrode surface).
  /// Every lane must be configured via configure_lane before stepping.
  BatchedDiffusionField(Grid1D grid, std::size_t lanes);

  /// Set lane `lane`'s per-node base diffusivity profile [m^2/s] and initial
  /// uniform concentration [mol/m^3]; the bulk reservoir value starts at
  /// c_init, mirroring the DiffusionField constructor.
  void configure_lane(std::size_t lane, std::span<const double> diffusivity,
                      double c_init);
  /// Convenience: uniform diffusivity everywhere.
  void configure_lane(std::size_t lane, double diffusivity, double c_init);

  // --- per-lane boundary & source configuration (persist across steps) ----
  void set_far_boundary(std::size_t lane, FarBoundary fb);
  void set_bulk_concentration(std::size_t lane, double c);
  void set_electrode_rate(std::size_t lane, double k_het);
  void set_electrode_injection(std::size_t lane, double flux);
  /// Volumetric source for the *next* step [mol m^-3 s^-1] per node of one
  /// lane; all sources are cleared automatically after each step.
  void set_source(std::size_t lane, std::span<const double> source_per_node);
  /// Reset one lane's profile to a uniform concentration.
  void fill(std::size_t lane, double c);
  /// Uniformly scale lane `lane`'s effective diffusivity (see
  /// DiffusionField::set_diffusivity_scale). Scale 1 restores the exact
  /// constructed coefficients bitwise.
  void set_diffusivity_scale(std::size_t lane, double scale);
  double diffusivity_scale(std::size_t lane) const;

  // --- raw SoA source fast path -------------------------------------------
  /// Mutable node-major source array (`[i*lanes() + lane]`). Kernel-grade
  /// callers (the oxidase reaction loop) write rates for all lanes of a node
  /// directly and then call mark_sources_set() once; equivalent to
  /// set_source per lane but with no per-lane staging buffer.
  std::span<double> source_data() { return source_; }
  void mark_sources_set() { source_set_ = true; }

  // --- time stepping -------------------------------------------------------
  /// Advance every lane by dt seconds in one batched tridiagonal solve.
  /// Per-lane electrode consumption fluxes are available from
  /// electrode_flux() afterwards. Allocation-free.
  void step(double dt);

  // --- observers -----------------------------------------------------------
  /// Electrode consumption flux J = k_het * c(0, t+dt) of the last step().
  double electrode_flux(std::size_t lane) const;
  double at_electrode(std::size_t lane) const { return c_[lane]; }
  double at(std::size_t lane, std::size_t i) const {
    return c_[i * lanes_ + lane];
  }
  std::size_t lanes() const { return lanes_; }
  /// Nodes per lane.
  std::size_t size() const { return grid_.size(); }
  const Grid1D& grid() const { return grid_; }
  /// Integral of lane `lane`'s c over the domain [mol/m^2]; exact FV sum.
  double total_per_area(std::size_t lane) const;

 private:
  void check_lane(std::size_t lane) const;
  void rebuild_face_diffusivity(std::size_t lane);

  Grid1D grid_;
  std::size_t lanes_;
  std::size_t configured_ = 0;  ///< lanes configured so far (step needs all)

  // per-lane scalar state (indexed by lane)
  std::vector<char> lane_configured_;
  std::vector<FarBoundary> far_;
  std::vector<double> d_scale_, c_bulk_, k_het_, injection_, flux_;

  // node-major / lane-minor SoA arrays (size grid.size() * lanes; d_face_
  // has (grid.size()-1) * lanes interface rows)
  std::vector<double> d_, d_face_, c_, source_;
  bool source_set_ = false;

  // persistent assembly + solve buffers; step() reuses them so steady-state
  // stepping performs zero heap allocations
  std::vector<double> lower_, diag_, upper_, rhs_, scratch_;
};

}  // namespace idp::chem
