/// \file cell.cpp
/// Electrochemical cell implementation: electrode placement, chamber
/// partitioning and geometry validation for the Section II layouts.

#include "chem/cell.hpp"

#include "util/error.hpp"

namespace idp::chem {

ThreeElectrodeCell::ThreeElectrodeCell(std::vector<Electrode> working,
                                       Electrode reference, Electrode counter,
                                       CellImpedance impedance)
    : working_(std::move(working)),
      reference_(reference),
      counter_(counter),
      impedance_(impedance) {
  util::require(!working_.empty(), "cell needs at least one working electrode");
  for (const auto& we : working_) {
    util::require(we.role() == ElectrodeRole::kWorking,
                  "non-WE electrode in working list");
  }
  util::require(reference_.role() == ElectrodeRole::kReference,
                "reference electrode has wrong role");
  util::require(counter_.role() == ElectrodeRole::kCounter,
                "counter electrode has wrong role");
  util::require(impedance_.r_solution > 0.0 && impedance_.r_counter > 0.0,
                "cell resistances must be positive");
}

const Electrode& ThreeElectrodeCell::working(std::size_t i) const {
  util::require(i < working_.size(), "working electrode index out of range");
  return working_[i];
}

bool ThreeElectrodeCell::counter_adequate() const {
  return counter_.area() >= total_working_area();
}

double ThreeElectrodeCell::total_working_area() const {
  double a = 0.0;
  for (const auto& we : working_) a += we.area();
  return a;
}

ThreeElectrodeCell make_fig4_cell(std::size_t n_we) {
  util::require(n_we >= 1, "need at least one working electrode");
  constexpr double kPadArea = 0.23e-6;  // 0.23 mm^2, Section III
  std::vector<Electrode> working;
  working.reserve(n_we);
  for (std::size_t i = 0; i < n_we; ++i) {
    working.emplace_back(ElectrodeRole::kWorking, ElectrodeMaterial::kGold,
                         ElectrodeGeometry{kPadArea});
  }
  const Electrode reference(ElectrodeRole::kReference,
                            ElectrodeMaterial::kSilver,
                            ElectrodeGeometry{kPadArea});
  const Electrode counter(ElectrodeRole::kCounter, ElectrodeMaterial::kGold,
                          ElectrodeGeometry{kPadArea * static_cast<double>(n_we)});
  return ThreeElectrodeCell(std::move(working), reference, counter);
}

}  // namespace idp::chem
