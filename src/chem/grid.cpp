/// \file grid.cpp
/// Spatial-grid construction: uniform, geometrically expanding and
/// membrane+bulk composite 1-D grids for the diffusion solver.

#include "chem/grid.hpp"

#include "util/error.hpp"

namespace idp::chem {

Grid1D::Grid1D(std::vector<double> x, std::size_t membrane_nodes)
    : x_(std::move(x)), membrane_nodes_(membrane_nodes) {
  util::require(x_.size() >= 3, "grid needs at least three nodes");
  h_.resize(x_.size() - 1);
  for (std::size_t i = 0; i + 1 < x_.size(); ++i) {
    h_[i] = x_[i + 1] - x_[i];
    util::require(h_[i] > 0.0, "grid nodes must be strictly increasing");
  }
  cv_.resize(x_.size());
  cv_.front() = h_.front() / 2.0;
  cv_.back() = h_.back() / 2.0;
  for (std::size_t i = 1; i + 1 < x_.size(); ++i) {
    cv_[i] = (h_[i - 1] + h_[i]) / 2.0;
  }
}

Grid1D Grid1D::uniform(double length, std::size_t n) {
  util::require(length > 0.0, "length must be positive");
  util::require(n >= 3, "need at least three nodes");
  std::vector<double> x(n);
  const double dx = length / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) x[i] = dx * static_cast<double>(i);
  x.back() = length;
  return Grid1D(std::move(x));
}

Grid1D Grid1D::expanding(double h0, double beta, double length) {
  util::require(h0 > 0.0, "h0 must be positive");
  util::require(beta >= 1.0 && beta <= 2.0, "beta must be in [1,2]");
  util::require(length > h0, "length must exceed first spacing");
  std::vector<double> x{0.0};
  double h = h0;
  while (x.back() < length) {
    x.push_back(x.back() + h);
    h *= beta;
  }
  return Grid1D(std::move(x));
}

Grid1D Grid1D::membrane_bulk(double membrane_thickness, std::size_t n_membrane,
                             double beta, double bulk_length) {
  util::require(membrane_thickness > 0.0, "membrane thickness must be positive");
  util::require(n_membrane >= 3, "need at least three membrane nodes");
  util::require(bulk_length > 0.0, "bulk length must be positive");
  std::vector<double> x(n_membrane);
  const double dx = membrane_thickness / static_cast<double>(n_membrane - 1);
  for (std::size_t i = 0; i < n_membrane; ++i) x[i] = dx * static_cast<double>(i);
  x[n_membrane - 1] = membrane_thickness;
  double h = dx;
  while (x.back() < membrane_thickness + bulk_length) {
    h *= beta;
    x.push_back(x.back() + h);
  }
  return Grid1D(std::move(x), n_membrane);
}

}  // namespace idp::chem
