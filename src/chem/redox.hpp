/// \file redox.hpp
/// Redox couples and Butler-Volmer / Nernst electrode kinetics.
///
/// Sign conventions (IUPAC): anodic (oxidation) current is positive.
/// All potentials are vs. Ag/AgCl, matching the paper's Tables I and II.
#pragma once

#include <string>

namespace idp::chem {

/// A one-step redox couple  R  <->  O + n e-.
struct RedoxCouple {
  std::string name;
  int n = 1;            ///< electrons transferred
  double e0 = 0.0;      ///< formal potential vs Ag/AgCl [V]
  double k0 = 1.0e-5;   ///< standard heterogeneous rate constant [m/s]
  double alpha = 0.5;   ///< charge-transfer coefficient
};

/// Forward/backward heterogeneous rate constants at potential E [m/s].
/// kf drives oxidation (R -> O), kb reduction (O -> R). Both are capped at
/// 1e3 m/s -- far above any diffusion-limited rate -- to keep the implicit
/// solver well-conditioned at extreme overpotentials.
struct BvRates {
  double kf = 0.0;
  double kb = 0.0;
};

/// Butler-Volmer rates for `couple` at electrode potential `e` [V].
BvRates butler_volmer_rates(const RedoxCouple& couple, double e);

/// Equilibrium (Nernst) potential for the given surface concentrations.
/// Requires c_ox > 0 and c_red > 0.
double nernst_potential(const RedoxCouple& couple, double c_ox, double c_red);

/// Dimensionless surface rates for a *surface-confined* couple (Laviron);
/// same expressions as Butler-Volmer but with k0 in 1/s.
struct SurfaceRates {
  double k_ox = 0.0;  ///< red -> ox rate [1/s]
  double k_red = 0.0; ///< ox -> red rate [1/s]
};

/// Laviron surface electron-transfer rates for an adsorbed couple with
/// standard rate ks [1/s] at potential `e` [V].
SurfaceRates laviron_rates(const RedoxCouple& couple, double ks, double e);

}  // namespace idp::chem
