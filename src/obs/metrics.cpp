/// \file metrics.cpp
/// MetricsRegistry implementation: get-or-create entries with stable
/// addresses, deterministic sorted snapshot, canonical CSV export and
/// conservation-rule evaluation.

#include "obs/metrics.hpp"

#include <fstream>
#include <utility>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace idp::obs {

namespace {

void append_label(std::string& out, const char* name, std::int32_t v) {
  if (v < 0) return;
  if (!out.empty()) out += ',';
  out += name;
  out += '=';
  out += std::to_string(v);
}

std::string label_cell(std::int32_t v) {
  return v < 0 ? std::string() : std::to_string(v);
}

}  // namespace

std::string to_string(const MetricLabels& labels) {
  std::string out;
  append_label(out, "tenant", labels.tenant);
  append_label(out, "shard", labels.shard);
  append_label(out, "priority", labels.priority);
  append_label(out, "channel", labels.channel);
  append_label(out, "subscriber", labels.subscriber);
  return out;
}

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

// --- MetricsSnapshot --------------------------------------------------------

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const MetricLabels& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value(const std::string& name,
                              const MetricLabels& labels) const {
  const MetricSample* s = find(name, labels);
  util::require(s != nullptr, "metric not in snapshot: " + name);
  return s->value;
}

double MetricsSnapshot::sum(const std::string& name) const {
  double total = 0.0;
  for (const MetricSample& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

bool MetricsSnapshot::has(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return true;
  }
  return false;
}

std::vector<std::string> MetricsSnapshot::columns() {
  std::vector<std::string> cols{"metric",  "type",    "tenant",
                                "shard",   "priority", "channel",
                                "subscriber", "value"};
  for (const std::string& c : util::latency_summary_columns()) {
    cols.push_back(c);
  }
  return cols;
}

void MetricsSnapshot::to_csv(const std::string& path) const {
  util::CsvWriter writer(path, columns());
  for (const MetricSample& s : samples) {
    std::vector<std::string> cells;
    cells.reserve(14);
    cells.push_back(s.name);
    cells.push_back(to_string(s.type));
    cells.push_back(label_cell(s.labels.tenant));
    cells.push_back(label_cell(s.labels.shard));
    cells.push_back(label_cell(s.labels.priority));
    cells.push_back(label_cell(s.labels.channel));
    cells.push_back(label_cell(s.labels.subscriber));
    cells.push_back(util::fmt_g17(s.value));
    for (double v : util::to_row(s.latency)) cells.push_back(util::fmt_g17(v));
    writer.write_row(cells);
  }
  writer.close();
}

void MetricsSnapshot::to_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  util::require(out.good(), "cannot open metrics JSONL output");
  for (const MetricSample& s : samples) {
    // Metric names are dot-separated identifiers (no JSON escaping needed);
    // label dimensions print as-is (-1 = unlabeled) so the schema is fixed.
    out << "{\"metric\":\"" << s.name << "\",\"type\":\"" << to_string(s.type)
        << "\",\"tenant\":" << s.labels.tenant
        << ",\"shard\":" << s.labels.shard
        << ",\"priority\":" << s.labels.priority
        << ",\"channel\":" << s.labels.channel
        << ",\"subscriber\":" << s.labels.subscriber
        << ",\"value\":" << util::fmt_g17(s.value)
        << ",\"count\":" << s.latency.count
        << ",\"min\":" << util::fmt_g17(s.latency.min)
        << ",\"max\":" << util::fmt_g17(s.latency.max)
        << ",\"p50\":" << util::fmt_g17(s.latency.p50)
        << ",\"p90\":" << util::fmt_g17(s.latency.p90)
        << ",\"p99\":" << util::fmt_g17(s.latency.p99) << "}\n";
  }
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::entry_of(
    const std::string& name, const MetricLabels& labels, MetricType type,
    const util::LatencyHistogram* shape) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, fresh] = entries_.try_emplace({name, labels});
  Entry& entry = it->second;
  if (fresh) {
    entry.type = type;
    switch (type) {
      case MetricType::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        entry.histogram = std::make_unique<Histogram>(*shape);
        break;
    }
  } else {
    // A (name, labels) series is pinned to its first-registered type: a
    // collision is a naming bug that silent coercion would bury.
    util::require(entry.type == type,
                  "metric re-registered as a different type: " + name);
  }
  return entry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  return *entry_of(name, labels, MetricType::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  return *entry_of(name, labels, MetricType::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricLabels& labels,
                                      const util::LatencyHistogram& shape) {
  return *entry_of(name, labels, MetricType::kHistogram, &shape).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.samples.reserve(entries_.size());
  // entries_ is a std::map keyed on (name, labels), so iteration order IS
  // the canonical snapshot order.
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.value = static_cast<double>(entry.counter->value());
        break;
      case MetricType::kGauge:
        sample.value = entry.gauge->value();
        break;
      case MetricType::kHistogram: {
        const util::LatencyHistogram h = entry.histogram->snapshot();
        sample.latency = h.summary();
        sample.value = static_cast<double>(sample.latency.count);
        break;
      }
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

// --- conservation -----------------------------------------------------------

ConservationReport check_conservation(const MetricsSnapshot& snapshot,
                                      std::span<const ConservationRule> rules) {
  ConservationReport report;
  report.results.reserve(rules.size());
  for (const ConservationRule& rule : rules) {
    ConservationResult result;
    result.rule = rule.name;
    bool present = false;
    for (const std::string& name : rule.lhs) {
      if (snapshot.has(name)) present = true;
      result.lhs += snapshot.sum(name);
    }
    for (const std::string& name : rule.rhs) {
      if (snapshot.has(name)) present = true;
      result.rhs += snapshot.sum(name);
    }
    if (!present) {
      result.skipped = true;
    } else {
      // Exact equality: every conserved quantity is a count (integers well
      // inside the double mantissa), so any imbalance is a real leak.
      result.ok = result.lhs == result.rhs;
      if (!result.ok) report.ok = false;
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

const std::vector<ConservationRule>& serve_conservation_rules() {
  static const std::vector<ConservationRule> kRules{
      {"queue_admission",
       {"serve.queue.offered"},
       {"serve.queue.accepted", "serve.queue.rejected_full",
        "serve.queue.rejected_closed", "serve.queue.shed",
        "serve.queue.timed_out"}},
      {"scheduler_drain",
       {"serve.queue.accepted"},
       {"serve.scheduler.completed", "serve.queue.depth"}},
      {"merge_delivery",
       {"serve.merge.delivered"},
       {"serve.merge.merged", "serve.merge.duplicates"}},
      {"cluster_work",
       {"serve.cluster.work_arrivals"},
       {"serve.cluster.executions", "serve.cluster.work_discarded"}},
  };
  return kRules;
}

const std::vector<ConservationRule>& stream_conservation_rules() {
  static const std::vector<ConservationRule> kRules{
      {"bus_fanout",
       {"obs.bus.published"},
       {"obs.bus.delivered", "obs.bus.dropped", "obs.bus.pending"}},
  };
  return kRules;
}

}  // namespace idp::obs
