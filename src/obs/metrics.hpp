/// \file metrics.hpp
/// The typed metrics registry: the one surface every layer's counters
/// flow into, replacing the per-subsystem stats-struct sprawl
/// (serve::QueueStats, PriorityTelemetry, MergeStats, FaultStats,
/// quant::DriftDetector statistics) with named, labeled, typed metrics.
///
/// Three metric types:
/// - Counter: monotonically increasing u64 (atomic add from any thread).
/// - Gauge: a point-in-time double (atomic set).
/// - Histogram: a util::LatencyHistogram behind its own lock, exported as
///   the canonical util::LatencySummary row (count, exact min/max,
///   p50/p90/p99 -- every statistic order-independent, so snapshots of a
///   deterministic replay are bitwise identical at any parallelism).
///
/// Naming scheme (full table in docs/ARCHITECTURE.md): dot-separated
/// `layer.component.quantity` with unit suffixes on histograms (`_s`),
/// e.g. `serve.queue.accepted`, `serve.scheduler.queue_wait_s`,
/// `serve.cluster.retries`, `quant.drift.cusum`. Labels are the four
/// fleet dimensions -- tenant, shard, priority, channel -- each optional
/// (-1 = unlabeled); a (name, labels) pair identifies one time series.
///
/// Snapshot/export: snapshot() returns every sample sorted by
/// (name, labels); to_csv() writes one canonical row schema shared with
/// the serve telemetry-summary export. Conservation: check_conservation()
/// evaluates sum-identities ("every offered request lands in exactly one
/// admission bucket") against a snapshot, and serve_conservation_rules()
/// is the canonical airtight rule set for the service runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace idp::obs {

/// The fleet label dimensions; -1 means "not labeled along this axis".
/// Ordering is lexicographic over (tenant, shard, priority, channel,
/// subscriber), which fixes the canonical snapshot order. `subscriber`
/// is the telemetry-bus fan-out dimension (obs/stream.hpp): each
/// TelemetryBus subscriber's queue account publishes under its index.
struct MetricLabels {
  std::int32_t tenant = -1;
  std::int32_t shard = -1;
  std::int32_t priority = -1;
  std::int32_t channel = -1;
  std::int32_t subscriber = -1;

  friend auto operator<=>(const MetricLabels&, const MetricLabels&) = default;
};

/// "tenant=2,priority=0" (unset dimensions omitted; "" when fully unset).
std::string to_string(const MetricLabels& labels);

/// Monotonic counter (thread-safe).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Absorb an externally accumulated total (publication of a stats
  /// snapshot): counters published this way are set, not summed.
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (thread-safe set/get).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Labeled latency-shaped distribution (thread-safe observe/merge).
class Histogram {
 public:
  explicit Histogram(util::LatencyHistogram shape) : h_(std::move(shape)) {}

  void observe(double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    h_.add(value);
  }
  void merge(const util::LatencyHistogram& other) {
    const std::lock_guard<std::mutex> lock(mutex_);
    h_.merge(other);
  }
  util::LatencyHistogram snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return h_;
  }

 private:
  mutable std::mutex mutex_;
  util::LatencyHistogram h_;
};

enum class MetricType : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* to_string(MetricType type);

/// One exported sample. `value` is the counter/gauge value (histograms:
/// the sample count); histograms additionally carry the canonical latency
/// summary.
struct MetricSample {
  std::string name;
  MetricLabels labels;
  MetricType type = MetricType::kCounter;
  double value = 0.0;
  util::LatencySummary latency;  ///< histograms only
};

/// A deterministic registry snapshot: samples sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// The sample of (name, labels), or nullptr.
  const MetricSample* find(const std::string& name,
                           const MetricLabels& labels = {}) const;
  /// Value of (name, labels); throws util::Error when absent.
  double value(const std::string& name, const MetricLabels& labels = {}) const;
  /// Sum of `name` over every label combination (0 when absent).
  double sum(const std::string& name) const;
  /// True when at least one sample carries `name`.
  bool has(const std::string& name) const;

  /// Canonical CSV schema: metric, type, tenant, shard, priority, channel,
  /// subscriber, value, then util::latency_summary_columns(). Byte-identical
  /// files for bitwise-identical snapshots.
  static std::vector<std::string> columns();
  void to_csv(const std::string& path) const;

  /// Canonical JSONL (parity with TraceRecorder::to_jsonl): one object per
  /// sample in snapshot order, fixed key order, unset label dimensions as
  /// -1, doubles via util::fmt_g17 -- bitwise-identical snapshots export
  /// byte-identical files (the golden metrics fixture pins this).
  void to_jsonl(const std::string& path) const;
};

/// The registry. get-or-create accessors return stable references, safe
/// to cache and update from any thread; a (name, labels) pair is pinned
/// to the type of its first registration (re-registering as another type
/// throws -- a naming collision is a bug, not a merge).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const MetricLabels& labels = {});
  /// `shape` fixes the bin geometry on first registration; later calls
  /// with the same (name, labels) return the existing histogram.
  Histogram& histogram(const std::string& name,
                       const MetricLabels& labels = {},
                       const util::LatencyHistogram& shape =
                           util::LatencyHistogram());

  /// Deterministic snapshot of every registered metric.
  MetricsSnapshot snapshot() const;

  std::size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_of(const std::string& name, const MetricLabels& labels,
                  MetricType type, const util::LatencyHistogram* shape);

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, MetricLabels>, Entry> entries_;
};

/// One conservation identity: sum over all labels of every lhs metric
/// must equal the same sum over the rhs metrics. A rule none of whose
/// metric names appear in the snapshot is vacuous and reported skipped.
struct ConservationRule {
  std::string name;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
};

/// Outcome of one rule evaluation.
struct ConservationResult {
  std::string rule;
  double lhs = 0.0;
  double rhs = 0.0;
  bool skipped = false;  ///< no term present in the snapshot
  bool ok = true;        ///< lhs == rhs (exact; these are counts)
};

struct ConservationReport {
  std::vector<ConservationResult> results;
  /// True when every evaluated (non-skipped) rule balanced.
  bool ok = true;
};

/// Evaluate rules against a snapshot.
ConservationReport check_conservation(const MetricsSnapshot& snapshot,
                                      std::span<const ConservationRule> rules);

/// The canonical airtight rule set of the service runtime:
///  - queue:  offered == accepted + rejected_full + rejected_closed
///                        + shed + timed_out
///  - drain:  accepted == completed + depth   (a drained scheduler has
///            depth 0, so accepted == completed)
///  - merge:  delivered == merged + duplicates
///  - faults: work_arrivals == executions + work_discarded (every work
///            message delivered to a shard either executed or died with a
///            crashed shard; dispatch-side accounting cannot be exact
///            because the transport may both drop and duplicate in flight)
const std::vector<ConservationRule>& serve_conservation_rules();

/// The telemetry-bus rule set (obs/stream.hpp publishes the terms):
///  - fan-out: published == delivered + dropped + pending, summed over
///    every subscriber -- each frame offered to a subscriber lands in
///    exactly one of consumed / evicted-or-abandoned (counted loudly,
///    never silent) / still queued. TelemetryBus::publish_metrics also
///    labels each term by subscriber index, so the identity holds
///    per-subscriber, not just in aggregate (tests pin both).
const std::vector<ConservationRule>& stream_conservation_rules();

}  // namespace idp::obs
