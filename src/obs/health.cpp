/// \file health.cpp
/// Feature extraction, the rule classifier, health scoring and the ranked
/// fleet report.

#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>
#include <utility>

#include "obs/metrics.hpp"
#include "quant/drift.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace idp::obs {

const char* to_string(RootCause cause) {
  switch (cause) {
    case RootCause::kHealthy: return "healthy";
    case RootCause::kNetworkFault: return "network_fault";
    case RootCause::kInterferenceStorm: return "interference_storm";
    case RootCause::kReferenceDrift: return "reference_drift";
    case RootCause::kAfeDrift: return "afe_drift";
    case RootCause::kFouling: return "fouling";
    case RootCause::kEnzymeDecay: return "enzyme_decay";
  }
  return "unknown";
}

namespace {

/// Least-squares slope of y against t; 0 when the series is too short or
/// the time axis degenerate (linear_fit would throw).
double slope_of(std::span<const double> t, std::span<const double> y) {
  if (t.size() < 2) return 0.0;
  if (util::max_value(t) == util::min_value(t)) return 0.0;
  return util::linear_fit(t, y).slope;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void publish_drift(MetricsRegistry& registry,
                   const quant::DriftDetector& detector,
                   const MetricLabels& labels) {
  registry.gauge("quant.drift.ewma", labels).set(detector.ewma());
  registry.gauge("quant.drift.cusum", labels).set(detector.cusum());
  registry.gauge("quant.drift.cusum_pos", labels)
      .set(detector.cusum_positive());
  registry.gauge("quant.drift.cusum_neg", labels)
      .set(detector.cusum_negative());
  registry.counter("quant.drift.observations", labels)
      .set(detector.observation_count());
}

SensorHealthFeatures extract_features(std::span<const QcObservation> series,
                                      const NetworkFeatures& network,
                                      const HealthThresholds& thresholds) {
  SensorHealthFeatures f;
  f.network = network;
  f.observations = series.size();
  if (series.empty()) return f;

  std::vector<QcObservation> obs(series.begin(), series.end());
  std::sort(obs.begin(), obs.end(),
            [](const QcObservation& a, const QcObservation& b) {
              return std::tie(a.age_days, a.blank_residual,
                              a.standard_residual) <
                     std::tie(b.age_days, b.blank_residual,
                              b.standard_residual);
            });

  const std::size_t n = obs.size();
  std::vector<double> t(n), blank(n), standard(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = obs[i].age_days;
    blank[i] = obs[i].blank_residual;
    standard[i] = obs[i].standard_residual;
  }
  f.duration_days = t.back() - t.front();

  f.blank_mean = util::mean(blank);
  f.blank_trend = slope_of(t, blank);
  const double blank_median = util::median(blank);
  for (double b : blank) {
    if (std::fabs(b - blank_median) > thresholds.blank_spike_sigma) {
      f.blank_spikes += 1.0;
    }
  }

  f.standard_mean = util::mean(standard);
  f.standard_trend = slope_of(t, standard);

  // Total attenuation: how far the standard residual fell from the first
  // to the last quarter of the deployment (positive = signal loss).
  const std::size_t quarter = std::max<std::size_t>(1, n / 4);
  const double early =
      util::mean(std::span<const double>(standard.data(), quarter));
  const double late = util::mean(std::span<const double>(
      standard.data() + (n - quarter), quarter));
  f.standard_drop = early - late;

  // Trajectory curvature: the residual series is an affine image of the
  // attenuation curve, so the normalised late-minus-early slope difference
  // is scale-free -- ~0.3 for exp(-k*age), ~0.6+ for 1/(1+f*age) at
  // comparable total attenuation over a deployment.
  if (n >= 4) {
    const std::size_t half = n / 2;
    const double early_slope =
        slope_of(std::span<const double>(t.data(), half),
                 std::span<const double>(standard.data(), half));
    const double late_slope =
        slope_of(std::span<const double>(t.data() + half, n - half),
                 std::span<const double>(standard.data() + half, n - half));
    const double overall = f.standard_trend;
    if (std::fabs(overall) > 1e-12) {
      f.curvature = (late_slope - early_slope) / std::fabs(overall);
    }
  }

  // Random-walk volatility: stddev of consecutive differences. A ramp
  // contributes a constant difference (zero spread); a day-to-day random
  // walk contributes its step sigma.
  if (n >= 3) {
    std::vector<double> diffs;
    diffs.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) {
      diffs.push_back(standard[i] - standard[i - 1]);
    }
    f.volatility = util::stddev(diffs);
  }

  quant::DriftDetector detector;
  for (double s : standard) detector.observe(s);
  f.ewma = detector.ewma();
  f.cusum = detector.cusum();
  return f;
}

RootCause classify(const SensorHealthFeatures& f,
                   const HealthThresholds& thr) {
  // Fixed-order tree, most external cause first: network evidence is
  // independent of sensor chemistry, storms mask everything below them,
  // and only an un-shifted, quiet baseline lets attenuation shape speak.
  if (f.network.retry_rate > thr.retry_rate ||
      f.network.reroute_rate > thr.reroute_rate) {
    return RootCause::kNetworkFault;
  }
  if (f.blank_spikes >= thr.storm_spikes) {
    return RootCause::kInterferenceStorm;
  }
  if (f.volatility > thr.volatility) return RootCause::kReferenceDrift;
  if (std::fabs(f.blank_trend) > thr.blank_trend) return RootCause::kAfeDrift;
  if (f.standard_drop > thr.attenuation_drop) {
    return f.curvature > thr.fouling_curvature ? RootCause::kFouling
                                               : RootCause::kEnzymeDecay;
  }
  return RootCause::kHealthy;
}

double health_score(const SensorHealthFeatures& f,
                    const HealthThresholds& thr) {
  // Each dimension contributes its exceedance beyond 1x threshold; a
  // sensor inside every threshold scores exactly 1.
  const auto over = [](double value, double threshold) {
    return threshold > 0.0 ? std::max(0.0, value / threshold - 1.0) : 0.0;
  };
  double severity = 0.0;
  severity += over(f.network.retry_rate, thr.retry_rate);
  severity += over(f.network.reroute_rate, thr.reroute_rate);
  severity += over(f.blank_spikes, thr.storm_spikes);
  severity += over(f.volatility, thr.volatility);
  severity += over(std::fabs(f.blank_trend), thr.blank_trend);
  severity += over(f.standard_drop, thr.attenuation_drop);
  return 1.0 / (1.0 + severity);
}

std::size_t FleetHealthReport::count_of(RootCause cause) const {
  std::size_t n = 0;
  for (const SensorHealthRecord& r : sensors) {
    if (r.cause == cause) ++n;
  }
  return n;
}

const std::vector<std::string>& FleetHealthReport::columns() {
  static const std::vector<std::string> kColumns{
      "tenant",        "patient",       "device",        "channel",
      "cause",         "score",         "observations",  "duration_days",
      "blank_mean",    "blank_trend",   "blank_spikes",  "standard_mean",
      "standard_trend", "standard_drop", "curvature",    "volatility",
      "ewma",          "cusum",         "retry_rate",    "reroute_rate",
      "failovers"};
  return kColumns;
}

void FleetHealthReport::to_csv(const std::string& path) const {
  util::CsvWriter writer(path, columns());
  for (const SensorHealthRecord& r : sensors) {
    const SensorHealthFeatures& f = r.features;
    const std::string cells[] = {
        std::to_string(r.session.tenant),
        std::to_string(r.session.patient),
        std::to_string(r.session.device),
        std::to_string(r.channel),
        to_string(r.cause),
        fmt_double(r.score),
        std::to_string(f.observations),
        fmt_double(f.duration_days),
        fmt_double(f.blank_mean),
        fmt_double(f.blank_trend),
        fmt_double(f.blank_spikes),
        fmt_double(f.standard_mean),
        fmt_double(f.standard_trend),
        fmt_double(f.standard_drop),
        fmt_double(f.curvature),
        fmt_double(f.volatility),
        fmt_double(f.ewma),
        fmt_double(f.cusum),
        fmt_double(f.network.retry_rate),
        fmt_double(f.network.reroute_rate),
        fmt_double(f.network.failovers)};
    writer.write_row(cells);
  }
  writer.close();
}

void FleetHealthAnalyzer::add_response(const serve::Response& response) {
  if (response.kind != serve::RequestKind::kQcCheck) return;
  const std::uint32_t channel =
      response.channels.empty() ? 0 : response.channels.front().channel;
  QcObservation obs;
  obs.age_days = response.sensor_age_days;
  obs.blank_residual = response.qc_blank_residual;
  obs.standard_residual = response.qc_standard_residual;
  series_[SensorId{response.session, channel}].push_back(obs);
}

void FleetHealthAnalyzer::note_network(const serve::SessionKey& session,
                                       const NetworkFeatures& network) {
  network_[session] = network;
}

FleetHealthReport FleetHealthAnalyzer::report() const {
  FleetHealthReport report;
  report.sensors.reserve(series_.size());
  for (const auto& [id, series] : series_) {
    NetworkFeatures network;
    const auto net = network_.find(id.session);
    if (net != network_.end()) network = net->second;
    SensorHealthRecord record;
    record.session = id.session;
    record.channel = id.channel;
    record.features = extract_features(series, network, thresholds_);
    record.cause = classify(record.features, thresholds_);
    record.score = health_score(record.features, thresholds_);
    report.sensors.push_back(std::move(record));
  }
  std::sort(report.sensors.begin(), report.sensors.end(),
            [](const SensorHealthRecord& a, const SensorHealthRecord& b) {
              return std::tie(a.score, a.session, a.channel) <
                     std::tie(b.score, b.session, b.channel);
            });
  return report;
}

}  // namespace idp::obs
