/// \file frame.hpp
/// Binary frame codec of the live telemetry stream (obs/stream.hpp): the
/// wire format every TelemetryBus subscriber receives.
///
/// Wire format -- length-prefixed, all integers little-endian, no padding
/// (mosquitto-style fixed header + spead2-style self-describing payload):
///
///   u32  body_len     bytes after this prefix
///   u8   type         FrameType
///   u16  topic_len    UTF-8 topic bytes that follow
///   ...  topic
///   u64  sequence     per-topic publish ordinal (0-based, gapless)
///   ...  payload      body_len - 11 - topic_len bytes, typed by `type`
///
/// Doubles travel as their IEEE-754 bit pattern (std::bit_cast to u64),
/// so encode/decode is a *byte-deterministic* round trip: two frames with
/// bitwise-equal fields encode to identical bytes on every platform, which
/// is what lets the determinism sweep digest published frame *bytes* and
/// the golden tests pin them. Decoding is loud: a truncated buffer, a
/// length that overruns it, or an unknown frame type throws util::Error
/// rather than yielding a best-effort frame.
///
/// Topic naming scheme (full table in docs/ARCHITECTURE.md):
///   trace/tenant=<T>               request-scoped spans of tenant T
///   trace/tenant=<T>/channel=<C>   channel-scoped spans (execution,
///                                  recalibration, epoch swap)
///   metrics/<metric-name>          one topic per metric family
/// Prefix subscription ("trace/tenant=3" matches both trace topics of
/// tenant 3; "" matches everything) is the filtering primitive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace idp::obs {

/// Payload taxonomy of the stream.
enum class FrameType : std::uint8_t {
  kTraceSpan = 0,       ///< one TraceEvent (TraceSpanPayload)
  kMetricDelta = 1,     ///< one metric update (MetricDeltaPayload)
  kMetricSnapshot = 2,  ///< one sample of a subscription-time snapshot
};

const char* to_string(FrameType type);

/// One published frame. `sequence` is the per-topic publish ordinal the
/// bus stamped (snapshot frames carry the topic's *next* ordinal: the
/// first delta a subscriber sees after its snapshot has sequence >= it).
struct Frame {
  FrameType type = FrameType::kTraceSpan;
  std::string topic;
  std::uint64_t sequence = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Append one encoded frame to `out` (the streaming form; a subscriber
/// log is just the concatenation of its delivered frames).
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// One frame alone.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decode the frame starting at `offset`, advancing `offset` past it.
/// Throws util::Error on truncation, overrun or an unknown type byte.
Frame decode_frame(std::span<const std::uint8_t> buffer, std::size_t& offset);

/// Decode a whole concatenated stream (throws on any malformed frame;
/// trailing partial bytes are an error, not a silent stop).
std::vector<Frame> decode_stream(std::span<const std::uint8_t> buffer);

// --- payloads ---------------------------------------------------------------

/// kTraceSpan: one structured span, plus the tenant that owns the topic
/// (the event itself is keyed by request id / session site, not tenant).
struct TraceSpanPayload {
  std::int32_t tenant = -1;
  TraceEvent event;

  friend bool operator==(const TraceSpanPayload&,
                         const TraceSpanPayload&) = default;
};

/// kMetricDelta: one incremental update of a (name, labels) series.
/// `value` is the counter increment, the gauge level, or the histogram
/// observation -- raw observations travel on the wire, so an aggregation
/// subscriber rebuilds bit-identical histograms (same default geometry).
struct MetricDeltaPayload {
  MetricType type = MetricType::kCounter;
  std::string name;
  MetricLabels labels;
  double value = 0.0;

  friend bool operator==(const MetricDeltaPayload&,
                         const MetricDeltaPayload&) = default;
};

/// kMetricSnapshot: one MetricSample as of subscription time (the
/// "snapshot" half of snapshot-then-delta). Histogram snapshots carry the
/// summary only -- bins are not reconstructible from it, which is why
/// exact aggregation requires subscribing before traffic (documented in
/// stream.hpp; LiveAggregator tracks the distinction).
struct MetricSnapshotPayload {
  MetricType type = MetricType::kCounter;
  std::string name;
  MetricLabels labels;
  double value = 0.0;
  util::LatencySummary latency;

  friend bool operator==(const MetricSnapshotPayload&,
                         const MetricSnapshotPayload&) = default;
};

std::vector<std::uint8_t> encode(const TraceSpanPayload& payload);
std::vector<std::uint8_t> encode(const MetricDeltaPayload& payload);
std::vector<std::uint8_t> encode(const MetricSnapshotPayload& payload);

TraceSpanPayload decode_trace_span(std::span<const std::uint8_t> payload);
MetricDeltaPayload decode_metric_delta(std::span<const std::uint8_t> payload);
MetricSnapshotPayload decode_metric_snapshot(
    std::span<const std::uint8_t> payload);

// --- topics -----------------------------------------------------------------

/// "trace/tenant=<T>" (channel < 0) or "trace/tenant=<T>/channel=<C>".
std::string trace_topic(std::uint32_t tenant, std::int32_t channel = -1);

/// "metrics/<name>": one topic per metric family (labels stay in the
/// payload -- a family's series share one FIFO).
std::string metric_topic(const std::string& name);

}  // namespace idp::obs
