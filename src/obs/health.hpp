/// \file health.hpp
/// Fleet health scoring and fault root-cause attribution.
///
/// A FleetHealthAnalyzer consumes the observability streams the rest of
/// the stack already produces -- serve QC-check responses (standardised
/// blank + standard residuals with sensor age), plus per-session network
/// fault rates from the fault-tolerant replay metrics -- and reduces each
/// monitored (session, channel) sensor to a SensorHealthFeatures row:
///
/// - blank residual level/trend/spike count   (AFE drift vs storms)
/// - standard residual trend and total drop   (signal attenuation)
/// - trajectory curvature                     (fouling vs enzyme decay:
///   the residual series is an affine image of the attenuation curve, so
///   its normalised late-minus-early slope difference is exactly the
///   attenuation curve's -- exp(-k*age) stays near-linear over a
///   deployment while 1/(1+f*age) bends hard early)
/// - first-difference volatility              (reference random walk)
/// - EWMA/CUSUM drift statistics              (health score input)
/// - retry / reroute / failover rates         (network faults)
///
/// A fixed-order threshold decision tree (HealthThresholds) attributes a
/// dominant root cause per sensor -- network fault, interference storm,
/// reference drift, AFE drift, fouling, enzyme decay, healthy -- and a
/// deterministic health score in (0, 1] ranks the fleet sickest-first.
/// Ground truth for the attribution accuracy drill comes from
/// fault::DegradationModel parameters and the netsim fault schedule
/// (tests/obs/health_test.cpp); the ranked report exports through the
/// same canonical CSV machinery as every other surface and is pinned by
/// a golden fixture.
///
/// Known aliasing, by design: a *ramp*-dominated reference drift shifts
/// the baseline exactly like AFE offset drift and is attributed as AFE
/// drift; the walk component is what identifies the reference electrode.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace idp::quant {
class DriftDetector;
}

namespace idp::obs {

class MetricsRegistry;
struct MetricLabels;

/// Attributable root causes, in decision-tree order (first match wins).
enum class RootCause : std::uint8_t {
  kHealthy = 0,
  kNetworkFault = 1,        ///< retries / reroutes / failovers on the shard
  kInterferenceStorm = 2,   ///< sporadic blank-residual spikes
  kReferenceDrift = 3,      ///< high residual random-walk volatility
  kAfeDrift = 4,            ///< sustained blank-residual trend
  kFouling = 5,             ///< attenuation, concave (early-bending) curve
  kEnzymeDecay = 6,         ///< attenuation, near-log-linear curve
};

inline constexpr std::size_t kRootCauseCount = 7;

const char* to_string(RootCause cause);

/// One QC observation of a monitored sensor: standardised residuals at a
/// sensor age. Extracted from serve kQcCheck responses.
struct QcObservation {
  double age_days = 0.0;
  double blank_residual = 0.0;     ///< standardised blank residual
  double standard_residual = 0.0;  ///< standardised mid-range standard residual
};

/// Network-layer fault evidence for a session's shard, normalised per
/// routed request (from FaultStats / the metrics registry).
struct NetworkFeatures {
  double retry_rate = 0.0;     ///< retries per routed request
  double reroute_rate = 0.0;   ///< failover reroutes per routed request
  double failovers = 0.0;      ///< up->down declarations on the shard
};

/// The feature row one sensor reduces to. Every field is a pure function
/// of the observation series (sorted by age) and the network evidence.
struct SensorHealthFeatures {
  std::size_t observations = 0;
  double duration_days = 0.0;   ///< age span of the series

  double blank_mean = 0.0;
  double blank_trend = 0.0;     ///< sigma / day
  double blank_spikes = 0.0;    ///< count of |blank - median| > spike_sigma

  double standard_mean = 0.0;
  double standard_trend = 0.0;  ///< sigma / day
  double standard_drop = 0.0;   ///< total attenuation over the series, sigma
  double curvature = 0.0;       ///< (late slope - early slope) / |overall|

  double volatility = 0.0;      ///< stddev of standard-residual first diffs
  double ewma = 0.0;            ///< drift-detector EWMA over standard residuals
  double cusum = 0.0;           ///< two-sided CUSUM over standard residuals

  NetworkFeatures network;
};

/// Decision-tree thresholds. Defaults are tuned against the degradation
/// drill in tests/obs/health_test.cpp (>= 90% attribution accuracy).
struct HealthThresholds {
  double retry_rate = 0.5;          ///< retries per request -> network fault
  double reroute_rate = 0.25;       ///< reroutes per request -> network fault
  double blank_spike_sigma = 6.0;   ///< |blank - median| that counts a spike
  double storm_spikes = 3.0;        ///< spike count -> interference storm
  double volatility = 1.5;          ///< diff stddev (sigma) -> reference drift
  double blank_trend = 0.15;        ///< |sigma/day| -> AFE drift
  double attenuation_drop = 6.0;    ///< total sigma drop -> degradation
  double fouling_curvature = 0.45;  ///< curvature above -> fouling, below -> decay
};

/// Publish one drift detector's change-detection statistics under the
/// quant.drift.* names (ewma / cusum / cusum_pos / cusum_neg gauges plus
/// an observation counter), labeled with the caller's sensor coordinates.
/// This is the registry bridge for quant::DriftDetector -- the quant layer
/// itself stays observability-free.
void publish_drift(MetricsRegistry& registry,
                   const quant::DriftDetector& detector,
                   const MetricLabels& labels);

/// Reduce one sensor's QC series (any order; sorted internally by age)
/// plus its network evidence to the feature row. Only blank_spike_sigma
/// is consulted from the thresholds (the spike *count* is a feature; what
/// counts as a spike is tuning).
SensorHealthFeatures extract_features(std::span<const QcObservation> series,
                                      const NetworkFeatures& network = {},
                                      const HealthThresholds& thresholds = {});

/// The fixed-order rule classifier (see RootCause for the order).
RootCause classify(const SensorHealthFeatures& features,
                   const HealthThresholds& thresholds = {});

/// Deterministic health score in (0, 1]: 1 when no threshold is exceeded,
/// shrinking as 1 / (1 + total exceedance) with each feature's severity
/// measured relative to its threshold.
double health_score(const SensorHealthFeatures& features,
                    const HealthThresholds& thresholds = {});

/// One ranked fleet-report row.
struct SensorHealthRecord {
  serve::SessionKey session;
  std::uint32_t channel = 0;
  SensorHealthFeatures features;
  RootCause cause = RootCause::kHealthy;
  double score = 1.0;
};

/// The fleet, ranked sickest-first (score ascending, then session key and
/// channel for a total deterministic order).
struct FleetHealthReport {
  std::vector<SensorHealthRecord> sensors;

  /// Rows attributed to `cause`.
  std::size_t count_of(RootCause cause) const;

  /// Canonical CSV schema: tenant, patient, device, channel, cause, score,
  /// then every feature column.
  static const std::vector<std::string>& columns();
  void to_csv(const std::string& path) const;
};

/// Accumulates QC responses and network evidence across a fleet, then
/// reduces to the ranked report. Not thread-safe; feed it from the merged
/// (deterministic) response log, not from live workers.
class FleetHealthAnalyzer {
 public:
  explicit FleetHealthAnalyzer(HealthThresholds thresholds = {})
      : thresholds_(thresholds) {}

  /// Ingest one response; only kQcCheck responses contribute (others are
  /// ignored, so the whole merged log can be streamed through).
  void add_response(const serve::Response& response);

  /// Attach network fault evidence to every sensor of a session.
  void note_network(const serve::SessionKey& session,
                    const NetworkFeatures& network);

  /// Sensors with at least one QC observation.
  std::size_t sensor_count() const { return series_.size(); }

  const HealthThresholds& thresholds() const { return thresholds_; }

  /// Extract, classify, score and rank every monitored sensor.
  FleetHealthReport report() const;

 private:
  struct SensorId {
    serve::SessionKey session;
    std::uint32_t channel = 0;
    friend auto operator<=>(const SensorId&, const SensorId&) = default;
  };

  HealthThresholds thresholds_;
  std::map<SensorId, std::vector<QcObservation>> series_;
  std::map<serve::SessionKey, NetworkFeatures> network_;
};

}  // namespace idp::obs
