/// \file stream.hpp
/// The live telemetry streaming bus: pub/sub fan-out of traces and
/// metrics while a run executes, turning the batch-only obs layer (PR 8:
/// export after completion) into a live one.
///
/// Pieces:
/// - TelemetryBus: topic-keyed publisher with bounded per-subscriber
///   queues. Admission is explicit, RequestQueue-style: a full kBlock
///   subscriber backpressures the publisher, a full kDropOldest
///   subscriber evicts its oldest frame and *counts the drop* -- never
///   silent. close() is permanent: publish-after-close throws, subscribers
///   drain every accepted frame, then pop() returns false.
/// - TelemetryCapture: one request's telemetry (spans + metric ops),
///   recorded off to the side during execution.
/// - TelemetryStream: publishes one capture as frames (trace topics per
///   (tenant, channel), one metric topic per family) and *then* folds it
///   into the batch-era TraceRecorder / MetricsRegistry, so everything
///   PR 8 exports is unchanged by streaming.
/// - StreamSequencer: reorder buffer for parallel replay -- captures
///   deposit in completion order, publish in log order.
/// - LiveAggregator: the canonical subscriber -- rebuilds a
///   MetricsRegistry (live p50/p90/p99 tiles) from snapshot + delta
///   frames.
///
/// Determinism contract (the streaming extension of the serve guarantee,
/// pinned by the `stream` determinism-sweep workload): the sequence of
/// published frames *per topic* is a pure function of (log, seed,
/// configuration) -- bitwise identical at parallelism 1 / N / hardware.
/// Two ingredients buy this under parallel replay:
///   1. every request's telemetry is captured privately (TelemetryCapture)
///      while it executes, so nothing observes the thread schedule;
///   2. captures publish in log order (StreamSequencer), so per-topic
///      sequence numbers are schedule-independent.
/// Delta frames carry *raw* histogram observations (not summaries), so an
/// aggregation subscriber that subscribed before traffic rebuilds
/// bit-identical histograms and its final percentiles equal the
/// end-of-run MetricsSnapshot exactly. A subscriber joining mid-run gets
/// snapshot-then-delta: counters and gauges resume exactly (set + add);
/// histogram snapshots carry only the summary (bins are not on the wire),
/// which LiveAggregator reports via exact().
///
/// Live mode (scheduler workers) publishes in completion order -- wall
/// clock is already in those frames, determinism is a replay property.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace idp::obs {

/// What a full subscriber queue does to the *next* frame.
enum class OverflowPolicy : std::uint8_t {
  kBlock = 0,      ///< publisher waits for space (backpressure)
  kDropOldest = 1, ///< evict the oldest queued frame, count it dropped
};

const char* to_string(OverflowPolicy policy);

/// One subscriber's admission discipline.
struct SubscriberConfig {
  std::string name;          ///< diagnostic label (metrics use the index)
  std::size_t capacity = 1024;  ///< queue bound, frames; must be > 0
  OverflowPolicy policy = OverflowPolicy::kBlock;
  /// Topic filter: receive frames whose topic starts with this prefix
  /// ("" = everything, "metrics/" = all metric families, "trace/tenant=3"
  /// = both trace topics of tenant 3).
  std::string topic_prefix;
};

/// One subscriber's frame account. Conservation (stream_conservation_rules
/// pins it): published == delivered + dropped + pending -- every frame
/// offered to the subscriber is consumed, counted dropped, or still
/// queued; there is no silent fourth fate.
struct SubscriberStats {
  std::uint64_t published = 0;  ///< frames offered (topic matched)
  std::uint64_t delivered = 0;  ///< frames consumed via pop/try_pop
  std::uint64_t dropped = 0;    ///< evictions + frames abandoned at close
  std::uint64_t pending = 0;    ///< frames currently queued
};

/// One bounded subscription. Created by TelemetryBus::subscribe; consume
/// with pop() (blocking; false once the bus closed and the queue drained)
/// or try_pop() (non-blocking). Thread-safe.
class TelemetrySubscriber {
 public:
  explicit TelemetrySubscriber(SubscriberConfig config);
  TelemetrySubscriber(const TelemetrySubscriber&) = delete;
  TelemetrySubscriber& operator=(const TelemetrySubscriber&) = delete;

  const SubscriberConfig& config() const { return config_; }

  /// Blocking consume: waits for a frame or bus close. False = closed and
  /// fully drained (every accepted frame was delivered first).
  bool pop(Frame& out);

  /// Non-blocking consume.
  bool try_pop(Frame& out);

  /// Current account, taken under the queue lock.
  SubscriberStats stats() const;

 private:
  friend class TelemetryBus;

  /// Bus-side admission of one frame (called with the bus publish lock
  /// held, serialising frames into every queue in publish order).
  void offer(Frame frame);

  /// Snapshot seeding during subscribe(): no consumer exists yet, so a
  /// kBlock overflow throws (a config mistake) instead of waiting forever;
  /// kDropOldest evicts as usual.
  void seed(Frame frame);

  /// Bus close: wake everything; blocked offers abandon (counted dropped).
  void close();

  bool topic_matches(const std::string& topic) const;

  SubscriberConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< consumer side: frame or close
  std::condition_variable space_;  ///< publisher side: room or close
  std::deque<Frame> queue_;
  SubscriberStats stats_;
  bool closed_ = false;
};

/// The bus. publish() stamps gapless per-topic sequence numbers and fans
/// the frame into every matching subscriber under one lock -- total
/// publish order is a single serial order, so per-topic FIFO holds in
/// every queue. Thread-safe; publishers may block (kBlock backpressure).
class TelemetryBus {
 public:
  TelemetryBus() = default;
  TelemetryBus(const TelemetryBus&) = delete;
  TelemetryBus& operator=(const TelemetryBus&) = delete;

  /// Add a subscriber (any time before close()).
  std::shared_ptr<TelemetrySubscriber> subscribe(SubscriberConfig config);

  /// Snapshot-then-delta: atomically enqueue one kMetricSnapshot frame per
  /// sample of `snapshot` (topic-filtered, counted in the subscriber's
  /// account) before any subsequent delta, then stream deltas as they
  /// publish. Snapshot frames carry the topic's next sequence number.
  std::shared_ptr<TelemetrySubscriber> subscribe(
      SubscriberConfig config, const MetricsSnapshot& snapshot);

  /// Publish one frame: stamp the topic's next sequence, offer to every
  /// matching subscriber. Throws util::Error after close().
  void publish(FrameType type, const std::string& topic,
               std::vector<std::uint8_t> payload);

  /// Permanent shutdown: publish() throws from here on; blocked publishers
  /// abandon their frame (counted dropped); subscribers drain what was
  /// accepted, then pop() returns false. Idempotent.
  void close();

  bool closed() const;

  /// Frames published so far (accepted publish() calls).
  std::uint64_t frames_published() const;

  /// Topics seen so far, in canonical (sorted) order.
  std::vector<std::string> topics() const;

  /// Next sequence number of one topic (== frames published on it).
  std::uint64_t topic_sequence(const std::string& topic) const;

  /// Every subscriber's account, in subscription order.
  std::vector<SubscriberStats> subscriber_stats() const;

  /// Publish the fan-out account under obs.bus.* -- one series per
  /// subscriber (labels.subscriber = subscription index), so
  /// stream_conservation_rules() holds per subscriber and in aggregate.
  void publish_metrics(MetricsRegistry& registry) const;

 private:
  /// Serialises publish() fan-out (and snapshot subscription): one frame
  /// at a time enters the queues, in one global order. Held across
  /// possibly-blocking offers, so nothing close() needs may live here.
  mutable std::mutex publish_mutex_;
  /// Guards the bus state below. Never held while an offer blocks, which
  /// is what lets close() interrupt a backpressured publisher.
  mutable std::mutex state_mutex_;
  std::map<std::string, std::uint64_t> topic_sequences_;
  std::vector<std::shared_ptr<TelemetrySubscriber>> subscribers_;
  std::uint64_t frames_published_ = 0;
  bool closed_ = false;
};

// --- capture / publish ------------------------------------------------------

/// One deferred metric update. `fold` distinguishes ops the capture owner
/// has NOT yet applied to the registry (service ops under capture mode;
/// folded on publish) from ops already applied directly (scheduler
/// live-mode accounts; streamed only).
struct MetricOp {
  MetricType type = MetricType::kCounter;
  std::string name;
  MetricLabels labels;
  double value = 0.0;
  bool fold = true;
};

/// One request's telemetry, recorded privately during execution so the
/// published stream never observes the thread schedule (see file
/// comment). Single-owner by construction (one request, one worker), so
/// plain vectors -- spans canonicalise (sort + dedup, TraceRecorder
/// semantics) at publish time.
struct TelemetryCapture {
  std::int32_t tenant = -1;
  std::vector<TraceEvent> spans;
  std::vector<MetricOp> ops;

  void span(const TraceEvent& event) { spans.push_back(event); }
  void span(std::uint64_t key, SpanKind kind, std::uint64_t entity = 0,
            std::uint64_t sequence = 0, std::uint64_t tick = 0,
            double time_h = 0.0, double value = 0.0) {
    spans.push_back(TraceEvent{key, kind, entity, sequence, tick, time_h,
                               value});
  }
  void count(const std::string& name, const MetricLabels& labels,
             std::uint64_t n = 1) {
    ops.push_back({MetricType::kCounter, name, labels,
                   static_cast<double>(n), true});
  }
  void observe(const std::string& name, const MetricLabels& labels,
               double value, bool fold = true) {
    ops.push_back({MetricType::kHistogram, name, labels, value, fold});
  }
  bool empty() const { return spans.empty() && ops.empty(); }
};

/// Publishes captures as frames and folds them into the batch surfaces.
/// Span -> topic: channel-scoped kinds (kExecution, kRecalibration,
/// kEpochSwap) go to trace/tenant=T/channel=<entity>; everything else to
/// the request-scoped trace/tenant=T. Ops -> metrics/<name>. Thread-safe
/// (captures publish atomically, one at a time).
class TelemetryStream {
 public:
  /// `trace` / `metrics` (either may be null) receive the fold: spans
  /// re-record (idempotent duplicates collapse in sorted()), fold-marked
  /// ops apply (counter add / gauge set / histogram observe), so the end
  /// state equals the non-streaming path bit for bit.
  TelemetryStream(TelemetryBus& bus, TraceRecorder* trace,
                  MetricsRegistry* metrics)
      : bus_(bus), trace_(trace), metrics_(metrics) {}

  /// Publish one capture's frames, then fold it.
  void publish(const TelemetryCapture& capture);

  /// Publish one already-folded span (live-mode admission events).
  void publish_span(std::int32_t tenant, const TraceEvent& event);

 private:
  std::mutex mutex_;
  TelemetryBus& bus_;
  TraceRecorder* trace_;
  MetricsRegistry* metrics_;
};

/// Reorder buffer of parallel replay: deposit(log_index, capture) from any
/// worker; captures publish strictly in log-index order, each at the
/// moment its prefix completes. After every index deposited, everything
/// has published (the depositing worker that completed the prefix flushed
/// it synchronously).
class StreamSequencer {
 public:
  StreamSequencer(TelemetryStream& out, std::size_t count);

  void deposit(std::size_t index, TelemetryCapture capture);

  /// Captures published so far (== count when done).
  std::size_t published() const;

 private:
  TelemetryStream& out_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TelemetryCapture>> slots_;
  std::size_t frontier_ = 0;
};

/// The live-dashboard subscriber: rebuilds a registry from metric frames
/// (kMetricSnapshot to seed, kMetricDelta to update), yielding live
/// p50/p90/p99 tiles. With a from-the-start subscription the rebuild is
/// exact: snapshot() equals the publisher's end-of-run MetricsSnapshot
/// byte for byte (deltas carry raw observations; default histogram
/// geometry on both sides).
class LiveAggregator {
 public:
  /// Fold one frame in (non-metric frames count spans_seen only).
  void consume(const Frame& frame);

  /// Drain a subscriber to close (blocking pop loop).
  void run(TelemetrySubscriber& subscriber);

  /// The rebuilt registry's canonical snapshot.
  MetricsSnapshot snapshot() const { return registry_.snapshot(); }

  /// False once a histogram snapshot with prior observations arrived:
  /// its bins are not on the wire, so the rebuild is approximate from
  /// that point (mid-run joins); counters and gauges stay exact.
  bool exact() const { return exact_; }

  std::uint64_t frames_consumed() const { return frames_consumed_; }
  std::uint64_t spans_seen() const { return spans_seen_; }

 private:
  MetricsRegistry registry_;
  bool exact_ = true;
  std::uint64_t frames_consumed_ = 0;
  std::uint64_t spans_seen_ = 0;
};

}  // namespace idp::obs
