/// \file trace.hpp
/// Deterministic structured tracing for the service runtime.
///
/// A TraceRecorder collects structured span events -- request admission,
/// queue wait, run-id lease grant, shard route, channel execution, retry,
/// reroute, failover, rejoin, calibration epoch swap, recalibration
/// campaign, merge -- keyed by request id (or session site for
/// session-scoped spans) with *virtual-clock* timestamps: the request's
/// service-timeline instant (time_h) and, on the fault-tolerant path, the
/// simulated-network tick. Wall-clock never enters an event, so the
/// exported trace of a replayed log is a pure function of (log, seed,
/// configuration): bitwise identical at parallelism 1 / N / hardware,
/// which the 'obs' workload of the unified determinism sweep pins.
///
/// Concurrency & canonicalisation: record() is thread-safe and may be
/// called from any scheduler worker or batch lane. Arrival order is
/// whatever the thread schedule produced, so the canonical view is
/// sorted(): events ordered by (request key, kind, entity, sequence,
/// tick), with *exact duplicates collapsed* -- idempotent spans (e.g. two
/// shards warming the same (session, channel, epoch) calibration after a
/// failover re-execution) describe one logical event and must not make
/// the trace depend on the recovery schedule. Non-idempotent repeats
/// (retries, re-dispatches) stay distinct through their sequence/tick.
///
/// Export: sorted CSV (golden-fixture friendly) and sorted JSONL, one
/// canonical column schema for both.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace idp::obs {

/// Span/event taxonomy of the service stack (see docs/ARCHITECTURE.md for
/// the full table: which path emits which kind, key and entity semantics).
enum class SpanKind : std::uint8_t {
  kAdmission = 0,    ///< queue admission outcome (live mode; entity=priority)
  kQueueWait = 1,    ///< dispatch after queueing (live mode; entity=priority)
  kLeaseGrant = 2,   ///< run-id block leased (entity = first leased run id)
  kShardRoute = 3,   ///< router placement (entity = primary shard)
  kExecution = 4,    ///< one measured channel (entity = channel, value = run id)
  kRetry = 5,        ///< past-deadline retransmit (entity = attempt ordinal)
  kReroute = 6,      ///< dispatch sent to a non-primary shard (entity = target)
  kFailover = 7,     ///< detector declared a shard down (key = shard)
  kRejoin = 8,       ///< detector saw a declared-down shard return (key = shard)
  kEpochSwap = 9,    ///< session swapped onto a new calibration epoch
  kRecalibration = 10,  ///< recalibration campaign built (entity = channel)
  kMerge = 11,       ///< response merged into the global log (entity = shard)
};

inline constexpr std::size_t kSpanKindCount = 12;

const char* to_string(SpanKind kind);

/// One structured trace event. Every field is a pure function of (log,
/// seed, configuration, fault schedule) -- never of wall-clock or thread
/// identity -- except `value` on the explicitly observational live-mode
/// kinds (kQueueWait carries wall seconds; the taxonomy table marks it).
struct TraceEvent {
  std::uint64_t key = 0;     ///< request id / shard / session site (per kind)
  SpanKind kind = SpanKind::kExecution;
  std::uint64_t entity = 0;  ///< kind-specific: channel, shard, run id, ...
  std::uint64_t sequence = 0;  ///< ordinal separating repeats of one kind
  std::uint64_t tick = 0;    ///< virtual-clock tick (fault-tolerant path; else 0)
  double time_h = 0.0;       ///< service-timeline instant of the subject
  double value = 0.0;        ///< kind-specific payload (epoch, outcome, ...)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Canonical event order: (key, kind, entity, sequence, tick, time_h, value).
bool trace_event_less(const TraceEvent& a, const TraceEvent& b);

/// Thread-safe structured-event recorder. A null recorder pointer is the
/// universal "tracing off" switch: every instrumented component accepts
/// `obs::TraceRecorder*` and records only when non-null, so the tracing
/// tax is one branch when disabled (BM_ObsOverhead measures the enabled
/// cost).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Append one event (thread-safe, amortised O(1)).
  void record(const TraceEvent& event);

  /// Convenience: record with the fields spelled out.
  void record(std::uint64_t key, SpanKind kind, std::uint64_t entity = 0,
              std::uint64_t sequence = 0, std::uint64_t tick = 0,
              double time_h = 0.0, double value = 0.0) {
    record(TraceEvent{key, kind, entity, sequence, tick, time_h, value});
  }

  /// Events recorded so far (raw arrival count, duplicates included).
  std::size_t size() const;

  /// Discard everything (a fresh recorder for the next run).
  void clear();

  /// The canonical trace: events sorted by trace_event_less with exact
  /// duplicates collapsed (idempotent spans merge; see file comment).
  std::vector<TraceEvent> sorted() const;

  /// Canonical CSV schema: key, kind, entity, sequence, tick, time_h, value.
  static const std::vector<std::string>& columns();

  /// Write the canonical (sorted, deduplicated) trace as CSV / JSONL.
  /// Doubles are written with round-trip precision, so two bitwise-equal
  /// traces export byte-identical files.
  void to_csv(const std::string& path) const;
  void to_jsonl(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace idp::obs
