/// \file stream.cpp
/// Telemetry bus implementation: bounded subscriber queues with explicit
/// admission, serialised publish with per-topic sequencing, capture
/// publish+fold, the replay reorder buffer and the live aggregator.

#include "obs/stream.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace idp::obs {

namespace {

/// Channel-scoped span kinds stream on the (tenant, channel) topic; the
/// rest are request-scoped. Keep in sync with the ARCHITECTURE.md table.
bool channel_scoped(SpanKind kind) {
  return kind == SpanKind::kExecution || kind == SpanKind::kRecalibration ||
         kind == SpanKind::kEpochSwap;
}

std::string span_topic(std::int32_t tenant, const TraceEvent& event) {
  const auto t = static_cast<std::uint32_t>(std::max(tenant, 0));
  if (channel_scoped(event.kind)) {
    return trace_topic(t, static_cast<std::int32_t>(event.entity));
  }
  return trace_topic(t);
}

void apply_op(MetricsRegistry& registry, MetricType type,
              const std::string& name, const MetricLabels& labels,
              double value) {
  switch (type) {
    case MetricType::kCounter:
      registry.counter(name, labels).add(static_cast<std::uint64_t>(value));
      break;
    case MetricType::kGauge:
      registry.gauge(name, labels).set(value);
      break;
    case MetricType::kHistogram:
      registry.histogram(name, labels).observe(value);
      break;
  }
}

}  // namespace

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kDropOldest: return "drop_oldest";
  }
  return "unknown";
}

// --- TelemetrySubscriber ----------------------------------------------------

TelemetrySubscriber::TelemetrySubscriber(SubscriberConfig config)
    : config_(std::move(config)) {
  util::require(config_.capacity > 0, "subscriber queue needs capacity > 0");
}

bool TelemetrySubscriber::topic_matches(const std::string& topic) const {
  return topic.size() >= config_.topic_prefix.size() &&
         topic.compare(0, config_.topic_prefix.size(), config_.topic_prefix) ==
             0;
}

void TelemetrySubscriber::offer(Frame frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.published;
  if (queue_.size() >= config_.capacity) {
    if (config_.policy == OverflowPolicy::kDropOldest) {
      // Evict the oldest queued frame to admit the newest -- and count it:
      // a dropped frame is an explicit outcome, never a silent one.
      queue_.pop_front();
      ++stats_.dropped;
    } else {
      // Backpressure: hold the publisher until the consumer makes room.
      space_.wait(lock, [this] {
        return queue_.size() < config_.capacity || closed_;
      });
      if (closed_) {
        // The bus shut down under a blocked publisher; the frame was never
        // accepted, so it lands in the dropped bucket (loudly).
        ++stats_.dropped;
        return;
      }
    }
  }
  queue_.push_back(std::move(frame));
  ready_.notify_one();
}

void TelemetrySubscriber::seed(Frame frame) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Seeding happens during subscribe(), before the caller holds the
  // subscriber -- no consumer exists yet, so a blocking wait here could
  // never be satisfied. A snapshot that exceeds a kBlock subscriber's
  // capacity is a configuration mistake and throws loudly instead.
  if (queue_.size() >= config_.capacity) {
    util::ensure(config_.policy == OverflowPolicy::kDropOldest,
                 "metric snapshot exceeds the subscriber's queue capacity");
    ++stats_.published;
    queue_.pop_front();
    ++stats_.dropped;
  } else {
    ++stats_.published;
  }
  queue_.push_back(std::move(frame));
  ready_.notify_one();
}

bool TelemetrySubscriber::pop(Frame& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;  // closed and fully drained
  out = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.delivered;
  space_.notify_one();
  return true;
}

bool TelemetrySubscriber::try_pop(Frame& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.delivered;
  space_.notify_one();
  return true;
}

SubscriberStats TelemetrySubscriber::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SubscriberStats stats = stats_;
  stats.pending = queue_.size();
  return stats;
}

void TelemetrySubscriber::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  ready_.notify_all();
  space_.notify_all();
}

// --- TelemetryBus -----------------------------------------------------------

std::shared_ptr<TelemetrySubscriber> TelemetryBus::subscribe(
    SubscriberConfig config) {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  util::ensure(!closed_, "subscribe on a closed telemetry bus");
  auto subscriber = std::make_shared<TelemetrySubscriber>(std::move(config));
  subscribers_.push_back(subscriber);
  return subscriber;
}

std::shared_ptr<TelemetrySubscriber> TelemetryBus::subscribe(
    SubscriberConfig config, const MetricsSnapshot& snapshot) {
  // Seed under the publish lock: every sample frame lands before any delta
  // that publishes after us -- the snapshot-then-delta atomicity that
  // makes mid-run joins resumable.
  const std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  const std::lock_guard<std::mutex> lock(state_mutex_);
  util::ensure(!closed_, "subscribe on a closed telemetry bus");
  auto subscriber = std::make_shared<TelemetrySubscriber>(std::move(config));
  for (const MetricSample& sample : snapshot.samples) {
    const std::string topic = metric_topic(sample.name);
    if (!subscriber->topic_matches(topic)) continue;
    MetricSnapshotPayload payload;
    payload.type = sample.type;
    payload.name = sample.name;
    payload.labels = sample.labels;
    payload.value = sample.value;
    payload.latency = sample.latency;
    Frame frame;
    frame.type = FrameType::kMetricSnapshot;
    frame.topic = topic;
    // Snapshot frames are subscriber-private and do not advance the topic;
    // they carry its *next* ordinal so the first live delta follows >= it.
    const auto it = topic_sequences_.find(topic);
    frame.sequence = it == topic_sequences_.end() ? 0 : it->second;
    frame.payload = encode(payload);
    subscriber->seed(std::move(frame));
  }
  subscribers_.push_back(subscriber);
  return subscriber;
}

void TelemetryBus::publish(FrameType type, const std::string& topic,
                           std::vector<std::uint8_t> payload) {
  // The publish lock serialises fan-out: admission into every queue
  // happens in one serial publish order, so per-topic FIFO holds for each
  // subscriber. The state lock is NOT held across the (possibly blocking)
  // offers -- close() takes only the state lock, so it can always mark the
  // bus closed and wake a backpressured publisher out of its wait.
  const std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  Frame frame;
  std::vector<std::shared_ptr<TelemetrySubscriber>> subscribers;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    util::ensure(!closed_, "publish on a closed telemetry bus");
    frame.type = type;
    frame.topic = topic;
    frame.sequence = topic_sequences_[topic]++;
    frame.payload = std::move(payload);
    ++frames_published_;
    subscribers = subscribers_;
  }
  for (const auto& subscriber : subscribers) {
    if (subscriber->topic_matches(topic)) subscriber->offer(frame);
  }
}

void TelemetryBus::close() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  if (closed_) return;
  closed_ = true;
  for (const auto& subscriber : subscribers_) subscriber->close();
}

bool TelemetryBus::closed() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return closed_;
}

std::uint64_t TelemetryBus::frames_published() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return frames_published_;
}

std::vector<std::string> TelemetryBus::topics() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<std::string> out;
  out.reserve(topic_sequences_.size());
  for (const auto& [topic, seq] : topic_sequences_) out.push_back(topic);
  return out;
}

std::uint64_t TelemetryBus::topic_sequence(const std::string& topic) const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  const auto it = topic_sequences_.find(topic);
  return it == topic_sequences_.end() ? 0 : it->second;
}

std::vector<SubscriberStats> TelemetryBus::subscriber_stats() const {
  std::vector<std::shared_ptr<TelemetrySubscriber>> subscribers;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    subscribers = subscribers_;
  }
  std::vector<SubscriberStats> out;
  out.reserve(subscribers.size());
  for (const auto& subscriber : subscribers) out.push_back(subscriber->stats());
  return out;
}

void TelemetryBus::publish_metrics(MetricsRegistry& registry) const {
  const std::vector<SubscriberStats> stats = subscriber_stats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    MetricLabels labels;
    labels.subscriber = static_cast<std::int32_t>(i);
    registry.counter("obs.bus.published", labels).set(stats[i].published);
    registry.counter("obs.bus.delivered", labels).set(stats[i].delivered);
    registry.counter("obs.bus.dropped", labels).set(stats[i].dropped);
    registry.gauge("obs.bus.pending", labels)
        .set(static_cast<double>(stats[i].pending));
  }
}

// --- TelemetryStream --------------------------------------------------------

void TelemetryStream::publish(const TelemetryCapture& capture) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Spans stream in the capture's canonical order (sorted, exact
  // duplicates collapsed -- TraceRecorder::sorted() semantics), so frame
  // content and order are pure functions of the request -- never of
  // recording order.
  std::vector<TraceEvent> spans = capture.spans;
  std::sort(spans.begin(), spans.end(), trace_event_less);
  spans.erase(std::unique(spans.begin(), spans.end()), spans.end());
  for (const TraceEvent& event : spans) {
    TraceSpanPayload payload;
    payload.tenant = capture.tenant;
    payload.event = event;
    bus_.publish(FrameType::kTraceSpan, span_topic(capture.tenant, event),
                 encode(payload));
  }
  for (const MetricOp& op : capture.ops) {
    MetricDeltaPayload payload;
    payload.type = op.type;
    payload.name = op.name;
    payload.labels = op.labels;
    payload.value = op.value;
    bus_.publish(FrameType::kMetricDelta, metric_topic(op.name),
                 encode(payload));
  }
  // Fold after publishing: the batch-era surfaces end bit-identical to the
  // non-streaming path (spans re-record and dedup in sorted(); fold-marked
  // ops apply exactly once -- non-fold ops were applied directly by their
  // recorder, e.g. live-mode scheduler accounts).
  if (trace_ != nullptr) {
    for (const TraceEvent& event : spans) trace_->record(event);
  }
  if (metrics_ != nullptr) {
    for (const MetricOp& op : capture.ops) {
      if (op.fold) apply_op(*metrics_, op.type, op.name, op.labels, op.value);
    }
  }
}

void TelemetryStream::publish_span(std::int32_t tenant,
                                   const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceSpanPayload payload;
  payload.tenant = tenant;
  payload.event = event;
  bus_.publish(FrameType::kTraceSpan, span_topic(tenant, event),
               encode(payload));
  if (trace_ != nullptr) trace_->record(event);
}

// --- StreamSequencer --------------------------------------------------------

StreamSequencer::StreamSequencer(TelemetryStream& out, std::size_t count)
    : out_(out), slots_(count) {}

void StreamSequencer::deposit(std::size_t index, TelemetryCapture capture) {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::require(index < slots_.size(), "sequencer index out of range");
  util::ensure(slots_[index] == nullptr && index >= frontier_,
               "sequencer slot deposited twice");
  slots_[index] = std::make_unique<TelemetryCapture>(std::move(capture));
  // Flush the completed prefix in log order. Publishing under the lock is
  // the point: the frontier advances through one serial order, so frame
  // sequences are independent of which worker deposited when.
  while (frontier_ < slots_.size() && slots_[frontier_] != nullptr) {
    out_.publish(*slots_[frontier_]);
    slots_[frontier_].reset();
    ++frontier_;
  }
}

std::size_t StreamSequencer::published() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return frontier_;
}

// --- LiveAggregator ---------------------------------------------------------

void LiveAggregator::consume(const Frame& frame) {
  ++frames_consumed_;
  switch (frame.type) {
    case FrameType::kTraceSpan:
      ++spans_seen_;
      break;
    case FrameType::kMetricDelta: {
      const MetricDeltaPayload p = decode_metric_delta(frame.payload);
      apply_op(registry_, p.type, p.name, p.labels, p.value);
      break;
    }
    case FrameType::kMetricSnapshot: {
      const MetricSnapshotPayload p = decode_metric_snapshot(frame.payload);
      switch (p.type) {
        case MetricType::kCounter:
          registry_.counter(p.name, p.labels)
              .set(static_cast<std::uint64_t>(p.value));
          break;
        case MetricType::kGauge:
          registry_.gauge(p.name, p.labels).set(p.value);
          break;
        case MetricType::kHistogram:
          // Register the series so it appears in snapshots, but bins are
          // not on the wire: prior observations are unrecoverable, and the
          // rebuild is approximate from here (mid-run join).
          registry_.histogram(p.name, p.labels);
          if (p.latency.count > 0) exact_ = false;
          break;
      }
      break;
    }
  }
}

void LiveAggregator::run(TelemetrySubscriber& subscriber) {
  Frame frame;
  while (subscriber.pop(frame)) consume(frame);
}

}  // namespace idp::obs
