/// \file trace.cpp
/// TraceRecorder implementation: thread-safe append, canonical sort +
/// dedup, CSV/JSONL export.

#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace idp::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmission: return "admission";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kLeaseGrant: return "lease_grant";
    case SpanKind::kShardRoute: return "shard_route";
    case SpanKind::kExecution: return "execution";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kReroute: return "reroute";
    case SpanKind::kFailover: return "failover";
    case SpanKind::kRejoin: return "rejoin";
    case SpanKind::kEpochSwap: return "epoch_swap";
    case SpanKind::kRecalibration: return "recalibration";
    case SpanKind::kMerge: return "merge";
  }
  return "unknown";
}

bool trace_event_less(const TraceEvent& a, const TraceEvent& b) {
  return std::tie(a.key, a.kind, a.entity, a.sequence, a.tick, a.time_h,
                  a.value) < std::tie(b.key, b.kind, b.entity, b.sequence,
                                      b.tick, b.time_h, b.value);
}

void TraceRecorder::record(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::vector<TraceEvent> TraceRecorder::sorted() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), trace_event_less);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const std::vector<std::string>& TraceRecorder::columns() {
  static const std::vector<std::string> kColumns{
      "key", "kind", "entity", "sequence", "tick", "time_h", "value"};
  return kColumns;
}

void TraceRecorder::to_csv(const std::string& path) const {
  util::CsvWriter writer(path, columns());
  for (const TraceEvent& e : sorted()) {
    const std::string cells[] = {
        std::to_string(e.key),      to_string(e.kind),
        std::to_string(e.entity),   std::to_string(e.sequence),
        std::to_string(e.tick),     util::fmt_g17(e.time_h),
        util::fmt_g17(e.value)};
    writer.write_row(cells);
  }
  writer.close();
}

void TraceRecorder::to_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  util::require(out.good(), "cannot open trace JSONL output");
  for (const TraceEvent& e : sorted()) {
    out << "{\"key\":" << e.key << ",\"kind\":\"" << to_string(e.kind)
        << "\",\"entity\":" << e.entity << ",\"sequence\":" << e.sequence
        << ",\"tick\":" << e.tick << ",\"time_h\":" << util::fmt_g17(e.time_h)
        << ",\"value\":" << util::fmt_g17(e.value) << "}\n";
  }
}

}  // namespace idp::obs
