/// \file frame.cpp
/// Frame codec implementation: little-endian put/get primitives with
/// bounds-checked decoding that throws instead of truncating.

#include "obs/frame.hpp"

#include <bit>
#include <limits>

#include "util/error.hpp"

namespace idp::obs {

namespace {

// --- encode primitives (explicit little-endian, platform-independent) -------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  util::ensure(s.size() <= std::numeric_limits<std::uint16_t>::max(),
               "stream string exceeds the u16 length prefix");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- decode primitives ------------------------------------------------------

struct Reader {
  std::span<const std::uint8_t> buf;
  std::size_t pos = 0;

  void need(std::size_t n, const char* what) const {
    if (buf.size() - pos < n) {
      throw util::Error(std::string("truncated telemetry frame: ") + what);
    }
  }
  std::uint8_t u8(const char* what) {
    need(1, what);
    return buf[pos++];
  }
  std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 2; ++i) v |= std::uint32_t(buf[pos++]) << (8 * i);
    return static_cast<std::uint16_t>(v);
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(buf[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(buf[pos++]) << (8 * i);
    return v;
  }
  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }
  std::string str(const char* what) {
    const std::uint16_t n = u16(what);
    need(n, what);
    std::string s(reinterpret_cast<const char*>(buf.data() + pos), n);
    pos += n;
    return s;
  }
  bool done() const { return pos == buf.size(); }
};

MetricType metric_type_of(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(MetricType::kHistogram)) {
    throw util::Error("unknown metric type byte in telemetry frame");
  }
  return static_cast<MetricType>(raw);
}

void put_labels(std::vector<std::uint8_t>& out, const MetricLabels& labels) {
  put_i32(out, labels.tenant);
  put_i32(out, labels.shard);
  put_i32(out, labels.priority);
  put_i32(out, labels.channel);
  put_i32(out, labels.subscriber);
}

MetricLabels read_labels(Reader& r) {
  MetricLabels labels;
  labels.tenant = r.i32("labels");
  labels.shard = r.i32("labels");
  labels.priority = r.i32("labels");
  labels.channel = r.i32("labels");
  labels.subscriber = r.i32("labels");
  return labels;
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kTraceSpan: return "trace_span";
    case FrameType::kMetricDelta: return "metric_delta";
    case FrameType::kMetricSnapshot: return "metric_snapshot";
  }
  return "unknown";
}

// --- frame ------------------------------------------------------------------

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  util::ensure(frame.topic.size() <= std::numeric_limits<std::uint16_t>::max(),
               "topic exceeds the u16 length prefix");
  const std::size_t body =
      1 + 2 + frame.topic.size() + 8 + frame.payload.size();
  util::ensure(body <= std::numeric_limits<std::uint32_t>::max(),
               "frame body exceeds the u32 length prefix");
  out.reserve(out.size() + 4 + body);
  put_u32(out, static_cast<std::uint32_t>(body));
  put_u8(out, static_cast<std::uint8_t>(frame.type));
  put_string(out, frame.topic);
  put_u64(out, frame.sequence);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame(frame, out);
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> buffer, std::size_t& offset) {
  if (offset > buffer.size()) {
    throw util::Error("frame decode offset past end of buffer");
  }
  Reader prefix{buffer.subspan(offset), 0};
  const std::uint32_t body = prefix.u32("length prefix");
  prefix.need(body, "frame body");

  Reader r{buffer.subspan(offset + 4, body), 0};
  const std::uint8_t raw_type = r.u8("frame type");
  if (raw_type > static_cast<std::uint8_t>(FrameType::kMetricSnapshot)) {
    throw util::Error("unknown telemetry frame type byte");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.topic = r.str("topic");
  frame.sequence = r.u64("sequence");
  frame.payload.assign(r.buf.begin() + static_cast<std::ptrdiff_t>(r.pos),
                       r.buf.end());
  offset += 4 + body;
  return frame;
}

std::vector<Frame> decode_stream(std::span<const std::uint8_t> buffer) {
  std::vector<Frame> frames;
  std::size_t offset = 0;
  while (offset < buffer.size()) {
    frames.push_back(decode_frame(buffer, offset));
  }
  return frames;
}

// --- payloads ---------------------------------------------------------------

std::vector<std::uint8_t> encode(const TraceSpanPayload& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(49);
  put_i32(out, payload.tenant);
  put_u64(out, payload.event.key);
  put_u8(out, static_cast<std::uint8_t>(payload.event.kind));
  put_u64(out, payload.event.entity);
  put_u64(out, payload.event.sequence);
  put_u64(out, payload.event.tick);
  put_f64(out, payload.event.time_h);
  put_f64(out, payload.event.value);
  return out;
}

std::vector<std::uint8_t> encode(const MetricDeltaPayload& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 2 + payload.name.size() + 20 + 8);
  put_u8(out, static_cast<std::uint8_t>(payload.type));
  put_string(out, payload.name);
  put_labels(out, payload.labels);
  put_f64(out, payload.value);
  return out;
}

std::vector<std::uint8_t> encode(const MetricSnapshotPayload& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 2 + payload.name.size() + 20 + 8 + 48);
  put_u8(out, static_cast<std::uint8_t>(payload.type));
  put_string(out, payload.name);
  put_labels(out, payload.labels);
  put_f64(out, payload.value);
  put_u64(out, payload.latency.count);
  put_f64(out, payload.latency.min);
  put_f64(out, payload.latency.max);
  put_f64(out, payload.latency.p50);
  put_f64(out, payload.latency.p90);
  put_f64(out, payload.latency.p99);
  return out;
}

TraceSpanPayload decode_trace_span(std::span<const std::uint8_t> payload) {
  Reader r{payload, 0};
  TraceSpanPayload p;
  p.tenant = r.i32("tenant");
  p.event.key = r.u64("key");
  const std::uint8_t kind = r.u8("span kind");
  if (kind >= kSpanKindCount) {
    throw util::Error("unknown span kind byte in trace frame");
  }
  p.event.kind = static_cast<SpanKind>(kind);
  p.event.entity = r.u64("entity");
  p.event.sequence = r.u64("sequence");
  p.event.tick = r.u64("tick");
  p.event.time_h = r.f64("time_h");
  p.event.value = r.f64("value");
  util::ensure(r.done(), "trailing bytes after trace-span payload");
  return p;
}

MetricDeltaPayload decode_metric_delta(std::span<const std::uint8_t> payload) {
  Reader r{payload, 0};
  MetricDeltaPayload p;
  p.type = metric_type_of(r.u8("metric type"));
  p.name = r.str("metric name");
  p.labels = read_labels(r);
  p.value = r.f64("value");
  util::ensure(r.done(), "trailing bytes after metric-delta payload");
  return p;
}

MetricSnapshotPayload decode_metric_snapshot(
    std::span<const std::uint8_t> payload) {
  Reader r{payload, 0};
  MetricSnapshotPayload p;
  p.type = metric_type_of(r.u8("metric type"));
  p.name = r.str("metric name");
  p.labels = read_labels(r);
  p.value = r.f64("value");
  p.latency.count = r.u64("latency count");
  p.latency.min = r.f64("latency min");
  p.latency.max = r.f64("latency max");
  p.latency.p50 = r.f64("latency p50");
  p.latency.p90 = r.f64("latency p90");
  p.latency.p99 = r.f64("latency p99");
  util::ensure(r.done(), "trailing bytes after metric-snapshot payload");
  return p;
}

// --- topics -----------------------------------------------------------------

std::string trace_topic(std::uint32_t tenant, std::int32_t channel) {
  std::string topic = "trace/tenant=" + std::to_string(tenant);
  if (channel >= 0) {
    topic += "/channel=";
    topic += std::to_string(channel);
  }
  return topic;
}

std::string metric_topic(const std::string& name) {
  return "metrics/" + name;
}

}  // namespace idp::obs
