/// \file oxidase_probe.cpp
/// Oxidase probe implementation: the Eq. 1-3 cascade from enzymatic H2O2
/// generation through membrane transport to electrode oxidation current.

#include "bio/oxidase_probe.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace idp::bio {

namespace {

chem::Grid1D make_grid(const OxidaseProbeParams& p) {
  return chem::Grid1D::membrane_bulk(p.membrane_thickness,
                                     p.membrane_grid_nodes, p.grid_beta,
                                     p.nernst_layer);
}

chem::RedoxCouple default_peroxide_couple(const OxidaseProbeParams& p) {
  // H2O2 oxidation is kinetically sluggish; placing the effective formal
  // potential 200 mV below the Table I applied potential makes the current
  // saturate right at the recommended operating point, which is what the
  // Table I bench verifies.
  chem::RedoxCouple couple;
  couple.name = "H2O2/O2";
  couple.n = 2;
  couple.e0 = p.applied_potential - 0.20;
  couple.k0 = 1.0e-6;
  couple.alpha = 0.5;
  return couple;
}

}  // namespace

double derive_vmax(const OxidaseProbeParams& p) {
  // Steady state, kinetic (non-saturated) regime: the membrane generates
  // H2O2 at g = vmax*C/km per unit volume; a fraction phi of it is collected
  // by the electrode, the rest escapes through the membrane/bulk interface.
  // With the default membrane geometry the solver measures phi ~= 0.55
  // including the finite settling of a 60 s read (validated by the
  // calibration tests).
  //   i = n F A phi L vmax C / km  ==>  vmax = S km / (n F phi L)
  constexpr double kCollectionEfficiency = 0.55;
  constexpr int kElectronsPerPeroxide = 2;
  util::require(p.sensitivity > 0.0 && p.km > 0.0, "invalid calibration");
  util::require(p.membrane_thickness > 0.0, "invalid membrane");
  double vmax = p.sensitivity * p.km /
                (kElectronsPerPeroxide * util::kFaraday *
                 kCollectionEfficiency * p.membrane_thickness);
  // Michaelis-Menten saturation flattens the calibration slope over the
  // quoted range; pre-compensate at the range midpoint so the regression
  // slope (what Table III reports) matches `sensitivity`.
  if (p.calibration_mid_concentration > 0.0) {
    vmax *= 1.0 + p.calibration_mid_concentration / p.km;
  }
  return vmax;
}

OxidaseProbe::OxidaseProbe(OxidaseProbeParams params)
    : params_(std::move(params)),
      peroxide_couple_(params_.peroxide_couple
                           ? *params_.peroxide_couple
                           : default_peroxide_couple(params_)),
      kinetics_{params_.loading_gain * derive_vmax(params_), params_.km},
      fields_(make_grid(params_), 2) {
  util::require(params_.area > 0.0, "area must be positive");
  util::require(params_.loading_gain > 0.0, "loading gain must be positive");
  fields_.configure_lane(kSubstrateLane,
                         chem::layered_diffusivity(fields_.grid(),
                                                   params_.d_substrate_membrane,
                                                   params_.d_substrate_bulk),
                         0.0);
  fields_.configure_lane(kPeroxideLane,
                         chem::layered_diffusivity(fields_.grid(),
                                                   params_.d_peroxide_membrane,
                                                   params_.d_peroxide_bulk),
                         0.0);
  // H2O2 escapes to a clean bulk; the substrate bulk tracks
  // set_bulk_concentration.
  fields_.set_bulk_concentration(kSubstrateLane, 0.0);
  fields_.set_bulk_concentration(kPeroxideLane, 0.0);
  calibrate_loading();
}

double OxidaseProbe::steady_current_at(double c) {
  // Mirror the standard 60 s chronoamperometric read exactly (clean start,
  // tail-window average) so the calibrated sensitivity is what the
  // measurement engine actually reports.
  fields_.fill(kSubstrateLane, 0.0);
  fields_.set_bulk_concentration(kSubstrateLane, c);
  fields_.fill(kPeroxideLane, 0.0);
  constexpr double kDt = 0.05;
  constexpr int kSteps = 1200;      // 60 s
  constexpr int kTailSteps = 240;   // final 12 s
  double tail_sum = 0.0;
  for (int k = 0; k < kSteps; ++k) {
    const double i = step(params_.applied_potential, kDt);
    if (k >= kSteps - kTailSteps) tail_sum += i;
  }
  // Restore a pristine state.
  fields_.fill(kSubstrateLane, 0.0);
  fields_.set_bulk_concentration(kSubstrateLane, bulk_concentration_);
  fields_.fill(kPeroxideLane, 0.0);
  return tail_sum / kTailSteps - params_.background_current;
}

void OxidaseProbe::calibrate_loading() {
  const double c_cal = params_.calibration_mid_concentration;
  if (c_cal <= 0.0) return;
  const double i_target = params_.sensitivity * params_.loading_gain *
                          params_.area * c_cal;
  // Secant iteration on vmax; the response is monotone in vmax.
  double v0 = kinetics_.vmax;
  double f0 = steady_current_at(c_cal) - i_target;
  double v1 = v0 * (f0 < 0.0 ? 2.0 : 0.5);
  for (int iter = 0; iter < 8; ++iter) {
    kinetics_.vmax = v1;
    const double f1 = steady_current_at(c_cal) - i_target;
    if (std::fabs(f1) <= 0.01 * i_target) return;
    const double denom = f1 - f0;
    if (std::fabs(denom) < 1e-30) return;
    const double v2 = std::max(1e-12, v1 - f1 * (v1 - v0) / denom);
    v0 = v1;
    f0 = f1;
    v1 = v2;
  }
  kinetics_.vmax = v1;
}

void OxidaseProbe::apply_sensor_state(const fault::SensorState& state) {
  util::require(state.enzyme_activity > 0.0 &&
                    state.membrane_transmission > 0.0,
                "sensor state must keep activity and transmission positive");
  enzyme_activity_ = state.enzyme_activity;
  // Fouling throttles substrate ingress through the (already
  // rate-limiting) outer membrane; H2O2 egress is left untouched -- the
  // dominant signal loss is on the supply side. (set_diffusivity_scale
  // no-ops when the scale is unchanged.)
  fields_.set_diffusivity_scale(kSubstrateLane, state.membrane_transmission);
}

void OxidaseProbe::set_bulk_concentration(const std::string& target, double c) {
  util::require(target == params_.target,
                "unknown target '" + target + "' for probe " + params_.name);
  util::require(c >= 0.0, "negative concentration");
  bulk_concentration_ = c;
  fields_.set_bulk_concentration(kSubstrateLane, c);
}

double OxidaseProbe::step(double e, double dt) {
  // Enzyme occupies the inner part of the membrane (next to the electrode);
  // the outer part is the substrate-limiting film.
  const std::size_t n_mem = static_cast<std::size_t>(
      params_.enzyme_fraction *
      static_cast<double>(fields_.grid().membrane_nodes()));

  // Enzymatic conversion inside the membrane (explicit source, rate-capped
  // so the substrate cannot be driven negative within one step). Rates are
  // written straight into the SoA source array: node i's substrate and
  // peroxide slots are adjacent ([i*2], [i*2+1]).
  const std::span<double> src = fields_.source_data();
  const std::size_t nodes = fields_.size();
  for (std::size_t i = 0; i < nodes; ++i) {
    double r = 0.0;
    if (i < n_mem) {
      // enzyme_activity_ folds sensor aging into the local rate; 1.0 (the
      // pristine default) multiplies out exactly.
      r = kinetics_.rate(fields_.at(kSubstrateLane, i)) * enzyme_activity_;
      r = std::min(r, 0.9 * fields_.at(kSubstrateLane, i) / dt);
    }
    src[i * 2 + kSubstrateLane] = -r;
    src[i * 2 + kPeroxideLane] = r;
  }
  fields_.mark_sources_set();

  // H2O2 oxidation at the electrode: irreversible anodic Butler-Volmer.
  const chem::BvRates rates = chem::butler_volmer_rates(peroxide_couple_, e);
  fields_.set_electrode_rate(kPeroxideLane, rates.kf);

  // Both species advance in one lockstep batched solve (the substrate has
  // no electrode reaction; its flux is identically zero).
  fields_.step(dt);
  const double j_peroxide = fields_.electrode_flux(kPeroxideLane);

  return static_cast<double>(peroxide_couple_.n) * util::kFaraday *
             params_.area * j_peroxide +
         params_.background_current;
}

void OxidaseProbe::reset() {
  fields_.fill(kSubstrateLane, 0.0);
  fields_.fill(kPeroxideLane, 0.0);
  fields_.set_bulk_concentration(kSubstrateLane, bulk_concentration_);
  fields_.set_bulk_concentration(kPeroxideLane, 0.0);
}

}  // namespace idp::bio
