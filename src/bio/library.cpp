/// \file library.cpp
/// Probe data library implementation: Tables I, II and III of the paper
/// encoded as records, plus calibrated probe factories.

#include "bio/library.hpp"

#include <algorithm>
#include <array>

#include "bio/cyp_probe.hpp"
#include "bio/direct_probe.hpp"
#include "bio/oxidase_probe.hpp"
#include "chem/species.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace idp::bio {

using util::sensitivity_from_uA_per_mM_cm2;

std::string to_string(TargetId id) {
  switch (id) {
    case TargetId::kGlucose: return "glucose";
    case TargetId::kLactate: return "lactate";
    case TargetId::kGlutamate: return "glutamate";
    case TargetId::kCholesterol: return "cholesterol";
    case TargetId::kBenzphetamine: return "benzphetamine";
    case TargetId::kAminopyrine: return "aminopyrine";
    case TargetId::kClozapine: return "clozapine";
    case TargetId::kErythromycin: return "erythromycin";
    case TargetId::kIndinavir: return "indinavir";
    case TargetId::kBupropion: return "bupropion";
    case TargetId::kLidocaine: return "lidocaine";
    case TargetId::kTorsemide: return "torsemide";
    case TargetId::kDiclofenac: return "diclofenac";
    case TargetId::kPNitrophenol: return "p-nitrophenol";
    case TargetId::kDopamine: return "dopamine";
    case TargetId::kEtoposide: return "etoposide";
  }
  return "?";
}

TargetId target_from_string(const std::string& name) {
  for (int i = 0; i < kTargetCount; ++i) {
    const auto id = static_cast<TargetId>(i);
    if (to_string(id) == name) return id;
  }
  throw std::invalid_argument("unknown target: " + name);
}

std::string to_string(ProbeFamily f) {
  switch (f) {
    case ProbeFamily::kOxidase: return "oxidase";
    case ProbeFamily::kCytochromeP450: return "cytochrome P450";
    case ProbeFamily::kDirectOxidation: return "direct oxidation";
  }
  return "?";
}

namespace {

// Sensitivities/LODs/ranges from Table III; potentials from Tables I and II.
// Targets without a Table III row carry representative defaults
// (performance_from_paper = false).
const std::vector<TargetSpec>& target_specs() {
  static const std::vector<TargetSpec> specs = {
      {TargetId::kGlucose, "Metabolic compound as energy source",
       ProbeFamily::kOxidase, "GLUCOSE OXIDASE", +0.550, 27.7, 575.0, 0.5, 4.0,
       true, 10.0},
      {TargetId::kLactate, "Metabolic compound as marker of cell suffering",
       ProbeFamily::kOxidase, "LACTATE OXIDASE", +0.650, 40.1, 366.0, 0.5, 2.5,
       true, 6.0},
      {TargetId::kGlutamate, "Excitatory neurotransmitter",
       ProbeFamily::kOxidase, "L-GLUTAMATE OXIDASE", +0.600, 25.5, 1574.0, 0.5,
       2.0, true, 5.0},
      {TargetId::kCholesterol,
       "Metabolite able to establish proper cell membrane permeability",
       ProbeFamily::kCytochromeP450, "CYP11A1", -0.400, 112.0, -1.0, 0.01,
       0.08, true, 0.2},
      {TargetId::kBenzphetamine, "Used in the treatment of obesity",
       ProbeFamily::kCytochromeP450, "CYP2B4", -0.250, 0.28, 200.0, 0.2, 1.2,
       true, 3.0, false},
      {TargetId::kAminopyrine,
       "Analgesic, anti-inflammatory, and antipyretic drug",
       ProbeFamily::kCytochromeP450, "CYP2B4", -0.400, 2.8, 400.0, 0.8, 8.0,
       true, 20.0, false},
      {TargetId::kClozapine,
       "Antipsychotic used in the treatment of schizophrenia",
       ProbeFamily::kCytochromeP450, "CYP1A2", -0.265, 2.0, 300.0, 0.1, 2.0,
       false, 5.0, false},
      {TargetId::kErythromycin, "Broad-spectrum antibiotic",
       ProbeFamily::kCytochromeP450, "CYP3A4", -0.625, 2.0, 300.0, 0.1, 2.0,
       false, 5.0, false},
      {TargetId::kIndinavir,
       "Used in the treatment of HIV infection and AIDS",
       ProbeFamily::kCytochromeP450, "CYP3A4", -0.750, 2.0, 300.0, 0.1, 2.0,
       false, 5.0, false},
      {TargetId::kBupropion, "Antidepressant", ProbeFamily::kCytochromeP450,
       "CYP2B6", -0.450, 2.0, 300.0, 0.1, 2.0, false, 5.0, false},
      {TargetId::kLidocaine, "Anesthetic and antiarrhythmic",
       ProbeFamily::kCytochromeP450, "CYP2B6", -0.450, 2.0, 300.0, 0.1, 2.0,
       false, 5.0, false},
      {TargetId::kTorsemide, "Diuretic", ProbeFamily::kCytochromeP450,
       "CYP2C9", -0.019, 2.0, 300.0, 0.1, 2.0, false, 5.0, false},
      {TargetId::kDiclofenac, "Anti-inflammatory",
       ProbeFamily::kCytochromeP450, "CYP2C9", -0.041, 2.0, 300.0, 0.1, 2.0,
       false, 5.0, false},
      {TargetId::kPNitrophenol,
       "Intermediate in the synthesis of paracetamol",
       ProbeFamily::kCytochromeP450, "CYP2E1", -0.300, 2.0, 300.0, 0.1, 2.0,
       false, 5.0, false},
      // Direct oxidizers (Section II-C): diffusion-limited sensing on a bare
      // electrode; sensitivities follow n F D / delta for the default
      // 50 um stagnant layer. Not characterised in the paper's Table III.
      {TargetId::kDopamine, "Neurotransmitter, oxidises on bare electrodes",
       ProbeFamily::kDirectOxidation, "BARE ELECTRODE", +0.200, 200.0, 5.0,
       0.005, 0.1, false, 1.0e9},
      {TargetId::kEtoposide, "Chemotherapy drug, oxidises on bare electrodes",
       ProbeFamily::kDirectOxidation, "BARE ELECTRODE", +0.550, 150.0, 5.0,
       0.005, 0.1, false, 1.0e9},
  };
  return specs;
}

const chem::Species& species_of(TargetId id) {
  using namespace chem::species;
  switch (id) {
    case TargetId::kGlucose: return glucose;
    case TargetId::kLactate: return lactate;
    case TargetId::kGlutamate: return glutamate;
    case TargetId::kCholesterol: return cholesterol;
    case TargetId::kBenzphetamine: return benzphetamine;
    case TargetId::kAminopyrine: return aminopyrine;
    case TargetId::kClozapine: return clozapine;
    case TargetId::kErythromycin: return erythromycin;
    case TargetId::kIndinavir: return indinavir;
    case TargetId::kBupropion: return bupropion;
    case TargetId::kLidocaine: return lidocaine;
    case TargetId::kTorsemide: return torsemide;
    case TargetId::kDiclofenac: return diclofenac;
    case TargetId::kPNitrophenol: return p_nitrophenol;
    case TargetId::kDopamine: return dopamine;
    case TargetId::kEtoposide: return etoposide;
  }
  return glucose;
}

/// Intrinsic blank noise calibrated so that Vb + 3 sigma_b lands at the
/// paper's LOD (Eq. 5): sigma = S * A * LOD / 3. Rows whose LOD the paper
/// does not report get a noise level consistent with their linear range
/// (detectable at half the lowest calibrated concentration).
double blank_noise_for(const TargetSpec& s, double area) {
  const double s_si = sensitivity_from_uA_per_mM_cm2(s.sensitivity_uA_mM_cm2);
  const double fallback_uM = std::min(300.0, 0.5 * s.linear_lo_mM * 1e3);
  const double lod_mol_m3 =
      (s.lod_uM > 0.0 ? s.lod_uM : fallback_uM) * 1e-3;
  return s_si * area * lod_mol_m3 / 3.0;
}

}  // namespace

std::span<const TargetSpec> all_targets() { return target_specs(); }

const TargetSpec& spec(TargetId id) {
  for (const auto& s : target_specs()) {
    if (s.id == id) return s;
  }
  throw std::invalid_argument("no probe spec for target " + to_string(id) +
                              " (interferent-only molecule?)");
}

bool same_probe(TargetId a, TargetId b) {
  return spec(a).probe_name == spec(b).probe_name;
}

std::span<const Table1Row> table1_oxidases() {
  static const std::vector<Table1Row> rows = {
      {"GLUCOSE OXIDASE", TargetId::kGlucose,
       "Metabolic compound as energy source", +0.550},
      {"LACTATE OXIDASE", TargetId::kLactate,
       "Metabolic compound as marker of cell suffering", +0.650},
      {"L-GLUTAMATE OXIDASE", TargetId::kGlutamate,
       "Excitatory neurotransmitter", +0.600},
      {"CHOLESTEROL OXIDASE", TargetId::kCholesterol,
       "Establishes proper membrane permeability and fluidity", +0.700},
  };
  return rows;
}

std::span<const Table2Row> table2_cyps() {
  static const std::vector<Table2Row> rows = {
      {"CYP1A2", TargetId::kClozapine,
       "Antipsychotic used in the treatment of schizophrenia", -0.265},
      {"CYP3A4", TargetId::kErythromycin, "Broad-spectrum antibiotic", -0.625},
      {"CYP3A4", TargetId::kIndinavir,
       "Used in the treatment of HIV infection and AIDS", -0.750},
      {"CYP11A1", TargetId::kCholesterol,
       "Metabolite able to establish proper cell membrane permeability",
       -0.400},
      {"CYP2B4", TargetId::kBenzphetamine,
       "Used in the treatment of obesity", -0.250},
      {"CYP2B4", TargetId::kAminopyrine,
       "Analgesic, anti-inflammatory, and antipyretic drug", -0.400},
      {"CYP2B6", TargetId::kBupropion, "Antidepressant", -0.450},
      {"CYP2B6", TargetId::kLidocaine, "Anesthetic and antiarrhythmic",
       -0.450},
      {"CYP2C9", TargetId::kTorsemide, "Diuretic", -0.019},
      {"CYP2C9", TargetId::kDiclofenac, "Anti-inflammatory", -0.041},
      {"CYP2E1", TargetId::kPNitrophenol,
       "Intermediate in the synthesis of paracetamol", -0.300},
  };
  return rows;
}

std::span<const Table3Row> table3_performance() {
  static const std::vector<Table3Row> rows = {
      {TargetId::kGlucose, "glucose oxidase", 27.7, 575.0, 0.5, 4.0},
      {TargetId::kLactate, "lactate oxidase", 40.1, 366.0, 0.5, 2.5},
      {TargetId::kGlutamate, "glutamate oxidase", 25.5, 1574.0, 0.5, 2.0},
      {TargetId::kBenzphetamine, "CYP2B4", 0.28, 200.0, 0.2, 1.2},
      {TargetId::kAminopyrine, "CYP2B4", 2.8, 400.0, 0.8, 8.0},
      {TargetId::kCholesterol, "CYP11A1", 112.0, -1.0, 0.01, 0.08},
  };
  return rows;
}

namespace {

ProbePtr make_oxidase(const TargetSpec& s, double area, double gain) {
  OxidaseProbeParams p;
  p.name = s.probe_name;
  p.target = to_string(s.id);
  p.area = area;
  p.applied_potential = s.operating_potential;
  p.sensitivity = sensitivity_from_uA_per_mM_cm2(s.sensitivity_uA_mM_cm2);
  p.km = s.km_mM;  // mM == mol/m^3
  p.calibration_mid_concentration = 0.5 * (s.linear_lo_mM + s.linear_hi_mM);
  // Outer-film permeability sized so transport supports ~1.6x the target
  // sensitivity: the enzyme layer controls the remaining headroom, which is
  // where the Michaelis-Menten linear-range limit comes from.
  p.d_substrate_membrane = 1.6 * p.sensitivity * p.membrane_thickness /
                           (2.0 * util::kFaraday);
  p.d_substrate_bulk = species_of(s.id).diffusivity;
  p.blank_noise_rms = blank_noise_for(s, area);
  p.loading_gain = gain;
  return std::make_unique<OxidaseProbe>(std::move(p));
}

CypTargetParams cyp_target(const TargetSpec& s, double gain) {
  CypTargetParams t;
  t.drug = to_string(s.id);
  t.e0_red = s.operating_potential;
  t.sensitivity =
      gain * sensitivity_from_uA_per_mM_cm2(s.sensitivity_uA_mM_cm2);
  t.km = s.km_mM;
  t.d_drug = species_of(s.id).diffusivity;
  t.calibration_mid_concentration = 0.5 * (s.linear_lo_mM + s.linear_hi_mM);
  return t;
}

}  // namespace

namespace {

ProbePtr make_direct(const TargetSpec& s, double area) {
  DirectProbeParams p;
  p.name = s.probe_name + " (" + to_string(s.id) + ")";
  p.target = to_string(s.id);
  p.area = area;
  p.applied_potential = s.operating_potential + 0.25;  // overpotential
  p.couple = chem::RedoxCouple{.name = p.target + " (direct)",
                               .n = 2,
                               .e0 = s.operating_potential,
                               .k0 = 1.0e-5,
                               .alpha = 0.5};
  p.d_target = species_of(s.id).diffusivity;
  p.blank_noise_rms = blank_noise_for(s, area);
  return std::make_unique<DirectProbe>(std::move(p));
}

}  // namespace

ProbePtr make_probe(TargetId id, double area, double sensitivity_gain) {
  util::require(sensitivity_gain > 0.0, "gain must be positive");
  const TargetSpec& s = spec(id);
  switch (s.family) {
    case ProbeFamily::kOxidase:
      return make_oxidase(s, area, sensitivity_gain);
    case ProbeFamily::kDirectOxidation:
      return make_direct(s, area);  // diffusion-limited: gain inapplicable
    case ProbeFamily::kCytochromeP450: break;
  }
  const std::array<TargetId, 1> one = {id};
  return make_cyp_probe(one, area, sensitivity_gain);
}

ProbePtr make_cyp_probe(std::span<const TargetId> ids, double area,
                        double sensitivity_gain) {
  util::require(!ids.empty(), "need at least one target");
  util::require(sensitivity_gain > 0.0, "gain must be positive");
  const TargetSpec& first = spec(ids.front());
  util::require(first.family == ProbeFamily::kCytochromeP450,
                "not a CYP-sensed target: " + to_string(ids.front()));
  CypProbeParams p;
  p.isoform = first.probe_name;
  p.area = area;
  double noise = 0.0;
  for (TargetId id : ids) {
    const TargetSpec& s = spec(id);
    util::require(s.probe_name == first.probe_name,
                  "targets use different CYP isoforms: " + to_string(id));
    p.targets.push_back(cyp_target(s, sensitivity_gain));
    noise = std::max(noise, blank_noise_for(s, area));
  }
  p.blank_noise_rms = noise;
  return std::make_unique<CypProbe>(std::move(p));
}

ProbePtr make_table1_probe(const Table1Row& row, double area) {
  if (row.target != TargetId::kCholesterol) {
    return make_probe(row.target, area);
  }
  // Cholesterol oxidase has no Table III row (the platform uses CYP11A1);
  // build it with representative oxidase defaults at the Table I potential.
  OxidaseProbeParams p;
  p.name = row.oxidase;
  p.target = to_string(row.target);
  p.area = area;
  p.applied_potential = row.applied_potential;
  p.sensitivity = sensitivity_from_uA_per_mM_cm2(15.0);
  p.km = 0.2;
  p.d_substrate_bulk = chem::species::cholesterol.diffusivity;
  p.blank_noise_rms = 1.0e-9;
  return std::make_unique<OxidaseProbe>(std::move(p));
}

}  // namespace idp::bio
