/// \file interference.hpp
/// Cross-talk and interference rules (Sections II-A and II-C of the paper):
///   * H2O2 diffuses slowly, so co-located oxidase electrodes are assumed
///     cross-talk free -- the basis for single-chamber multi-target sensing;
///   * some molecules (dopamine, etoposide) oxidise directly on a bare
///     electrode, so a blank working electrode is NOT a valid CDS reference
///     for them and co-chamber chronoamperometry sees them as interferents.
#pragma once

#include "bio/library_ids.hpp"

namespace idp::bio {

/// True if the molecule oxidises at a polarised bare electrode without any
/// enzyme (the paper names dopamine and etoposide).
bool directly_electroactive(TargetId id);

/// True if a blank working electrode is a valid correlated-double-sampling
/// reference when measuring this target (false for direct oxidizers -- the
/// blank would subtract signal, the paper's Section II-C caveat).
bool cds_blank_effective(TargetId id);

/// True if targets a and b can share a measurement chamber. Oxidase pairs
/// share (slow H2O2 diffusion); a direct oxidizer poisons any co-chamber
/// chronoamperometric measurement held at a positive potential.
bool can_share_chamber(TargetId a, TargetId b);

}  // namespace idp::bio
