/// \file library.hpp
/// The probe data library: Tables I, II and III of the paper encoded as
/// data, plus factories that build calibrated probe models from them.
///
/// Rows marked `performance_from_paper == false` have no Table III entry;
/// they carry representative defaults so the platform explorer can still
/// reason about them (documented in EXPERIMENTS.md).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bio/library_ids.hpp"
#include "bio/probe.hpp"

namespace idp::bio {

/// Which recognition mechanism senses a target in the paper's platform.
/// kDirectOxidation covers molecules that oxidise on a bare electrode
/// (dopamine, etoposide -- Section II-C); they need no enzyme but also give
/// no selectivity.
enum class ProbeFamily { kOxidase, kCytochromeP450, kDirectOxidation };

std::string to_string(ProbeFamily f);

/// Everything the platform needs to know about sensing one target.
struct TargetSpec {
  TargetId id;
  std::string description;        ///< paper's description column
  ProbeFamily family;
  std::string probe_name;         ///< "GLUCOSE OXIDASE", "CYP2B4", ...
  double operating_potential;     ///< Table I applied / Table II reduction [V]
  double sensitivity_uA_mM_cm2;   ///< Table III sensitivity (or default)
  double lod_uM;                  ///< Table III LOD; < 0 when not reported
  double linear_lo_mM;
  double linear_hi_mM;
  bool performance_from_paper;    ///< true iff a Table III row exists
  double km_mM;                   ///< apparent Michaelis constant we assign
  /// True when the quoted sensitivity already comes from a nanostructured
  /// electrode (CNT for glucose/lactate/glutamate/cholesterol [8][15]);
  /// false when it was measured on a planar electrode (Rh-graphite for
  /// CYP2B4 [16]) so nanostructuration can still raise it -- exactly the
  /// enhancement the paper's Section III closing remark proposes.
  bool nanostructured_baseline = true;
};

/// All known targets.
std::span<const TargetSpec> all_targets();

/// Spec for one target (throws std::invalid_argument if unknown).
const TargetSpec& spec(TargetId id);

/// True if both targets are sensed by the same physical probe (same enzyme
/// on the same electrode), e.g. CYP2B4 for benzphetamine + aminopyrine.
bool same_probe(TargetId a, TargetId b);

// --- verbatim paper tables ---------------------------------------------------

/// Row of the paper's Table I (oxidase-developed biosensors).
struct Table1Row {
  std::string oxidase;
  TargetId target;
  std::string description;
  double applied_potential;  ///< vs Ag/AgCl [V]
};
std::span<const Table1Row> table1_oxidases();

/// Row of the paper's Table II (CYP-developed biosensors).
struct Table2Row {
  std::string isoform;
  TargetId target;
  std::string description;
  double reduction_potential;  ///< vs Ag/AgCl [V]
};
std::span<const Table2Row> table2_cyps();

/// Row of the paper's Table III (per-electrode performance).
struct Table3Row {
  TargetId target;
  std::string probe;
  double sensitivity_uA_mM_cm2;
  double lod_uM;      ///< < 0 encodes the paper's "--" for cholesterol
  double linear_lo_mM;
  double linear_hi_mM;
};
std::span<const Table3Row> table3_performance();

// --- probe factories ---------------------------------------------------------

/// Build a calibrated probe for a single target on an electrode of the given
/// geometric area. Oxidase targets yield an OxidaseProbe, CYP targets a
/// single-target CypProbe. `sensitivity_gain` scales the calibrated
/// sensitivity (> 1 models nanostructuration of a planar-baseline probe).
ProbePtr make_probe(TargetId id, double area = 0.23e-6,
                    double sensitivity_gain = 1.0);

/// Build one CYP film sensing several drugs at once; all targets must map to
/// the same isoform (throws otherwise). This is the paper's dual-target
/// CYP2B4 electrode.
ProbePtr make_cyp_probe(std::span<const TargetId> ids, double area = 0.23e-6,
                        double sensitivity_gain = 1.0);

/// Build the Table I chronoamperometric probe for a Table1Row (used by the
/// Table I bench; cholesterol oxidase gets defaults since Table III
/// characterises cholesterol via CYP11A1 instead).
ProbePtr make_table1_probe(const Table1Row& row, double area = 0.23e-6);

}  // namespace idp::bio
