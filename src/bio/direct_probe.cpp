/// \file direct_probe.cpp
/// Direct-oxidation probe implementation: bare-electrode faradaic current
/// of directly electroactive species via the redox-system solver.

#include "bio/direct_probe.hpp"

#include "util/error.hpp"

namespace idp::bio {

namespace {
chem::SolutionRedoxConfig system_config(const DirectProbeParams& p) {
  chem::SolutionRedoxConfig c;
  c.couple = p.couple;
  c.area = p.area;
  c.d_red = p.d_target;
  c.d_ox = p.d_target;
  c.c_red_bulk = 0.0;  // target injected later
  c.c_ox_bulk = 0.0;
  c.grid_h0 = 1.0e-6;
  c.grid_beta = 1.15;
  c.domain_length = p.nernst_layer;
  return c;
}
}  // namespace

DirectProbe::DirectProbe(DirectProbeParams params)
    : params_(std::move(params)), system_(system_config(params_)) {
  util::require(params_.area > 0.0, "area must be positive");
}

void DirectProbe::set_bulk_concentration(const std::string& target, double c) {
  util::require(target == params_.target,
                "unknown target '" + target + "' for probe " + params_.name);
  util::require(c >= 0.0, "negative concentration");
  bulk_ = c;
  system_.set_bulk_red(c);
}

double DirectProbe::step(double e, double dt) {
  return system_.step(e, dt) + params_.background_current;
}

void DirectProbe::reset() {
  // Pre-equilibrated start: the diffusion layer holds the bulk value and a
  // Cottrell-like depletion transient develops during the run.
  system_.set_bulk_red(bulk_);
  system_.reset();
}

}  // namespace idp::bio
