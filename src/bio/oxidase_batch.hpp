/// \file oxidase_batch.hpp
/// Lockstep lane batch of W oxidase membrane probes: the panel-level feeder
/// of the SoA batched diffusion kernel.
///
/// A multiplexed panel typically carries several oxidase channels built on
/// the same membrane geometry (glucose, lactate, glutamate... all share the
/// default stack), so their chronoamperometric measurements solve W pairs of
/// identical-grid tridiagonal systems per time step. OxidaseLaneBatch packs
/// those W probes into one BatchedDiffusionField of 2W lanes -- substrate
/// lanes [0, W), peroxide lanes [W, 2W) -- and replicates
/// OxidaseProbe::step() per lane bit-for-bit: same Michaelis-Menten source
/// loop, same Butler-Volmer boundary update, same current expression. Lane
/// order cannot leak into results because lanes never exchange data and
/// per-channel noise is seeded by run id upstream in the engine.
#pragma once

#include <span>
#include <vector>

#include "bio/enzyme.hpp"
#include "bio/oxidase_probe.hpp"
#include "chem/batched_diffusion.hpp"
#include "chem/redox.hpp"
#include "fault/sensor_state.hpp"

namespace idp::bio {

/// W oxidase probes advanced in lockstep through one 2W-lane SoA solve.
///
/// Construction mirrors what the scalar measurement path does per probe
/// before a run (apply_sensor_state + reset): fresh zero profiles, substrate
/// bulk from the probe's configured concentration, fouling scale and enzyme
/// activity from the sensor state. The probes themselves are not advanced --
/// the batch owns its own field state -- so the caller keeps applying
/// sensor state / reset to the probes exactly as the scalar path does.
class OxidaseLaneBatch {
 public:
  /// All probes must share node-identical grids (enforced); sensor states
  /// must keep activity and transmission positive, as apply_sensor_state
  /// requires. `probes.size() == sensors.size() >= 1`.
  OxidaseLaneBatch(std::span<OxidaseProbe* const> probes,
                   std::span<const fault::SensorState* const> sensors);

  /// True when the two probes can share a lane batch: node-identical grids.
  static bool compatible(const OxidaseProbe& a, const OxidaseProbe& b) {
    return a.grid().nodes() == b.grid().nodes();
  }

  /// Advance every channel by dt under its own applied potential e[c];
  /// writes the faradaic current of channel c to i_out[c]. Bitwise identical
  /// per channel to OxidaseProbe::step(e[c], dt) on a probe in the same
  /// state. Allocation-free.
  void step(std::span<const double> e, double dt, std::span<double> i_out);

  std::size_t width() const { return width_; }
  double substrate_at_electrode(std::size_t c) const {
    return fields_.at_electrode(c);
  }
  double peroxide_at_electrode(std::size_t c) const {
    return fields_.at_electrode(width_ + c);
  }

 private:
  std::size_t width_;
  chem::BatchedDiffusionField fields_;
  // per-channel calibrated state, copied from the probes at construction
  std::vector<MichaelisMenten> kinetics_;
  std::vector<chem::RedoxCouple> couples_;
  std::vector<std::size_t> n_mem_;
  std::vector<double> activity_;  ///< sensor enzyme-activity fraction
  std::vector<double> nfa_;       ///< n * Faraday * area (same two multiplies
                                  ///< as the scalar current expression)
  std::vector<double> background_;
};

}  // namespace idp::bio
