/// \file enzyme.hpp
/// Michaelis-Menten enzyme kinetics -- the rate law behind both probe
/// families (oxidases in Eq. 1-2 of the paper, CYP turnover in Eq. 4).
#pragma once

namespace idp::bio {

/// Michaelis-Menten rate law v = vmax * c / (km + c).
///
/// For oxidase membranes vmax is volumetric [mol m^-3 s^-1]; for CYP films
/// the same law is used with a surface-normalised vmax. The apparent km sets
/// where the calibration curve departs from linearity, i.e. the upper end of
/// the paper's "linear range" column in Table III.
struct MichaelisMenten {
  double vmax = 0.0;  ///< saturating rate
  double km = 1.0;    ///< half-saturation concentration [mol/m^3]

  /// Reaction rate at concentration c (>= 0; c is clamped at 0).
  double rate(double c) const {
    const double cc = c > 0.0 ? c : 0.0;
    return vmax * cc / (km + cc);
  }

  /// Low-concentration (first-order) rate constant vmax/km [1/s].
  double first_order_rate() const { return vmax / km; }

  /// Relative deviation from the first-order line at concentration c:
  /// 1 - rate(c)/(first_order * c); grows as c approaches km.
  double nonlinearity(double c) const {
    if (c <= 0.0) return 0.0;
    return 1.0 - rate(c) / (first_order_rate() * c);
  }
};

}  // namespace idp::bio
