/// \file library_ids.hpp
/// Identifiers for every target molecule the paper discusses (endogenous
/// metabolites of Table I and exogenous drug compounds of Table II, plus the
/// two direct oxidizers named in Section II-C).
#pragma once

#include <string>

namespace idp::bio {

/// Target molecules known to the probe library.
enum class TargetId {
  // endogenous metabolites (oxidase-sensed, Table I)
  kGlucose,
  kLactate,
  kGlutamate,
  kCholesterol,  // sensed by CYP11A1 in the paper's platform (Table III)
  // exogenous drug compounds (CYP-sensed, Table II)
  kBenzphetamine,
  kAminopyrine,
  kClozapine,
  kErythromycin,
  kIndinavir,
  kBupropion,
  kLidocaine,
  kTorsemide,
  kDiclofenac,
  kPNitrophenol,
  // directly electroactive molecules (Section II-C caveat)
  kDopamine,
  kEtoposide,
};

/// Number of distinct targets (for iteration in tests/benches).
inline constexpr int kTargetCount = 16;

std::string to_string(TargetId id);

/// Inverse of to_string; throws std::invalid_argument for unknown names.
TargetId target_from_string(const std::string& name);

}  // namespace idp::bio
