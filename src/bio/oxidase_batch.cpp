/// \file oxidase_batch.cpp
/// Panel-level oxidase lane batch: W probes, one SoA solve per step. Every
/// per-channel expression mirrors OxidaseProbe::step op-for-op; only the
/// loop structure (channel loop inside the node loop) and the storage layout
/// differ, which is what keeps lane values bitwise identical to the scalar
/// probe while the compiler vectorizes across channels.

#include "bio/oxidase_batch.hpp"

#include <algorithm>

#include "chem/diffusion.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace idp::bio {

OxidaseLaneBatch::OxidaseLaneBatch(
    std::span<OxidaseProbe* const> probes,
    std::span<const fault::SensorState* const> sensors)
    : width_(probes.size()),
      fields_((util::require(!probes.empty() && probes.front() != nullptr,
                             "lane batch needs at least one probe"),
               probes.front()->grid()),
              2 * probes.size()) {
  util::require(sensors.size() == width_, "one sensor state per probe");
  const std::size_t w = width_;
  kinetics_.reserve(w);
  couples_.reserve(w);
  n_mem_.resize(w);
  activity_.resize(w);
  nfa_.resize(w);
  background_.resize(w);
  for (std::size_t c = 0; c < w; ++c) {
    util::require(probes[c] != nullptr, "lane batch probe is null");
    util::require(sensors[c] != nullptr, "lane batch sensor state is null");
    const OxidaseProbe& probe = *probes[c];
    util::require(compatible(*probes.front(), probe),
                  "lane batch requires node-identical grids");
    const OxidaseProbeParams& p = probe.params();
    const fault::SensorState& sensor = *sensors[c];
    util::require(sensor.enzyme_activity > 0.0 &&
                      sensor.membrane_transmission > 0.0,
                  "sensor state must keep activity and transmission positive");

    // Substrate lane c / peroxide lane w+c. The diffusivity layering uses
    // the probe's own grid (node-identical to the shared one), so per-lane
    // coefficients are exactly the probe's own.
    fields_.configure_lane(c,
                           chem::layered_diffusivity(probe.grid(),
                                                     p.d_substrate_membrane,
                                                     p.d_substrate_bulk),
                           0.0);
    fields_.configure_lane(w + c,
                           chem::layered_diffusivity(probe.grid(),
                                                     p.d_peroxide_membrane,
                                                     p.d_peroxide_bulk),
                           0.0);
    // Mirror apply_sensor_state + reset: fouling throttles substrate
    // ingress only, fresh zero profiles, substrate bulk at the configured
    // concentration, H2O2 escaping to a clean bulk.
    fields_.set_diffusivity_scale(c, sensor.membrane_transmission);
    fields_.set_bulk_concentration(c, probe.bulk_concentration());
    fields_.set_bulk_concentration(w + c, 0.0);

    kinetics_.push_back(probe.kinetics());
    couples_.push_back(probe.peroxide_couple());
    n_mem_[c] = static_cast<std::size_t>(
        p.enzyme_fraction * static_cast<double>(probe.grid().membrane_nodes()));
    activity_[c] = sensor.enzyme_activity;
    // Same association as the scalar current expression
    // (double(n) * F) * area, precomputed once per channel.
    nfa_[c] = static_cast<double>(couples_[c].n) * util::kFaraday * p.area;
    background_[c] = p.background_current;
  }
}

void OxidaseLaneBatch::step(std::span<const double> e, double dt,
                            std::span<double> i_out) {
  const std::size_t w = width_;
  util::require(e.size() == w && i_out.size() == w,
                "lane batch span size mismatch");

  // Enzymatic conversion inside each channel's membrane; rates go straight
  // into the SoA source array (stride 2w: substrate slots [row, row+w),
  // peroxide slots [row+w, row+2w)).
  const std::span<double> src = fields_.source_data();
  const std::size_t nodes = fields_.size();
  const std::size_t stride = 2 * w;
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::size_t row = i * stride;
    for (std::size_t c = 0; c < w; ++c) {
      double r = 0.0;
      if (i < n_mem_[c]) {
        const double cs = fields_.at(c, i);
        r = kinetics_[c].rate(cs) * activity_[c];
        r = std::min(r, 0.9 * cs / dt);
      }
      src[row + c] = -r;
      src[row + w + c] = r;
    }
  }
  fields_.mark_sources_set();

  // H2O2 oxidation at each electrode under its own applied potential.
  for (std::size_t c = 0; c < w; ++c) {
    const chem::BvRates rates = chem::butler_volmer_rates(couples_[c], e[c]);
    fields_.set_electrode_rate(w + c, rates.kf);
  }

  fields_.step(dt);

  for (std::size_t c = 0; c < w; ++c) {
    i_out[c] = nfa_[c] * fields_.electrode_flux(w + c) + background_[c];
  }
}

}  // namespace idp::bio
