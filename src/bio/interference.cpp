/// \file interference.cpp
/// Interference-rule evaluation: pairwise cross-talk checks between
/// co-located probes (Sections II-A / II-C).

#include "bio/interference.hpp"

#include "bio/library.hpp"

namespace idp::bio {

bool directly_electroactive(TargetId id) {
  return id == TargetId::kDopamine || id == TargetId::kEtoposide;
}

bool cds_blank_effective(TargetId id) { return !directly_electroactive(id); }

bool can_share_chamber(TargetId a, TargetId b) {
  // A direct oxidizer adds faradaic current on *any* positively polarised
  // electrode in the chamber, corrupting chronoamperometric (oxidase)
  // readings; CV probes discriminate by potential, so they tolerate it.
  auto positive_potential_ca = [](TargetId id) {
    const TargetSpec& s = spec(id);
    const bool amperometric = s.family == ProbeFamily::kOxidase ||
                              s.family == ProbeFamily::kDirectOxidation;
    return amperometric && s.operating_potential > 0.0;
  };
  if (directly_electroactive(a) && positive_potential_ca(b)) return false;
  if (directly_electroactive(b) && positive_potential_ca(a)) return false;
  // Oxidase products (H2O2) diffuse too slowly for cross-talk (Section II-A),
  // and CYP films respond only near their reduction potentials.
  return true;
}

}  // namespace idp::bio
