/// \file direct_probe.hpp
/// Direct-oxidation "probe": a bare (enzyme-free) working electrode sensing
/// a directly electroactive molecule (dopamine, etoposide). Section II-C
/// notes these species oxidise at a polarised electrode *without* any
/// enzyme -- which is why a blank working electrode cannot serve as a CDS
/// reference for them, and why they interfere with co-chamber
/// chronoamperometry.
#pragma once

#include <string>
#include <vector>

#include "bio/probe.hpp"
#include "chem/redox_system.hpp"

namespace idp::bio {

/// Construction parameters for a direct-oxidation probe.
struct DirectProbeParams {
  std::string name = "bare electrode";
  std::string target = "dopamine";
  double area = 0.23e-6;            ///< [m^2]
  double applied_potential = 0.55;  ///< operating potential [V vs Ag/AgCl]
  chem::RedoxCouple couple{
      .name = "direct", .n = 2, .e0 = 0.20, .k0 = 1.0e-5, .alpha = 0.5};
  double d_target = 6.0e-10;        ///< diffusivity [m^2/s]
  double nernst_layer = 50e-6;      ///< stagnant layer to the stirred bulk [m]
  double background_current = 3.0e-9;
  double blank_noise_rms = 2.0e-9;
};

/// Diffusion-limited amperometric sensing of a directly electroactive
/// molecule (no biological recognition element, hence no selectivity).
class DirectProbe final : public Probe {
 public:
  explicit DirectProbe(DirectProbeParams params);

  const std::string& name() const override { return params_.name; }
  Technique technique() const override { return Technique::kChronoamperometry; }
  double area() const override { return params_.area; }
  std::vector<std::string> targets() const override { return {params_.target}; }
  void set_bulk_concentration(const std::string& target, double c) override;
  double step(double e, double dt) override;
  void reset() override;
  double blank_current() const override { return params_.background_current; }
  double blank_noise_rms() const override { return params_.blank_noise_rms; }
  /// A bare blank electrode oxidises the target just as well (Section II-C).
  double blank_signal_fraction() const override { return 0.9; }

  double applied_potential() const { return params_.applied_potential; }

 private:
  DirectProbeParams params_;
  chem::SolutionRedoxSystem system_;
  double bulk_ = 0.0;
};

}  // namespace idp::bio
