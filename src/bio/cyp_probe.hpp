/// \file cyp_probe.hpp
/// Cytochrome P450 film probe (Eq. 4 of the paper):
///
///   substrate + O2 + 2H+ + 2e-  ->  product + H2O
///
/// The CYP is surface-confined (protein-film voltammetry): the heme centre
/// exchanges electrons directly with the electrode (Laviron kinetics) and,
/// once reduced, turns the drug over catalytically (EC' mechanism). Each
/// target drug contributes a reduction wave at its Table II potential whose
/// height scales with concentration -- the "electrochemical signature" the
/// paper uses for multi-target detection with a single probe (e.g. CYP2B4
/// resolving benzphetamine at -250 mV and aminopyrine at -400 mV).
#pragma once

#include <string>
#include <vector>

#include "bio/probe.hpp"
#include "chem/diffusion.hpp"
#include "chem/redox.hpp"

namespace idp::bio {

/// Per-drug parameters of a CYP film.
struct CypTargetParams {
  std::string drug = "drug";
  double e0_red = -0.4;      ///< Table II reduction potential [V vs Ag/AgCl]
  /// Calibrated peak-current sensitivity [A / (mol m^-3) / m^2].
  double sensitivity = 0.02;
  double km = 3.0;           ///< apparent Michaelis constant [mol/m^3]
  double d_drug = 5.0e-10;   ///< drug diffusivity [m^2/s]
  /// Linear-range midpoint the sensitivity is calibrated at [mol/m^3];
  /// zero keeps the analytic kcat estimate (no numeric refinement).
  double calibration_mid_concentration = 0.0;
};

/// Construction parameters for a CYP probe (one isoform, >= 1 targets).
struct CypProbeParams {
  std::string isoform = "CYP";
  double area = 0.23e-6;       ///< electrode area [m^2]
  double coverage = 5.0e-7;    ///< total heme surface coverage [mol/m^2]
  double ks = 4.0;             ///< Laviron surface ET rate [1/s]
  double alpha = 0.5;
  double background_current = 5.0e-9;
  double blank_noise_rms = 2.0e-9;
  double nernst_layer = 50e-6;   ///< stirred-cell drug supply layer [m]
  std::vector<CypTargetParams> targets;
};

/// Derive the catalytic turnover kcat [1/s] that produces the requested
/// peak-current sensitivity for one target (kinetic regime; see DESIGN.md).
double derive_kcat(const CypProbeParams& probe, const CypTargetParams& target);

/// Concrete CYP450 film probe (cyclic voltammetry).
class CypProbe final : public Probe {
 public:
  explicit CypProbe(CypProbeParams params);

  const std::string& name() const override { return params_.isoform; }
  Technique technique() const override { return Technique::kCyclicVoltammetry; }
  double area() const override { return params_.area; }
  std::vector<std::string> targets() const override;
  void set_bulk_concentration(const std::string& target, double c) override;
  double step(double e, double dt) override;
  void reset() override;
  double blank_current() const override { return params_.background_current; }
  double blank_noise_rms() const override { return params_.blank_noise_rms; }

  /// Degradation hooks: enzyme_activity scales the catalytically active
  /// heme population (surface ET *and* turnover), membrane_transmission
  /// scales the drug-supply diffusivity (film fouling). Identity states
  /// are exact no-ops.
  void apply_sensor_state(const fault::SensorState& state) override;

  /// Reduced fraction of the heme sub-population serving target k.
  double reduced_fraction(std::size_t k) const;
  /// Table II reduction potential of target k.
  double reduction_potential(std::size_t k) const;
  std::size_t target_count() const { return states_.size(); }

  /// Calibrated turnover of target k [1/s] (for white-box tests).
  double kcat(std::size_t k) const;

 private:
  struct TargetState {
    CypTargetParams params;
    chem::RedoxCouple heme;        ///< surface couple at the drug's potential
    double kcat = 0.0;             ///< calibrated turnover [1/s]
    double coverage = 0.0;         ///< sub-population coverage [mol/m^2]
    double theta_red = 0.0;        ///< reduced fraction
    chem::DiffusionField drug;     ///< drug supply field
    double bulk = 0.0;
  };

  /// Baseline-corrected cathodic response of target k at concentration c on
  /// a standard noise-free 20 mV/s sweep (used for calibration).
  double cv_response(std::size_t k, double c);
  /// Secant-calibrate each target's kcat so the standard-sweep response at
  /// the linear-range midpoint equals sensitivity * area * c.
  void calibrate_turnover();

  CypProbeParams params_;
  std::vector<TargetState> states_;
  double enzyme_activity_ = 1.0;  ///< fault-state active-heme fraction
};

}  // namespace idp::bio
