/// \file probe.hpp
/// The bio-electrical probe abstraction: a functionalised working electrode
/// that turns target concentration into faradaic current.
///
/// Two concrete families implement it, matching Section I-B of the paper:
///   * OxidaseProbe  -- enzyme membrane producing H2O2, read by
///                      chronoamperometry at a fixed potential;
///   * CypProbe      -- surface-confined cytochrome P450 film with direct
///                      electron transfer, read by cyclic voltammetry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/sensor_state.hpp"

namespace idp::bio {

/// Electrochemical technique a probe is read with (Section I-B).
enum class Technique {
  kChronoamperometry,  ///< fixed potential, current vs time
  kCyclicVoltammetry,  ///< swept potential, current peaks vs potential
};

std::string to_string(Technique t);

/// A functionalised working electrode. Implementations own whatever internal
/// state they need (diffusion fields, surface coverages) and advance it in
/// lock-step with the measurement engine.
class Probe {
 public:
  virtual ~Probe() = default;

  /// Descriptive name, e.g. "glucose oxidase / MWCNT".
  virtual const std::string& name() const = 0;

  /// Technique this probe is designed for.
  virtual Technique technique() const = 0;

  /// Geometric electrode area [m^2].
  virtual double area() const = 0;

  /// Target molecules this probe responds to (one, or two for dual-target
  /// CYP films such as CYP2B4 benzphetamine+aminopyrine).
  virtual std::vector<std::string> targets() const = 0;

  /// Set the bulk concentration of one target [mol/m^3]. Unknown target
  /// names throw std::invalid_argument.
  virtual void set_bulk_concentration(const std::string& target, double c) = 0;

  /// Advance the probe physics by dt [s] with the working electrode at
  /// potential e [V vs Ag/AgCl]; returns faradaic current [A], anodic
  /// positive (so CYP reduction peaks are negative).
  virtual double step(double e, double dt) = 0;

  /// Return to the initial (equilibrated, pre-injection) state.
  virtual void reset() = 0;

  /// Constant background (blank) faradaic current [A] -- the paper's Vb term
  /// in the LOD definition (Eq. 5) before noise.
  virtual double blank_current() const = 0;

  /// Intrinsic sensor noise RMS [A] (electrochemical blank fluctuations);
  /// the AFE adds its own electronic noise on top.
  virtual double blank_noise_rms() const = 0;

  /// Fraction of the faradaic *signal* that an enzyme-free blank working
  /// electrode in the same solution would also collect. Zero for enzymatic
  /// probes (the blank sees only background), close to one for directly
  /// electroactive targets -- which is precisely why Section II-C says the
  /// extra blank WE "is not helpful" for dopamine and etoposide: correlated
  /// double sampling would subtract the signal itself.
  virtual double blank_signal_fraction() const { return 0.0; }

  /// Apply a time-varying sensor condition (fault/degradation subsystem).
  /// The measurement engine calls this at scan start with the channel's
  /// SensorState; probes that model aging consult the enzyme-activity and
  /// membrane-transmission fields. The condition is orthogonal to reset():
  /// it persists until the next apply call. Default: ignore (pristine
  /// behaviour for probes without a degradation model).
  virtual void apply_sensor_state(const fault::SensorState& state) {
    (void)state;
  }
};

using ProbePtr = std::unique_ptr<Probe>;

}  // namespace idp::bio
