/// \file oxidase_probe.hpp
/// Membrane oxidase biosensor model (Eq. 1-3 of the paper):
///
///   FAD + substrate  -> FADH2 + product          (enzyme, Michaelis-Menten)
///   FADH2 + O2       -> H2O2 + FAD               (fast, O2 in excess)
///   2 H2O2           -> 2 H2O + O2 + 4e-         (electrode, ~+650 mV)
///
/// The enzyme is immobilised in a membrane of thickness L on the electrode;
/// substrate diffuses in from the stirred bulk through a Nernst layer, H2O2
/// is generated inside the membrane and oxidised at the electrode (n = 2 per
/// H2O2). The t90 ~ 30 s response of Fig. 3 emerges from L^2/D.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bio/enzyme.hpp"
#include "bio/probe.hpp"
#include "chem/batched_diffusion.hpp"
#include "chem/redox.hpp"

namespace idp::bio {

/// Construction parameters for an oxidase membrane probe.
struct OxidaseProbeParams {
  std::string name = "oxidase";
  std::string target = "substrate";
  double area = 0.23e-6;             ///< electrode area [m^2]
  double applied_potential = 0.65;   ///< Table I operating potential [V]

  /// Target calibrated sensitivity [A / (mol m^-3) / m^2]; vmax is derived
  /// from it (see derive_vmax). Table III values go through
  /// util::sensitivity_from_uA_per_mM_cm2.
  double sensitivity = 0.277;
  double km = 10.0;                  ///< apparent Michaelis constant [mol/m^3]
  /// Mid-point of the concentration range the quoted sensitivity was
  /// regressed over [mol/m^3]; compensates the Michaelis-Menten saturation
  /// so the *measured* calibration slope lands on `sensitivity`. Zero
  /// disables the correction (calibrates the initial slope instead).
  double calibration_mid_concentration = 0.0;

  /// Membrane stack: an outer substrate-limiting film with the enzyme
  /// loaded in the inner `enzyme_fraction` of the membrane, against the
  /// electrode -- the classic layered glucose-sensor construction. The
  /// membrane permeability D/L sets (with the enzyme headroom) the
  /// sensitivity, and L^2/D the ~30 s response of Fig. 3.
  double membrane_thickness = 50e-6; ///< total membrane [m]
  double enzyme_fraction = 0.4;      ///< inner fraction holding the enzyme
  double nernst_layer = 60e-6;       ///< stagnant solution layer [m]
  double d_substrate_membrane = 9.0e-11;  ///< hindered diffusivity [m^2/s]
  double d_substrate_bulk = 6.7e-10;
  double d_peroxide_membrane = 2.0e-10;
  double d_peroxide_bulk = 1.43e-9;

  /// Heterogeneous H2O2 oxidation couple; e0 defaults to 200 mV below the
  /// applied potential so the probe saturates right at its Table I value.
  std::optional<chem::RedoxCouple> peroxide_couple;

  double background_current = 2.0e-9;  ///< blank faradaic current Vb [A]
  double blank_noise_rms = 1.0e-9;     ///< intrinsic blank fluctuation [A]

  /// Extra gain from nanostructuration (multiplies enzyme loading); 1 for
  /// the already-nanostructured Table III calibration, <1 to emulate a bare
  /// electrode in the ablation bench.
  double loading_gain = 1.0;

  std::size_t membrane_grid_nodes = 26;
  double grid_beta = 1.18;
};

/// Analytic first guess for the volumetric vmax [mol m^-3 s^-1] that yields
/// the requested steady-state sensitivity (collection efficiency phi from
/// the membrane geometry; see DESIGN.md section 6). The constructor refines
/// it numerically because at high loading the Thiele modulus shifts H2O2
/// generation toward the membrane/bulk interface and collection drops.
double derive_vmax(const OxidaseProbeParams& p);

/// Concrete oxidase membrane probe (chronoamperometric).
class OxidaseProbe final : public Probe {
 public:
  explicit OxidaseProbe(OxidaseProbeParams params);

  const std::string& name() const override { return params_.name; }
  Technique technique() const override { return Technique::kChronoamperometry; }
  double area() const override { return params_.area; }
  std::vector<std::string> targets() const override { return {params_.target}; }
  void set_bulk_concentration(const std::string& target, double c) override;
  double step(double e, double dt) override;
  void reset() override;
  double blank_current() const override { return params_.background_current; }
  double blank_noise_rms() const override { return params_.blank_noise_rms; }

  /// Degradation hooks: enzyme_activity scales the Michaelis-Menten rate
  /// (denatured enzyme), membrane_transmission scales the substrate
  /// diffusivity (fouling film throttles ingress *and* slows the
  /// response). Identity states are exact no-ops.
  void apply_sensor_state(const fault::SensorState& state) override;

  /// Table I operating potential for this oxidase.
  double applied_potential() const { return params_.applied_potential; }
  /// Calibrated Michaelis-Menten law (for white-box tests and the
  /// panel-level lane batcher, which replicates the probe's reaction loop).
  const MichaelisMenten& kinetics() const { return kinetics_; }
  /// Substrate / peroxide concentration at the electrode [mol/m^3].
  double substrate_at_electrode() const {
    return fields_.at_electrode(kSubstrateLane);
  }
  double peroxide_at_electrode() const {
    return fields_.at_electrode(kPeroxideLane);
  }

  // --- lane-batching hooks ---------------------------------------------
  // OxidaseLaneBatch steps W probes in lockstep through one SoA solve; it
  // reads the calibrated state through these accessors and must reproduce
  // step() bit-for-bit per lane.
  const OxidaseProbeParams& params() const { return params_; }
  const chem::RedoxCouple& peroxide_couple() const { return peroxide_couple_; }
  const chem::Grid1D& grid() const { return fields_.grid(); }
  double bulk_concentration() const { return bulk_concentration_; }
  double enzyme_activity() const { return enzyme_activity_; }

  /// Substrate lane index inside the internal 2-lane batch (the probe's own
  /// step() is the 1-channel case of the batched kernel).
  static constexpr std::size_t kSubstrateLane = 0;
  static constexpr std::size_t kPeroxideLane = 1;

 private:
  /// Steady-state current at bulk concentration c with the current kinetics
  /// (noise-free, used by the constructor's secant calibration).
  double steady_current_at(double c);
  /// Refine vmax so the secant sensitivity at the calibration midpoint
  /// matches params_.sensitivity (no-op when the midpoint is zero).
  void calibrate_loading();

  OxidaseProbeParams params_;
  chem::RedoxCouple peroxide_couple_;
  MichaelisMenten kinetics_;
  /// Substrate (lane 0) + peroxide (lane 1) stepped in lockstep through the
  /// SoA batched solve; the two species share the grid and are
  /// data-independent within a step (sources are computed before either
  /// advances), so every single-probe measurement -- campaign, serve,
  /// cohort -- exercises the batched kernel.
  chem::BatchedDiffusionField fields_;
  double bulk_concentration_ = 0.0;
  double enzyme_activity_ = 1.0;  ///< fault-state activity fraction
};

}  // namespace idp::bio
