/// \file cyp_probe.cpp
/// Cytochrome P450 probe implementation: Michaelis-Menten drug turnover
/// mapped to the two-electron reduction current of Eq. 4.

#include "bio/cyp_probe.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace idp::bio {

namespace {

constexpr int kElectronsPerTurnover = 2;  // Eq. 4: 2 e- per substrate

chem::Grid1D drug_grid(const CypProbeParams& p) {
  return chem::Grid1D::expanding(2.0e-6, 1.15, p.nernst_layer);
}

}  // namespace

double derive_kcat(const CypProbeParams& probe, const CypTargetParams& target) {
  util::require(!probe.targets.empty(), "probe has no targets");
  util::require(target.sensitivity > 0.0 && target.km > 0.0,
                "invalid target calibration");
  const double coverage_k =
      probe.coverage / static_cast<double>(probe.targets.size());
  util::require(coverage_k > 0.0, "coverage must be positive");
  // Kinetic regime, fully reduced film at the peak: the catalytic peak
  // current per area is  i/A = n F kcat Gamma_k C / km  for C << km, so
  //   kcat = S km / (n F Gamma_k).
  return target.sensitivity * target.km /
         (kElectronsPerTurnover * util::kFaraday * coverage_k);
}

CypProbe::CypProbe(CypProbeParams params) : params_(std::move(params)) {
  util::require(params_.area > 0.0, "area must be positive");
  util::require(params_.coverage > 0.0, "coverage must be positive");
  util::require(params_.ks > 0.0, "ks must be positive");
  util::require(!params_.targets.empty(), "CYP probe needs >= 1 target");

  const double coverage_k =
      params_.coverage / static_cast<double>(params_.targets.size());
  states_.reserve(params_.targets.size());
  for (const auto& t : params_.targets) {
    TargetState s{
        .params = t,
        .heme = chem::RedoxCouple{.name = params_.isoform + "/" + t.drug,
                                  .n = 1,
                                  .e0 = t.e0_red,
                                  .k0 = 0.0,  // unused for surface kinetics
                                  .alpha = params_.alpha},
        .kcat = derive_kcat(params_, t),
        .coverage = coverage_k,
        .theta_red = 0.0,
        .drug = chem::DiffusionField(drug_grid(params_), t.d_drug, 0.0),
        .bulk = 0.0,
    };
    s.drug.set_bulk_concentration(0.0);
    states_.push_back(std::move(s));
  }
  calibrate_turnover();
}

double CypProbe::cv_response(std::size_t k, double c) {
  TargetState& target = states_[k];
  // Pristine state: only target k present, at concentration c.
  for (auto& s : states_) {
    s.theta_red = 0.0;
    s.drug.fill(&s == &target ? c : 0.0);
    s.drug.set_bulk_concentration(&s == &target ? c : 0.0);
  }
  const double e0 = target.params.e0_red;
  const double e_start = e0 + 0.30;
  const double e_stop = e0 - 0.30;
  const double rate = 0.020;  // the cell-faithful 20 mV/s
  const double dt = 0.020;    // 0.4 mV per step
  std::vector<double> es, is;
  const auto n_sweep =
      static_cast<std::size_t>((e_start - e_stop) / (rate * dt)) + 2;
  es.reserve(n_sweep);
  is.reserve(n_sweep);
  double e = e_start;
  while (e > e_stop) {
    is.push_back(step(e, dt) - params_.background_current);
    es.push_back(e);
    e -= rate * dt;
  }
  // Pre-wave baseline from the leading 15% of the sweep, extrapolated.
  const std::size_t n_base = std::max<std::size_t>(3, es.size() * 15 / 100);
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n_base; ++i) {
    sx += es[i];
    sy += is[i];
    sxx += es[i] * es[i];
    sxy += es[i] * is[i];
  }
  const double nb = static_cast<double>(n_base);
  const double denom = nb * sxx - sx * sx;
  const double slope = denom != 0.0 ? (nb * sxy - sx * sy) / denom : 0.0;
  const double intercept = (sy - slope * sx) / nb;
  // Mean corrected response around e0 -- the same statistic the dsp layer
  // extracts, so the calibration transfers exactly.
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < es.size(); ++i) {
    if (std::fabs(es[i] - e0) > 0.05) continue;
    const double base = slope * es[i] + intercept;
    sum += -(is[i] - base);  // cathodic = negative current
    ++count;
  }
  // Restore the stored bulks and rest state.
  reset();
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

void CypProbe::calibrate_turnover() {
  for (std::size_t k = 0; k < states_.size(); ++k) {
    TargetState& s = states_[k];
    const double c_cal = s.params.calibration_mid_concentration;
    if (c_cal <= 0.0) continue;
    const double i_target = s.params.sensitivity * params_.area * c_cal;
    // The surface (heme) wave is concentration independent; sensitivity is
    // defined on the blank-subtracted response, so calibrate the increment.
    const double blank = cv_response(k, 0.0);
    auto objective = [&](double kcat_trial) {
      s.kcat = kcat_trial;
      return cv_response(k, c_cal) - blank - i_target;
    };
    double k0 = s.kcat;
    double f0 = objective(k0);
    double k1 = std::clamp(k0 * (f0 < 0.0 ? 2.0 : 0.5), 1e-4, 1e4);
    for (int iter = 0; iter < 10; ++iter) {
      const double f1 = objective(k1);
      if (std::fabs(f1) <= 0.02 * i_target) break;
      const double denom = f1 - f0;
      if (std::fabs(denom) < 1e-30) break;
      // Keep the iterate physical; cap at an (unrealistically fast) 1e4/s
      // so diffusion-limited targets converge to the transport ceiling.
      const double k2 =
          std::clamp(k1 - f1 * (k1 - k0) / denom, 1e-4, 1e4);
      k0 = k1;
      f0 = f1;
      k1 = k2;
      if (k0 == k1) break;
    }
    s.kcat = k1;
  }
}

double CypProbe::kcat(std::size_t k) const {
  util::require(k < states_.size(), "target index out of range");
  return states_[k].kcat;
}

std::vector<std::string> CypProbe::targets() const {
  std::vector<std::string> names;
  names.reserve(states_.size());
  for (const auto& s : states_) names.push_back(s.params.drug);
  return names;
}

void CypProbe::apply_sensor_state(const fault::SensorState& state) {
  util::require(state.enzyme_activity > 0.0 &&
                    state.membrane_transmission > 0.0,
                "sensor state must keep activity and transmission positive");
  enzyme_activity_ = state.enzyme_activity;
  for (auto& s : states_) {
    // set_diffusivity_scale no-ops when the scale is unchanged.
    s.drug.set_diffusivity_scale(state.membrane_transmission);
  }
}

void CypProbe::set_bulk_concentration(const std::string& target, double c) {
  util::require(c >= 0.0, "negative concentration");
  for (auto& s : states_) {
    if (s.params.drug == target) {
      s.bulk = c;
      s.drug.set_bulk_concentration(c);
      return;
    }
  }
  util::require(false, "unknown target '" + target + "' for " + params_.isoform);
}

double CypProbe::step(double e, double dt) {
  double current = params_.background_current;
  for (auto& s : states_) {
    // Surface electron transfer (Laviron): exact exponential update of the
    // reduced fraction keeps the step stable at any dt.
    const chem::SurfaceRates rates = chem::laviron_rates(s.heme, params_.ks, e);
    const double k_sum = rates.k_ox + rates.k_red;
    const double theta_inf = k_sum > 0.0 ? rates.k_red / k_sum : s.theta_red;
    const double theta_new =
        theta_inf + (s.theta_red - theta_inf) * std::exp(-k_sum * dt);
    const double dtheta_dt = (theta_new - s.theta_red) / dt;
    s.theta_red = theta_new;

    // Faradaic surface current: reduction (theta rising) is cathodic (< 0).
    // Denatured hemes (enzyme_activity_ < 1) neither exchange electrons nor
    // turn substrate over; 1.0 multiplies out exactly.
    current -= util::kFaraday * params_.area * s.coverage * dtheta_dt *
               enzyme_activity_;

    // Catalytic turnover (EC'): the reduced film consumes drug arriving at
    // the surface. Linearised Michaelis-Menten folded into the implicit
    // boundary of the drug's diffusion field.
    const double c_surf = s.drug.at_electrode();
    const double k_eff = s.kcat * s.coverage * s.theta_red *
                         enzyme_activity_ / (s.params.km + c_surf);
    s.drug.set_electrode_rate(k_eff);
    const double j_drug = s.drug.step(dt);
    current -= kElectronsPerTurnover * util::kFaraday * params_.area * j_drug;
  }
  return current;
}

void CypProbe::reset() {
  for (auto& s : states_) {
    s.theta_red = 0.0;  // film starts fully oxidised (rest potential > E0)
    s.drug.fill(s.bulk);
    s.drug.set_bulk_concentration(s.bulk);
  }
}

double CypProbe::reduced_fraction(std::size_t k) const {
  util::require(k < states_.size(), "target index out of range");
  return states_[k].theta_red;
}

double CypProbe::reduction_potential(std::size_t k) const {
  util::require(k < states_.size(), "target index out of range");
  return states_[k].params.e0_red;
}

}  // namespace idp::bio
