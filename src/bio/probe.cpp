/// \file probe.cpp
/// Shared probe-abstraction helpers: technique naming and common
/// bio-electrical probe behavior.

#include "bio/probe.hpp"

namespace idp::bio {

std::string to_string(Technique t) {
  switch (t) {
    case Technique::kChronoamperometry: return "chronoamperometry";
    case Technique::kCyclicVoltammetry: return "cyclic voltammetry";
  }
  return "?";
}

}  // namespace idp::bio
