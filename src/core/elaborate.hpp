/// \file elaborate.hpp
/// Elaboration: turn a PlatformCandidate into a runnable virtual platform
/// (calibrated probes + electrodes + front ends + measurement engine) and
/// validate it against the panel requirements by *simulation* -- closing the
/// loop between the paper's design-space discussion and its Table III
/// metrology.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/candidate.hpp"
#include "core/panel.hpp"
#include "dsp/calibration.hpp"
#include "sim/engine.hpp"

namespace idp::plat {

/// Per-target outcome of a virtual validation run.
struct TargetValidation {
  bio::TargetId target = bio::TargetId::kGlucose;
  std::size_t electrode = 0;
  double sensitivity_uA_mM_cm2 = 0.0;  ///< measured, Table III units
  double lod_uM = 0.0;                 ///< measured via Eq. 5
  double linear_lo_mM = 0.0;
  double linear_hi_mM = 0.0;
  bool linear_found = false;
  double r_squared = 0.0;
  bool meets_lod = false;
  bool covers_range = false;
};

/// Whole-panel validation outcome.
struct ValidationReport {
  std::vector<TargetValidation> targets;
  bool all_pass() const;
};

/// Elaboration options.
struct ElaborationOptions {
  std::uint64_t seed = 2026;
  double ca_duration_s = 60.0;       ///< chronoamperometry window
  double sample_rate = 10.0;         ///< ADC rate [Hz]
  int calibration_points = 5;        ///< concentrations per calibration
  int blank_measurements = 6;        ///< Eq. 5 blank repeats
  /// Use the lab-grade bench readout instead of the candidate's integrated
  /// channels (how the paper's Table III numbers were obtained).
  bool lab_grade_readout = false;
  /// Worker threads for probe construction, panel validation and panel
  /// scans: 0 = hardware concurrency, 1 = strictly sequential. Run ids and
  /// per-front-end sample streams are scheduled up front, so results are
  /// bitwise identical at every parallelism level.
  std::size_t parallelism = 0;
};

/// A runnable virtual platform.
class ElaboratedPlatform {
 public:
  ElaboratedPlatform(PlatformCandidate candidate,
                     const ComponentCatalog& catalog,
                     ElaborationOptions options = {});

  const PlatformCandidate& candidate() const { return candidate_; }
  std::size_t electrode_count() const { return probes_.size(); }

  /// Index of the electrode sensing `target` (throws if unassigned).
  std::size_t electrode_of(bio::TargetId target) const;

  /// Run a calibration for one target: `concentrations` in mol/m^3 plus the
  /// configured number of blanks, returning the Eq. 5/6/7-ready curve.
  dsp::CalibrationCurve calibrate(bio::TargetId target,
                                  std::span<const double> concentrations);

  /// Calibrate over the requirement's effective range and judge the result.
  TargetValidation validate_target(const TargetRequirement& requirement);

  /// Validate every panel target.
  ValidationReport validate_panel(const PanelSpec& panel);

  /// One full multiplexed panel scan at the given target concentrations.
  sim::PanelScanResult scan(
      std::span<const std::pair<bio::TargetId, double>> concentrations);

 private:
  struct ElectrodeRuntime {
    chem::Electrode electrode;
    afe::AnalogFrontEnd frontend;
    sim::ChannelProtocol protocol;
  };

  double response_of(bio::TargetId target, std::size_t electrode_index,
                     const sim::Trace& ca, const sim::CvCurve& cv) const;

  /// Number of engine runs one calibration consumes (blanks + points).
  std::size_t calibration_run_count(std::size_t n_points) const;

  /// Calibration with a pre-reserved run-id block (ids base+1 .. base+n);
  /// thread-safe across electrodes because each electrode owns its probe and
  /// front end exclusively.
  dsp::CalibrationCurve calibrate_seeded(bio::TargetId target,
                                         std::span<const double> concentrations,
                                         std::uint64_t run_id_base);

  /// validate_target against a pre-reserved run-id block.
  TargetValidation validate_target_seeded(const TargetRequirement& requirement,
                                          std::uint64_t run_id_base);

  PlatformCandidate candidate_;
  ElaborationOptions options_;
  std::vector<bio::ProbePtr> probes_;
  std::vector<ElectrodeRuntime> runtimes_;
  sim::MeasurementEngine engine_;
  afe::MuxSpec mux_model_;
  double pad_area_m2_ = 0.23e-6;
};

}  // namespace idp::plat
