/// \file panel.hpp
/// Multi-target measurement panels: what the clinician wants measured, with
/// what detection limit, over what concentration range (Section I-A's
/// personalised-medicine motivation).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "bio/library.hpp"

namespace idp::plat {

/// One target the panel must sense.
struct TargetRequirement {
  bio::TargetId target = bio::TargetId::kGlucose;
  /// Required limit of detection [uM]; infinity = take what the probe gives.
  double max_lod_uM = std::numeric_limits<double>::infinity();
  /// Concentration range to cover [mM]; 0/0 = use the library linear range.
  double range_lo_mM = 0.0;
  double range_hi_mM = 0.0;

  /// Effective range: requirement if set, library linear range otherwise.
  double effective_lo_mM() const;
  double effective_hi_mM() const;
  /// Effective LOD requirement [uM]: the explicit requirement when finite,
  /// otherwise the library (paper) LOD when reported, otherwise infinity.
  double effective_lod_uM() const;
};

/// A full panel specification plus system-level budgets.
struct PanelSpec {
  std::string name = "panel";
  std::vector<TargetRequirement> targets;
  /// Molecules present in the sample matrix but not sensed (e.g. dopamine in
  /// neural fluid): they constrain chamber sharing.
  std::vector<bio::TargetId> matrix_interferents;
  double max_area_mm2 = std::numeric_limits<double>::infinity();
  double max_power_uw = std::numeric_limits<double>::infinity();
  double max_panel_time_s = std::numeric_limits<double>::infinity();
};

/// The paper's Section III example panel: glucose, lactate, glutamate,
/// benzphetamine + aminopyrine (one CYP2B4 electrode) and cholesterol --
/// five working electrodes, six targets (Fig. 4).
PanelSpec fig4_panel();

}  // namespace idp::plat
