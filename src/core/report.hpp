/// \file report.hpp
/// Console reporting of exploration and validation results, in the shape of
/// the paper's tables.
#pragma once

#include <iosfwd>

#include "core/elaborate.hpp"
#include "core/explorer.hpp"

namespace idp::plat {

/// Print every evaluated candidate with cost, feasibility and Pareto mark.
void print_exploration(std::ostream& os, const ExplorationResult& result);

/// Print only the violations of one evaluation (for diagnosing rejects).
void print_violations(std::ostream& os, const CandidateEvaluation& eval);

/// Print a validation report side by side with the paper's Table III rows
/// where available.
void print_validation(std::ostream& os, const ValidationReport& report);

}  // namespace idp::plat
