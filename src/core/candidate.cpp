/// \file candidate.cpp
/// Platform-candidate implementation: derived counts (chambers, working
/// electrodes, readout chains) and human-readable naming.

#include "core/candidate.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace idp::plat {

std::string to_string(StructureKind s) {
  switch (s) {
    case StructureKind::kSingleChamberSharedRef:
      return "single chamber, shared RE/CE";
    case StructureKind::kChamberedArray:
      return "chambered array";
  }
  return "?";
}

std::string to_string(ReadoutSharing s) {
  switch (s) {
    case ReadoutSharing::kDedicatedPerElectrode: return "dedicated";
    case ReadoutSharing::kMuxedPerClass: return "muxed";
  }
  return "?";
}

std::size_t PlatformCandidate::chamber_count() const {
  std::size_t n = 0;
  for (const auto& e : electrodes) n = std::max(n, e.chamber + 1);
  return n;
}

std::size_t PlatformCandidate::working_electrode_count() const {
  return electrodes.size() + (cds ? chamber_count() : 0);
}

std::size_t PlatformCandidate::total_electrode_count() const {
  return working_electrode_count() + 2 * chamber_count();
}

std::vector<ReadoutClass> PlatformCandidate::readout_classes() const {
  std::set<ReadoutClass> classes;
  for (const auto& e : electrodes) classes.insert(e.readout);
  return {classes.begin(), classes.end()};
}

std::string PlatformCandidate::summary() const {
  std::ostringstream ss;
  ss << (structure == StructureKind::kSingleChamberSharedRef ? "1-chamber"
                                                             : "chambered")
     << "/" << electrodes.size() << "WE"
     << "/" << to_string(sharing);
  if (chopper) ss << "+chop";
  if (cds) ss << "+cds";
  return ss.str();
}

}  // namespace idp::plat
