/// \file candidate.hpp
/// A point in the platform design space: sensor structure (Section II),
/// probe-to-electrode assignment, readout sharing strategy and noise
/// countermeasures. The explorer enumerates these; the constraint checker
/// and cost model evaluate them; elaboration turns the chosen one into a
/// runnable virtual platform.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bio/library.hpp"
#include "core/catalog.hpp"

namespace idp::plat {

/// Physical arrangement of the electrochemical cells (Section II).
enum class StructureKind {
  kSingleChamberSharedRef,  ///< n WEs + shared RE/CE in one chamber (Fig. 4)
  kChamberedArray,          ///< one isolated 3-electrode cell per electrode
};

std::string to_string(StructureKind s);

/// How readout hardware is allocated (Section II-A resource sharing).
enum class ReadoutSharing {
  kDedicatedPerElectrode,  ///< one readout per WE, parallel measurement
  kMuxedPerClass,          ///< one readout per grade, WEs time-multiplexed
};

std::string to_string(ReadoutSharing s);

/// One working electrode: which targets it senses (two for dual-target CYP
/// films), with which technique, through which readout grade.
struct WorkingElectrodePlan {
  std::vector<bio::TargetId> targets;
  bio::Technique technique = bio::Technique::kChronoamperometry;
  ReadoutClass readout = ReadoutClass::kOxidaseGrade;
  std::size_t chamber = 0;
  /// Nanostructure the electrode surface (CNT): multiplies the sensitivity
  /// of planar-baseline probes by the catalog's nanostructure gain.
  bool nanostructured = false;
};

/// A complete platform design candidate.
struct PlatformCandidate {
  StructureKind structure = StructureKind::kSingleChamberSharedRef;
  std::vector<WorkingElectrodePlan> electrodes;
  ReadoutSharing sharing = ReadoutSharing::kMuxedPerClass;
  bool chopper = false;
  bool cds = false;  ///< adds one blank WE per chamber

  std::size_t chamber_count() const;
  /// Working electrodes including CDS blanks.
  std::size_t working_electrode_count() const;
  /// Total pads: WEs + blanks + (RE + CE) per chamber -- the paper's "n+2".
  std::size_t total_electrode_count() const;
  /// Distinct readout classes used.
  std::vector<ReadoutClass> readout_classes() const;
  /// Short human-readable identifier for reports.
  std::string summary() const;
};

}  // namespace idp::plat
