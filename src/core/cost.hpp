/// \file cost.hpp
/// Cost model for platform candidates: silicon area, power, panel
/// measurement time and component count -- the "most cost-effective
/// solution (small, low energy consumption, low-cost)" axes of Section I.
#pragma once

#include "core/candidate.hpp"
#include "core/panel.hpp"

namespace idp::plat {

/// Aggregate cost of one candidate.
struct CostEstimate {
  double area_mm2 = 0.0;
  double power_uw = 0.0;
  double panel_time_s = 0.0;  ///< wall-clock to read the whole panel once
  int component_count = 0;    ///< electronic blocks + electrodes

  /// Weighted scalar score (used for ranking after Pareto filtering);
  /// each axis is divided by the provided normalisation before weighting.
  double weighted(double w_area, double w_power, double w_time,
                  double norm_area, double norm_power, double norm_time) const;
};

/// True if a dominates b (<= on all axes, < on at least one).
bool dominates(const CostEstimate& a, const CostEstimate& b);

/// Measurement duration of one working electrode's protocol [s]:
/// chronoamperometry runs a fixed 60 s window (~2x the Fig. 3 t90);
/// CV takes 2 * window / scan-rate at the cell-limited 20 mV/s.
double measurement_duration(const WorkingElectrodePlan& plan,
                            const ComponentCatalog& catalog);

/// Estimate the full cost of a candidate.
CostEstimate estimate_cost(const PlatformCandidate& candidate,
                           const PanelSpec& panel,
                           const ComponentCatalog& catalog);

}  // namespace idp::plat
