/// \file catalog.cpp
/// Component catalog implementation: the standard parametrized component
/// set and lookups by readout class and channel count.

#include "core/catalog.hpp"

#include "util/error.hpp"

namespace idp::plat {

std::string to_string(ReadoutClass c) {
  switch (c) {
    case ReadoutClass::kOxidaseGrade: return "oxidase-grade (10uA/10nA)";
    case ReadoutClass::kCypGrade: return "CYP-grade (100uA/100nA)";
    case ReadoutClass::kLabGrade: return "lab-grade (pA)";
  }
  return "?";
}

ComponentCatalog ComponentCatalog::standard() {
  ComponentCatalog cat;

  {
    ReadoutSpec r;
    r.cls = ReadoutClass::kOxidaseGrade;
    r.name = "TIA-OX";
    r.full_scale_a = 10e-6;
    r.resolution_a = 10e-9;  // Section II-C requirement
    r.area_mm2 = 0.05;
    r.power_uw = 40.0;
    r.tia = afe::oxidase_class_tia();
    r.adc = afe::AdcSpec{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                         .sample_rate = 10.0};
    cat.readouts_.push_back(r);
  }
  {
    ReadoutSpec r;
    r.cls = ReadoutClass::kCypGrade;
    r.name = "TIA-CYP";
    r.full_scale_a = 100e-6;
    r.resolution_a = 100e-9;
    r.area_mm2 = 0.04;
    r.power_uw = 60.0;
    r.tia = afe::cyp_class_tia();
    r.adc = afe::AdcSpec{.bits = 12, .v_low = -1.0, .v_high = 1.0,
                         .sample_rate = 10.0};
    cat.readouts_.push_back(r);
  }
  {
    ReadoutSpec r;
    r.cls = ReadoutClass::kLabGrade;
    r.name = "LAB";
    r.full_scale_a = 1e-6;
    r.resolution_a = 10e-12;
    r.area_mm2 = 0.0;  // bench instrument, not on chip
    r.power_uw = 0.0;
    r.tia = afe::lab_grade_tia();
    r.adc = afe::AdcSpec{.bits = 16, .v_low = -10.0, .v_high = 10.0,
                         .sample_rate = 10.0};
    cat.readouts_.push_back(r);
  }

  cat.fixed_dac_ = VoltageGeneratorSpec{.sweep_capable = false,
                                        .min_v = -1.0,
                                        .max_v = +1.0,
                                        .max_scan_rate = 0.0,
                                        .area_mm2 = 0.02,
                                        .power_uw = 15.0};
  cat.sweep_gen_ = VoltageGeneratorSpec{.sweep_capable = true,
                                        .min_v = -1.0,
                                        .max_v = +1.0,
                                        .max_scan_rate = 0.5,
                                        .area_mm2 = 0.06,
                                        .power_uw = 35.0};

  for (std::size_t n : {4u, 8u, 16u}) {
    MuxCatalogEntry m;
    m.channels = n;
    m.area_mm2 = 0.005 * static_cast<double>(n);
    m.power_uw = 2.0 * static_cast<double>(n);
    m.model = afe::MuxSpec{.channels = n,
                           .r_on = 100.0,
                           .settle_time = 5.0e-3,
                           .charge_injection = 1.0e-12,
                           .injection_tau = 1.0e-3,
                           .crosstalk = 1.0e-4};
    cat.muxes_.push_back(m);
  }
  return cat;
}

const ReadoutSpec& ComponentCatalog::readout(ReadoutClass cls) const {
  for (const auto& r : readouts_) {
    if (r.cls == cls) return r;
  }
  throw util::Error("readout class not in catalog");
}

const MuxCatalogEntry& ComponentCatalog::mux_for(std::size_t channels) const {
  for (const auto& m : muxes_) {
    if (m.channels >= channels) return m;
  }
  throw util::Error("no mux with " + std::to_string(channels) + " channels");
}

std::size_t ComponentCatalog::max_mux_channels() const {
  std::size_t best = 0;
  for (const auto& m : muxes_) best = std::max(best, m.channels);
  return best;
}

}  // namespace idp::plat
