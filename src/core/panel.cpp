/// \file panel.cpp
/// Panel spec implementation: per-target requirement ranges and the
/// ready-made panels the paper discusses (e.g. the Fig. 4 scan).

#include "core/panel.hpp"

namespace idp::plat {

double TargetRequirement::effective_lo_mM() const {
  if (range_lo_mM > 0.0 || range_hi_mM > 0.0) return range_lo_mM;
  return bio::spec(target).linear_lo_mM;
}

double TargetRequirement::effective_hi_mM() const {
  if (range_lo_mM > 0.0 || range_hi_mM > 0.0) return range_hi_mM;
  return bio::spec(target).linear_hi_mM;
}

double TargetRequirement::effective_lod_uM() const {
  if (max_lod_uM < std::numeric_limits<double>::infinity()) return max_lod_uM;
  const double paper_lod = bio::spec(target).lod_uM;
  return paper_lod > 0.0 ? paper_lod
                         : std::numeric_limits<double>::infinity();
}

PanelSpec fig4_panel() {
  PanelSpec p;
  p.name = "fig4-metabolic-panel";
  p.targets = {
      TargetRequirement{.target = bio::TargetId::kGlucose},
      TargetRequirement{.target = bio::TargetId::kLactate},
      TargetRequirement{.target = bio::TargetId::kGlutamate},
      TargetRequirement{.target = bio::TargetId::kBenzphetamine},
      TargetRequirement{.target = bio::TargetId::kAminopyrine},
      TargetRequirement{.target = bio::TargetId::kCholesterol},
  };
  return p;
}

}  // namespace idp::plat
