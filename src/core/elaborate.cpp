/// \file elaborate.cpp
/// Elaboration implementation: assemble a runnable virtual platform from
/// a candidate and validate it against the panel by simulation.

#include "core/elaborate.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/constraints.hpp"
#include "dsp/peaks.hpp"
#include "sim/batch.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace idp::plat {

bool ValidationReport::all_pass() const {
  return std::all_of(targets.begin(), targets.end(), [](const auto& t) {
    return t.meets_lod && t.covers_range;
  });
}

namespace {

chem::Nanostructure nanostructure_for(const WorkingElectrodePlan& plan) {
  if (plan.nanostructured) return chem::Nanostructure::kCarbonNanotube;
  // Probes whose Table III calibration already assumed CNT keep it.
  for (bio::TargetId t : plan.targets) {
    if (bio::spec(t).nanostructured_baseline &&
        bio::spec(t).family != bio::ProbeFamily::kDirectOxidation) {
      return chem::Nanostructure::kCarbonNanotube;
    }
  }
  return chem::Nanostructure::kNone;
}

double ca_potential_for(bio::TargetId id) {
  const auto& s = bio::spec(id);
  // Direct oxidizers are driven 250 mV past their formal potential.
  return s.family == bio::ProbeFamily::kDirectOxidation
             ? s.operating_potential + 0.25
             : s.operating_potential;
}

}  // namespace

ElaboratedPlatform::ElaboratedPlatform(PlatformCandidate candidate,
                                       const ComponentCatalog& catalog,
                                       ElaborationOptions options)
    : candidate_(std::move(candidate)), options_(options) {
  util::require(!candidate_.electrodes.empty(), "candidate has no electrodes");
  pad_area_m2_ = catalog.electrode_pad_area_mm2() * 1e-6;

  sim::EngineConfig engine_config;
  engine_config.seed = options_.seed;
  engine_ = sim::MeasurementEngine(engine_config);

  mux_model_ =
      catalog.mux_for(std::max<std::size_t>(candidate_.electrodes.size(), 1))
          .model;

  // Probe construction runs the expensive secant calibration sweeps; each
  // electrode's probe is independent, so build them concurrently into
  // pre-assigned slots (bitwise identical to sequential construction).
  probes_.resize(candidate_.electrodes.size());
  const sim::BatchRunner builder(options_.parallelism);
  builder.run(candidate_.electrodes.size(), [&](std::size_t i) {
    const WorkingElectrodePlan& plan = candidate_.electrodes[i];
    util::require(!plan.targets.empty(), "electrode plan without targets");
    const double gain =
        plan_sensitivity_gain(plan, plan.targets.front(), catalog);
    if (plan.targets.size() > 1 ||
        bio::spec(plan.targets.front()).family ==
            bio::ProbeFamily::kCytochromeP450) {
      probes_[i] = bio::make_cyp_probe(plan.targets, pad_area_m2_, gain);
    } else {
      probes_[i] = bio::make_probe(plan.targets.front(), pad_area_m2_, gain);
    }
  });

  for (std::size_t i = 0; i < candidate_.electrodes.size(); ++i) {
    const WorkingElectrodePlan& plan = candidate_.electrodes[i];

    // --- physical electrode ------------------------------------------------
    const chem::Electrode electrode(
        chem::ElectrodeRole::kWorking, chem::ElectrodeMaterial::kGold,
        chem::ElectrodeGeometry{pad_area_m2_}, nanostructure_for(plan));

    // --- front end -----------------------------------------------------------
    const ReadoutSpec& readout =
        options_.lab_grade_readout ? catalog.readout(ReadoutClass::kLabGrade)
                                   : catalog.readout(plan.readout);
    afe::AfeConfig fe_config;
    fe_config.tia = readout.tia;
    fe_config.adc = readout.adc;
    fe_config.adc.sample_rate = options_.sample_rate;
    fe_config.reduction.chopper = candidate_.chopper;
    fe_config.reduction.cds = candidate_.cds;
    fe_config.seed = options_.seed + 17 * (i + 1);

    // --- protocol ---------------------------------------------------------------
    sim::ChannelProtocol protocol;
    if (plan.technique == bio::Technique::kChronoamperometry) {
      sim::ChronoamperometryProtocol ca;
      ca.potential = ca_potential_for(plan.targets.front());
      ca.duration = options_.ca_duration_s;
      ca.sample_rate = options_.sample_rate;
      protocol = ca;
    } else {
      const SweepWindow w = sweep_window_for(plan);
      sim::CyclicVoltammetryProtocol cv;
      cv.e_start = w.e_start;
      cv.e_vertex = w.e_vertex;
      cv.scan_rate = catalog.cell_scan_rate_limit();
      cv.cycles = 1;
      cv.sample_rate = options_.sample_rate;
      protocol = cv;
    }

    runtimes_.push_back(ElectrodeRuntime{
        electrode, afe::AnalogFrontEnd(fe_config), protocol});
  }
}

std::size_t ElaboratedPlatform::electrode_of(bio::TargetId target) const {
  const std::string name = bio::to_string(target);
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    for (const auto& t : probes_[i]->targets()) {
      if (t == name) return i;
    }
  }
  throw std::invalid_argument("target " + name + " not on this platform");
}

double ElaboratedPlatform::response_of(bio::TargetId target,
                                       std::size_t electrode_index,
                                       const sim::Trace& ca,
                                       const sim::CvCurve& cv) const {
  (void)electrode_index;
  if (!ca.empty()) {
    const double t_end = ca.time().back();
    return ca.mean_in_window(0.8 * t_end, t_end);
  }
  return dsp::reduction_response_at(cv, bio::spec(target).operating_potential,
                                    0.05);
}

std::size_t ElaboratedPlatform::calibration_run_count(
    std::size_t n_points) const {
  return static_cast<std::size_t>(std::max(options_.blank_measurements, 0)) +
         n_points;
}

dsp::CalibrationCurve ElaboratedPlatform::calibrate(
    bio::TargetId target, std::span<const double> concentrations) {
  return calibrate_seeded(
      target, concentrations,
      engine_.reserve_run_ids(calibration_run_count(concentrations.size())));
}

dsp::CalibrationCurve ElaboratedPlatform::calibrate_seeded(
    bio::TargetId target, std::span<const double> concentrations,
    std::uint64_t run_id_base) {
  const std::size_t e = electrode_of(target);
  bio::Probe& probe = *probes_[e];
  ElectrodeRuntime& rt = runtimes_[e];
  const std::string name = bio::to_string(target);

  // Zero every co-target so calibrations are independent.
  for (const auto& t : probe.targets()) probe.set_bulk_concentration(t, 0.0);

  std::uint64_t next_id = run_id_base;
  auto run_once = [&]() -> double {
    const std::uint64_t run_id = ++next_id;
    const sim::Channel channel{&probe, &rt.electrode};
    if (std::holds_alternative<sim::ChronoamperometryProtocol>(rt.protocol)) {
      const auto& p = std::get<sim::ChronoamperometryProtocol>(rt.protocol);
      const sim::Trace trace = engine_.run_chronoamperometry_seeded(
          run_id, channel, p, rt.frontend);
      return response_of(target, e, trace, sim::CvCurve{});
    }
    const auto& p = std::get<sim::CyclicVoltammetryProtocol>(rt.protocol);
    const sim::CvCurve curve = engine_.run_cyclic_voltammetry_seeded(
        run_id, channel, p, rt.frontend);
    return response_of(target, e, sim::Trace{}, curve);
  };

  dsp::CalibrationCurve curve;
  probe.set_bulk_concentration(name, 0.0);
  for (int b = 0; b < options_.blank_measurements; ++b) {
    curve.add_blank(run_once());
  }
  for (double c : concentrations) {
    probe.set_bulk_concentration(name, c);
    curve.add_point(c, run_once());
  }
  probe.set_bulk_concentration(name, 0.0);
  return curve;
}

TargetValidation ElaboratedPlatform::validate_target(
    const TargetRequirement& requirement) {
  const std::size_t n_points =
      static_cast<std::size_t>(std::max(options_.calibration_points, 3));
  return validate_target_seeded(
      requirement, engine_.reserve_run_ids(calibration_run_count(n_points)));
}

TargetValidation ElaboratedPlatform::validate_target_seeded(
    const TargetRequirement& requirement, std::uint64_t run_id_base) {
  TargetValidation v;
  v.target = requirement.target;
  v.electrode = electrode_of(requirement.target);

  const double lo = requirement.effective_lo_mM();
  const double hi = requirement.effective_hi_mM();
  util::require(hi > lo && hi > 0.0, "degenerate requirement range");

  std::vector<double> concentrations;
  const int n = std::max(options_.calibration_points, 3);
  for (int i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    concentrations.push_back(lo + f * (hi - lo));  // mM == mol/m^3
  }

  dsp::CalibrationCurve curve =
      calibrate_seeded(requirement.target, concentrations, run_id_base);
  // Noise-aware linearity tolerance: with sigma_b of blank noise on every
  // point, residuals below ~2.5 sigma are indistinguishable from noise.
  double tolerance = 0.07;
  if (curve.blank_count() >= 2) {
    const double span =
        util::max_value(curve.responses()) - util::min_value(curve.responses());
    if (span > 0.0) {
      tolerance = std::clamp(2.5 * curve.blank_sigma() / span, 0.07, 0.20);
    }
  }
  const dsp::LinearRange range = curve.linear_range(tolerance);
  const util::LinearFit fit = range.found ? range.fit : curve.fit();

  v.sensitivity_uA_mM_cm2 =
      util::sensitivity_to_uA_per_mM_cm2(fit.slope / pad_area_m2_);
  v.lod_uM = util::concentration_to_uM(curve.lod_concentration(0.07));
  v.linear_found = range.found;
  if (range.found) {
    v.linear_lo_mM = range.c_low;
    v.linear_hi_mM = range.c_high;
  }
  v.r_squared = fit.r_squared;

  // Tolerate 50% slack on the LOD: it is a noise-derived statistic estimated
  // from a handful of blanks.
  v.meets_lod = v.lod_uM <= 1.5 * requirement.effective_lod_uM();
  v.covers_range = range.found && range.c_low <= lo * 1.05 + 1e-12 &&
                   range.c_high >= hi * 0.95;
  return v;
}

ValidationReport ElaboratedPlatform::validate_panel(const PanelSpec& panel) {
  const std::size_t n = panel.targets.size();
  ValidationReport report;
  report.targets.resize(n);

  // Reserve run-id blocks in panel order -- exactly the ids the sequential
  // loop would consume -- then group targets by electrode: runs on one
  // electrode share its probe and front-end sample stream and stay
  // sequential in panel order, while distinct electrodes are independent
  // and validate concurrently.
  const std::size_t n_points =
      static_cast<std::size_t>(std::max(options_.calibration_points, 3));
  std::vector<std::uint64_t> bases(n);
  for (std::size_t i = 0; i < n; ++i) {
    bases[i] = engine_.reserve_run_ids(calibration_run_count(n_points));
  }
  std::vector<std::vector<std::size_t>> groups;
  std::map<std::size_t, std::size_t> group_of_electrode;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t e = electrode_of(panel.targets[i].target);
    const auto [it, inserted] = group_of_electrode.try_emplace(e, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  const sim::BatchRunner runner(options_.parallelism);
  runner.run(groups.size(), [&](std::size_t g) {
    for (std::size_t i : groups[g]) {
      report.targets[i] = validate_target_seeded(panel.targets[i], bases[i]);
    }
  });
  return report;
}

sim::PanelScanResult ElaboratedPlatform::scan(
    std::span<const std::pair<bio::TargetId, double>> concentrations) {
  for (const auto& [target, c] : concentrations) {
    const std::size_t e = electrode_of(target);
    probes_[e]->set_bulk_concentration(bio::to_string(target), c);
  }
  std::vector<sim::Channel> channels;
  std::vector<sim::ChannelProtocol> protocols;
  std::vector<afe::AnalogFrontEnd*> frontends;
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    channels.push_back(sim::Channel{probes_[i].get(), &runtimes_[i].electrode});
    protocols.push_back(runtimes_[i].protocol);
    frontends.push_back(&runtimes_[i].frontend);
  }
  afe::AnalogMux mux(mux_model_);
  return engine_.run_panel(channels, protocols, frontends, mux,
                           options_.parallelism);
}

}  // namespace idp::plat
