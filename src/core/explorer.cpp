/// \file explorer.cpp
/// Design-space explorer implementation: candidate enumeration,
/// design-rule filtering, cost estimation and Pareto-front extraction.

#include "core/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "sim/batch.hpp"
#include "util/error.hpp"

namespace idp::plat {

namespace {

bio::Technique technique_for(bio::TargetId id) {
  return bio::spec(id).family == bio::ProbeFamily::kCytochromeP450
             ? bio::Technique::kCyclicVoltammetry
             : bio::Technique::kChronoamperometry;
}

ReadoutClass family_readout(bio::TargetId id) {
  switch (bio::spec(id).family) {
    case bio::ProbeFamily::kCytochromeP450: return ReadoutClass::kCypGrade;
    case bio::ProbeFamily::kOxidase:
    case bio::ProbeFamily::kDirectOxidation:
      return ReadoutClass::kOxidaseGrade;
  }
  return ReadoutClass::kOxidaseGrade;
}

/// Grouping of panel targets onto electrodes.
using Grouping = std::vector<std::vector<bio::TargetId>>;

/// Merged grouping: targets sharing a probe isoform live on one electrode.
Grouping merged_grouping(const PanelSpec& panel) {
  Grouping groups;
  std::map<std::string, std::size_t> by_probe;
  for (const auto& r : panel.targets) {
    const std::string& probe = bio::spec(r.target).probe_name;
    const auto it = by_probe.find(probe);
    if (it == by_probe.end()) {
      by_probe.emplace(probe, groups.size());
      groups.push_back({r.target});
    } else {
      groups[it->second].push_back(r.target);
    }
  }
  return groups;
}

/// Split grouping: one electrode per target.
Grouping split_grouping(const PanelSpec& panel) {
  Grouping groups;
  for (const auto& r : panel.targets) groups.push_back({r.target});
  return groups;
}

/// Readout policy when building plans.
enum class ReadoutPolicy { kByFamily, kBestFit };

/// Pick the readout class for a plan under a policy: kBestFit prefers the
/// finest-resolution integrated grade whose full scale still covers the
/// expected maximum current.
ReadoutClass pick_readout(const std::vector<bio::TargetId>& targets,
                          bool nanostructured, ReadoutPolicy policy,
                          const PanelSpec& panel,
                          const ComponentCatalog& catalog) {
  if (policy == ReadoutPolicy::kByFamily) return family_readout(targets.front());

  const double pad = catalog.electrode_pad_area_mm2() * 1e-6;
  double i_max = 0.0;
  for (bio::TargetId t : targets) {
    double hi = bio::spec(t).linear_hi_mM;
    for (const auto& r : panel.targets) {
      if (r.target == t) hi = r.effective_hi_mM();
    }
    double gain = 1.0;
    if (nanostructured && !bio::spec(t).nanostructured_baseline) {
      gain = catalog.nanostructure_gain();
    }
    i_max = std::max(i_max, gain * expected_current(t, hi, pad));
  }
  for (ReadoutClass cls :
       {ReadoutClass::kOxidaseGrade, ReadoutClass::kCypGrade}) {
    if (i_max <= 0.9 * catalog.readout(cls).full_scale_a) return cls;
  }
  return ReadoutClass::kCypGrade;
}

/// Key for structural de-duplication of candidates.
std::string candidate_key(const PlatformCandidate& c) {
  std::ostringstream ss;
  ss << static_cast<int>(c.structure) << '|' << static_cast<int>(c.sharing)
     << '|' << c.chopper << c.cds;
  for (const auto& e : c.electrodes) {
    ss << '[';
    for (bio::TargetId t : e.targets) ss << static_cast<int>(t) << ',';
    ss << static_cast<int>(e.readout) << ';' << e.nanostructured << ';'
       << e.chamber << ']';
  }
  return ss.str();
}

}  // namespace

std::size_t ExplorationResult::feasible_count() const {
  std::size_t n = 0;
  for (const auto& e : evaluations) {
    if (e.feasible()) ++n;
  }
  return n;
}

ExplorationResult explore(const PanelSpec& panel,
                          const ComponentCatalog& catalog,
                          const ExplorerOptions& options) {
  util::require(!panel.targets.empty(), "panel has no targets");

  std::vector<Grouping> groupings{split_grouping(panel)};
  if (options.allow_merged_films) {
    Grouping merged = merged_grouping(panel);
    if (merged.size() != groupings.front().size()) {
      groupings.push_back(std::move(merged));
    }
  }

  const std::vector<bool> bool_space{false, true};
  ExplorationResult result;
  std::set<std::string> seen;
  std::vector<PlatformCandidate> candidates;

  for (const auto& grouping : groupings) {
    for (StructureKind structure : {StructureKind::kSingleChamberSharedRef,
                                    StructureKind::kChamberedArray}) {
      for (ReadoutSharing sharing : {ReadoutSharing::kMuxedPerClass,
                                     ReadoutSharing::kDedicatedPerElectrode}) {
        for (ReadoutPolicy policy :
             {ReadoutPolicy::kByFamily, ReadoutPolicy::kBestFit}) {
          for (bool nano : bool_space) {
            if (nano && !options.allow_nanostructuring) continue;
            for (bool chop : bool_space) {
              if (chop && !options.allow_chopper) continue;
              for (bool cds : bool_space) {
                if (cds && !options.allow_cds) continue;

                PlatformCandidate cand;
                cand.structure = structure;
                cand.sharing = sharing;
                cand.chopper = chop;
                cand.cds = cds;
                for (std::size_t g = 0; g < grouping.size(); ++g) {
                  WorkingElectrodePlan plan;
                  plan.targets = grouping[g];
                  plan.technique = technique_for(grouping[g].front());
                  bool planar_baseline = false;
                  for (bio::TargetId t : grouping[g]) {
                    planar_baseline |= !bio::spec(t).nanostructured_baseline;
                  }
                  plan.nanostructured = nano && planar_baseline;
                  plan.readout = pick_readout(grouping[g], plan.nanostructured,
                                              policy, panel, catalog);
                  plan.chamber =
                      structure == StructureKind::kChamberedArray ? g : 0;
                  cand.electrodes.push_back(std::move(plan));
                }

                if (!seen.insert(candidate_key(cand)).second) continue;
                candidates.push_back(std::move(cand));
              }
            }
          }
        }
      }
    }
  }

  // Evaluate the de-duplicated candidates. Design-rule checks and cost
  // estimation are pure functions of (candidate, panel, catalog), so each
  // candidate evaluates into its pre-assigned slot, concurrently when the
  // parallelism knob allows -- the result order stays the enumeration order.
  result.evaluations.resize(candidates.size());
  const sim::BatchRunner runner(options.parallelism);
  runner.run(candidates.size(), [&](std::size_t i) {
    CandidateEvaluation eval;
    eval.violations = check_candidate(candidates[i], panel, catalog);
    eval.cost = estimate_cost(candidates[i], panel, catalog);
    if (eval.cost.area_mm2 > panel.max_area_mm2) {
      eval.violations.push_back(
          {ViolationKind::kAreaBudget,
           "area " + std::to_string(eval.cost.area_mm2) + " mm^2 over budget"});
    }
    if (eval.cost.power_uw > panel.max_power_uw) {
      eval.violations.push_back(
          {ViolationKind::kPowerBudget,
           "power " + std::to_string(eval.cost.power_uw) + " uW over budget"});
    }
    if (eval.cost.panel_time_s > panel.max_panel_time_s) {
      eval.violations.push_back(
          {ViolationKind::kTimeBudget,
           "panel time " + std::to_string(eval.cost.panel_time_s) +
               " s over budget"});
    }
    eval.candidate = std::move(candidates[i]);
    result.evaluations[i] = std::move(eval);
  });

  // Pareto front over (area, power, time) among feasible candidates.
  for (std::size_t i = 0; i < result.evaluations.size(); ++i) {
    if (!result.evaluations[i].feasible()) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < result.evaluations.size(); ++j) {
      if (i == j || !result.evaluations[j].feasible()) continue;
      if (dominates(result.evaluations[j].cost, result.evaluations[i].cost)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.pareto.push_back(i);
  }

  // Weighted ranking over the Pareto front, normalised by the front minima.
  if (!result.pareto.empty()) {
    double min_area = 1e300, min_power = 1e300, min_time = 1e300;
    for (std::size_t idx : result.pareto) {
      min_area = std::min(min_area, result.evaluations[idx].cost.area_mm2);
      min_power = std::min(min_power, result.evaluations[idx].cost.power_uw);
      min_time = std::min(min_time, result.evaluations[idx].cost.panel_time_s);
    }
    double best_score = 1e300;
    for (std::size_t idx : result.pareto) {
      const double s = result.evaluations[idx].cost.weighted(
          options.weight_area, options.weight_power, options.weight_time,
          std::max(min_area, 1e-9), std::max(min_power, 1e-9),
          std::max(min_time, 1e-9));
      if (s < best_score) {
        best_score = s;
        result.best = idx;
      }
    }
  }
  return result;
}

PlatformCandidate make_fig4_candidate(const ComponentCatalog& catalog) {
  (void)catalog;
  PlatformCandidate cand;
  cand.structure = StructureKind::kSingleChamberSharedRef;
  cand.sharing = ReadoutSharing::kMuxedPerClass;

  auto ca = [](bio::TargetId t) {
    WorkingElectrodePlan p;
    p.targets = {t};
    p.technique = bio::Technique::kChronoamperometry;
    p.readout = ReadoutClass::kOxidaseGrade;
    return p;
  };
  cand.electrodes.push_back(ca(bio::TargetId::kGlucose));
  cand.electrodes.push_back(ca(bio::TargetId::kLactate));
  cand.electrodes.push_back(ca(bio::TargetId::kGlutamate));

  WorkingElectrodePlan cyp2b4;
  cyp2b4.targets = {bio::TargetId::kBenzphetamine, bio::TargetId::kAminopyrine};
  cyp2b4.technique = bio::Technique::kCyclicVoltammetry;
  cyp2b4.readout = ReadoutClass::kOxidaseGrade;  // small catalytic currents
  cyp2b4.nanostructured = true;                  // Section III enhancement
  cand.electrodes.push_back(cyp2b4);

  WorkingElectrodePlan cyp11a1;
  cyp11a1.targets = {bio::TargetId::kCholesterol};
  cyp11a1.technique = bio::Technique::kCyclicVoltammetry;
  cyp11a1.readout = ReadoutClass::kOxidaseGrade;
  cand.electrodes.push_back(cyp11a1);

  return cand;
}

}  // namespace idp::plat
