/// \file cost.cpp
/// Cost model implementation: silicon area, power, panel measurement
/// time and component count roll-ups for candidate ranking.

#include "core/cost.hpp"

#include <algorithm>
#include <cmath>

#include "core/constraints.hpp"
#include "util/error.hpp"

namespace idp::plat {

double CostEstimate::weighted(double w_area, double w_power, double w_time,
                              double norm_area, double norm_power,
                              double norm_time) const {
  util::require(norm_area > 0.0 && norm_power > 0.0 && norm_time > 0.0,
                "normalisations must be positive");
  return w_area * area_mm2 / norm_area + w_power * power_uw / norm_power +
         w_time * panel_time_s / norm_time;
}

bool dominates(const CostEstimate& a, const CostEstimate& b) {
  const bool le = a.area_mm2 <= b.area_mm2 && a.power_uw <= b.power_uw &&
                  a.panel_time_s <= b.panel_time_s;
  const bool lt = a.area_mm2 < b.area_mm2 || a.power_uw < b.power_uw ||
                  a.panel_time_s < b.panel_time_s;
  return le && lt;
}

double measurement_duration(const WorkingElectrodePlan& plan,
                            const ComponentCatalog& catalog) {
  if (plan.technique == bio::Technique::kChronoamperometry) {
    return 60.0;  // ~2x the Fig. 3 t90, reaching the steady plateau
  }
  const SweepWindow w = sweep_window_for(plan);
  return 2.0 * std::fabs(w.e_start - w.e_vertex) /
         catalog.cell_scan_rate_limit();
}

CostEstimate estimate_cost(const PlatformCandidate& candidate,
                           const PanelSpec& panel,
                           const ComponentCatalog& catalog) {
  (void)panel;  // budgets are checked by the explorer; cost is panel-free
  CostEstimate cost;

  // --- electrodes ------------------------------------------------------------
  const double pad = catalog.electrode_pad_area_mm2() * catalog.layout_overhead();
  const std::size_t n_we = candidate.working_electrode_count();
  const std::size_t n_chambers = candidate.chamber_count();
  // Each chamber carries one RE pad and one CE sized to its summed WE area.
  double electrode_area = static_cast<double>(n_we) * pad;
  for (std::size_t c = 0; c < n_chambers; ++c) {
    std::size_t we_in_chamber = candidate.cds ? 1 : 0;
    for (const auto& e : candidate.electrodes) {
      if (e.chamber == c) ++we_in_chamber;
    }
    electrode_area += pad;                                     // RE
    electrode_area += pad * static_cast<double>(we_in_chamber);  // CE
  }
  // Chamber walls / fluidic separation overhead.
  if (candidate.structure == StructureKind::kChamberedArray) {
    electrode_area *= 1.35;
  }
  cost.area_mm2 += electrode_area;
  cost.component_count += static_cast<int>(candidate.total_electrode_count());

  // --- readout channels --------------------------------------------------------
  const bool muxed = candidate.sharing == ReadoutSharing::kMuxedPerClass;
  std::size_t n_readouts = 0;
  if (muxed) {
    for (ReadoutClass cls : candidate.readout_classes()) {
      const ReadoutSpec& r = catalog.readout(cls);
      cost.area_mm2 += r.area_mm2;
      cost.power_uw += r.power_uw;
      ++n_readouts;
    }
    const auto& mux = catalog.mux_for(candidate.working_electrode_count());
    cost.area_mm2 += mux.area_mm2;
    cost.power_uw += mux.power_uw;
    ++cost.component_count;
  } else {
    for (const auto& e : candidate.electrodes) {
      const ReadoutSpec& r = catalog.readout(e.readout);
      cost.area_mm2 += r.area_mm2;
      cost.power_uw += r.power_uw;
      ++n_readouts;
    }
    if (candidate.cds) {
      // Blank electrodes need their own dedicated channel too.
      for (std::size_t c = 0; c < n_chambers; ++c) {
        const ReadoutSpec& r = catalog.readout(ReadoutClass::kOxidaseGrade);
        cost.area_mm2 += r.area_mm2;
        cost.power_uw += r.power_uw;
        ++n_readouts;
      }
    }
  }
  cost.component_count += static_cast<int>(n_readouts);

  // --- noise countermeasures -----------------------------------------------------
  if (candidate.chopper) {
    cost.area_mm2 += catalog.chopper_cost().area_mm2 * static_cast<double>(n_readouts);
    cost.power_uw += catalog.chopper_cost().power_uw * static_cast<double>(n_readouts);
  }
  if (candidate.cds) {
    cost.area_mm2 += catalog.cds_cost().area_mm2 * static_cast<double>(n_chambers);
    cost.power_uw += catalog.cds_cost().power_uw * static_cast<double>(n_chambers);
  }

  // --- voltage generation ----------------------------------------------------------
  bool any_ca = false, any_cv = false;
  std::size_t ca_we = 0, cv_we = 0;
  for (const auto& e : candidate.electrodes) {
    if (e.technique == bio::Technique::kChronoamperometry) {
      any_ca = true;
      ++ca_we;
    } else {
      any_cv = true;
      ++cv_we;
    }
  }
  if (muxed) {
    if (any_ca) {
      cost.area_mm2 += catalog.fixed_dac().area_mm2;
      cost.power_uw += catalog.fixed_dac().power_uw;
      ++cost.component_count;
    }
    if (any_cv) {
      cost.area_mm2 += catalog.sweep_generator().area_mm2;
      cost.power_uw += catalog.sweep_generator().power_uw;
      ++cost.component_count;
    }
  } else {
    cost.area_mm2 += catalog.fixed_dac().area_mm2 * static_cast<double>(ca_we);
    cost.power_uw += catalog.fixed_dac().power_uw * static_cast<double>(ca_we);
    cost.area_mm2 += catalog.sweep_generator().area_mm2 * static_cast<double>(cv_we);
    cost.power_uw += catalog.sweep_generator().power_uw * static_cast<double>(cv_we);
    cost.component_count += static_cast<int>(ca_we + cv_we);
  }

  // --- shared ADC --------------------------------------------------------------------
  cost.area_mm2 += catalog.adc_area_mm2();
  cost.power_uw += catalog.adc_power_uw();
  ++cost.component_count;

  // --- panel time ----------------------------------------------------------------------
  if (muxed) {
    double t = 0.0;
    for (const auto& e : candidate.electrodes) {
      t += measurement_duration(e, catalog);
      t += catalog.mux_for(candidate.working_electrode_count())
               .model.settle_time;
    }
    if (candidate.cds && candidate.sharing == ReadoutSharing::kMuxedPerClass) {
      // blank electrodes read sequentially too
      t += 60.0 * static_cast<double>(n_chambers);
    }
    cost.panel_time_s = t;
  } else {
    double t = 0.0;
    for (const auto& e : candidate.electrodes) {
      t = std::max(t, measurement_duration(e, catalog));
    }
    cost.panel_time_s = t;
  }

  return cost;
}

}  // namespace idp::plat
