/// \file report.cpp
/// Report rendering: console tables of exploration and validation
/// results in the shape of the paper's tables.

#include "core/report.hpp"

#include <algorithm>
#include <ostream>

#include "util/table.hpp"

namespace idp::plat {

void print_exploration(std::ostream& os, const ExplorationResult& result) {
  util::ConsoleTable table({"candidate", "structure", "WEs", "readout",
                            "area mm^2", "power uW", "panel s", "feasible",
                            "pareto"});
  for (std::size_t i = 0; i < result.evaluations.size(); ++i) {
    const auto& e = result.evaluations[i];
    const bool on_front =
        std::find(result.pareto.begin(), result.pareto.end(), i) !=
        result.pareto.end();
    std::string mark = on_front ? "*" : "";
    if (result.best && *result.best == i) mark = "best";
    table.add_row({e.candidate.summary(), to_string(e.candidate.structure),
                   std::to_string(e.candidate.working_electrode_count()),
                   to_string(e.candidate.sharing),
                   util::format_fixed(e.cost.area_mm2, 2),
                   util::format_fixed(e.cost.power_uw, 0),
                   util::format_fixed(e.cost.panel_time_s, 0),
                   e.feasible() ? "yes"
                                : "no (" + std::to_string(e.violations.size()) +
                                      ")",
                   mark});
  }
  table.print(os);
}

void print_violations(std::ostream& os, const CandidateEvaluation& eval) {
  os << eval.candidate.summary() << ":\n";
  for (const auto& v : eval.violations) {
    os << "  [" << to_string(v.kind) << "] " << v.message << "\n";
  }
}

void print_validation(std::ostream& os, const ValidationReport& report) {
  util::ConsoleTable table({"target", "S meas (uA/mM/cm^2)", "S paper",
                            "LOD meas (uM)", "LOD paper", "linear range (mM)",
                            "paper range", "pass"});
  for (const auto& t : report.targets) {
    const bio::TargetSpec& s = bio::spec(t.target);
    const std::string paper_s =
        s.performance_from_paper ? util::format_sig(s.sensitivity_uA_mM_cm2, 3)
                                 : "n/a";
    const std::string paper_lod =
        s.performance_from_paper && s.lod_uM > 0.0
            ? util::format_sig(s.lod_uM, 4)
            : "--";
    const std::string paper_range =
        s.performance_from_paper
            ? util::format_sig(s.linear_lo_mM, 2) + " - " +
                  util::format_sig(s.linear_hi_mM, 2)
            : "n/a";
    const std::string meas_range =
        t.linear_found ? util::format_sig(t.linear_lo_mM, 2) + " - " +
                             util::format_sig(t.linear_hi_mM, 2)
                       : "none";
    table.add_row({bio::to_string(t.target),
                   util::format_sig(t.sensitivity_uA_mM_cm2, 3), paper_s,
                   util::format_sig(t.lod_uM, 4), paper_lod, meas_range,
                   paper_range,
                   (t.meets_lod && t.covers_range) ? "yes" : "no"});
  }
  table.print(os);
}

}  // namespace idp::plat
