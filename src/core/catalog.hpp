/// \file catalog.hpp
/// The parametrized component catalog -- the heart of the paper's platform
/// idea: "a restriction of the design space to the use of a small number of
/// parametrized components" (Section I).
///
/// Area/power figures are behavioral estimates representative of a 0.35 um
/// mixed-signal CMOS implementation; they exist so the explorer can rank
/// candidates, and their *relative* ordering (a sweep generator costs more
/// than a DAC, a mux channel costs less than a readout, ...) is what the
/// trade-off benches exercise.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "afe/adc.hpp"
#include "afe/mux.hpp"
#include "afe/tia.hpp"

namespace idp::plat {

/// Current-readout grades from Section II-C.
enum class ReadoutClass {
  kOxidaseGrade,  ///< +/-10 uA full scale, 10 nA resolution
  kCypGrade,      ///< +/-100 uA full scale, 100 nA resolution
  kLabGrade,      ///< bench instrument (pA); not integrable, reference only
};

std::string to_string(ReadoutClass c);

/// A readout channel entry: electrical model plus implementation cost.
struct ReadoutSpec {
  ReadoutClass cls = ReadoutClass::kOxidaseGrade;
  std::string name;
  double full_scale_a = 10e-6;
  double resolution_a = 10e-9;
  double area_mm2 = 0.05;
  double power_uw = 40.0;
  afe::TiaSpec tia;
  afe::AdcSpec adc;
};

/// Voltage generator entry (fixed DAC or sweep generator, Section II-C).
struct VoltageGeneratorSpec {
  bool sweep_capable = false;
  double min_v = -1.0;
  double max_v = +1.0;
  double max_scan_rate = 0.1;  ///< electrical capability [V/s]
  double area_mm2 = 0.02;
  double power_uw = 15.0;
};

/// Analog multiplexer entry.
struct MuxCatalogEntry {
  std::size_t channels = 8;
  double area_mm2 = 0.04;
  double power_uw = 16.0;
  afe::MuxSpec model;
};

/// Overhead of a flicker countermeasure.
struct NoiseOptionCost {
  double area_mm2 = 0.0;
  double power_uw = 0.0;
};

/// The standard catalog used throughout the benches and examples.
class ComponentCatalog {
 public:
  /// Build the paper-grade catalog (Section II-C numbers).
  static ComponentCatalog standard();

  const ReadoutSpec& readout(ReadoutClass cls) const;
  std::span<const ReadoutSpec> readouts() const { return readouts_; }

  const VoltageGeneratorSpec& fixed_dac() const { return fixed_dac_; }
  const VoltageGeneratorSpec& sweep_generator() const { return sweep_gen_; }

  /// Smallest mux covering `channels` (throws idp::util::Error if none).
  const MuxCatalogEntry& mux_for(std::size_t channels) const;
  std::size_t max_mux_channels() const;

  /// Shared SAR ADC block cost.
  double adc_area_mm2() const { return adc_area_mm2_; }
  double adc_power_uw() const { return adc_power_uw_; }

  const NoiseOptionCost& chopper_cost() const { return chopper_cost_; }
  const NoiseOptionCost& cds_cost() const { return cds_cost_; }

  /// Electrode pad geometric area [mm^2] (Fig. 4: 0.23 mm^2).
  double electrode_pad_area_mm2() const { return 0.23; }
  /// Layout factor for wiring/passivation around each pad.
  double layout_overhead() const { return 1.6; }

  /// Maximum scan rate the electrochemical cell answers faithfully
  /// (Section II-C: ~20 mV/s).
  double cell_scan_rate_limit() const { return 0.020; }

  /// Sensitivity multiplier of nanostructuring a planar-baseline electrode
  /// (CNT functionalisation, Section III: "much larger signals").
  double nanostructure_gain() const { return 50.0; }

 private:
  std::vector<ReadoutSpec> readouts_;
  VoltageGeneratorSpec fixed_dac_;
  VoltageGeneratorSpec sweep_gen_;
  std::vector<MuxCatalogEntry> muxes_;
  double adc_area_mm2_ = 0.08;
  double adc_power_uw_ = 50.0;
  NoiseOptionCost chopper_cost_{0.010, 8.0};
  NoiseOptionCost cds_cost_{0.012, 6.0};
};

}  // namespace idp::plat
