/// \file explorer.hpp
/// Design-space exploration: enumerate platform candidates for a panel,
/// check the design rules, estimate costs, and return the Pareto-optimal
/// feasible set -- the paper's "systematic design space exploration, in the
/// search of the most cost-effective solution" (Section I).
#pragma once

#include <optional>
#include <vector>

#include "core/candidate.hpp"
#include "core/constraints.hpp"
#include "core/cost.hpp"
#include "core/panel.hpp"

namespace idp::plat {

/// Knobs bounding the enumeration.
struct ExplorerOptions {
  bool allow_chopper = true;
  bool allow_cds = true;
  bool allow_nanostructuring = true;
  /// Allow multi-target films (the dual-target CYP2B4 electrode).
  bool allow_merged_films = true;
  /// Weights of the scalar ranking score (applied after Pareto filtering).
  double weight_area = 1.0;
  double weight_power = 1.0;
  double weight_time = 1.0;
  /// Worker threads for candidate evaluation: 0 = hardware concurrency,
  /// 1 = sequential. Candidates are enumerated and de-duplicated first and
  /// each is evaluated into its pre-assigned slot, so the result is
  /// identical at every parallelism level.
  std::size_t parallelism = 0;
};

/// One evaluated candidate.
struct CandidateEvaluation {
  PlatformCandidate candidate;
  CostEstimate cost;
  std::vector<Violation> violations;
  bool feasible() const { return violations.empty(); }
};

/// Full exploration output.
struct ExplorationResult {
  std::vector<CandidateEvaluation> evaluations;  ///< every distinct candidate
  std::vector<std::size_t> pareto;  ///< indices of the feasible Pareto front
  std::optional<std::size_t> best;  ///< weighted-best feasible candidate
  std::size_t feasible_count() const;
};

/// Enumerate and evaluate the design space for `panel`.
ExplorationResult explore(const PanelSpec& panel,
                          const ComponentCatalog& catalog,
                          const ExplorerOptions& options = {});

/// Deterministically build the Fig. 4 candidate: single chamber, five
/// working electrodes (three oxidases, dual-target CYP2B4, CYP11A1), muxed
/// readout, nanostructured CYP films.
PlatformCandidate make_fig4_candidate(const ComponentCatalog& catalog);

}  // namespace idp::plat
