/// \file constraints.cpp
/// Design-rule checker implementation: each rule encodes a feasibility
/// statement the paper makes about platform candidates.

#include "core/constraints.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "bio/interference.hpp"
#include "util/units.hpp"

namespace idp::plat {

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kEmptyElectrode: return "empty electrode";
    case ViolationKind::kMixedTechnique: return "mixed technique on electrode";
    case ViolationKind::kIsoformMismatch: return "probe isoform mismatch";
    case ViolationKind::kTechniqueMismatch: return "technique mismatch";
    case ViolationKind::kReadoutRange: return "readout range exceeded";
    case ViolationKind::kReadoutResolution: return "readout resolution insufficient";
    case ViolationKind::kSweepWindow: return "sweep window out of range";
    case ViolationKind::kScanRateLimit: return "scan rate beyond cell limit";
    case ViolationKind::kChamberInterference: return "chamber interference";
    case ViolationKind::kCdsIneffective: return "CDS blank ineffective";
    case ViolationKind::kMuxCapacity: return "mux capacity exceeded";
    case ViolationKind::kMissingTarget: return "panel target unassigned";
    case ViolationKind::kAreaBudget: return "area budget exceeded";
    case ViolationKind::kPowerBudget: return "power budget exceeded";
    case ViolationKind::kTimeBudget: return "panel time budget exceeded";
  }
  return "?";
}

SweepWindow sweep_window_for(const WorkingElectrodePlan& plan) {
  SweepWindow w;
  double min_e0 = 0.0;
  for (bio::TargetId t : plan.targets) {
    min_e0 = std::min(min_e0, bio::spec(t).operating_potential);
  }
  w.e_start = 0.1;
  w.e_vertex = min_e0 - 0.25;
  return w;
}

double expected_current(bio::TargetId id, double c, double area) {
  const double s_si = util::sensitivity_from_uA_per_mM_cm2(
      bio::spec(id).sensitivity_uA_mM_cm2);
  return s_si * area * c;
}

double plan_sensitivity_gain(const WorkingElectrodePlan& plan,
                             bio::TargetId id,
                             const ComponentCatalog& catalog) {
  if (plan.nanostructured && !bio::spec(id).nanostructured_baseline) {
    return catalog.nanostructure_gain();
  }
  return 1.0;
}

namespace {

bio::Technique technique_of(bio::TargetId id) {
  switch (bio::spec(id).family) {
    case bio::ProbeFamily::kCytochromeP450:
      return bio::Technique::kCyclicVoltammetry;
    case bio::ProbeFamily::kOxidase:
    case bio::ProbeFamily::kDirectOxidation:
      return bio::Technique::kChronoamperometry;
  }
  return bio::Technique::kChronoamperometry;
}

const TargetRequirement* find_requirement(const PanelSpec& panel,
                                          bio::TargetId id) {
  for (const auto& r : panel.targets) {
    if (r.target == id) return &r;
  }
  return nullptr;
}

}  // namespace

std::vector<Violation> check_candidate(const PlatformCandidate& candidate,
                                       const PanelSpec& panel,
                                       const ComponentCatalog& catalog) {
  std::vector<Violation> violations;
  auto add = [&](ViolationKind kind, const std::string& msg) {
    violations.push_back(Violation{kind, msg});
  };

  const double pad_area = catalog.electrode_pad_area_mm2() * 1e-6;  // m^2

  // --- per-electrode rules ---------------------------------------------------
  std::set<bio::TargetId> assigned;
  for (std::size_t i = 0; i < candidate.electrodes.size(); ++i) {
    const auto& e = candidate.electrodes[i];
    const std::string tag = "WE" + std::to_string(i);
    if (e.targets.empty()) {
      add(ViolationKind::kEmptyElectrode, tag + " senses nothing");
      continue;
    }

    const std::string& probe0 = bio::spec(e.targets.front()).probe_name;
    for (bio::TargetId t : e.targets) {
      assigned.insert(t);
      if (technique_of(t) != e.technique) {
        add(ViolationKind::kTechniqueMismatch,
            tag + ": " + bio::to_string(t) + " needs " +
                bio::to_string(technique_of(t)));
      }
      if (bio::spec(t).probe_name != probe0) {
        add(ViolationKind::kIsoformMismatch,
            tag + ": " + bio::to_string(t) + " needs probe " +
                bio::spec(t).probe_name + ", electrode carries " + probe0);
      }
    }
    {
      std::set<bio::Technique> techs;
      for (bio::TargetId t : e.targets) techs.insert(technique_of(t));
      if (techs.size() > 1) {
        add(ViolationKind::kMixedTechnique,
            tag + " mixes chronoamperometry and CV targets");
      }
    }

    // Readout range / resolution against the library signal levels.
    // The range must fit below full scale, be quantised meaningfully
    // (>= 2 LSB at the top of the range) and, when an LOD is required,
    // the LOD-level current must not vanish under one LSB.
    const ReadoutSpec& readout = catalog.readout(e.readout);
    for (bio::TargetId t : e.targets) {
      const TargetRequirement* req = find_requirement(panel, t);
      const double gain = plan_sensitivity_gain(e, t, catalog);
      const double hi_mM =
          req ? req->effective_hi_mM() : bio::spec(t).linear_hi_mM;
      const double lod_uM = req ? req->effective_lod_uM()
                                : bio::spec(t).lod_uM;
      const double i_max = gain * expected_current(t, hi_mM, pad_area);
      if (i_max > 0.9 * readout.full_scale_a) {
        std::ostringstream ss;
        ss << tag << ": " << bio::to_string(t) << " needs "
           << util::current_to_uA(i_max) << " uA, full scale "
           << util::current_to_uA(readout.full_scale_a) << " uA";
        add(ViolationKind::kReadoutRange, ss.str());
      }
      if (i_max < 2.0 * readout.resolution_a) {
        std::ostringstream ss;
        ss << tag << ": " << bio::to_string(t) << " full-range current "
           << util::current_to_nA(i_max) << " nA below 2x resolution "
           << util::current_to_nA(readout.resolution_a) << " nA ("
           << readout.name << ")";
        add(ViolationKind::kReadoutResolution, ss.str());
      } else if (lod_uM > 0.0 && std::isfinite(lod_uM)) {
        const double i_lod =
            gain * expected_current(t, lod_uM * 1e-3, pad_area);
        if (i_lod < 0.5 * readout.resolution_a) {
          std::ostringstream ss;
          ss << tag << ": " << bio::to_string(t) << " LOD current "
             << util::current_to_nA(i_lod) << " nA below half the resolution "
             << util::current_to_nA(readout.resolution_a) << " nA ("
             << readout.name << ")";
          add(ViolationKind::kReadoutResolution, ss.str());
        }
      }
    }

    // Sweep-generator coverage for CV electrodes.
    if (e.technique == bio::Technique::kCyclicVoltammetry) {
      const SweepWindow w = sweep_window_for(e);
      const VoltageGeneratorSpec& gen = catalog.sweep_generator();
      if (w.e_vertex < gen.min_v || w.e_start > gen.max_v) {
        std::ostringstream ss;
        ss << tag << ": window [" << w.e_vertex << ", " << w.e_start
           << "] V outside generator [" << gen.min_v << ", " << gen.max_v
           << "] V";
        add(ViolationKind::kSweepWindow, ss.str());
      }
      if (catalog.cell_scan_rate_limit() >
          catalog.sweep_generator().max_scan_rate) {
        add(ViolationKind::kScanRateLimit,
            tag + ": generator slower than the cell limit");
      }
    }
  }

  // --- panel coverage ----------------------------------------------------------
  for (const auto& r : panel.targets) {
    if (!assigned.contains(r.target)) {
      add(ViolationKind::kMissingTarget,
          bio::to_string(r.target) + " is not assigned to any electrode");
    }
  }

  // --- chamber sharing rules (Section II-A) -----------------------------------
  if (candidate.structure == StructureKind::kSingleChamberSharedRef) {
    std::vector<bio::TargetId> occupants;
    for (const auto& e : candidate.electrodes) {
      occupants.insert(occupants.end(), e.targets.begin(), e.targets.end());
    }
    occupants.insert(occupants.end(), panel.matrix_interferents.begin(),
                     panel.matrix_interferents.end());
    for (std::size_t a = 0; a < occupants.size(); ++a) {
      for (std::size_t b = a + 1; b < occupants.size(); ++b) {
        if (!bio::can_share_chamber(occupants[a], occupants[b])) {
          add(ViolationKind::kChamberInterference,
              bio::to_string(occupants[a]) + " and " +
                  bio::to_string(occupants[b]) +
                  " cannot share one chamber");
        }
      }
    }
  }

  // --- CDS caveat (Section II-C) -----------------------------------------------
  if (candidate.cds) {
    for (const auto& e : candidate.electrodes) {
      for (bio::TargetId t : e.targets) {
        if (!bio::cds_blank_effective(t)) {
          add(ViolationKind::kCdsIneffective,
              bio::to_string(t) +
                  " oxidises on the blank electrode too; CDS cannot "
                  "reference it");
        }
      }
    }
  }

  // --- mux capacity --------------------------------------------------------------
  if (candidate.sharing == ReadoutSharing::kMuxedPerClass) {
    if (candidate.working_electrode_count() > catalog.max_mux_channels()) {
      add(ViolationKind::kMuxCapacity,
          std::to_string(candidate.working_electrode_count()) +
              " channels exceed the largest catalog mux (" +
              std::to_string(catalog.max_mux_channels()) + ")");
    }
  }

  return violations;
}

}  // namespace idp::plat
