/// \file constraints.hpp
/// Design-rule checking for platform candidates: every rule encodes a
/// statement the paper makes about what does or does not work.
#pragma once

#include <string>
#include <vector>

#include "core/candidate.hpp"
#include "core/panel.hpp"

namespace idp::plat {

/// Design-rule classes.
enum class ViolationKind {
  kEmptyElectrode,         ///< an electrode plan without targets
  kMixedTechnique,         ///< CA and CV targets on one electrode
  kIsoformMismatch,        ///< two targets needing different probes on one WE
  kTechniqueMismatch,      ///< plan technique != probe family technique
  kReadoutRange,           ///< expected max current exceeds full scale
  kReadoutResolution,      ///< LOD-level current below the resolvable step
  kSweepWindow,            ///< CV window outside the generator range
  kScanRateLimit,          ///< required scan rate beyond the cell limit
  kChamberInterference,    ///< incompatible species share a chamber
  kCdsIneffective,         ///< CDS enabled for a directly oxidisable target
  kMuxCapacity,            ///< more channels than any catalog mux offers
  kMissingTarget,          ///< panel target not assigned to any electrode
  kAreaBudget,             ///< estimated area exceeds the panel budget
  kPowerBudget,            ///< estimated power exceeds the panel budget
  kTimeBudget,             ///< panel read time exceeds the budget
};

std::string to_string(ViolationKind kind);

/// One violated design rule with a human-readable explanation.
struct Violation {
  ViolationKind kind;
  std::string message;
};

/// Check a candidate against a panel with the given catalog. Returns the
/// complete list of violations (empty == feasible at the structural level;
/// budget feasibility is the explorer's job because it needs the cost
/// model).
std::vector<Violation> check_candidate(const PlatformCandidate& candidate,
                                       const PanelSpec& panel,
                                       const ComponentCatalog& catalog);

/// CV sweep window used by this platform for a CV electrode: from +0.1 V
/// down to (most negative target potential - 0.25 V).
struct SweepWindow {
  double e_start = 0.1;
  double e_vertex = -0.9;
};
SweepWindow sweep_window_for(const WorkingElectrodePlan& plan);

/// Expected steady signal current for a target at concentration c [mol/m^3]
/// on pad area `area` [m^2], from the library sensitivity.
double expected_current(bio::TargetId id, double c, double area);

/// Sensitivity gain an electrode plan applies to one of its targets
/// (catalog nanostructure gain when the plan is nanostructured and the
/// library baseline is planar; 1 otherwise).
double plan_sensitivity_gain(const WorkingElectrodePlan& plan,
                             bio::TargetId id,
                             const ComponentCatalog& catalog);

}  // namespace idp::plat
