/// \file degradation.cpp
/// Degradation model implementation: closed-form aging laws plus hashed
/// per-(site, day) stochastic draws for storms, walks and sensor
/// variability.

#include "fault/degradation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/random.hpp"

namespace idp::fault {

namespace {

/// splitmix64 finaliser: avalanching mix so neighbouring (patient, channel,
/// day) tuples land on decorrelated RNG seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stream tags separating the independent stochastic mechanisms.
enum : std::uint64_t {
  kStreamVariability = 1,
  kStreamWalk = 2,
  kStreamStorm = 3,
};

std::uint64_t site_seed(const DegradationParams& p, SensorSite site,
                        std::uint64_t day, std::uint64_t stream) {
  std::uint64_t h = mix(p.seed + stream);
  h = mix(h ^ site.patient);
  h = mix(h ^ site.channel);
  h = mix(h ^ day);
  return h;
}

}  // namespace

DegradationModel::DegradationModel(DegradationParams params)
    : params_(params) {
  util::require(params_.enzyme_decay_per_day >= 0.0 &&
                    params_.fouling_rate_per_day >= 0.0 &&
                    params_.sensor_variability >= 0.0 &&
                    params_.reference_walk_V_per_sqrt_day >= 0.0 &&
                    params_.storms_per_day >= 0.0 &&
                    params_.storm_current_A >= 0.0 &&
                    params_.storm_magnitude_sigma >= 0.0,
                "degradation rates must be non-negative");
  util::require(params_.storm_noise_multiplier >= 1.0,
                "storm noise multiplier must be >= 1");
  enabled_ = params_.enzyme_decay_per_day > 0.0 ||
             params_.fouling_rate_per_day > 0.0 ||
             params_.reference_drift_V_per_day != 0.0 ||
             params_.reference_walk_V_per_sqrt_day > 0.0 ||
             params_.afe_gain_drift_per_day != 0.0 ||
             params_.afe_offset_A_per_day != 0.0 ||
             params_.storms_per_day > 0.0;
}

SensorState DegradationModel::state_at(double age_days,
                                       SensorSite site) const {
  SensorState state;
  const double age = std::max(age_days, 0.0);
  state.age_days = age;
  if (!enabled_ || age == 0.0) return state;

  // Per-sensor rate variability: one lognormal factor per mechanism, drawn
  // once per sensor life (day index 0 of the variability stream).
  double decay_rate = params_.enzyme_decay_per_day;
  double fouling_rate = params_.fouling_rate_per_day;
  if (params_.sensor_variability > 0.0) {
    util::Rng rng(site_seed(params_, site, 0, kStreamVariability));
    decay_rate *= std::exp(params_.sensor_variability * rng.gaussian());
    fouling_rate *= std::exp(params_.sensor_variability * rng.gaussian());
  }

  if (decay_rate > 0.0) state.enzyme_activity = std::exp(-decay_rate * age);
  if (fouling_rate > 0.0) {
    state.membrane_transmission = 1.0 / (1.0 + fouling_rate * age);
  }

  state.reference_shift_V = params_.reference_drift_V_per_day * age;
  if (params_.reference_walk_V_per_sqrt_day > 0.0) {
    // Daily Gaussian increments; the partial current day contributes with
    // sqrt(fraction) so the walk RMS grows continuously as sqrt(age).
    const auto full_days = static_cast<std::uint64_t>(std::floor(age));
    double walk = 0.0;
    for (std::uint64_t d = 0; d < full_days; ++d) {
      util::Rng rng(site_seed(params_, site, d, kStreamWalk));
      walk += rng.gaussian();
    }
    const double frac = age - std::floor(age);
    if (frac > 0.0) {
      util::Rng rng(site_seed(params_, site, full_days, kStreamWalk));
      walk += std::sqrt(frac) * rng.gaussian();
    }
    state.reference_shift_V += params_.reference_walk_V_per_sqrt_day * walk;
  }

  // Gain loss is the natural aging sign; floor the linear law well above
  // zero so a long-lived sensor degrades into uselessness instead of
  // tripping the front end's gain > 0 precondition mid-scan. The floor
  // leaves an exact 1.0 when the rate is zero.
  state.afe_gain =
      std::max(1.0 + params_.afe_gain_drift_per_day * age, 0.05);
  state.afe_offset_A = params_.afe_offset_A_per_day * age;

  if (params_.storms_per_day > 0.0) {
    const auto day = static_cast<std::uint64_t>(std::floor(age));
    util::Rng rng(site_seed(params_, site, day, kStreamStorm));
    const double p_storm = std::min(params_.storms_per_day, 1.0);
    if (rng.uniform(0.0, 1.0) < p_storm) {
      state.storm_current_A =
          params_.storm_current_A *
          std::exp(params_.storm_magnitude_sigma * rng.gaussian());
      state.storm_noise_mult = params_.storm_noise_multiplier;
    }
  }
  return state;
}

}  // namespace idp::fault
