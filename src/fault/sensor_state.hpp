/// \file sensor_state.hpp
/// The time-varying condition of one physical sensor channel: what a real
/// electrode looks like after days in solution instead of the pristine
/// calibration-day device. A SensorState is a passive snapshot -- the
/// degradation *model* lives in fault/degradation.hpp; probes, the analog
/// front end and the measurement engine merely consult the snapshot at scan
/// time.
///
/// The default-constructed state is the identity: every consumer is written
/// so that an identity state leaves the measurement bitwise unchanged,
/// which the golden-trace fixtures pin against the pre-fault platform.
#pragma once

namespace idp::fault {

/// Snapshot of one sensor channel's condition at a given age.
struct SensorState {
  /// Sensor age this snapshot was evaluated at [days]; informational.
  double age_days = 0.0;

  /// Remaining enzyme activity fraction in (0, 1]: immobilised oxidases
  /// denature and CYP films lose active hemes, scaling the catalytic rate.
  double enzyme_activity = 1.0;

  /// Membrane transmission fraction in (0, 1]: biofouling grows a drifting
  /// diffusion barrier on the outer membrane, scaling the substrate
  /// diffusivity (which both attenuates and slows the response).
  double membrane_transmission = 1.0;

  /// Reference-electrode potential drift [V]: the working electrode sees
  /// E_applied + shift while the instrument still reports E_applied.
  double reference_shift_V = 0.0;

  /// Analog-front-end gain drift (multiplicative, 1 = nominal) and input
  /// offset-current drift [A]: the digitised estimate reads
  /// gain * i + offset.
  double afe_gain = 1.0;
  double afe_offset_A = 0.0;

  /// Interference storm (electroactive contaminant transient): an additive
  /// baseline current seen by signal *and* blank electrodes, plus an
  /// inflation factor on the electrochemical white noise.
  double storm_current_A = 0.0;
  double storm_noise_mult = 1.0;

  /// True when every field is at its pristine default (age is
  /// informational and excluded). Consumers may use this to skip work; the
  /// arithmetic is written so applying an identity state is exact anyway.
  bool is_identity() const {
    return enzyme_activity == 1.0 && membrane_transmission == 1.0 &&
           reference_shift_V == 0.0 && afe_gain == 1.0 &&
           afe_offset_A == 0.0 && storm_current_A == 0.0 &&
           storm_noise_mult == 1.0;
  }
};

}  // namespace idp::fault
