/// \file degradation.hpp
/// The degradation / fault-injection model: maps (sensor age, sensor site)
/// to a fault::SensorState. Deterministic mechanisms (enzyme decay,
/// fouling, reference ramp, AFE gain/offset drift) are closed-form in age;
/// stochastic mechanisms (per-sensor rate variability, reference random
/// walk, interference storms) derive every draw from an explicit hash of
/// (model seed, patient, channel, day), so a state is a *pure function* of
/// its arguments -- cohort sweeps stay bitwise identical at any parallelism
/// and any evaluation order.
///
/// A default-constructed model is disabled and always returns the identity
/// state, leaving every measurement bitwise unchanged.
#pragma once

#include <cstdint>

#include "fault/sensor_state.hpp"

namespace idp::fault {

/// Identifies one physical sensor instance inside a scenario, for seeding.
struct SensorSite {
  std::uint64_t patient = 0;
  std::uint64_t channel = 0;
};

/// Degradation mechanism rates. All defaults are zero/identity; a model
/// built from default params is disabled.
struct DegradationParams {
  /// First-order enzyme inactivation: activity = exp(-rate * age_days).
  double enzyme_decay_per_day = 0.0;

  /// Fouling-film growth: transmission = 1 / (1 + rate * age_days) -- the
  /// film thickness (hence its diffusion resistance) grows linearly.
  double fouling_rate_per_day = 0.0;

  /// Lognormal sigma of per-sensor variability applied multiplicatively to
  /// the decay and fouling rates (each physical sensor ages differently;
  /// seeded per site, constant over that sensor's life).
  double sensor_variability = 0.0;

  /// Reference-electrode drift: a deterministic ramp plus a seeded
  /// day-by-day Gaussian random walk (RMS grows as sqrt(age)).
  double reference_drift_V_per_day = 0.0;
  double reference_walk_V_per_sqrt_day = 0.0;

  /// AFE electronics drift: gain = 1 + gain_rate * age_days,
  /// offset = offset_rate * age_days.
  double afe_gain_drift_per_day = 0.0;
  double afe_offset_A_per_day = 0.0;

  /// Interference storms: each (sensor, day) is hit independently with
  /// probability min(1, storms_per_day). An active storm adds a lognormal
  /// baseline current (median storm_current_A, spread storm_magnitude_sigma)
  /// and inflates the electrochemical white noise by storm_noise_multiplier.
  double storms_per_day = 0.0;
  double storm_current_A = 0.0;
  double storm_magnitude_sigma = 0.5;
  double storm_noise_multiplier = 3.0;

  /// Seed domain for every stochastic mechanism of this model.
  std::uint64_t seed = 0;
};

/// Evaluates sensor condition as a pure function of age and site.
class DegradationModel {
 public:
  /// Identity model: state_at returns a pristine state for any input.
  DegradationModel() = default;

  /// Model with the given mechanism rates (validated: rates must be
  /// non-negative, multipliers >= 1, probability-like values finite).
  explicit DegradationModel(DegradationParams params);

  /// False for a default-constructed (all-zero-rate) model.
  bool enabled() const { return enabled_; }

  const DegradationParams& params() const { return params_; }

  /// Sensor condition at `age_days` (clamped to >= 0) for the given site.
  /// Pure: same (model, age, site) always yields the same state.
  SensorState state_at(double age_days, SensorSite site) const;

 private:
  DegradationParams params_{};
  bool enabled_ = false;
};

}  // namespace idp::fault
