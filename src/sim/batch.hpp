/// \file batch.hpp
/// Deterministic parallel batch runtime for independent simulation runs.
///
/// Panel scans, calibration sweeps and design-space evaluations are
/// embarrassingly parallel: every job owns its probe/front-end state and all
/// randomness is derived from an explicit run id assigned *before* execution
/// (never from submission or completion order). BatchRunner therefore
/// guarantees that results are bitwise identical at any parallelism level:
/// parallelism 1 runs the jobs inline in index order (the legacy sequential
/// path), parallelism N fans them out over a util::ThreadPool with each job
/// writing to its pre-assigned output slot.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace idp::sim {

/// Runs an indexed set of independent jobs, sequentially or in parallel.
class BatchRunner {
 public:
  /// \param parallelism  worker count; 0 means hardware concurrency,
  ///                     1 executes inline on the calling thread.
  explicit BatchRunner(std::size_t parallelism = 0);

  std::size_t parallelism() const { return parallelism_; }

  /// Execute job(0) .. job(n-1). Jobs must be independent (no shared
  /// mutable state). If any job throws, the exception of the lowest-index
  /// failing job is rethrown after all jobs finished -- deterministic
  /// regardless of scheduling.
  void run(std::size_t n, const std::function<void(std::size_t)>& job) const;

  /// Map convenience: collect job(i) results in index order.
  template <typename R, typename F>
  std::vector<R> map(std::size_t n, F&& job) const {
    std::vector<R> out(n);
    run(n, [&](std::size_t i) { out[i] = job(i); });
    return out;
  }

 private:
  std::size_t parallelism_;
};

}  // namespace idp::sim
