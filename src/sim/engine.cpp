/// \file engine.cpp
/// Measurement engine implementation: co-simulates probe electrochemistry
/// at millisecond steps with the Fig. 2 acquisition chain (potentiostat,
/// mux, TIA + ADC, noise).

#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "afe/waveform.hpp"
#include "bio/oxidase_batch.hpp"
#include "bio/oxidase_probe.hpp"
#include "sim/batch.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace idp::sim {

namespace {
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;
/// Default lockstep lane width when EngineConfig::batch_lanes is 0 (auto):
/// wide enough to fill AVX registers across the 2x solver lanes per
/// channel, narrow enough that typical panels still split into parallel
/// jobs.
constexpr std::size_t kDefaultPanelLanes = 8;
}

/// Per-run noise generators: independent white noise for the signal and
/// blank paths plus one *shared* drift process (same chamber, same solution)
/// that correlated double sampling can cancel.
struct MeasurementEngine::NoiseState {
  util::Rng white_signal;
  util::Rng white_blank;
  util::DriftProcess drift;
  double white_rms;
  bool enabled;

  /// `white_mult` inflates the electrochemical white noise (interference
  /// storms); 1.0 -- the pristine default -- multiplies out exactly.
  NoiseState(const EngineConfig& cfg, const bio::Probe& probe,
             std::uint64_t run_id, double white_mult)
      : white_signal(cfg.seed + run_id * kSeedStride),
        white_blank(cfg.seed + run_id * kSeedStride + 1),
        drift(cfg.drift_scale * probe.blank_noise_rms(), cfg.drift_tau,
              cfg.seed + run_id * kSeedStride + 2),
        white_rms(probe.blank_noise_rms() * white_mult),
        enabled(cfg.sensor_noise) {}

  /// Advance shared drift by one sample period.
  double step_drift(double dt) { return enabled ? drift.step(dt) : 0.0; }

  double signal_white() { return enabled ? white_signal.gaussian(white_rms) : 0.0; }
  double blank_white() { return enabled ? white_blank.gaussian(white_rms) : 0.0; }
};

MeasurementEngine::MeasurementEngine(EngineConfig config) : config_(config) {
  util::require(config_.chem_dt > 0.0, "chem_dt must be positive");
  util::require(config_.drift_scale >= 0.0, "drift_scale must be >= 0");
  util::require(config_.drift_tau > 0.0, "drift_tau must be positive");
}

namespace {

/// Sampling instants are derived from an integer sample counter so that the
/// k-th sample lands at exactly (k+1)*period -- accumulating `next += period`
/// drifts by one ulp per sample over long runs.
struct SamplingClock {
  double period;
  std::size_t samples = 0;
  explicit SamplingClock(double rate) : period(1.0 / rate) {}
  double next() const { return static_cast<double>(samples + 1) * period; }
  bool due(double t) const { return t >= next(); }
  void advance() { ++samples; }
};

}  // namespace

std::uint64_t MeasurementEngine::reserve_run_ids(std::size_t n) {
  const std::uint64_t base = run_counter_;
  run_counter_ += n;
  return base;
}

Trace MeasurementEngine::run_chronoamperometry(
    Channel channel, const ChronoamperometryProtocol& protocol,
    afe::AnalogFrontEnd& fe, std::span<const InjectionEvent> injections) {
  return run_chronoamperometry_seeded(++run_counter_, channel, protocol, fe,
                                      injections);
}

Trace MeasurementEngine::run_chronoamperometry_seeded(
    std::uint64_t run_id, Channel channel,
    const ChronoamperometryProtocol& protocol, afe::AnalogFrontEnd& fe,
    std::span<const InjectionEvent> injections) const {
  util::require(channel.probe != nullptr, "channel has no probe");
  util::require(protocol.duration > 0.0 && protocol.sample_rate > 0.0,
                "invalid protocol");
  const fault::SensorState& sensor = channel.sensor;
  bio::Probe& probe = *channel.probe;
  probe.apply_sensor_state(sensor);
  probe.reset();
  fe.set_drift(sensor.afe_gain, sensor.afe_offset_A);

  NoiseState noise(config_, probe, run_id, sensor.storm_noise_mult);
  afe::Potentiostat pstat(config_.potentiostat);

  std::vector<InjectionEvent> pending(injections.begin(), injections.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const auto& a, const auto& b) { return a.time < b.time; });
  std::size_t next_injection = 0;

  Trace trace;
  trace.reserve(static_cast<std::size_t>(
                    std::ceil(protocol.duration * protocol.sample_rate)) +
                1);
  SamplingClock clock(protocol.sample_rate);
  const double dt = config_.chem_dt;
  double i_prev = 0.0;
  const auto n_steps =
      static_cast<std::size_t>(std::ceil(protocol.duration / dt));
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    while (next_injection < pending.size() &&
           pending[next_injection].time <= t) {
      probe.set_bulk_concentration(pending[next_injection].target,
                                   pending[next_injection].concentration);
      ++next_injection;
    }
    // Reference-electrode drift: the interface sees a shifted potential
    // while the instrument still believes protocol.potential.
    const double e_applied =
        pstat.applied_potential(protocol.potential, i_prev,
                                config_.cell_impedance) +
        sensor.reference_shift_V;
    const double i_far = probe.step(e_applied, dt);
    i_prev = i_far;

    if (clock.due(t + dt)) {
      const double drift = noise.step_drift(clock.period);
      const double i_sig =
          i_far + noise.signal_white() + drift + sensor.storm_current_A;
      // The blank electrode shares solution drift; for directly
      // electroactive targets it also collects part of the signal itself
      // (the Section II-C caveat on CDS). Interference storms are
      // solution-borne, so both electrodes collect them (which is exactly
      // what CDS can exploit).
      const double i_blank = probe.blank_current() +
                             probe.blank_signal_fraction() *
                                 (i_far - probe.blank_current()) +
                             noise.blank_white() + drift +
                             sensor.storm_current_A;
      trace.push(clock.next(), fe.sample(i_sig, i_blank));
      clock.advance();
    }
  }
  return trace;
}

CvCurve MeasurementEngine::run_cyclic_voltammetry(
    Channel channel, const CyclicVoltammetryProtocol& protocol,
    afe::AnalogFrontEnd& fe) {
  return run_cyclic_voltammetry_seeded(++run_counter_, channel, protocol, fe);
}

CvCurve MeasurementEngine::run_cyclic_voltammetry_seeded(
    std::uint64_t run_id, Channel channel,
    const CyclicVoltammetryProtocol& protocol, afe::AnalogFrontEnd& fe) const {
  util::require(channel.probe != nullptr, "channel has no probe");
  util::require(protocol.sample_rate > 0.0, "invalid protocol");
  const fault::SensorState& sensor = channel.sensor;
  bio::Probe& probe = *channel.probe;
  probe.apply_sensor_state(sensor);
  probe.reset();
  fe.set_drift(sensor.afe_gain, sensor.afe_offset_A);

  NoiseState noise(config_, probe, run_id, sensor.storm_noise_mult);
  afe::Potentiostat pstat(config_.potentiostat);
  const afe::TriangleWaveform wf(protocol.e_start, protocol.e_vertex,
                                 protocol.scan_rate, protocol.cycles);

  CvCurve curve;
  curve.reserve(
      static_cast<std::size_t>(std::ceil(wf.duration() * protocol.sample_rate)) +
      1);
  SamplingClock clock(protocol.sample_rate);
  const double dt = config_.chem_dt;
  double i_prev = 0.0;
  const auto n_steps = static_cast<std::size_t>(std::ceil(wf.duration() / dt));
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    const double e_set = wf.value(t);
    // The recorded curve keeps the *programmed* potential; only the probe
    // sees the reference-drift shift.
    const double e_applied =
        pstat.applied_potential(e_set, i_prev, config_.cell_impedance) +
        sensor.reference_shift_V;
    double i_true = probe.step(e_applied, dt);
    if (config_.charging_current && channel.electrode != nullptr) {
      i_true += channel.electrode->charging_current(
          protocol.scan_rate * static_cast<double>(wf.direction(t)));
    }
    i_prev = i_true;

    if (clock.due(t + dt)) {
      const double drift = noise.step_drift(clock.period);
      const double i_sig =
          i_true + noise.signal_white() + drift + sensor.storm_current_A;
      const double i_blank = probe.blank_current() +
                             probe.blank_signal_fraction() *
                                 (i_true - probe.blank_current()) +
                             noise.blank_white() + drift +
                             sensor.storm_current_A;
      const double t_sample = clock.next();
      curve.push(t_sample, wf.value(t_sample), fe.sample(i_sig, i_blank));
      clock.advance();
    }
  }
  return curve;
}

PanelEntryResult MeasurementEngine::run_panel_entry(
    std::uint64_t run_id, Channel channel, const ChannelProtocol& protocol,
    afe::AnalogFrontEnd& fe, const afe::AnalogMux& mux,
    const PanelSlot& slot) const {
  PanelEntryResult entry;
  entry.probe_name = channel.probe->name();
  entry.technique = channel.probe->technique();
  entry.start_time = slot.t_start;
  entry.stop_time = slot.t_stop;

  // The charge-injection artifact decays from the switch instant; fold it
  // into the digitised samples while shifting the channel-local timeline
  // onto the global one -- in place, no copy of the trace.
  const double settle = mux.spec().settle_time;
  if (std::holds_alternative<ChronoamperometryProtocol>(protocol)) {
    const auto& p = std::get<ChronoamperometryProtocol>(protocol);
    Trace raw = run_chronoamperometry_seeded(run_id, channel, p, fe);
    std::vector<double>& time = raw.time_mut();
    std::vector<double>& value = raw.value_mut();
    for (std::size_t i = 0; i < time.size(); ++i) {
      const double local_t = time[i];
      value[i] += mux.artifact_current(slot.t_start + local_t - settle,
                                       slot.t_switch);
      time[i] = slot.t_start + local_t;
    }
    entry.amperogram = std::move(raw);
  } else {
    const auto& p = std::get<CyclicVoltammetryProtocol>(protocol);
    CvCurve raw = run_cyclic_voltammetry_seeded(run_id, channel, p, fe);
    std::vector<double>& time = raw.time_mut();
    std::vector<double>& current = raw.current_mut();
    for (std::size_t i = 0; i < time.size(); ++i) {
      const double local_t = time[i];
      current[i] += mux.artifact_current(slot.t_start + local_t - settle,
                                         slot.t_switch);
      time[i] = slot.t_start + local_t;
    }
    entry.voltammogram = std::move(raw);
  }
  return entry;
}

void MeasurementEngine::run_panel_lane_group(
    std::span<const std::size_t> group, std::uint64_t base_id,
    std::span<const Channel> channels, std::span<const ChannelProtocol> protocols,
    std::span<afe::AnalogFrontEnd* const> frontends, const afe::AnalogMux& mux,
    std::span<const PanelSlot> slots, std::span<PanelEntryResult> entries) const {
  const std::size_t w = group.size();

  // Per-lane preamble, mirroring run_chronoamperometry_seeded: sensor state
  // applied to the probe, fresh probe state, front-end drift configured.
  std::vector<bio::OxidaseProbe*> probes(w);
  std::vector<const fault::SensorState*> sensors(w);
  std::vector<double> potentials(w);
  for (std::size_t l = 0; l < w; ++l) {
    const Channel& channel = channels[group[l]];
    const auto& protocol =
        std::get<ChronoamperometryProtocol>(protocols[group[l]]);
    util::require(protocol.duration > 0.0 && protocol.sample_rate > 0.0,
                  "invalid protocol");
    probes[l] = static_cast<bio::OxidaseProbe*>(channel.probe);
    sensors[l] = &channel.sensor;
    potentials[l] = protocol.potential;
    channel.probe->apply_sensor_state(channel.sensor);
    channel.probe->reset();
    frontends[group[l]]->set_drift(channel.sensor.afe_gain,
                                   channel.sensor.afe_offset_A);
  }
  bio::OxidaseLaneBatch batch(probes, sensors);

  std::vector<NoiseState> noise;
  noise.reserve(w);
  for (std::size_t l = 0; l < w; ++l) {
    noise.emplace_back(config_, *probes[l], base_id + group[l] + 1,
                       sensors[l]->storm_noise_mult);
  }
  afe::Potentiostat pstat(config_.potentiostat);

  // All group members share duration and sample rate (grouping key), so one
  // sampling clock and one step count drive every lane.
  const auto& p0 = std::get<ChronoamperometryProtocol>(protocols[group[0]]);
  std::vector<Trace> traces(w);
  for (Trace& trace : traces) {
    trace.reserve(
        static_cast<std::size_t>(std::ceil(p0.duration * p0.sample_rate)) + 1);
  }
  SamplingClock clock(p0.sample_rate);
  const double dt = config_.chem_dt;
  std::vector<double> i_prev(w, 0.0), e_applied(w), i_far(w);
  const auto n_steps = static_cast<std::size_t>(std::ceil(p0.duration / dt));
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    for (std::size_t l = 0; l < w; ++l) {
      e_applied[l] = pstat.applied_potential(potentials[l], i_prev[l],
                                             config_.cell_impedance) +
                     sensors[l]->reference_shift_V;
    }
    batch.step(e_applied, dt, i_far);
    for (std::size_t l = 0; l < w; ++l) i_prev[l] = i_far[l];

    if (clock.due(t + dt)) {
      for (std::size_t l = 0; l < w; ++l) {
        const double drift = noise[l].step_drift(clock.period);
        const double i_sig = i_far[l] + noise[l].signal_white() + drift +
                             sensors[l]->storm_current_A;
        const double i_blank = probes[l]->blank_current() +
                               probes[l]->blank_signal_fraction() *
                                   (i_far[l] - probes[l]->blank_current()) +
                               noise[l].blank_white() + drift +
                               sensors[l]->storm_current_A;
        traces[l].push(clock.next(),
                       frontends[group[l]]->sample(i_sig, i_blank));
      }
      clock.advance();
    }
  }

  // Per-lane postprocessing, mirroring run_panel_entry's CA branch: fold the
  // charge-injection artifact in while shifting onto the global timeline.
  const double settle = mux.spec().settle_time;
  for (std::size_t l = 0; l < w; ++l) {
    const std::size_t c = group[l];
    PanelEntryResult& entry = entries[c];
    entry.probe_name = channels[c].probe->name();
    entry.technique = channels[c].probe->technique();
    entry.start_time = slots[c].t_start;
    entry.stop_time = slots[c].t_stop;
    Trace& raw = traces[l];
    std::vector<double>& time = raw.time_mut();
    std::vector<double>& value = raw.value_mut();
    for (std::size_t i = 0; i < time.size(); ++i) {
      const double local_t = time[i];
      value[i] += mux.artifact_current(slots[c].t_start + local_t - settle,
                                       slots[c].t_switch);
      time[i] = slots[c].t_start + local_t;
    }
    entry.amperogram = std::move(raw);
  }
}

PanelScanResult MeasurementEngine::run_panel(
    std::span<const Channel> channels,
    std::span<const ChannelProtocol> protocols,
    std::span<afe::AnalogFrontEnd* const> frontends, afe::AnalogMux& mux,
    std::size_t parallelism) {
  util::require(channels.size() == protocols.size(),
                "one protocol per channel required");
  util::require(channels.size() == frontends.size(),
                "one front end per channel required");
  util::require(channels.size() <= mux.spec().channels,
                "more channels than the mux supports");
  const std::size_t n = channels.size();

  // Schedule the scan up front: mux switch instants, channel start/stop
  // times and run ids are all fixed before any chemistry runs, so the
  // channel measurements are independent jobs.
  const std::uint64_t base_id = reserve_run_ids(n);
  std::vector<PanelSlot> slots(n);
  double t_global = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    mux.select(c, t_global);
    slots[c].t_switch = mux.last_switch();
    t_global += mux.spec().settle_time;
    slots[c].t_start = t_global;
    if (std::holds_alternative<ChronoamperometryProtocol>(protocols[c])) {
      t_global += std::get<ChronoamperometryProtocol>(protocols[c]).duration;
    } else {
      const auto& p = std::get<CyclicVoltammetryProtocol>(protocols[c]);
      const afe::TriangleWaveform wf(p.e_start, p.e_vertex, p.scan_rate,
                                     p.cycles);
      t_global += wf.duration();
    }
    slots[c].t_stop = t_global;
  }

  // Gather compatible chronoamperometric oxidase channels into lockstep
  // lane groups for the batched SoA kernel. Compatibility = node-identical
  // grids plus equal duration and sample rate (one shared step loop and
  // sampling clock); everything else -- CV channels, direct probes, CYP
  // panels -- keeps the scalar per-channel path. Grouping is a pure
  // function of the inputs, and lane membership cannot leak into results
  // (per-channel run ids seed all randomness), so every width yields
  // bitwise-identical scans.
  const std::size_t lane_width =
      config_.batch_lanes == 0 ? kDefaultPanelLanes : config_.batch_lanes;
  std::vector<std::vector<std::size_t>> jobs;
  jobs.reserve(n);
  if (lane_width > 1) {
    std::vector<std::vector<std::size_t>> classes;
    for (std::size_t c = 0; c < n; ++c) {
      const auto* ox = dynamic_cast<const bio::OxidaseProbe*>(channels[c].probe);
      if (ox == nullptr ||
          !std::holds_alternative<ChronoamperometryProtocol>(protocols[c])) {
        jobs.push_back({c});
        continue;
      }
      const auto& p = std::get<ChronoamperometryProtocol>(protocols[c]);
      bool placed = false;
      for (std::vector<std::size_t>& cls : classes) {
        const auto& rep_p =
            std::get<ChronoamperometryProtocol>(protocols[cls.front()]);
        const auto* rep_ox =
            static_cast<const bio::OxidaseProbe*>(channels[cls.front()].probe);
        if (rep_p.duration == p.duration &&
            rep_p.sample_rate == p.sample_rate &&
            bio::OxidaseLaneBatch::compatible(*rep_ox, *ox)) {
          cls.push_back(c);
          placed = true;
          break;
        }
      }
      if (!placed) classes.push_back({c});
    }
    // Chunk each compatibility class to the lane width; ragged tails simply
    // form a narrower batch, and singleton chunks take the scalar path.
    for (std::vector<std::size_t>& cls : classes) {
      for (std::size_t begin = 0; begin < cls.size(); begin += lane_width) {
        const std::size_t end = std::min(begin + lane_width, cls.size());
        jobs.emplace_back(cls.begin() + static_cast<std::ptrdiff_t>(begin),
                          cls.begin() + static_cast<std::ptrdiff_t>(end));
      }
    }
  } else {
    for (std::size_t c = 0; c < n; ++c) jobs.push_back({c});
  }

  PanelScanResult result;
  result.entries.resize(n);
  result.total_time = t_global;
  const BatchRunner runner(parallelism);
  runner.run(jobs.size(), [&](std::size_t j) {
    const std::vector<std::size_t>& group = jobs[j];
    if (group.size() == 1) {
      const std::size_t c = group.front();
      result.entries[c] = run_panel_entry(base_id + c + 1, channels[c],
                                          protocols[c], *frontends[c], mux,
                                          slots[c]);
    } else {
      run_panel_lane_group(group, base_id, channels, protocols, frontends,
                           mux, slots, result.entries);
    }
  });
  return result;
}

double protocol_duration(const ChannelProtocol& p) {
  if (std::holds_alternative<ChronoamperometryProtocol>(p)) {
    return std::get<ChronoamperometryProtocol>(p).duration;
  }
  const auto& cv = std::get<CyclicVoltammetryProtocol>(p);
  return 2.0 * std::fabs(cv.e_vertex - cv.e_start) / cv.scan_rate *
         static_cast<double>(cv.cycles);
}

}  // namespace idp::sim
