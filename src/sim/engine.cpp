/// \file engine.cpp
/// Measurement engine implementation: co-simulates probe electrochemistry
/// at millisecond steps with the Fig. 2 acquisition chain (potentiostat,
/// mux, TIA + ADC, noise).

#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "afe/waveform.hpp"
#include "sim/batch.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace idp::sim {

namespace {
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;
}

/// Per-run noise generators: independent white noise for the signal and
/// blank paths plus one *shared* drift process (same chamber, same solution)
/// that correlated double sampling can cancel.
struct MeasurementEngine::NoiseState {
  util::Rng white_signal;
  util::Rng white_blank;
  util::DriftProcess drift;
  double white_rms;
  bool enabled;

  /// `white_mult` inflates the electrochemical white noise (interference
  /// storms); 1.0 -- the pristine default -- multiplies out exactly.
  NoiseState(const EngineConfig& cfg, const bio::Probe& probe,
             std::uint64_t run_id, double white_mult)
      : white_signal(cfg.seed + run_id * kSeedStride),
        white_blank(cfg.seed + run_id * kSeedStride + 1),
        drift(cfg.drift_scale * probe.blank_noise_rms(), cfg.drift_tau,
              cfg.seed + run_id * kSeedStride + 2),
        white_rms(probe.blank_noise_rms() * white_mult),
        enabled(cfg.sensor_noise) {}

  /// Advance shared drift by one sample period.
  double step_drift(double dt) { return enabled ? drift.step(dt) : 0.0; }

  double signal_white() { return enabled ? white_signal.gaussian(white_rms) : 0.0; }
  double blank_white() { return enabled ? white_blank.gaussian(white_rms) : 0.0; }
};

MeasurementEngine::MeasurementEngine(EngineConfig config) : config_(config) {
  util::require(config_.chem_dt > 0.0, "chem_dt must be positive");
  util::require(config_.drift_scale >= 0.0, "drift_scale must be >= 0");
  util::require(config_.drift_tau > 0.0, "drift_tau must be positive");
}

namespace {

/// Sampling instants are derived from an integer sample counter so that the
/// k-th sample lands at exactly (k+1)*period -- accumulating `next += period`
/// drifts by one ulp per sample over long runs.
struct SamplingClock {
  double period;
  std::size_t samples = 0;
  explicit SamplingClock(double rate) : period(1.0 / rate) {}
  double next() const { return static_cast<double>(samples + 1) * period; }
  bool due(double t) const { return t >= next(); }
  void advance() { ++samples; }
};

}  // namespace

std::uint64_t MeasurementEngine::reserve_run_ids(std::size_t n) {
  const std::uint64_t base = run_counter_;
  run_counter_ += n;
  return base;
}

Trace MeasurementEngine::run_chronoamperometry(
    Channel channel, const ChronoamperometryProtocol& protocol,
    afe::AnalogFrontEnd& fe, std::span<const InjectionEvent> injections) {
  return run_chronoamperometry_seeded(++run_counter_, channel, protocol, fe,
                                      injections);
}

Trace MeasurementEngine::run_chronoamperometry_seeded(
    std::uint64_t run_id, Channel channel,
    const ChronoamperometryProtocol& protocol, afe::AnalogFrontEnd& fe,
    std::span<const InjectionEvent> injections) const {
  util::require(channel.probe != nullptr, "channel has no probe");
  util::require(protocol.duration > 0.0 && protocol.sample_rate > 0.0,
                "invalid protocol");
  const fault::SensorState& sensor = channel.sensor;
  bio::Probe& probe = *channel.probe;
  probe.apply_sensor_state(sensor);
  probe.reset();
  fe.set_drift(sensor.afe_gain, sensor.afe_offset_A);

  NoiseState noise(config_, probe, run_id, sensor.storm_noise_mult);
  afe::Potentiostat pstat(config_.potentiostat);

  std::vector<InjectionEvent> pending(injections.begin(), injections.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const auto& a, const auto& b) { return a.time < b.time; });
  std::size_t next_injection = 0;

  Trace trace;
  trace.reserve(static_cast<std::size_t>(
                    std::ceil(protocol.duration * protocol.sample_rate)) +
                1);
  SamplingClock clock(protocol.sample_rate);
  const double dt = config_.chem_dt;
  double i_prev = 0.0;
  const auto n_steps =
      static_cast<std::size_t>(std::ceil(protocol.duration / dt));
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    while (next_injection < pending.size() &&
           pending[next_injection].time <= t) {
      probe.set_bulk_concentration(pending[next_injection].target,
                                   pending[next_injection].concentration);
      ++next_injection;
    }
    // Reference-electrode drift: the interface sees a shifted potential
    // while the instrument still believes protocol.potential.
    const double e_applied =
        pstat.applied_potential(protocol.potential, i_prev,
                                config_.cell_impedance) +
        sensor.reference_shift_V;
    const double i_far = probe.step(e_applied, dt);
    i_prev = i_far;

    if (clock.due(t + dt)) {
      const double drift = noise.step_drift(clock.period);
      const double i_sig =
          i_far + noise.signal_white() + drift + sensor.storm_current_A;
      // The blank electrode shares solution drift; for directly
      // electroactive targets it also collects part of the signal itself
      // (the Section II-C caveat on CDS). Interference storms are
      // solution-borne, so both electrodes collect them (which is exactly
      // what CDS can exploit).
      const double i_blank = probe.blank_current() +
                             probe.blank_signal_fraction() *
                                 (i_far - probe.blank_current()) +
                             noise.blank_white() + drift +
                             sensor.storm_current_A;
      trace.push(clock.next(), fe.sample(i_sig, i_blank));
      clock.advance();
    }
  }
  return trace;
}

CvCurve MeasurementEngine::run_cyclic_voltammetry(
    Channel channel, const CyclicVoltammetryProtocol& protocol,
    afe::AnalogFrontEnd& fe) {
  return run_cyclic_voltammetry_seeded(++run_counter_, channel, protocol, fe);
}

CvCurve MeasurementEngine::run_cyclic_voltammetry_seeded(
    std::uint64_t run_id, Channel channel,
    const CyclicVoltammetryProtocol& protocol, afe::AnalogFrontEnd& fe) const {
  util::require(channel.probe != nullptr, "channel has no probe");
  util::require(protocol.sample_rate > 0.0, "invalid protocol");
  const fault::SensorState& sensor = channel.sensor;
  bio::Probe& probe = *channel.probe;
  probe.apply_sensor_state(sensor);
  probe.reset();
  fe.set_drift(sensor.afe_gain, sensor.afe_offset_A);

  NoiseState noise(config_, probe, run_id, sensor.storm_noise_mult);
  afe::Potentiostat pstat(config_.potentiostat);
  const afe::TriangleWaveform wf(protocol.e_start, protocol.e_vertex,
                                 protocol.scan_rate, protocol.cycles);

  CvCurve curve;
  curve.reserve(
      static_cast<std::size_t>(std::ceil(wf.duration() * protocol.sample_rate)) +
      1);
  SamplingClock clock(protocol.sample_rate);
  const double dt = config_.chem_dt;
  double i_prev = 0.0;
  const auto n_steps = static_cast<std::size_t>(std::ceil(wf.duration() / dt));
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    const double e_set = wf.value(t);
    // The recorded curve keeps the *programmed* potential; only the probe
    // sees the reference-drift shift.
    const double e_applied =
        pstat.applied_potential(e_set, i_prev, config_.cell_impedance) +
        sensor.reference_shift_V;
    double i_true = probe.step(e_applied, dt);
    if (config_.charging_current && channel.electrode != nullptr) {
      i_true += channel.electrode->charging_current(
          protocol.scan_rate * static_cast<double>(wf.direction(t)));
    }
    i_prev = i_true;

    if (clock.due(t + dt)) {
      const double drift = noise.step_drift(clock.period);
      const double i_sig =
          i_true + noise.signal_white() + drift + sensor.storm_current_A;
      const double i_blank = probe.blank_current() +
                             probe.blank_signal_fraction() *
                                 (i_true - probe.blank_current()) +
                             noise.blank_white() + drift +
                             sensor.storm_current_A;
      const double t_sample = clock.next();
      curve.push(t_sample, wf.value(t_sample), fe.sample(i_sig, i_blank));
      clock.advance();
    }
  }
  return curve;
}

PanelEntryResult MeasurementEngine::run_panel_entry(
    std::uint64_t run_id, Channel channel, const ChannelProtocol& protocol,
    afe::AnalogFrontEnd& fe, const afe::AnalogMux& mux,
    const PanelSlot& slot) const {
  PanelEntryResult entry;
  entry.probe_name = channel.probe->name();
  entry.technique = channel.probe->technique();
  entry.start_time = slot.t_start;
  entry.stop_time = slot.t_stop;

  // The charge-injection artifact decays from the switch instant; fold it
  // into the digitised samples while shifting the channel-local timeline
  // onto the global one -- in place, no copy of the trace.
  const double settle = mux.spec().settle_time;
  if (std::holds_alternative<ChronoamperometryProtocol>(protocol)) {
    const auto& p = std::get<ChronoamperometryProtocol>(protocol);
    Trace raw = run_chronoamperometry_seeded(run_id, channel, p, fe);
    std::vector<double>& time = raw.time_mut();
    std::vector<double>& value = raw.value_mut();
    for (std::size_t i = 0; i < time.size(); ++i) {
      const double local_t = time[i];
      value[i] += mux.artifact_current(slot.t_start + local_t - settle,
                                       slot.t_switch);
      time[i] = slot.t_start + local_t;
    }
    entry.amperogram = std::move(raw);
  } else {
    const auto& p = std::get<CyclicVoltammetryProtocol>(protocol);
    CvCurve raw = run_cyclic_voltammetry_seeded(run_id, channel, p, fe);
    std::vector<double>& time = raw.time_mut();
    std::vector<double>& current = raw.current_mut();
    for (std::size_t i = 0; i < time.size(); ++i) {
      const double local_t = time[i];
      current[i] += mux.artifact_current(slot.t_start + local_t - settle,
                                         slot.t_switch);
      time[i] = slot.t_start + local_t;
    }
    entry.voltammogram = std::move(raw);
  }
  return entry;
}

PanelScanResult MeasurementEngine::run_panel(
    std::span<const Channel> channels,
    std::span<const ChannelProtocol> protocols,
    std::span<afe::AnalogFrontEnd* const> frontends, afe::AnalogMux& mux,
    std::size_t parallelism) {
  util::require(channels.size() == protocols.size(),
                "one protocol per channel required");
  util::require(channels.size() == frontends.size(),
                "one front end per channel required");
  util::require(channels.size() <= mux.spec().channels,
                "more channels than the mux supports");
  const std::size_t n = channels.size();

  // Schedule the scan up front: mux switch instants, channel start/stop
  // times and run ids are all fixed before any chemistry runs, so the
  // channel measurements are independent jobs.
  const std::uint64_t base_id = reserve_run_ids(n);
  std::vector<PanelSlot> slots(n);
  double t_global = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    mux.select(c, t_global);
    slots[c].t_switch = mux.last_switch();
    t_global += mux.spec().settle_time;
    slots[c].t_start = t_global;
    if (std::holds_alternative<ChronoamperometryProtocol>(protocols[c])) {
      t_global += std::get<ChronoamperometryProtocol>(protocols[c]).duration;
    } else {
      const auto& p = std::get<CyclicVoltammetryProtocol>(protocols[c]);
      const afe::TriangleWaveform wf(p.e_start, p.e_vertex, p.scan_rate,
                                     p.cycles);
      t_global += wf.duration();
    }
    slots[c].t_stop = t_global;
  }

  PanelScanResult result;
  result.entries.resize(n);
  result.total_time = t_global;
  const BatchRunner runner(parallelism);
  runner.run(n, [&](std::size_t c) {
    result.entries[c] = run_panel_entry(base_id + c + 1, channels[c],
                                        protocols[c], *frontends[c], mux,
                                        slots[c]);
  });
  return result;
}

double protocol_duration(const ChannelProtocol& p) {
  if (std::holds_alternative<ChronoamperometryProtocol>(p)) {
    return std::get<ChronoamperometryProtocol>(p).duration;
  }
  const auto& cv = std::get<CyclicVoltammetryProtocol>(p);
  return 2.0 * std::fabs(cv.e_vertex - cv.e_start) / cv.scan_rate *
         static_cast<double>(cv.cycles);
}

}  // namespace idp::sim
