/// \file engine.cpp
/// Measurement engine implementation: co-simulates probe electrochemistry
/// at millisecond steps with the Fig. 2 acquisition chain (potentiostat,
/// mux, TIA + ADC, noise).

#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "afe/waveform.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace idp::sim {

namespace {
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;
}

/// Per-run noise generators: independent white noise for the signal and
/// blank paths plus one *shared* drift process (same chamber, same solution)
/// that correlated double sampling can cancel.
struct MeasurementEngine::NoiseState {
  util::Rng white_signal;
  util::Rng white_blank;
  util::DriftProcess drift;
  double white_rms;
  bool enabled;

  NoiseState(const EngineConfig& cfg, const bio::Probe& probe,
             std::uint64_t run_id)
      : white_signal(cfg.seed + run_id * kSeedStride),
        white_blank(cfg.seed + run_id * kSeedStride + 1),
        drift(cfg.drift_scale * probe.blank_noise_rms(), cfg.drift_tau,
              cfg.seed + run_id * kSeedStride + 2),
        white_rms(probe.blank_noise_rms()),
        enabled(cfg.sensor_noise) {}

  /// Advance shared drift by one sample period.
  double step_drift(double dt) { return enabled ? drift.step(dt) : 0.0; }

  double signal_white() { return enabled ? white_signal.gaussian(white_rms) : 0.0; }
  double blank_white() { return enabled ? white_blank.gaussian(white_rms) : 0.0; }
};

MeasurementEngine::MeasurementEngine(EngineConfig config) : config_(config) {
  util::require(config_.chem_dt > 0.0, "chem_dt must be positive");
  util::require(config_.drift_scale >= 0.0, "drift_scale must be >= 0");
  util::require(config_.drift_tau > 0.0, "drift_tau must be positive");
}

namespace {

struct SamplingClock {
  double period;
  double next;
  explicit SamplingClock(double rate) : period(1.0 / rate), next(1.0 / rate) {}
  bool due(double t) const { return t >= next; }
  void advance() { next += period; }
};

}  // namespace

Trace MeasurementEngine::run_chronoamperometry(
    Channel channel, const ChronoamperometryProtocol& protocol,
    afe::AnalogFrontEnd& fe, std::span<const InjectionEvent> injections) {
  util::require(channel.probe != nullptr, "channel has no probe");
  util::require(protocol.duration > 0.0 && protocol.sample_rate > 0.0,
                "invalid protocol");
  bio::Probe& probe = *channel.probe;
  probe.reset();

  NoiseState noise(config_, probe, ++run_counter_);
  afe::Potentiostat pstat(config_.potentiostat);

  std::vector<InjectionEvent> pending(injections.begin(), injections.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const auto& a, const auto& b) { return a.time < b.time; });
  std::size_t next_injection = 0;

  Trace trace;
  SamplingClock clock(protocol.sample_rate);
  const double dt = config_.chem_dt;
  double i_prev = 0.0;
  const auto n_steps =
      static_cast<std::size_t>(std::ceil(protocol.duration / dt));
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    while (next_injection < pending.size() &&
           pending[next_injection].time <= t) {
      probe.set_bulk_concentration(pending[next_injection].target,
                                   pending[next_injection].concentration);
      ++next_injection;
    }
    const double e_applied = pstat.applied_potential(
        protocol.potential, i_prev, config_.cell_impedance);
    const double i_far = probe.step(e_applied, dt);
    i_prev = i_far;

    if (clock.due(t + dt)) {
      const double drift = noise.step_drift(clock.period);
      const double i_sig = i_far + noise.signal_white() + drift;
      // The blank electrode shares solution drift; for directly
      // electroactive targets it also collects part of the signal itself
      // (the Section II-C caveat on CDS).
      const double i_blank = probe.blank_current() +
                             probe.blank_signal_fraction() *
                                 (i_far - probe.blank_current()) +
                             noise.blank_white() + drift;
      trace.push(clock.next, fe.sample(i_sig, i_blank));
      clock.advance();
    }
  }
  return trace;
}

CvCurve MeasurementEngine::run_cyclic_voltammetry(
    Channel channel, const CyclicVoltammetryProtocol& protocol,
    afe::AnalogFrontEnd& fe) {
  util::require(channel.probe != nullptr, "channel has no probe");
  util::require(protocol.sample_rate > 0.0, "invalid protocol");
  bio::Probe& probe = *channel.probe;
  probe.reset();

  NoiseState noise(config_, probe, ++run_counter_);
  afe::Potentiostat pstat(config_.potentiostat);
  const afe::TriangleWaveform wf(protocol.e_start, protocol.e_vertex,
                                 protocol.scan_rate, protocol.cycles);

  CvCurve curve;
  SamplingClock clock(protocol.sample_rate);
  const double dt = config_.chem_dt;
  double i_prev = 0.0;
  const auto n_steps = static_cast<std::size_t>(std::ceil(wf.duration() / dt));
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    const double e_set = wf.value(t);
    const double e_applied =
        pstat.applied_potential(e_set, i_prev, config_.cell_impedance);
    double i_true = probe.step(e_applied, dt);
    if (config_.charging_current && channel.electrode != nullptr) {
      i_true += channel.electrode->charging_current(
          protocol.scan_rate * static_cast<double>(wf.direction(t)));
    }
    i_prev = i_true;

    if (clock.due(t + dt)) {
      const double drift = noise.step_drift(clock.period);
      const double i_sig = i_true + noise.signal_white() + drift;
      const double i_blank = probe.blank_current() +
                             probe.blank_signal_fraction() *
                                 (i_true - probe.blank_current()) +
                             noise.blank_white() + drift;
      curve.push(clock.next, wf.value(clock.next), fe.sample(i_sig, i_blank));
      clock.advance();
    }
  }
  return curve;
}

PanelScanResult MeasurementEngine::run_panel(
    std::span<const Channel> channels,
    std::span<const ChannelProtocol> protocols,
    std::span<afe::AnalogFrontEnd* const> frontends, afe::AnalogMux& mux) {
  util::require(channels.size() == protocols.size(),
                "one protocol per channel required");
  util::require(channels.size() == frontends.size(),
                "one front end per channel required");
  util::require(channels.size() <= mux.spec().channels,
                "more channels than the mux supports");

  PanelScanResult result;
  double t_global = 0.0;
  for (std::size_t c = 0; c < channels.size(); ++c) {
    mux.select(c, t_global);
    t_global += mux.spec().settle_time;

    PanelEntryResult entry;
    entry.probe_name = channels[c].probe->name();
    entry.technique = channels[c].probe->technique();
    entry.start_time = t_global;

    // The charge-injection artifact decays from the switch instant; add it
    // to the digitised samples by re-running through a thin adapter: the
    // simplest faithful model is to fold it into the blank-corrected signal
    // after the run, so we temporarily wrap the front end sampling here.
    afe::AnalogFrontEnd& fe = *frontends[c];
    if (std::holds_alternative<ChronoamperometryProtocol>(protocols[c])) {
      const auto& p = std::get<ChronoamperometryProtocol>(protocols[c]);
      Trace raw = run_chronoamperometry(channels[c], p, fe);
      Trace shifted;
      for (std::size_t i = 0; i < raw.size(); ++i) {
        const double local_t = raw.time_at(i);
        const double artifact = mux.artifact_current(t_global + local_t -
                                                     mux.spec().settle_time);
        shifted.push(t_global + local_t, raw.value_at(i) + artifact);
      }
      entry.amperogram = std::move(shifted);
      t_global += p.duration;
    } else {
      const auto& p = std::get<CyclicVoltammetryProtocol>(protocols[c]);
      CvCurve raw = run_cyclic_voltammetry(channels[c], p, fe);
      CvCurve shifted;
      for (std::size_t i = 0; i < raw.size(); ++i) {
        const double local_t = raw.time()[i];
        const double artifact = mux.artifact_current(t_global + local_t -
                                                     mux.spec().settle_time);
        shifted.push(t_global + local_t, raw.potential()[i],
                     raw.current()[i] + artifact);
      }
      entry.voltammogram = std::move(shifted);
      const afe::TriangleWaveform wf(p.e_start, p.e_vertex, p.scan_rate,
                                     p.cycles);
      t_global += wf.duration();
    }
    entry.stop_time = t_global;
    result.entries.push_back(std::move(entry));
  }
  result.total_time = t_global;
  return result;
}

double protocol_duration(const ChannelProtocol& p) {
  if (std::holds_alternative<ChronoamperometryProtocol>(p)) {
    return std::get<ChronoamperometryProtocol>(p).duration;
  }
  const auto& cv = std::get<CyclicVoltammetryProtocol>(p);
  return 2.0 * std::fabs(cv.e_vertex - cv.e_start) / cv.scan_rate *
         static_cast<double>(cv.cycles);
}

}  // namespace idp::sim
