/// \file protocol.hpp
/// Measurement protocols: the experiment descriptions the engine executes
/// (Section I-B techniques plus the multiplexed panel scan of Fig. 4).
#pragma once

#include <string>
#include <variant>
#include <vector>

namespace idp::sim {

/// Constant-potential measurement (oxidase probes, Table I).
struct ChronoamperometryProtocol {
  double potential = 0.65;     ///< applied WE potential [V vs Ag/AgCl]
  double duration = 60.0;      ///< [s]
  double sample_rate = 10.0;   ///< ADC rate [Hz]
};

/// Potential-sweep measurement (CYP probes, Table II). The paper limits
/// faithful cell response to ~20 mV/s; the engine runs any rate so the
/// ablation bench can demonstrate what breaks beyond it.
struct CyclicVoltammetryProtocol {
  double e_start = 0.1;        ///< [V]
  double e_vertex = -0.9;      ///< [V]
  double scan_rate = 20.0e-3;  ///< [V/s]
  int cycles = 1;
  double sample_rate = 10.0;   ///< ADC rate [Hz]
};

/// A timed change of one target's bulk concentration (sample injection into
/// the measurement cell, as in Fig. 3).
struct InjectionEvent {
  double time = 0.0;           ///< [s] since protocol start
  std::string target;          ///< target name, e.g. "glucose"
  double concentration = 0.0;  ///< new bulk concentration [mol/m^3]
};

/// Per-channel plan inside a multiplexed panel scan.
using ChannelProtocol =
    std::variant<ChronoamperometryProtocol, CyclicVoltammetryProtocol>;

/// Duration of a channel protocol [s].
double protocol_duration(const ChannelProtocol& p);

}  // namespace idp::sim
