/// \file trace.hpp
/// Time-series containers produced by the measurement engine: amperometric
/// traces (current vs time, Fig. 3) and voltammograms (current vs potential).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace idp::sim {

/// Sampled current-vs-time record.
class Trace {
 public:
  void push(double t, double value);
  std::size_t size() const { return time_.size(); }
  bool empty() const { return time_.empty(); }

  /// Pre-size the backing storage (the engine knows the sample count from
  /// the protocol, so acquisition loops never reallocate).
  void reserve(std::size_t n);

  const std::vector<double>& time() const { return time_; }
  const std::vector<double>& value() const { return value_; }

  /// Mutable sample access for in-place post-processing (the panel scan
  /// shifts local times onto the global timeline and adds the mux artifact
  /// without copying). Callers must keep times strictly increasing.
  std::vector<double>& time_mut() { return time_; }
  std::vector<double>& value_mut() { return value_; }

  double time_at(std::size_t i) const { return time_.at(i); }
  double value_at(std::size_t i) const { return value_.at(i); }

  /// Linear interpolation of the value at time t (clamped at the ends).
  double interpolate(double t) const;

  /// Mean of the samples with time in [t0, t1].
  double mean_in_window(double t0, double t1) const;

  /// Values restricted to [t0, t1] (copy).
  std::vector<double> window(double t0, double t1) const;

  /// Write a two-column CSV (throws on I/O error).
  void to_csv(const std::string& path, const std::string& value_label) const;

 private:
  std::vector<double> time_;
  std::vector<double> value_;
};

/// Sampled voltammogram: synchronized time / programmed potential / current.
class CvCurve {
 public:
  void push(double t, double potential, double current);
  std::size_t size() const { return time_.size(); }
  bool empty() const { return time_.empty(); }

  /// Pre-size the backing storage for a known sample count.
  void reserve(std::size_t n);

  const std::vector<double>& time() const { return time_; }
  const std::vector<double>& potential() const { return potential_; }
  const std::vector<double>& current() const { return current_; }

  /// Mutable sample access for in-place post-processing (see Trace).
  std::vector<double>& time_mut() { return time_; }
  std::vector<double>& current_mut() { return current_; }

  /// Indices [first, last) of sweep segment `k` (0 = first half-sweep of the
  /// first cycle, 1 = its return branch, ...). Segments are detected from
  /// potential direction changes.
  struct Segment {
    std::size_t first = 0;
    std::size_t last = 0;   ///< one past the end
    bool forward = true;    ///< potential moving away from the start value
  };
  std::vector<Segment> segments() const;

  /// Write a three-column CSV (throws on I/O error).
  void to_csv(const std::string& path) const;

 private:
  std::vector<double> time_;
  std::vector<double> potential_;
  std::vector<double> current_;
};

}  // namespace idp::sim
