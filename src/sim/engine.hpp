/// \file engine.hpp
/// The measurement engine: co-simulates the electrochemical probe physics
/// (millisecond steps) with the acquisition chain of Fig. 2 (potentiostat
/// regulation, multiplexing, TIA + ADC sampling, noise).
///
/// Time-scale separation: electrode electronics settle in microseconds while
/// the chemistry evolves over seconds, so the engine treats the potentiostat
/// and TIA quasi-statically and reserves the microsecond-resolution loop
/// simulation for the dedicated Fig. 1 bench (Potentiostat::step_response).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "afe/frontend.hpp"
#include "afe/mux.hpp"
#include "afe/potentiostat.hpp"
#include "bio/probe.hpp"
#include "chem/cell.hpp"
#include "chem/electrode.hpp"
#include "sim/protocol.hpp"
#include "sim/trace.hpp"

namespace idp::sim {

/// One working electrode hooked to the engine: the probe physics plus the
/// (optional) physical electrode used for capacitive background.
struct Channel {
  bio::Probe* probe = nullptr;             ///< non-owning, required
  const chem::Electrode* electrode = nullptr;  ///< optional: adds i_dl on sweeps
};

/// Result of a multiplexed panel scan (Fig. 4 usage).
struct PanelEntryResult {
  std::string probe_name;
  bio::Technique technique;
  Trace amperogram;   ///< filled for chronoamperometry channels
  CvCurve voltammogram;  ///< filled for CV channels
  double start_time = 0.0;
  double stop_time = 0.0;
};

struct PanelScanResult {
  std::vector<PanelEntryResult> entries;
  double total_time = 0.0;  ///< wall-clock of the whole scan incl. settling
};

/// Measurement engine configuration.
struct EngineConfig {
  double chem_dt = 5.0e-3;     ///< physics step [s]
  std::uint64_t seed = 1234;   ///< sensor-noise seed
  bool sensor_noise = true;    ///< add electrochemical blank noise
  bool charging_current = true;  ///< add C_dl * dE/dt on sweeps
  /// Shared-solution drift: Ornstein-Uhlenbeck process whose RMS is
  /// drift_scale times the probe's blank noise, correlated with time
  /// constant drift_tau. The same realisation is seen by every channel in
  /// the chamber (which is what CDS exploits). The default 1.0 makes the
  /// blank-to-blank spread track the probe's designed sigma_b, landing the
  /// Eq. 5 LODs near their Table III values.
  double drift_scale = 1.0;
  double drift_tau = 60.0;     ///< [s]
  afe::PotentiostatSpec potentiostat;
  chem::CellImpedance cell_impedance;
};

/// Executes protocols against channels through an analog front end.
class MeasurementEngine {
 public:
  explicit MeasurementEngine(EngineConfig config = EngineConfig{});

  /// Fixed-potential measurement with optional timed injections.
  /// The returned trace holds digitised current estimates at the ADC rate.
  Trace run_chronoamperometry(Channel channel,
                              const ChronoamperometryProtocol& protocol,
                              afe::AnalogFrontEnd& fe,
                              std::span<const InjectionEvent> injections = {});

  /// Potential-sweep measurement; the curve records the *programmed*
  /// potential (what the instrument reports) against digitised current.
  CvCurve run_cyclic_voltammetry(Channel channel,
                                 const CyclicVoltammetryProtocol& protocol,
                                 afe::AnalogFrontEnd& fe);

  /// Sequentially activate every channel through a shared mux (the Fig. 4
  /// five-electrode platform). Channels run their own protocol through their
  /// own front end (oxidase- and CYP-grade readouts coexist on one
  /// platform); mux settling time is inserted between channels and the
  /// charge-injection artifact corrupts the first samples after each switch.
  PanelScanResult run_panel(std::span<const Channel> channels,
                            std::span<const ChannelProtocol> protocols,
                            std::span<afe::AnalogFrontEnd* const> frontends,
                            afe::AnalogMux& mux);

  const EngineConfig& config() const { return config_; }

 private:
  struct NoiseState;
  EngineConfig config_;
  std::uint64_t run_counter_ = 0;
};

}  // namespace idp::sim
