/// \file engine.hpp
/// The measurement engine: co-simulates the electrochemical probe physics
/// (millisecond steps) with the acquisition chain of Fig. 2 (potentiostat
/// regulation, multiplexing, TIA + ADC sampling, noise).
///
/// Time-scale separation: electrode electronics settle in microseconds while
/// the chemistry evolves over seconds, so the engine treats the potentiostat
/// and TIA quasi-statically and reserves the microsecond-resolution loop
/// simulation for the dedicated Fig. 1 bench (Potentiostat::step_response).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "afe/frontend.hpp"
#include "afe/mux.hpp"
#include "afe/potentiostat.hpp"
#include "bio/probe.hpp"
#include "chem/cell.hpp"
#include "chem/electrode.hpp"
#include "fault/sensor_state.hpp"
#include "sim/protocol.hpp"
#include "sim/trace.hpp"

namespace idp::sim {

/// One working electrode hooked to the engine: the probe physics plus the
/// (optional) physical electrode used for capacitive background and the
/// sensor's current degradation state (fault subsystem). The default state
/// is the identity -- a pristine sensor -- and leaves every measurement
/// bitwise unchanged.
struct Channel {
  bio::Probe* probe = nullptr;             ///< non-owning, required
  const chem::Electrode* electrode = nullptr;  ///< optional: adds i_dl on sweeps
  fault::SensorState sensor{};             ///< condition consulted at scan time
};

/// Result of a multiplexed panel scan (Fig. 4 usage).
struct PanelEntryResult {
  std::string probe_name;
  bio::Technique technique;
  Trace amperogram;   ///< filled for chronoamperometry channels
  CvCurve voltammogram;  ///< filled for CV channels
  double start_time = 0.0;
  double stop_time = 0.0;
};

struct PanelScanResult {
  std::vector<PanelEntryResult> entries;
  double total_time = 0.0;  ///< wall-clock of the whole scan incl. settling
};

/// Measurement engine configuration.
struct EngineConfig {
  double chem_dt = 5.0e-3;     ///< physics step [s]
  std::uint64_t seed = 1234;   ///< sensor-noise seed
  bool sensor_noise = true;    ///< add electrochemical blank noise
  bool charging_current = true;  ///< add C_dl * dE/dt on sweeps
  /// Shared-solution drift: Ornstein-Uhlenbeck process whose RMS is
  /// drift_scale times the probe's blank noise, correlated with time
  /// constant drift_tau. The same realisation is seen by every channel in
  /// the chamber (which is what CDS exploits). The default 1.0 makes the
  /// blank-to-blank spread track the probe's designed sigma_b, landing the
  /// Eq. 5 LODs near their Table III values.
  double drift_scale = 1.0;
  double drift_tau = 60.0;     ///< [s]
  /// Lockstep lane width of the batched SoA panel kernel: compatible
  /// chronoamperometric oxidase channels (node-identical grids, same
  /// duration and sample rate) are gathered in groups of up to this many
  /// channels and stepped through one structure-of-arrays tridiagonal
  /// solve. 0 picks the default width (8); 1 disables cross-channel
  /// batching (the scalar per-channel path). Results are bitwise identical
  /// at every width -- the kernel-equivalence property test and the `simd`
  /// determinism-sweep workload pin this.
  std::size_t batch_lanes = 0;
  afe::PotentiostatSpec potentiostat;
  chem::CellImpedance cell_impedance;
};

/// Executes protocols against channels through an analog front end.
///
/// Concurrency model: every measurement derives its noise realisation from
/// an explicit *run id* (seed = config.seed + run_id * stride). The
/// convenience overloads draw ids from an internal counter -- the legacy
/// sequential behaviour -- while the `_seeded` variants take the id from the
/// caller and are `const`, so independent measurements (distinct probes and
/// front ends) can execute concurrently on one engine. `reserve_run_ids`
/// hands out a contiguous id block up front, which keeps batched results
/// bitwise identical to sequential execution at any parallelism.
class MeasurementEngine {
 public:
  explicit MeasurementEngine(EngineConfig config = EngineConfig{});

  /// Fixed-potential measurement with optional timed injections.
  /// The returned trace holds digitised current estimates at the ADC rate.
  Trace run_chronoamperometry(Channel channel,
                              const ChronoamperometryProtocol& protocol,
                              afe::AnalogFrontEnd& fe,
                              std::span<const InjectionEvent> injections = {});

  /// Potential-sweep measurement; the curve records the *programmed*
  /// potential (what the instrument reports) against digitised current.
  CvCurve run_cyclic_voltammetry(Channel channel,
                                 const CyclicVoltammetryProtocol& protocol,
                                 afe::AnalogFrontEnd& fe);

  /// Explicit-run-id variants (thread-safe w.r.t. the engine: channel,
  /// probe and front end still belong exclusively to the caller).
  Trace run_chronoamperometry_seeded(
      std::uint64_t run_id, Channel channel,
      const ChronoamperometryProtocol& protocol, afe::AnalogFrontEnd& fe,
      std::span<const InjectionEvent> injections = {}) const;
  CvCurve run_cyclic_voltammetry_seeded(
      std::uint64_t run_id, Channel channel,
      const CyclicVoltammetryProtocol& protocol,
      afe::AnalogFrontEnd& fe) const;

  /// Reserve `n` consecutive run ids; returns the pre-reservation counter
  /// value, so the reserved ids are base+1 .. base+n -- exactly what the
  /// counter-based overloads would have consumed sequentially.
  std::uint64_t reserve_run_ids(std::size_t n);

  /// Activate every channel through a shared mux (the Fig. 4 five-electrode
  /// platform). Channels run their own protocol through their own front end
  /// (oxidase- and CYP-grade readouts coexist on one platform); mux settling
  /// time is inserted between channels and the charge-injection artifact
  /// corrupts the first samples after each switch. The scan timeline and all
  /// run ids are scheduled up front, so with `parallelism` > 1 the channel
  /// measurements execute concurrently with results bitwise identical to the
  /// sequential scan (parallelism 0 means hardware concurrency).
  PanelScanResult run_panel(std::span<const Channel> channels,
                            std::span<const ChannelProtocol> protocols,
                            std::span<afe::AnalogFrontEnd* const> frontends,
                            afe::AnalogMux& mux, std::size_t parallelism = 1);

  const EngineConfig& config() const { return config_; }

 private:
  struct NoiseState;
  /// Precomputed panel-scan timeline of one channel.
  struct PanelSlot {
    double t_switch = 0.0;  ///< mux switch instant seen by the artifact model
    double t_start = 0.0;   ///< first chemistry step (after settling)
    double t_stop = 0.0;    ///< end of the channel's protocol
  };

  PanelEntryResult run_panel_entry(std::uint64_t run_id, Channel channel,
                                   const ChannelProtocol& protocol,
                                   afe::AnalogFrontEnd& fe,
                                   const afe::AnalogMux& mux,
                                   const PanelSlot& slot) const;

  /// Run one lane group of compatible chronoamperometric oxidase channels
  /// in lockstep through the batched SoA kernel; fills entries[c] for every
  /// c in `group`. Per channel the sampled trace is bitwise identical to
  /// run_panel_entry with the same run id.
  void run_panel_lane_group(std::span<const std::size_t> group,
                            std::uint64_t base_id,
                            std::span<const Channel> channels,
                            std::span<const ChannelProtocol> protocols,
                            std::span<afe::AnalogFrontEnd* const> frontends,
                            const afe::AnalogMux& mux,
                            std::span<const PanelSlot> slots,
                            std::span<PanelEntryResult> entries) const;

  EngineConfig config_;
  std::uint64_t run_counter_ = 0;
};

}  // namespace idp::sim
