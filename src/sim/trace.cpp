/// \file trace.cpp
/// Trace container implementation: append, interpolation and windowed
/// statistics over amperometric traces and voltammograms.

#include "sim/trace.hpp"

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/interp.hpp"
#include "util/stats.hpp"

namespace idp::sim {

void Trace::reserve(std::size_t n) {
  time_.reserve(n);
  value_.reserve(n);
}

void Trace::push(double t, double value) {
  util::require(time_.empty() || t > time_.back(),
                "trace times must be strictly increasing");
  time_.push_back(t);
  value_.push_back(value);
}

double Trace::interpolate(double t) const {
  return util::interp_linear(time_, value_, t);
}

double Trace::mean_in_window(double t0, double t1) const {
  const auto w = window(t0, t1);
  return util::mean(w);
}

std::vector<double> Trace::window(double t0, double t1) const {
  std::vector<double> out;
  for (std::size_t i = 0; i < time_.size(); ++i) {
    if (time_[i] >= t0 && time_[i] <= t1) out.push_back(value_[i]);
  }
  return out;
}

void Trace::to_csv(const std::string& path,
                   const std::string& value_label) const {
  util::CsvWriter csv(path, {"time_s", value_label});
  for (std::size_t i = 0; i < time_.size(); ++i) {
    const double row[] = {time_[i], value_[i]};
    csv.write_row(row);
  }
}

void CvCurve::reserve(std::size_t n) {
  time_.reserve(n);
  potential_.reserve(n);
  current_.reserve(n);
}

void CvCurve::push(double t, double potential, double current) {
  util::require(time_.empty() || t > time_.back(),
                "curve times must be strictly increasing");
  time_.push_back(t);
  potential_.push_back(potential);
  current_.push_back(current);
}

std::vector<CvCurve::Segment> CvCurve::segments() const {
  std::vector<Segment> segs;
  if (potential_.size() < 3) return segs;
  std::size_t start = 0;
  int prev_dir = 0;
  for (std::size_t i = 1; i < potential_.size(); ++i) {
    const double de = potential_[i] - potential_[i - 1];
    const int dir = de > 0.0 ? 1 : (de < 0.0 ? -1 : prev_dir);
    if (prev_dir != 0 && dir != 0 && dir != prev_dir) {
      segs.push_back(Segment{start, i, segs.size() % 2 == 0});
      start = i - 1;
    }
    if (dir != 0) prev_dir = dir;
  }
  segs.push_back(Segment{start, potential_.size(), segs.size() % 2 == 0});
  return segs;
}

void CvCurve::to_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"time_s", "potential_V", "current_A"});
  for (std::size_t i = 0; i < time_.size(); ++i) {
    const double row[] = {time_[i], potential_[i], current_[i]};
    csv.write_row(row);
  }
}

}  // namespace idp::sim
