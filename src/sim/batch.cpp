/// \file batch.cpp
/// Batch runtime implementation: inline sequential execution at parallelism
/// 1, thread-pool fan-out with deterministic exception selection otherwise.

#include "sim/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/thread_pool.hpp"

namespace idp::sim {

BatchRunner::BatchRunner(std::size_t parallelism)
    : parallelism_(parallelism == 0 ? util::ThreadPool::default_parallelism()
                                    : parallelism) {}

void BatchRunner::run(std::size_t n,
                      const std::function<void(std::size_t)>& job) const {
  if (n == 0) return;
  const std::size_t workers = std::min(parallelism_, n);
  if (workers <= 1) {
    // Legacy sequential path: strict index order on the calling thread.
    // Failed jobs do not stop later ones, matching the parallel path's
    // contract (all jobs execute, lowest-index exception wins).
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        job(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  // Dynamic dispatch over a shared index counter. Scheduling order is
  // irrelevant to the results: jobs only write to their own slots.
  // The pool is per-run on purpose: a process-wide shared pool would
  // deadlock when a job itself runs a nested batch (the outer worker would
  // wait_idle on workers it occupies), and spawning workers costs
  // microseconds against measurement jobs that run for milliseconds to
  // seconds.
  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  util::ThreadPool pool(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          job(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace idp::sim
