/// \file request.hpp
/// The service runtime's request/response vocabulary: priority classes,
/// request kinds, the (tenant, patient, device) session key and the
/// deterministic request/response records everything else in src/serve/
/// is built from.
///
/// A Request is pure *content* -- who is asking, what to measure, at which
/// service-timeline instant, at which true analyte level -- and carries a
/// dense id that leases the request's disjoint run-id block (see
/// serve/service.hpp). A recorded request log is therefore replayable:
/// executing the same log against the same service configuration yields
/// bitwise identical responses at any parallelism and any completion
/// order. Wall-clock telemetry (queue wait, service time) is deliberately
/// kept *out* of Response and lives in serve/result_sink.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/library_ids.hpp"
#include "quant/quantifier.hpp"

namespace idp::serve {

/// Priority classes, in strict service order: a stat (emergency) request
/// is always dispatched before any waiting routine request, which beats
/// any waiting batch request. Within a class the queue is FIFO.
enum class Priority : std::uint8_t {
  kStat = 0,     ///< emergency single-patient reads
  kRoutine = 1,  ///< scheduled clinical monitoring
  kBatch = 2,    ///< research / reprocessing sweeps
};

inline constexpr std::size_t kPriorityCount = 3;

const char* to_string(Priority priority);

/// What a request asks the diagnostic engine to do.
enum class RequestKind : std::uint8_t {
  kPanelScan = 0,       ///< measure and quantify every panel channel
  kQuantifiedRead = 1,  ///< measure and quantify one channel
  kQcCheck = 2,         ///< blank + known standard through the aged sensor
};

const char* to_string(RequestKind kind);

/// Identity of one live sensor deployment: a tenant (hospital / trial
/// site), a patient within that tenant and a physical device on that
/// patient. The registry shards sessions by the hash of this key.
struct SessionKey {
  std::uint32_t tenant = 0;
  std::uint64_t patient = 0;
  std::uint32_t device = 0;

  friend auto operator<=>(const SessionKey&, const SessionKey&) = default;
};

/// Stable 64-bit mix of a session key (splitmix64 over the packed fields).
/// Used for registry sharding, degradation-site seeding and the
/// recalibration run-id slots -- never as a uniqueness guarantee.
std::uint64_t hash_of(const SessionKey& key);

/// One diagnostics request. `concentrations_mM` carries the true analyte
/// level(s) presented to the virtual sensor: one entry per panel channel
/// for kPanelScan, exactly one for kQuantifiedRead (channel selected by
/// `channel`), none for kQcCheck (the QC kit's blank and standard levels
/// are service configuration, not request content).
struct Request {
  std::uint64_t id = 0;  ///< dense, unique; leases the run-id block
  SessionKey session;
  Priority priority = Priority::kRoutine;
  RequestKind kind = RequestKind::kQuantifiedRead;
  std::uint32_t channel = 0;  ///< target channel for read / QC kinds
  double time_h = 0.0;        ///< service-timeline instant (drives sensor age)
  std::vector<double> concentrations_mM;
};

/// One measured + quantified channel of a response.
struct ChannelResult {
  std::uint32_t channel = 0;
  bio::TargetId target = bio::TargetId::kGlucose;
  double truth_mM = 0.0;  ///< level presented to the sensor (0 for QC std)
  double response = 0.0;  ///< scalar panel response
  quant::ConcentrationEstimate estimate;
};

/// The deterministic reply to one request: everything here is a pure
/// function of (request, service configuration), never of queueing or
/// scheduling -- the property the replay determinism sweep digests.
struct Response {
  std::uint64_t request_id = 0;
  SessionKey session;
  Priority priority = Priority::kRoutine;
  RequestKind kind = RequestKind::kQuantifiedRead;
  double time_h = 0.0;
  double sensor_age_days = 0.0;
  std::uint32_t calibration_epoch = 0;
  std::vector<ChannelResult> channels;

  /// QC checks only: standardised residuals of the blank and the known
  /// standard against the active calibration's prediction.
  double qc_blank_residual = 0.0;
  double qc_standard_residual = 0.0;

  /// OR of all channel estimate flags.
  quant::QuantFlag flags() const {
    quant::QuantFlag f = quant::QuantFlag::kNone;
    for (const ChannelResult& c : channels) f = f | c.estimate.flags;
    return f;
  }
};

}  // namespace idp::serve
