/// \file traffic.hpp
/// Deterministic synthetic traffic for the service runtime: an open-loop
/// mixed request log -- panel scans, quantified single-analyte reads and
/// QC checks at stat/routine/batch priorities -- from a configurable
/// population of sessions, with exponential inter-arrival gaps over a
/// service window. Request r of a spec depends only on (spec, r), so a
/// log is itself replayable content: the load bench, the example and the
/// determinism sweep all draw from here.
#pragma once

#include <vector>

#include "serve/request.hpp"

namespace idp::serve {

class DiagnosticsService;

/// Mix and population of a synthetic request log. Fractions are
/// probabilities; the remainders (routine priority, quantified reads) are
/// implied.
struct TrafficSpec {
  std::size_t requests = 1000;
  std::size_t sessions = 100;  ///< distinct (tenant, patient, device) triples
  std::uint32_t tenants = 4;
  std::uint32_t devices = 2;  ///< devices per patient
  std::uint64_t seed = 1;
  double duration_h = 24.0;  ///< arrival window (exponential gaps)

  double stat_fraction = 0.05;
  double batch_fraction = 0.20;  ///< routine = 1 - stat - batch

  double panel_fraction = 0.25;
  double qc_fraction = 0.10;  ///< quantified reads = 1 - panel - qc
};

/// Synthesize `spec.requests` requests against the service's panel:
/// concentrations are drawn uniformly inside each channel's calibrated
/// window (so quantification is exercised in-range), arrival times are
/// sorted, ids are dense 0..n-1 in arrival order. Deterministic per
/// (spec, service panel).
std::vector<Request> synthesize_traffic(const TrafficSpec& spec,
                                        const DiagnosticsService& service);

}  // namespace idp::serve
