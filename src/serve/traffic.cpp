/// \file traffic.cpp
/// Synthetic open-loop traffic generation.

#include "serve/traffic.hpp"

#include <cmath>

#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace idp::serve {

namespace {

/// Seed-domain tag so a user reusing one seed for traffic and the service
/// engine still gets independent streams.
constexpr std::uint64_t kTrafficSeedDomain = 0x13198a2e03707344ULL;

}  // namespace

std::vector<Request> synthesize_traffic(const TrafficSpec& spec,
                                        const DiagnosticsService& service) {
  util::require(spec.requests > 0, "traffic needs at least one request");
  util::require(spec.sessions > 0, "traffic needs at least one session");
  util::require(spec.tenants > 0 && spec.devices > 0,
                "traffic needs at least one tenant and one device");
  util::require(spec.duration_h > 0.0, "traffic window must be positive");
  util::require(spec.stat_fraction >= 0.0 && spec.batch_fraction >= 0.0 &&
                    spec.stat_fraction + spec.batch_fraction <= 1.0,
                "priority fractions must be probabilities summing <= 1");
  util::require(spec.panel_fraction >= 0.0 && spec.qc_fraction >= 0.0 &&
                    spec.panel_fraction + spec.qc_fraction <= 1.0,
                "kind fractions must be probabilities summing <= 1");

  const std::size_t n_channels = service.channel_count();
  std::vector<std::pair<double, double>> ranges;
  ranges.reserve(n_channels);
  for (std::size_t c = 0; c < n_channels; ++c) {
    ranges.push_back(service.calibrated_range_mM(c));
  }

  // Arrival process: exponential gaps with mean duration / requests (the
  // open-loop intensity), drawn from a dedicated sequential stream.
  // Request *content* below is keyed by (seed, index) alone, so growing a
  // log rescales arrival times but never changes what request r asks for.
  util::Rng arrivals(spec.seed + kTrafficSeedDomain);
  const double mean_gap_h =
      spec.duration_h / static_cast<double>(spec.requests);

  std::vector<Request> log;
  log.reserve(spec.requests);
  double t_h = 0.0;
  for (std::size_t r = 0; r < spec.requests; ++r) {
    t_h += -mean_gap_h * std::log(1.0 - arrivals.uniform(0.0, 1.0));

    // Request content draws from a per-request stream keyed by (seed, r):
    // content never depends on how many requests precede it.
    util::Rng rng(spec.seed + kTrafficSeedDomain +
                  (r + 1) * 0x9e3779b97f4a7c15ULL);

    Request request;
    request.id = r;
    request.time_h = t_h;

    const std::size_t s = rng.index(spec.sessions);
    request.session.tenant =
        static_cast<std::uint32_t>(s % spec.tenants);
    request.session.patient = s;
    request.session.device =
        static_cast<std::uint32_t>((s / spec.tenants) % spec.devices);

    const double u_priority = rng.uniform(0.0, 1.0);
    if (u_priority < spec.stat_fraction) {
      request.priority = Priority::kStat;
    } else if (u_priority > 1.0 - spec.batch_fraction) {
      request.priority = Priority::kBatch;
    } else {
      request.priority = Priority::kRoutine;
    }

    const double u_kind = rng.uniform(0.0, 1.0);
    if (u_kind < spec.panel_fraction) {
      request.kind = RequestKind::kPanelScan;
      request.concentrations_mM.reserve(n_channels);
      for (std::size_t c = 0; c < n_channels; ++c) {
        const auto [lo, hi] = ranges[c];
        request.concentrations_mM.push_back(
            rng.uniform(lo + 0.05 * (hi - lo), lo + 0.95 * (hi - lo)));
      }
    } else if (u_kind > 1.0 - spec.qc_fraction) {
      request.kind = RequestKind::kQcCheck;
      request.channel = static_cast<std::uint32_t>(rng.index(n_channels));
    } else {
      request.kind = RequestKind::kQuantifiedRead;
      request.channel = static_cast<std::uint32_t>(rng.index(n_channels));
      const auto [lo, hi] = ranges[request.channel];
      request.concentrations_mM.push_back(
          rng.uniform(lo + 0.05 * (hi - lo), lo + 0.95 * (hi - lo)));
    }
    log.push_back(std::move(request));
  }
  return log;
}

}  // namespace idp::serve
