/// \file service.hpp
/// The diagnostics service engine: turns one serve::Request into one
/// serve::Response by running the virtual measurement stack -- degraded
/// sensor state, campaign-grade probe and front end, measurement engine,
/// quantifier -- exactly the way the calibration campaigns measured.
///
/// Determinism contract (the service-layer extension of the PR 2-4
/// guarantee): every response is a pure function of (request, service
/// configuration). Request `id` leases a disjoint block of
/// `run_ids_per_request` run ids in the serve domain (2^42, next to the QC
/// domain 2^40 and the scenario-recalibration domain 2^41), and every
/// stochastic input of the measurement -- engine noise realisation,
/// front-end noise stream, degradation state -- derives from that lease,
/// the session key hash or the request content. Nothing depends on
/// arrival order, queue state, worker identity or which requests ran
/// before, so a replayed request log is bitwise identical at parallelism
/// 1, N and hardware (tests/determinism).
///
/// Session warm state: repeated requests from one (tenant, patient,
/// device) reuse the session's calibration epochs through the
/// SessionRegistry. Epoch 0 is the factory campaign shared by every
/// session (cached in the CalibrationStore); epochs >= 1 are per-session
/// field recalibrations -- the scheduled-maintenance counterpart of the
/// scenario layer's adaptive recalibration -- built on the sensor's
/// degraded state at the epoch boundary from run-id blocks in the serve
/// recalibration domain (2^43) owned by (session hash, channel, epoch).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fault/degradation.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "quant/calibration_store.hpp"
#include "serve/request.hpp"
#include "serve/session_registry.hpp"

namespace idp::serve {

/// Run-id domains of the service layer (see docs/ARCHITECTURE.md for the
/// full domain map).
inline constexpr std::uint64_t kServeRunDomain = 1ULL << 42;
inline constexpr std::uint64_t kServeRecalDomain = 1ULL << 43;

/// Seed-domain tag separating serve front-end noise streams from every
/// other consumer of the engine seed.
inline constexpr std::uint64_t kServeFrontendSeedDomain =
    0x243f6a8885a308d3ULL;

/// Odd-constant stride decorrelating neighbouring front-end seeds.
inline constexpr std::uint64_t kServeSeedStride = 0x9e3779b97f4a7c15ULL;

/// Upper bounds of the recalibration-block packing
/// (session-slot, channel, epoch) -> disjoint campaign block in the 2^43
/// domain. kSessionSlots * kMaxServeChannels * kEpochSlots campaign blocks
/// of 4096 ids fit below the next power-of-two domain.
inline constexpr std::uint64_t kServeSessionSlots = 1ULL << 20;
inline constexpr std::size_t kMaxServeChannels = 16;
inline constexpr std::uint32_t kServeEpochSlots = 8;

/// Service configuration: the monitored panel plus the policies every
/// response derives from.
struct ServiceConfig {
  /// Panel channel c measures panel[c] with the campaign's default
  /// protocol for that target. 1..kMaxServeChannels entries.
  std::vector<bio::TargetId> panel;

  /// Engine noise seed of the service deployment.
  std::uint64_t engine_seed = 4242;

  /// Registry shards (forwarded to SessionRegistry).
  std::size_t registry_shards = 16;

  /// Sensor aging across the service timeline; identity default keeps
  /// every sensor pristine (and epoch recalibrations then reproduce the
  /// factory curve statistics on fresh noise streams).
  fault::DegradationModel degradation{};

  /// Timeline instant sensors were installed [h]; a request at time_h sees
  /// sensor age (time_h - install) / 24 days, clamped to >= 0.
  double sensor_install_h = 0.0;

  /// Scheduled-maintenance recalibration cadence [days]. 0 disables field
  /// recalibration (every request uses the factory calibration, epoch 0).
  /// With a cadence, a request at age a uses epoch
  /// min(floor(a / cadence), kServeEpochSlots - 1).
  double recalibration_interval_days = 0.0;

  /// QC standard level as a fraction of each channel's calibrated window.
  double qc_fraction = 0.35;

  /// Run ids leased per request; must cover the widest request kind
  /// (panel width, or 2 for a QC check).
  std::size_t run_ids_per_request = 64;
};

/// The request -> response engine. Thread-safe: execute() may be called
/// concurrently from any number of workers (the registry and the store
/// handle their own locking; the engine is used through const seeded
/// calls only).
class DiagnosticsService {
 public:
  /// Binds the service to a calibration store. The store provides the
  /// campaign configuration (how to measure) and the factory quantifiers;
  /// the constructor builds any missing factory campaigns up front so
  /// serving never pays that cost.
  DiagnosticsService(quant::CalibrationStore& store, ServiceConfig config);

  const ServiceConfig& config() const { return config_; }
  std::size_t channel_count() const { return config_.panel.size(); }
  bio::TargetId target(std::size_t channel) const;

  /// Calibrated (invertible) concentration window of one channel [mM]
  /// under the factory calibration -- what traffic synthesis draws from.
  std::pair<double, double> calibrated_range_mM(std::size_t channel) const;

  /// First run id of a request's leased block.
  std::uint64_t lease_base(std::uint64_t request_id) const;

  /// Calibration epoch a request at this sensor age resolves to.
  std::uint32_t epoch_for(double sensor_age_days) const;

  /// Execute one request. Pure in the determinism sense (see file
  /// comment); mutates only the session registry's warm caches and
  /// counters, which are order-insensitive.
  Response execute(const Request& request) { return execute(request, nullptr); }

  /// Streaming-mode execute: with a capture, every span and metric update
  /// of this request records into `capture` INSTEAD of the attached
  /// recorder/registry -- the telemetry stream publishes the capture in
  /// log order and folds it back (obs::TelemetryStream), so the batch
  /// surfaces end identical while the published frame sequence stays a
  /// pure function of the request. Captured spans are themselves pure
  /// functions of (request, configuration): epoch spans (kEpochSwap,
  /// kRecalibration) emit for *every* request on the epoch, not just the
  /// cache-building winner, so which request carries them never depends
  /// on the thread schedule (they collapse as exact duplicates on fold).
  Response execute(const Request& request, obs::TelemetryCapture* capture);

  SessionRegistry& sessions() { return registry_; }
  const SessionRegistry& sessions() const { return registry_; }

  // --- observability ---------------------------------------------------------

  /// Attach a trace recorder (nullptr = off). execute() then emits
  /// kLeaseGrant, one kExecution per measured run, and kEpochSwap /
  /// kRecalibration spans for field-recalibration epochs. Every emitted
  /// field is a pure function of (request, configuration), so the sorted
  /// trace inherits the response determinism contract; idempotent
  /// session-epoch spans collapse in TraceRecorder::sorted().
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attach a metrics registry (nullptr = off): request / channel-read /
  /// QC / recalibration counters under serve.service.* (labels: tenant,
  /// priority, channel). Thread-safe alongside concurrent execute().
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// The attached surfaces (nullptr = off) -- what a TelemetryStream
  /// folds captures into.
  obs::TraceRecorder* trace() const { return trace_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  /// The active quantifier of (session, channel) at an epoch: the factory
  /// curve for epoch 0, the session's warm recalibration otherwise.
  const quant::Quantifier& quantifier_for(Session& session,
                                          std::uint32_t channel,
                                          std::uint32_t epoch,
                                          obs::TelemetryCapture* capture);

  /// One measured + quantified channel read.
  ChannelResult run_channel(Session& session, std::uint32_t channel,
                            std::uint32_t epoch, double age_days,
                            double concentration_mM, std::uint64_t run_id,
                            obs::TelemetryCapture* capture);

  /// Raw scalar response of one measurement (no quantification).
  double measure(Session& session, std::uint32_t channel, double age_days,
                 double concentration_mM, std::uint64_t run_id) const;

  /// Observability tap of one measured run: kExecution span plus the
  /// per-channel read counter. No-op when neither surface is attached.
  void note_run(const Request& request, std::uint32_t channel,
                std::uint64_t sequence, std::uint64_t run_id,
                obs::TelemetryCapture* capture);

  /// Quantified-estimate tap: one serve.service.estimate_mM histogram
  /// observation per produced ChannelResult (labels: tenant, channel) --
  /// the distribution behind the live p50/p90/p99 concentration tiles.
  void note_estimate(const Request& request, std::uint32_t channel,
                     double estimate_mM, obs::TelemetryCapture* capture);

  quant::CalibrationStore& store_;
  ServiceConfig config_;
  sim::MeasurementEngine engine_;  ///< const seeded calls only
  std::vector<sim::ChannelProtocol> protocols_;
  std::vector<const quant::Quantifier*> factory_;  ///< stable store addresses
  SessionRegistry registry_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace idp::serve
