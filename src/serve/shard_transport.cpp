/// \file shard_transport.cpp
/// DirectTransport and DirectClusterTransport: the perfect in-order
/// shard message channels (lossless reference implementations).

#include "serve/shard_transport.hpp"

#include <utility>

namespace idp::serve {

void DirectTransport::send(ResponseEnvelope envelope) {
  pending_.push_back(std::move(envelope));
  ++sent_;
}

bool DirectTransport::poll(ResponseEnvelope& out) {
  if (pending_.empty()) return false;
  out = std::move(pending_.front());
  pending_.pop_front();
  ++delivered_;
  return true;
}

void DirectClusterTransport::send(ResponseEnvelope envelope) {
  ++now_;
  pending_.push_back(std::move(envelope));
  ++sent_;
}

bool DirectClusterTransport::poll(ResponseEnvelope& out) {
  if (pending_.empty()) return false;
  out = std::move(pending_.front());
  pending_.pop_front();
  ++delivered_;
  return true;
}

void DirectClusterTransport::send_work(WorkEnvelope work) {
  ++now_;
  work_pending_.push_back(work);
}

bool DirectClusterTransport::poll_work(WorkEnvelope& out) {
  if (work_pending_.empty()) return false;
  out = work_pending_.front();
  work_pending_.pop_front();
  return true;
}

void DirectClusterTransport::send_heartbeat(HeartbeatEnvelope heartbeat) {
  ++now_;
  heartbeat_pending_.push_back(heartbeat);
}

bool DirectClusterTransport::poll_heartbeat(HeartbeatEnvelope& out) {
  if (heartbeat_pending_.empty()) return false;
  out = heartbeat_pending_.front();
  heartbeat_pending_.pop_front();
  return true;
}

}  // namespace idp::serve
