/// \file shard_transport.cpp
/// DirectTransport: the perfect in-order shard message channel.

#include "serve/shard_transport.hpp"

#include <utility>

namespace idp::serve {

void DirectTransport::send(ResponseEnvelope envelope) {
  pending_.push_back(std::move(envelope));
  ++sent_;
}

bool DirectTransport::poll(ResponseEnvelope& out) {
  if (pending_.empty()) return false;
  out = std::move(pending_.front());
  pending_.pop_front();
  ++delivered_;
  return true;
}

}  // namespace idp::serve
