/// \file service.cpp
/// DiagnosticsService implementation: run-id leasing, epoch resolution,
/// warm recalibration campaigns and the per-request measurement path.

#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <variant>

#include "util/error.hpp"

namespace idp::serve {

namespace {

sim::EngineConfig service_engine_config(std::uint64_t seed) {
  sim::EngineConfig config;
  config.seed = seed;
  return config;
}

}  // namespace

DiagnosticsService::DiagnosticsService(quant::CalibrationStore& store,
                                       ServiceConfig config)
    : store_(store),
      config_(std::move(config)),
      engine_(service_engine_config(config_.engine_seed)),
      registry_(config_.registry_shards) {
  util::require(!config_.panel.empty(), "service needs at least one channel");
  util::require(config_.panel.size() <= kMaxServeChannels,
                "panel exceeds the serve channel packing");
  util::require(
      config_.run_ids_per_request >= std::max<std::size_t>(
                                         config_.panel.size(), 2),
      "run-id lease too small for the widest request kind");
  util::require(config_.qc_fraction > 0.0 && config_.qc_fraction < 1.0,
                "qc_fraction must sit inside the calibrated window");
  util::require(config_.recalibration_interval_days >= 0.0,
                "recalibration interval must be >= 0");

  // Resolve protocols and factory quantifiers up front (building any
  // missing campaign now), so execute() never touches the store's mutable
  // cache path.
  protocols_.reserve(config_.panel.size());
  factory_.reserve(config_.panel.size());
  for (bio::TargetId target : config_.panel) {
    protocols_.push_back(quant::default_protocol_for(store_.config(), target));
    factory_.push_back(&store_.quantifier(target, protocols_.back()));
  }
}

bio::TargetId DiagnosticsService::target(std::size_t channel) const {
  util::require(channel < config_.panel.size(), "channel out of range");
  return config_.panel[channel];
}

std::pair<double, double> DiagnosticsService::calibrated_range_mM(
    std::size_t channel) const {
  util::require(channel < factory_.size(), "channel out of range");
  return {factory_[channel]->c_low(), factory_[channel]->c_high()};
}

std::uint64_t DiagnosticsService::lease_base(std::uint64_t request_id) const {
  // The serve domain spans [2^42, 2^43); a request id large enough to walk
  // into the recalibration domain is a caller mistake.
  util::require(request_id <
                    (kServeRecalDomain - kServeRunDomain) /
                        config_.run_ids_per_request,
                "request id exceeds the serve run-id domain");
  return kServeRunDomain + request_id * config_.run_ids_per_request;
}

std::uint32_t DiagnosticsService::epoch_for(double sensor_age_days) const {
  if (config_.recalibration_interval_days <= 0.0) return 0;
  const double epochs =
      std::floor(sensor_age_days / config_.recalibration_interval_days);
  return static_cast<std::uint32_t>(
      std::min(epochs, static_cast<double>(kServeEpochSlots - 1)));
}

const quant::Quantifier& DiagnosticsService::quantifier_for(
    Session& session, std::uint32_t channel, std::uint32_t epoch,
    obs::TelemetryCapture* capture) {
  if (epoch == 0) return *factory_[channel];
  const double boundary_age =
      static_cast<double>(epoch) * config_.recalibration_interval_days;
  // The campaign block is a pure function of (session, channel, epoch) --
  // computed here (not in the builder) so the kRecalibration span can emit
  // for every request on the epoch, not just the cache-building winner.
  const std::uint64_t block =
      kServeRecalDomain +
      (((session.site_id() % kServeSessionSlots) * kMaxServeChannels +
        channel) *
           kServeEpochSlots +
       epoch) *
          quant::CalibrationStore::kRunsPerCampaignBlock;
  const quant::Quantifier& quantifier =
      session
          .epoch_calibration(
              channel, epoch,
              [&]() -> quant::Calibration {
                // Field recalibration at the epoch boundary: rerun the
                // campaign on this session's sensor in the state it had at
                // age epoch * cadence, from the run-id block owned by
                // (session slot, channel, epoch) in the 2^43 domain.
                const fault::SensorState sensor = config_.degradation.state_at(
                    boundary_age,
                    fault::SensorSite{session.site_id(), channel});
                return store_.recalibrate(config_.panel[channel],
                                          protocols_[channel], sensor, block);
              })
          .quantifier;
  // Campaign-active + epoch-swap spans, emitted by EVERY request that uses
  // the epoch: each field is a pure function of (session, channel, epoch),
  // so re-emissions are exact duplicates that collapse in sorted() -- and
  // under streaming, each request's capture carries them regardless of
  // which request's builder won the warm-cache race (no metrics counter
  // for builds for the same reason: a *count* would depend on the race).
  if (capture != nullptr) {
    capture->span(session.site_id(), obs::SpanKind::kRecalibration, channel,
                  epoch, 0, boundary_age * 24.0, static_cast<double>(block));
    capture->span(session.site_id(), obs::SpanKind::kEpochSwap, channel,
                  epoch, 0, boundary_age * 24.0, static_cast<double>(epoch));
  } else if (trace_ != nullptr) {
    trace_->record(session.site_id(), obs::SpanKind::kRecalibration, channel,
                   epoch, 0, boundary_age * 24.0, static_cast<double>(block));
    trace_->record(session.site_id(), obs::SpanKind::kEpochSwap, channel,
                   epoch, 0, boundary_age * 24.0,
                   static_cast<double>(epoch));
  }
  return quantifier;
}

double DiagnosticsService::measure(Session& session, std::uint32_t channel,
                                   double age_days, double concentration_mM,
                                   std::uint64_t run_id) const {
  const bio::TargetId target_id = config_.panel[channel];
  const fault::SensorState sensor = config_.degradation.state_at(
      age_days, fault::SensorSite{session.site_id(), channel});

  // Every measurement owns a fresh probe and front end seeded from its
  // leased run id: the price of a probe build per request is what buys
  // order-independence (persistent probes/front ends would carry noise
  // and chemistry state from whichever request ran before).
  bio::ProbePtr probe = quant::make_campaign_probe(store_.config(), target_id);
  probe->set_bulk_concentration(bio::to_string(target_id), concentration_mM);
  afe::AnalogFrontEnd frontend(quant::campaign_frontend_config(
      store_.config(), config_.engine_seed + kServeFrontendSeedDomain +
                           run_id * kServeSeedStride));
  const sim::Channel sim_channel{probe.get(), nullptr, sensor};

  const sim::ChannelProtocol& protocol = protocols_[channel];
  if (std::holds_alternative<sim::ChronoamperometryProtocol>(protocol)) {
    const auto& p = std::get<sim::ChronoamperometryProtocol>(protocol);
    const sim::Trace trace =
        engine_.run_chronoamperometry_seeded(run_id, sim_channel, p, frontend);
    return quant::panel_response(target_id, trace, sim::CvCurve{});
  }
  const auto& p = std::get<sim::CyclicVoltammetryProtocol>(protocol);
  const sim::CvCurve curve =
      engine_.run_cyclic_voltammetry_seeded(run_id, sim_channel, p, frontend);
  return quant::panel_response(target_id, sim::Trace{}, curve);
}

ChannelResult DiagnosticsService::run_channel(Session& session,
                                              std::uint32_t channel,
                                              std::uint32_t epoch,
                                              double age_days,
                                              double concentration_mM,
                                              std::uint64_t run_id,
                                              obs::TelemetryCapture* capture) {
  ChannelResult result;
  result.channel = channel;
  result.target = config_.panel[channel];
  result.truth_mM = concentration_mM;
  result.response =
      measure(session, channel, age_days, concentration_mM, run_id);
  result.estimate = quantifier_for(session, channel, epoch, capture)
                        .quantify(result.response);
  return result;
}

void DiagnosticsService::note_run(const Request& request,
                                  std::uint32_t channel,
                                  std::uint64_t sequence,
                                  std::uint64_t run_id,
                                  obs::TelemetryCapture* capture) {
  const char* counter = request.kind == RequestKind::kQcCheck
                            ? "serve.service.qc_runs"
                            : "serve.service.channel_reads";
  obs::MetricLabels labels;
  labels.tenant = static_cast<std::int32_t>(request.session.tenant);
  labels.channel = static_cast<std::int32_t>(channel);
  if (capture != nullptr) {
    capture->span(request.id, obs::SpanKind::kExecution, channel, sequence,
                  0, request.time_h, static_cast<double>(run_id));
    capture->count(counter, labels);
    return;
  }
  if (trace_ != nullptr) {
    trace_->record(request.id, obs::SpanKind::kExecution, channel, sequence,
                   0, request.time_h, static_cast<double>(run_id));
  }
  if (metrics_ != nullptr) {
    metrics_->counter(counter, labels).add(1);
  }
}

void DiagnosticsService::note_estimate(const Request& request,
                                       std::uint32_t channel,
                                       double estimate_mM,
                                       obs::TelemetryCapture* capture) {
  obs::MetricLabels labels;
  labels.tenant = static_cast<std::int32_t>(request.session.tenant);
  labels.channel = static_cast<std::int32_t>(channel);
  if (capture != nullptr) {
    capture->observe("serve.service.estimate_mM", labels, estimate_mM);
  } else if (metrics_ != nullptr) {
    metrics_->histogram("serve.service.estimate_mM", labels)
        .observe(estimate_mM);
  }
}

Response DiagnosticsService::execute(const Request& request,
                                     obs::TelemetryCapture* capture) {
  const std::size_t n_channels = config_.panel.size();
  if (capture != nullptr) {
    capture->tenant = static_cast<std::int32_t>(request.session.tenant);
  }
  switch (request.kind) {
    case RequestKind::kPanelScan:
      util::require(request.concentrations_mM.size() == n_channels,
                    "panel scan needs one concentration per channel");
      break;
    case RequestKind::kQuantifiedRead:
      util::require(request.concentrations_mM.size() == 1,
                    "quantified read carries exactly one concentration");
      util::require(request.channel < n_channels, "channel out of range");
      break;
    case RequestKind::kQcCheck:
      util::require(request.concentrations_mM.empty(),
                    "QC levels are service configuration, not request content");
      util::require(request.channel < n_channels, "channel out of range");
      break;
  }

  Session& session = registry_.get_or_create(request.session);
  session.note_request();

  const double age_days =
      std::max(0.0, (request.time_h - config_.sensor_install_h) / 24.0);
  const std::uint32_t epoch = epoch_for(age_days);
  const std::uint64_t lease = lease_base(request.id);

  {
    obs::MetricLabels labels;
    labels.tenant = static_cast<std::int32_t>(request.session.tenant);
    labels.priority = static_cast<std::int32_t>(request.priority);
    if (capture != nullptr) {
      capture->span(request.id, obs::SpanKind::kLeaseGrant, lease, 0, 0,
                    request.time_h, static_cast<double>(epoch));
      capture->count("serve.service.requests", labels);
    } else {
      if (trace_ != nullptr) {
        trace_->record(request.id, obs::SpanKind::kLeaseGrant, lease, 0, 0,
                       request.time_h, static_cast<double>(epoch));
      }
      if (metrics_ != nullptr) {
        metrics_->counter("serve.service.requests", labels).add(1);
      }
    }
  }

  Response response;
  response.request_id = request.id;
  response.session = request.session;
  response.priority = request.priority;
  response.kind = request.kind;
  response.time_h = request.time_h;
  response.sensor_age_days = age_days;
  response.calibration_epoch = epoch;

  switch (request.kind) {
    case RequestKind::kPanelScan: {
      response.channels.reserve(n_channels);
      for (std::uint32_t c = 0; c < n_channels; ++c) {
        response.channels.push_back(run_channel(
            session, c, epoch, age_days, request.concentrations_mM[c],
            lease + c, capture));
        note_run(request, c, c, lease + c, capture);
        note_estimate(request, c, response.channels.back().estimate.value,
                      capture);
      }
      break;
    }
    case RequestKind::kQuantifiedRead: {
      response.channels.push_back(run_channel(session, request.channel, epoch,
                                              age_days,
                                              request.concentrations_mM[0],
                                              lease, capture));
      note_run(request, request.channel, 0, lease, capture);
      note_estimate(request, request.channel,
                    response.channels.back().estimate.value, capture);
      break;
    }
    case RequestKind::kQcCheck: {
      // A blank and the channel's known standard through the aged sensor,
      // standardised against the active calibration's prediction -- the
      // service-layer counterpart of the scenario QC loop.
      const quant::Quantifier& quantifier =
          quantifier_for(session, request.channel, epoch, capture);
      const double qc_mM =
          quantifier.c_low() +
          config_.qc_fraction * (quantifier.c_high() - quantifier.c_low());
      const double sigma = std::max(quantifier.response_sigma(), 1e-15);

      const double r_blank =
          measure(session, request.channel, age_days, 0.0, lease);
      response.qc_blank_residual =
          (r_blank - quantifier.blank_mean()) / sigma;

      ChannelResult standard = run_channel(session, request.channel, epoch,
                                           age_days, qc_mM, lease + 1,
                                           capture);
      response.qc_standard_residual =
          (standard.response -
           util::evaluate(quantifier.fit(), qc_mM)) /
          sigma;
      const double standard_estimate = standard.estimate.value;
      response.channels.push_back(std::move(standard));
      note_run(request, request.channel, 0, lease, capture);      // blank
      note_run(request, request.channel, 1, lease + 1, capture);  // standard
      note_estimate(request, request.channel, standard_estimate, capture);
      break;
    }
  }
  return response;
}

}  // namespace idp::serve
