/// \file failure_detector.cpp
/// Timeout-based heartbeat failure detector implementation.

#include "serve/failure_detector.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace idp::serve {

const char* to_string(ShardHealth health) {
  switch (health) {
    case ShardHealth::kUp:
      return "up";
    case ShardHealth::kDown:
      return "down";
  }
  return "unknown";
}

FailureDetector::FailureDetector(FailureDetectorConfig config,
                                 std::size_t shards)
    : config_(config), last_seen_(shards, 0), down_(shards, false) {
  util::require(shards > 0, "failure detector needs at least one shard");
  util::require(config_.heartbeat_interval_ticks > 0,
                "heartbeat interval must be positive");
  util::require(config_.timeout_ticks > config_.heartbeat_interval_ticks,
                "a timeout within one heartbeat interval would flap on "
                "every healthy shard");
}

void FailureDetector::heartbeat(std::size_t shard, std::uint64_t now) {
  util::require(shard < last_seen_.size(), "heartbeat from unknown shard");
  last_seen_[shard] = std::max(last_seen_[shard], now);
  if (down_[shard]) {
    down_[shard] = false;
    ++rejoins_;
  }
}

void FailureDetector::update(std::uint64_t now) {
  for (std::size_t s = 0; s < last_seen_.size(); ++s) {
    if (!down_[s] && now > last_seen_[s] + config_.timeout_ticks) {
      down_[s] = true;
      ++failovers_;
    }
  }
}

ShardHealth FailureDetector::health(std::size_t shard) const {
  util::require(shard < down_.size(), "unknown shard");
  return down_[shard] ? ShardHealth::kDown : ShardHealth::kUp;
}

std::size_t FailureDetector::up_count() const {
  std::size_t up = 0;
  for (const bool d : down_) {
    if (!d) ++up;
  }
  return up;
}

std::size_t FailureDetector::route_around(std::size_t preferred) const {
  util::require(preferred < down_.size(), "unknown shard");
  for (std::size_t offset = 0; offset < down_.size(); ++offset) {
    const std::size_t candidate = (preferred + offset) % down_.size();
    if (!down_[candidate]) return candidate;
  }
  return preferred;  // everything is down: keep knocking on the primary
}

void FailureDetector::publish(obs::MetricsRegistry& registry) const {
  registry.counter("serve.detector.failovers").set(failovers_);
  registry.counter("serve.detector.rejoins").set(rejoins_);
  registry.gauge("serve.detector.up").set(static_cast<double>(up_count()));
  registry.gauge("serve.detector.shards")
      .set(static_cast<double>(shard_count()));
}

}  // namespace idp::serve
