/// \file scheduler.hpp
/// The service scheduler: the component that turns the deterministic
/// per-request engine (serve/service.hpp) into a running service. Two
/// execution modes share one guarantee -- the response payload of request
/// r depends only on r, because the run-id lease is r's alone:
///
/// - replay(log, parallelism): execute a recorded request log with every
///   response written to its pre-assigned slot, fanned out over
///   sim::BatchRunner. Bitwise identical at parallelism 1 / N / hardware,
///   and bitwise identical to what live mode produced for the same log
///   (the serve workload of tests/determinism pins this).
/// - start()/submit()/drain_and_stop(): live mode. Worker threads pop the
///   bounded priority RequestQueue, execute, and feed responses plus
///   wall-clock telemetry (queue wait, service time) to a ResultSink and
///   the per-priority latency histograms. Admission control is the
///   caller's choice per request: submit() rejects when full (open-loop
///   load shedding), submit_wait() blocks (backpressure).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "serve/request_queue.hpp"
#include "serve/result_sink.hpp"
#include "serve/service.hpp"
#include "util/stats.hpp"

namespace idp::serve {

/// Live-mode sizing.
struct SchedulerConfig {
  RequestQueueConfig queue;
  /// Worker threads for live mode; 0 = hardware concurrency.
  std::size_t workers = 0;
};

/// Per-priority latency account (seconds).
struct PriorityTelemetry {
  std::uint64_t completed = 0;
  util::LatencyHistogram queue_wait;
  util::LatencyHistogram service_time;

  /// Fold another account in (cross-shard / cross-worker aggregation).
  void merge(const PriorityTelemetry& other) {
    completed += other.completed;
    queue_wait.merge(other.queue_wait);
    service_time.merge(other.service_time);
  }
};

class Scheduler {
 public:
  explicit Scheduler(DiagnosticsService& service, SchedulerConfig config = {});

  /// Stops live mode (draining accepted requests) if still running.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  const SchedulerConfig& config() const { return config_; }

  // --- replay mode ----------------------------------------------------------

  /// Execute a recorded log; responses land in log order. parallelism 0 =
  /// hardware concurrency, 1 = sequential inline. Independent of live
  /// mode and of the queue.
  std::vector<Response> replay(std::span<const Request> log,
                               std::size_t parallelism = 0);

  // --- live mode ------------------------------------------------------------

  /// Launch the worker threads. `sink` (optional) receives every response
  /// and telemetry record; it must outlive drain_and_stop(). Live mode is
  /// one-shot per Scheduler: starting again after drain_and_stop throws
  /// (the queue closed permanently; construct a fresh Scheduler instead).
  void start(ResultSink* sink = nullptr);

  /// Non-blocking admission (explicit reject when full).
  Admission submit(Request request);

  /// Blocking admission (backpressure).
  Admission submit_wait(Request request);

  /// Bounded-wait admission: blocks up to `timeout` for queue space, then
  /// returns Admission::kRejectedTimeout (deadline-style backpressure).
  Admission submit_wait_for(Request request, std::chrono::nanoseconds timeout);

  /// Close the queue, drain every accepted request, join the workers and
  /// close the sink. Idempotent.
  void drain_and_stop();

  bool running() const { return running_; }

  const RequestQueue& queue() const { return queue_; }

  /// Snapshot of the queue's admission accounting (accepted / rejected /
  /// shed / timed out), taken under one lock.
  QueueStats queue_stats() const { return queue_.stats(); }

  /// Requests fully served in live mode.
  std::uint64_t completed() const;

  /// Copy of one priority class's latency account. Predates the metrics
  /// registry; kept as the cross-shard merge primitive. publish_metrics()
  /// is the registry-era surface over the same counters.
  PriorityTelemetry telemetry(Priority priority) const;

  // --- observability ---------------------------------------------------------

  /// Attach a trace recorder (nullptr = tracing off, the default). Live
  /// admission and dispatch events record here, and the underlying
  /// service's spans ride along when it carries the same recorder.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attach a metrics registry for live-mode streaming: workers add to
  /// serve.scheduler.completed and observe the queue_wait_s /
  /// service_time_s histograms as requests finish (labels: priority, plus
  /// `shard` when >= 0). Call before start().
  void set_metrics(obs::MetricsRegistry* metrics, std::int32_t shard = -1);

  /// Publish the admission account and per-priority completion counters
  /// (set-semantics) into `registry` under the canonical serve.* names.
  /// Latency histograms merge in too -- unless `registry` is the live
  /// registry attached via set_metrics, whose histograms already streamed.
  void publish_metrics(obs::MetricsRegistry& registry,
                       std::int32_t shard = -1) const;

  /// Attach a telemetry bus (nullptr = off). replay() then captures each
  /// request's telemetry privately and publishes it in log order through
  /// an obs::StreamSequencer -- per-topic frame sequences are bitwise
  /// identical at any parallelism (the `stream` determinism workload).
  /// Live workers publish each request's capture at completion, plus the
  /// wall-clock scheduler account (completed / queue_wait_s /
  /// service_time_s deltas) and the admission spans from submit().
  /// Captures fold into the service's attached trace/metrics on publish,
  /// so every batch-era export is unchanged by streaming. `shard` labels
  /// the live-mode scheduler deltas (like set_metrics).
  void set_stream(obs::TelemetryBus* stream, std::int32_t shard = -1);

 private:
  void worker_loop();

  /// Admission-span tap shared by the submit paths (streams and/or
  /// records, per what is attached).
  void note_admission(std::uint64_t id, Priority priority,
                      std::int32_t tenant, double time_h,
                      Admission admission);

  DiagnosticsService& service_;
  SchedulerConfig config_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
  ResultSink* sink_ = nullptr;
  bool running_ = false;

  obs::TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TelemetryBus* stream_ = nullptr;
  /// Publisher over stream_ folding into the service's attached surfaces;
  /// rebuilt whenever set_stream is called.
  std::unique_ptr<obs::TelemetryStream> stream_out_;
  std::int32_t stream_shard_ = -1;  ///< shard label of live-mode stream ops
  /// Cached stable registry handles (one per priority) so the worker hot
  /// path pays no registry lookup.
  std::array<obs::Counter*, kPriorityCount> completed_metric_{};
  std::array<obs::Histogram*, kPriorityCount> queue_wait_metric_{};
  std::array<obs::Histogram*, kPriorityCount> service_time_metric_{};

  mutable std::mutex telemetry_mutex_;
  std::array<PriorityTelemetry, kPriorityCount> telemetry_;
};

}  // namespace idp::serve
