/// \file result_sink.cpp
/// CSV result sink implementation.

#include "serve/result_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace idp::serve {

namespace {

/// Round-trip (bitwise re-parseable) decimal form of a double, matching
/// the precision contract of util::CsvWriter's numeric rows.
std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::vector<std::string> response_columns() {
  return {"request_id", "tenant",   "patient",
          "device",     "priority", "kind",
          "time_h",     "sensor_age_days", "calibration_epoch",
          "channel",    "target",   "truth_mM",
          "response",   "estimate_mM", "ci_low_mM",
          "ci_high_mM", "flags",    "qc_blank_residual",
          "qc_standard_residual"};
}

void write_response_rows(util::CsvWriter& csv, const Response& r) {
  for (const ChannelResult& c : r.channels) {
    const std::vector<std::string> row{
        std::to_string(r.request_id),
        std::to_string(r.session.tenant),
        std::to_string(r.session.patient),
        std::to_string(r.session.device),
        to_string(r.priority),
        to_string(r.kind),
        format_double(r.time_h),
        format_double(r.sensor_age_days),
        std::to_string(r.calibration_epoch),
        std::to_string(c.channel),
        bio::to_string(c.target),
        format_double(c.truth_mM),
        format_double(c.response),
        format_double(c.estimate.value),
        format_double(c.estimate.ci_low),
        format_double(c.estimate.ci_high),
        std::to_string(static_cast<std::uint32_t>(c.estimate.flags)),
        format_double(r.qc_blank_residual),
        format_double(r.qc_standard_residual)};
    csv.write_row(row);
  }
}

}  // namespace

void write_responses_csv(std::span<const Response> responses,
                         const std::string& path) {
  util::CsvWriter csv(path, response_columns());
  for (const Response& r : responses) write_response_rows(csv, r);
}

void write_telemetry_summary_csv(std::span<const LatencySummarySeries> series,
                                 const std::string& path) {
  std::vector<std::string> columns{"series"};
  for (const std::string& c : util::latency_summary_columns()) {
    columns.push_back(c);
  }
  util::CsvWriter csv(path, columns);
  for (const LatencySummarySeries& s : series) {
    std::vector<std::string> row{s.series};
    for (const double v : util::to_row(s.histogram.summary())) {
      row.push_back(format_double(v));
    }
    csv.write_row(row);
  }
}

CsvResultSink::CsvResultSink(std::string responses_path,
                             std::string telemetry_path)
    : responses_path_(std::move(responses_path)),
      telemetry_(telemetry_path,
                 {"request_id", "priority", "kind", "queue_wait_s",
                  "service_time_s", "calibration_epoch", "flags"}) {}

CsvResultSink::~CsvResultSink() { close(); }

void CsvResultSink::on_response(const Response& response) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // A buffered response after close() would never reach the file -- the
  // admission-control philosophy applies to sinks too: never swallow
  // silently.
  util::require(!closed_, "result sink is closed");
  responses_.push_back(response);
}

void CsvResultSink::on_telemetry(const RequestTelemetry& telemetry) {
  const std::vector<std::string> row{
      std::to_string(telemetry.request_id),
      to_string(telemetry.priority),
      to_string(telemetry.kind),
      format_double(telemetry.queue_wait_s),
      format_double(telemetry.service_time_s),
      std::to_string(telemetry.calibration_epoch),
      std::to_string(telemetry.flags)};
  const std::lock_guard<std::mutex> lock(mutex_);
  util::require(!closed_, "result sink is closed");
  telemetry_.write_row(row);
}

void CsvResultSink::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  // Completion order is whatever the workers made it; the file contract
  // is request-id order (see header).
  std::sort(responses_.begin(), responses_.end(),
            [](const Response& a, const Response& b) {
              return a.request_id < b.request_id;
            });
  write_responses_csv(responses_, responses_path_);
  telemetry_.close();
}

std::size_t CsvResultSink::buffered_responses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return responses_.size();
}

}  // namespace idp::serve
