/// \file shard_coordinator.hpp
/// Multi-shard scale-out of the service runtime: a ShardCluster owns K
/// per-shard DiagnosticsService instances behind one consistent-hash
/// router, and a coordinator-side ResultMerger folds the per-shard result
/// streams into one deterministic global log.
///
/// Determinism contract (the distributed extension of the PR 5 guarantee):
/// every shard runs an *identically configured* service over one shared
/// CalibrationStore, and a response is a pure function of (request,
/// service configuration) -- request id leases the same run-id block on
/// any shard, the session hash seeds the same degradation site and
/// recalibration campaign blocks, and the router assigns each session to
/// exactly one shard. The per-shard run-id sub-domains are therefore
/// carved from the existing lease scheme *by routing*: shard s owns the
/// serve-domain (2^42) blocks of exactly its routed request ids and the
/// recalibration-domain (2^43) blocks of exactly its routed sessions,
/// disjoint across shards (lease_census() audits this for a log). The
/// merged K-shard replay is consequently bitwise identical to single-node
/// Scheduler::replay for the same traffic log -- at any K, any
/// parallelism, and under any at-least-once transport fault schedule
/// (message reorder, delay, duplication), which tests/netsim/ proves.
///
/// Merge contract: the global log is the request-id-sorted set of unique
/// responses -- the same canonical order CsvResultSink writes -- with
/// duplicates dropped by first arrival and loss detected loudly
/// (ResultMerger::finish throws when responses are missing).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "serve/request_queue.hpp"
#include "serve/result_sink.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "serve/shard_router.hpp"
#include "serve/shard_transport.hpp"

namespace idp::serve {

/// Observability of one merge pass.
struct MergeStats {
  std::uint64_t delivered = 0;          ///< envelopes accepted by the merger
  std::uint64_t duplicates_dropped = 0; ///< redeliveries of an already-merged id
  /// Largest per-shard sequence inversion observed at arrival: how far
  /// behind its shard's newest-seen sequence a message arrived. 0 on an
  /// in-order transport.
  std::uint64_t max_reorder_distance = 0;
};

/// Coordinator-side sorted merge of per-shard response streams, keyed on
/// request id. Accepts envelopes in any order, drops duplicate request ids
/// (first arrival wins -- arrivals of one id are bitwise identical, so
/// "first" is immaterial to content), and finishes into the canonical
/// request-id-ordered log.
class ResultMerger {
 public:
  /// Fold one delivered envelope in.
  void accept(const ResponseEnvelope& envelope);

  /// Responses merged so far (unique request ids).
  std::size_t merged() const { return by_id_.size(); }

  const MergeStats& stats() const { return stats_; }

  /// Finish the merge: requires exactly `expected` unique responses (a
  /// shortfall means the transport lost messages -- throws instead of
  /// returning a silently truncated log) and returns them sorted by
  /// request id.
  std::vector<Response> finish(std::size_t expected);

 private:
  std::map<std::uint64_t, Response> by_id_;
  std::map<std::size_t, std::uint64_t> newest_sequence_; ///< per shard
  MergeStats stats_;
};

/// Per-shard slice of the serve run-id domains a routed log leases.
struct ShardLeaseDomain {
  std::uint64_t requests = 0;    ///< requests routed to this shard
  std::uint64_t sessions = 0;    ///< distinct sessions routed to this shard
  std::uint64_t first_run_id = 0; ///< smallest leased serve-domain run id
  std::uint64_t last_run_id = 0;  ///< largest leased serve-domain run id
};

/// Audit of how a log's run-id leases split across shards.
struct LeaseCensus {
  std::vector<ShardLeaseDomain> per_shard;
  /// Every serve-domain lease block is owned by exactly one shard (false
  /// would mean duplicate request ids in the log or a routing bug).
  bool disjoint = true;
};

/// Cluster sizing.
struct ShardClusterConfig {
  ShardRouterConfig router;
  /// Live-mode sizing of each shard's scheduler (queue + workers).
  SchedulerConfig scheduler;
};

/// Result of one deterministic sharded replay.
struct ShardedReplayResult {
  /// The merged global log, ordered by request id; bitwise identical to
  /// single-node Scheduler::replay of the same log.
  std::vector<Response> responses;
  MergeStats merge;
  std::vector<std::size_t> per_shard_requests;
};

/// K identically configured service shards behind one router.
///
/// Two modes, mirroring Scheduler:
/// - replay(log, parallelism, transport): deterministic merged replay --
///   route, execute every request on its shard (fanned out over one
///   sim::BatchRunner), stream the per-shard responses through the
///   transport (round-robin across shards so streams genuinely
///   interleave), merge. Default transport is the lossless DirectTransport;
///   tests substitute the fault-injecting simulated network.
/// - start()/submit()/drain_and_stop(): live mode -- each shard runs its
///   own Scheduler over its own bounded priority queue, all fanning into
///   one shared sink; submit() routes by session key. Per-priority latency
///   telemetry merges across shards via util::LatencyHistogram::merge.
class ShardCluster {
 public:
  ShardCluster(quant::CalibrationStore& store, ServiceConfig service,
               ShardClusterConfig config = {});
  ~ShardCluster();

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  std::size_t shard_count() const { return services_.size(); }
  const ShardRouter& router() const { return router_; }
  const ShardClusterConfig& config() const { return config_; }

  DiagnosticsService& shard(std::size_t s);

  /// Shard a session key routes to.
  std::size_t route(const SessionKey& key) const { return router_.route(key); }

  /// Audit the per-shard run-id sub-domains a log would lease.
  LeaseCensus lease_census(std::span<const Request> log) const;

  // --- deterministic replay -------------------------------------------------

  /// Merged K-shard replay of a recorded log. parallelism 0 = hardware,
  /// 1 = sequential inline (per the BatchRunner contract); `transport`
  /// nullptr uses a lossless in-order DirectTransport.
  ShardedReplayResult replay(std::span<const Request> log,
                             std::size_t parallelism = 0,
                             ShardTransport* transport = nullptr);

  // --- live mode ------------------------------------------------------------

  /// Start every shard's scheduler. `sink` (optional) receives every
  /// response and telemetry record across all shards; it is closed exactly
  /// once, after the last shard drained. One-shot, like Scheduler.
  void start(ResultSink* sink = nullptr);

  /// Route + non-blocking admission on the owning shard's queue.
  Admission submit(Request request);

  /// Route + blocking admission (backpressure on the owning shard).
  Admission submit_wait(Request request);

  /// Drain and stop every shard, then close the sink. Idempotent.
  void drain_and_stop();

  bool running() const { return running_; }

  /// Requests fully served in live mode, across all shards.
  std::uint64_t completed() const;

  /// One priority class's latency account, merged across all shards.
  PriorityTelemetry telemetry(Priority priority) const;

 private:
  /// Forwards every shard scheduler's results into one user sink, closing
  /// it only after the *last* shard's drain (each Scheduler closes its
  /// sink; the fan-in turns K closes into one).
  class FanInSink final : public ResultSink {
   public:
    FanInSink(ResultSink* inner, std::size_t shards)
        : inner_(inner), open_shards_(shards) {}
    void on_response(const Response& response) override {
      if (inner_ != nullptr) inner_->on_response(response);
    }
    void on_telemetry(const RequestTelemetry& telemetry) override {
      if (inner_ != nullptr) inner_->on_telemetry(telemetry);
    }
    void close() override {
      if (open_shards_.fetch_sub(1) == 1 && inner_ != nullptr) {
        inner_->close();
      }
    }

   private:
    ResultSink* inner_;
    std::atomic<std::size_t> open_shards_;
  };

  ShardClusterConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<DiagnosticsService>> services_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_; ///< live mode only
  std::unique_ptr<FanInSink> fan_in_;
  bool running_ = false;
  bool live_used_ = false;
};

}  // namespace idp::serve
