/// \file shard_coordinator.hpp
/// Multi-shard scale-out of the service runtime: a ShardCluster owns K
/// per-shard DiagnosticsService instances behind one consistent-hash
/// router, and a coordinator-side ResultMerger folds the per-shard result
/// streams into one deterministic global log.
///
/// Determinism contract (the distributed extension of the PR 5 guarantee):
/// every shard runs an *identically configured* service over one shared
/// CalibrationStore, and a response is a pure function of (request,
/// service configuration) -- request id leases the same run-id block on
/// any shard, the session hash seeds the same degradation site and
/// recalibration campaign blocks, and the router assigns each session to
/// exactly one shard. The per-shard run-id sub-domains are therefore
/// carved from the existing lease scheme *by routing*: shard s owns the
/// serve-domain (2^42) blocks of exactly its routed request ids and the
/// recalibration-domain (2^43) blocks of exactly its routed sessions,
/// disjoint across shards (lease_census() audits this for a log). The
/// merged K-shard replay is consequently bitwise identical to single-node
/// Scheduler::replay for the same traffic log -- at any K, any
/// parallelism, and under any at-least-once transport fault schedule
/// (message reorder, delay, duplication), which tests/netsim/ proves.
///
/// Fault tolerance (the PR 7 extension): replay_fault_tolerant() survives
/// *loss* as well -- per-message drops, shard crash/restart windows and
/// bidirectional partitions -- by combining a virtual-clock retry policy
/// (serve/retry.hpp), heartbeat failure detection with failover rerouting
/// (serve/failure_detector.hpp) and the merger's request-id dedup. The
/// purity argument makes every recovery action safe: a retransmitted or
/// failed-over execution of request r is bitwise identical to the
/// original, because r's run-id lease belongs to r, not to any shard. The
/// merged hostile replay is therefore STILL bitwise identical to fault-
/// free single-node execution, and the lease census proves run-id
/// ownership stayed disjoint even after rerouting.
///
/// Merge contract: the global log is the request-id-sorted set of unique
/// responses -- the same canonical order CsvResultSink writes -- with
/// duplicates counted (never silently swallowed) and dropped by first
/// arrival, and loss detected loudly (ResultMerger::finish throws when
/// responses are missing).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/failure_detector.hpp"
#include "serve/request_queue.hpp"
#include "serve/result_sink.hpp"
#include "serve/retry.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "serve/shard_router.hpp"
#include "serve/shard_transport.hpp"

namespace idp::serve {

/// Observability of one merge pass.
struct MergeStats {
  std::uint64_t delivered = 0;       ///< envelopes accepted by the merger
  /// Redeliveries of an already-merged request id (transport duplicates
  /// and retransmits). Counted explicitly: first arrival wins on content,
  /// but the *event* is never swallowed silently.
  std::uint64_t duplicates_seen = 0;
  /// Largest per-shard sequence inversion observed across *fresh*
  /// arrivals: how far behind its shard's newest-seen sequence a
  /// first-delivery arrived. Duplicates are skipped -- a late redelivery
  /// of an old sequence says nothing about wire reordering of new
  /// traffic. 0 on an in-order transport.
  std::uint64_t max_reorder_distance = 0;

  /// Publish under the canonical serve.merge.* names. `merged` is the
  /// unique-response count (delivered == merged + duplicates, which
  /// obs::serve_conservation_rules() pins).
  void publish(obs::MetricsRegistry& registry, std::uint64_t merged) const;
};

/// Coordinator-side sorted merge of per-shard response streams, keyed on
/// request id. Accepts envelopes in any order, drops duplicate request ids
/// (first arrival wins -- arrivals of one id are bitwise identical, so
/// "first" is immaterial to content), and finishes into the canonical
/// request-id-ordered log.
class ResultMerger {
 public:
  /// Fold one delivered envelope in. Returns true when the envelope was
  /// fresh (first delivery of its request id), false for a duplicate.
  bool accept(const ResponseEnvelope& envelope);

  /// Responses merged so far (unique request ids).
  std::size_t merged() const { return by_id_.size(); }

  const MergeStats& stats() const { return stats_; }

  /// Finish the merge: requires exactly `expected` unique responses (a
  /// shortfall means the transport lost responses and no retry layer
  /// recovered them -- throws instead of returning a silently truncated
  /// log) and returns them sorted by request id.
  std::vector<Response> finish(std::size_t expected);

 private:
  std::map<std::uint64_t, Response> by_id_;
  std::map<std::size_t, std::uint64_t> newest_sequence_; ///< per shard
  MergeStats stats_;
};

/// Fan-in of K shard result streams into one sink: forwards every
/// response and telemetry record, and turns K close() calls (one per
/// draining shard scheduler) into exactly one close of the inner sink --
/// after the *last* shard finished. Thread-safe; misuse is loud:
/// forwarding after the last close, or closing more times than there are
/// shards, throws instead of corrupting the downstream sink.
class FanInSink final : public ResultSink {
 public:
  FanInSink(ResultSink* inner, std::size_t shards);

  void on_response(const Response& response) override;
  void on_telemetry(const RequestTelemetry& telemetry) override;
  void close() override;

  /// Shards that have not yet closed their stream.
  std::size_t open_shards() const {
    return open_shards_.load(std::memory_order_acquire);
  }

 private:
  ResultSink* inner_;
  std::atomic<std::size_t> open_shards_;
};

/// Per-shard slice of the serve run-id domains a routed log leases.
struct ShardLeaseDomain {
  std::uint64_t requests = 0;    ///< requests this shard served
  std::uint64_t sessions = 0;    ///< distinct sessions this shard served
  std::uint64_t first_run_id = 0; ///< smallest leased serve-domain run id
  std::uint64_t last_run_id = 0;  ///< largest leased serve-domain run id
  /// Requests this shard served on behalf of a crashed/partitioned peer
  /// (router primary elsewhere). 0 in fault-free operation.
  std::uint64_t failover_requests = 0;
};

/// Audit of how a log's run-id leases split across shards.
struct LeaseCensus {
  std::vector<ShardLeaseDomain> per_shard;
  /// Every serve-domain lease block is owned by exactly one shard (false
  /// would mean duplicate request ids in the log or a routing bug).
  /// Failover rerouting preserves this by construction: a lease belongs
  /// to its request id, and each id merges exactly once.
  bool disjoint = true;
};

/// Cluster sizing.
struct ShardClusterConfig {
  ShardRouterConfig router;
  /// Live-mode sizing of each shard's scheduler (queue + workers).
  SchedulerConfig scheduler;
};

/// Result of one deterministic sharded replay.
struct ShardedReplayResult {
  /// The merged global log, ordered by request id; bitwise identical to
  /// single-node Scheduler::replay of the same log.
  std::vector<Response> responses;
  MergeStats merge;
  std::vector<std::size_t> per_shard_requests;
};

/// Knobs of the fault-tolerant replay path.
struct FaultToleranceConfig {
  RetryPolicy retry;
  FailureDetectorConfig detector;
  /// Hard ceiling on simulated virtual time: exceeding it means the fault
  /// schedule starved the replay outright, which throws rather than
  /// spinning forever.
  std::uint64_t max_ticks = 1'000'000;
};

/// Fault-handling observability of one fault-tolerant replay. Every count
/// is a pure function of (log, configuration, transport fault schedule).
struct FaultStats {
  std::uint64_t dispatches = 0;   ///< work sends, initial + retransmit
  std::uint64_t retries = 0;      ///< dispatches beyond each request's first
  std::uint64_t reroutes = 0;     ///< dispatches sent to a non-primary shard
  std::uint64_t executions = 0;   ///< shard-side request executions
  /// Work deliveries polled off the transport, duplicates included. The
  /// airtight arrival-side identity: work_arrivals == executions +
  /// work_discarded -- every delivered work message either executed or
  /// died with a crashed shard, never a third fate. (Dispatch-side
  /// accounting cannot be exact: the transport may both drop and
  /// duplicate work in flight.)
  std::uint64_t work_arrivals = 0;
  /// Work that arrived at a crashed shard and died with it (the retry
  /// deadline recovers the request).
  std::uint64_t work_discarded = 0;
  std::uint64_t heartbeats = 0;   ///< heartbeats emitted by live shards
  std::uint64_t messages_dropped = 0;  ///< transport loss injections
  std::uint64_t shard_failovers = 0;   ///< up -> down declarations
  std::uint64_t shard_rejoins = 0;     ///< down -> up recoveries
  std::uint64_t final_tick = 0;        ///< virtual completion time

  /// Publish under the canonical serve.cluster.* names (counters set;
  /// final_tick as a gauge).
  void publish(obs::MetricsRegistry& registry) const;
};

/// Result of one fault-tolerant replay: the merged log (bitwise identical
/// to the fault-free path) plus what it took to get there.
struct FaultTolerantReplayResult {
  std::vector<Response> responses;
  MergeStats merge;
  FaultStats faults;
  /// Primary (router) request counts per shard, as in ShardedReplayResult.
  std::vector<std::size_t> per_shard_requests;
  /// Shard whose execution produced each merged response, in log order.
  /// Differs from the primary route exactly where failover rerouted.
  std::vector<std::size_t> executed_by;
};

/// K identically configured service shards behind one router.
///
/// Three modes, mirroring Scheduler:
/// - replay(log, parallelism, transport): deterministic merged replay --
///   route, execute every request on its shard (fanned out over one
///   sim::BatchRunner), stream the per-shard responses through the
///   transport (round-robin across shards so streams genuinely
///   interleave), merge. Default transport is the lossless
///   DirectTransport; requires at-least-once delivery (no loss).
/// - replay_fault_tolerant(log, parallelism, transport, config): the
///   resilient replay -- same guarantees, but over a ClusterTransport
///   that may drop messages, crash shards and partition links. The
///   coordinator re-requests past-deadline responses with capped
///   exponential backoff and reroutes around shards its failure detector
///   declared down; recovered shards rejoin without re-executing work
///   that already merged.
/// - start()/submit()/drain_and_stop(): live mode -- each shard runs its
///   own Scheduler over its own bounded priority queue, all fanning into
///   one shared sink; submit() routes by session key. Per-priority latency
///   telemetry merges across shards via util::LatencyHistogram::merge.
class ShardCluster {
 public:
  ShardCluster(quant::CalibrationStore& store, ServiceConfig service,
               ShardClusterConfig config = {});
  ~ShardCluster();

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  std::size_t shard_count() const { return services_.size(); }
  const ShardRouter& router() const { return router_; }
  const ShardClusterConfig& config() const { return config_; }

  DiagnosticsService& shard(std::size_t s);

  /// Shard a session key routes to.
  std::size_t route(const SessionKey& key) const { return router_.route(key); }

  /// Audit the per-shard run-id sub-domains a log would lease under pure
  /// router placement (no failover).
  LeaseCensus lease_census(std::span<const Request> log) const;

  /// Audit a *completed* replay: attributes each request's lease block to
  /// the shard that actually produced its merged response (`executed_by`
  /// from FaultTolerantReplayResult). Disjointness must survive failover
  /// rerouting -- leases are keyed by request id, never by shard.
  LeaseCensus lease_census(std::span<const Request> log,
                           std::span<const std::size_t> executed_by) const;

  // --- deterministic replay -------------------------------------------------

  /// Merged K-shard replay of a recorded log. parallelism 0 = hardware,
  /// 1 = sequential inline (per the BatchRunner contract); `transport`
  /// nullptr uses a lossless in-order DirectTransport.
  ShardedReplayResult replay(std::span<const Request> log,
                             std::size_t parallelism = 0,
                             ShardTransport* transport = nullptr);

  /// Fault-tolerant merged replay over a lossy/crashy/partitioned
  /// transport. The merged responses are bitwise identical to replay()
  /// and to single-node Scheduler::replay at any parallelism and under
  /// any seeded fault schedule (tests/netsim/ pins this). `transport`
  /// nullptr uses the perfect DirectClusterTransport.
  FaultTolerantReplayResult replay_fault_tolerant(
      std::span<const Request> log, std::size_t parallelism = 0,
      ClusterTransport* transport = nullptr,
      const FaultToleranceConfig& fault_config = {});

  // --- live mode ------------------------------------------------------------

  /// Start every shard's scheduler. `sink` (optional) receives every
  /// response and telemetry record across all shards; it is closed exactly
  /// once, after the last shard drained. One-shot, like Scheduler.
  void start(ResultSink* sink = nullptr);

  /// Route + non-blocking admission on the owning shard's queue.
  Admission submit(Request request);

  /// Route + blocking admission (backpressure on the owning shard).
  Admission submit_wait(Request request);

  /// Route + bounded-wait admission (kRejectedTimeout once `timeout`
  /// expires on a full owning-shard queue).
  Admission submit_wait_for(Request request, std::chrono::nanoseconds timeout);

  /// Drain and stop every shard, then close the sink. Idempotent.
  void drain_and_stop();

  bool running() const { return running_; }

  /// Requests fully served in live mode, across all shards.
  std::uint64_t completed() const;

  /// One priority class's latency account, merged across all shards.
  PriorityTelemetry telemetry(Priority priority) const;

  /// Admission accounting (accepted / rejected / shed / timed out),
  /// merged across all shard queues. Zeros before start().
  QueueStats queue_stats() const;

  // --- observability ---------------------------------------------------------

  /// Attach a trace recorder (nullptr = off) to the cluster and every
  /// shard service: replay paths then emit kShardRoute / kMerge spans
  /// (plus kRetry / kReroute / kFailover / kRejoin on the fault-tolerant
  /// path), and the services emit their execution spans. Attach before
  /// replaying or start().
  void set_trace(obs::TraceRecorder* trace);

  /// Attach a metrics registry (nullptr = off) to every shard service,
  /// and -- when attached before start() -- to each shard's scheduler for
  /// live latency streaming (labels carry the shard index). The replay
  /// paths additionally publish their merge/fault stats on completion, so
  /// one attached registry satisfies every serve conservation rule.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Publish every shard's admission account and completion counters into
  /// `registry` (per-shard labels), live mode only; no-op before start().
  void publish_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a telemetry bus (nullptr = off). Replay paths then stream
  /// each request's capture (kShardRoute + the service's spans + metric
  /// deltas) in log order during the execution phase -- BEFORE transport
  /// and merge -- so the published frame sequence is a pure function of
  /// (log, configuration): independent of parallelism AND of the
  /// transport's fault schedule (coordinator-side kMerge / kRetry /
  /// kFailover spans are batch metadata of the recovery schedule and
  /// deliberately do not stream). Live mode forwards the bus to every
  /// shard scheduler at start(). Attach before replaying or start().
  void set_stream(obs::TelemetryBus* stream);

 private:
  /// Shared census core: attribute each request's lease block to
  /// owner_of[i], with `primary` used to flag failover attributions.
  LeaseCensus census_of(std::span<const Request> log,
                        std::span<const std::size_t> owner_of,
                        std::span<const std::size_t> primary) const;

  ShardClusterConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<DiagnosticsService>> services_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_; ///< live mode only
  std::unique_ptr<FanInSink> fan_in_;
  bool running_ = false;
  bool live_used_ = false;
  obs::TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TelemetryBus* stream_ = nullptr;
};

}  // namespace idp::serve
