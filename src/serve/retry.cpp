/// \file retry.cpp
/// Capped-exponential-backoff retry ledger implementation.

#include "serve/retry.hpp"

#include "util/error.hpp"

namespace idp::serve {

std::uint64_t backoff_ticks(const RetryPolicy& policy, std::size_t attempt) {
  util::require(policy.response_timeout_ticks > 0,
                "retry policy needs a positive response timeout");
  util::require(policy.max_backoff_ticks >= policy.response_timeout_ticks,
                "backoff cap below the base timeout can never be reached");
  std::uint64_t backoff = policy.response_timeout_ticks;
  for (std::size_t i = 0; i < attempt; ++i) {
    if (backoff >= policy.max_backoff_ticks / 2) {
      return policy.max_backoff_ticks;  // doubling again would saturate
    }
    backoff *= 2;
  }
  return backoff < policy.max_backoff_ticks ? backoff
                                            : policy.max_backoff_ticks;
}

RetryTracker::RetryTracker(RetryPolicy policy) : policy_(policy) {
  util::require(policy_.max_attempts > 0,
                "retry policy needs at least one attempt");
  // Surface bad tick parameters at construction, not first deadline.
  (void)backoff_ticks(policy_, 0);
}

std::size_t RetryTracker::dispatched(std::size_t index, std::uint64_t now) {
  const std::size_t attempt = attempts_[index]++;
  util::ensure(attempt < policy_.max_attempts,
               "request exhausted its retry budget -- the fault schedule "
               "starved delivery outright");
  ++dispatches_;
  if (attempt > 0) ++retries_;
  deadlines_.emplace(now + backoff_ticks(policy_, attempt), index);
  return attempt;
}

void RetryTracker::completed(std::size_t index) {
  attempts_.erase(index);
  // The armed deadline (if any) stays in the multimap; expired() skips
  // slots that are no longer outstanding, which keeps completion O(log n)
  // instead of a linear deadline scan.
}

std::vector<std::size_t> RetryTracker::expired(std::uint64_t now) {
  std::vector<std::size_t> due;
  while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
    const std::size_t index = deadlines_.begin()->second;
    deadlines_.erase(deadlines_.begin());
    if (attempts_.find(index) != attempts_.end()) due.push_back(index);
  }
  return due;
}

}  // namespace idp::serve
