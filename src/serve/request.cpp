/// \file request.cpp
/// Request vocabulary helpers: names and the session-key hash.

#include "serve/request.hpp"

namespace idp::serve {

namespace {

/// splitmix64 finaliser: a full-avalanche 64-bit mix.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kStat:
      return "stat";
    case Priority::kRoutine:
      return "routine";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPanelScan:
      return "panel_scan";
    case RequestKind::kQuantifiedRead:
      return "quantified_read";
    case RequestKind::kQcCheck:
      return "qc_check";
  }
  return "unknown";
}

std::uint64_t hash_of(const SessionKey& key) {
  std::uint64_t h = splitmix(key.patient);
  h = splitmix(h ^ ((static_cast<std::uint64_t>(key.tenant) << 32) |
                    static_cast<std::uint64_t>(key.device)));
  return h;
}

}  // namespace idp::serve
