/// \file shard_transport.hpp
/// The shard <-> coordinator message boundary: response envelopes, the
/// transport interfaces the coordinator drains, and the perfect (lossless,
/// in-order, zero-delay) defaults.
///
/// The transport is where distribution faults live. A shard stamps every
/// response with its origin shard and a per-shard send sequence; the
/// coordinator's merger must reconstruct one deterministic global log from
/// whatever arrival order the transport produces. Two fault models, two
/// interfaces:
///
/// - ShardTransport (the PR 6 contract): *at-least-once, no-loss*
///   delivery. Messages may be arbitrarily reordered, delayed and
///   duplicated, but every sent envelope is eventually delivered at least
///   once; ResultMerger::finish therefore treats a shortfall as an error.
/// - ClusterTransport (the fault-tolerance contract): messages MAY BE
///   LOST -- per-message drops, shard crash/restart windows, bidirectional
///   partitions. The transport carries three message classes (work
///   dispatches, responses, heartbeats) on one virtual clock, and the
///   coordinator compensates with retry (serve/retry.hpp) and failover
///   (serve/failure_detector.hpp) instead of throwing. The simulated
///   network under tests/netsim/ injects all of those faults from a seed.
#pragma once

#include <cstdint>
#include <deque>

#include "serve/request.hpp"

namespace idp::serve {

/// One shard -> coordinator message.
struct ResponseEnvelope {
  std::size_t shard = 0;      ///< origin shard
  std::uint64_t sequence = 0; ///< per-shard send order (0, 1, ...)
  Response response;
};

/// Message channel between the shards and the coordinator. Single-threaded
/// use: the deterministic replay path sends and drains from one thread
/// (live mode bypasses the transport and fans into a locked sink instead).
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Accept one envelope for (eventual) delivery.
  virtual void send(ResponseEnvelope envelope) = 0;

  /// Deliver the next pending envelope; false when nothing is pending.
  virtual bool poll(ResponseEnvelope& out) = 0;

  /// Envelopes accepted by send().
  virtual std::uint64_t sent() const = 0;

  /// Envelopes handed out by poll() (>= sent() when duplicates exist).
  virtual std::uint64_t delivered() const = 0;
};

/// The ideal network: FIFO, lossless, no duplication. The sharded replay
/// under this transport is the reference the fault-injecting simulated
/// network is compared against.
class DirectTransport final : public ShardTransport {
 public:
  void send(ResponseEnvelope envelope) override;
  bool poll(ResponseEnvelope& out) override;
  std::uint64_t sent() const override { return sent_; }
  std::uint64_t delivered() const override { return delivered_; }

 private:
  std::deque<ResponseEnvelope> pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

/// Coordinator -> shard work dispatch (initial assignment or retransmit).
struct WorkEnvelope {
  std::size_t shard = 0;     ///< destination shard
  std::uint64_t work_id = 0; ///< coordinator-side request slot (log index)
};

/// Shard -> coordinator liveness beacon.
struct HeartbeatEnvelope {
  std::size_t shard = 0;
  std::uint64_t sent_tick = 0;
};

/// Virtual-clock transport between the coordinator and its shards for the
/// fault-tolerant replay path. Carries work dispatches (coordinator ->
/// shard), responses (shard -> coordinator, via the inherited send/poll
/// vocabulary) and heartbeats (shard -> coordinator). Unlike the base
/// ShardTransport contract, any message may be lost.
///
/// Clock discipline: every send of any message class advances the virtual
/// clock by one tick; advance() passes idle ticks. Delayed messages mature
/// -- become pollable -- only once the clock reaches their delivery tick,
/// which is what makes retry deadlines meaningful.
class ClusterTransport : public ShardTransport {
 public:
  /// Current virtual tick.
  virtual std::uint64_t now() const = 0;

  /// Let `ticks` of idle virtual time pass (delayed messages mature).
  virtual void advance(std::uint64_t ticks) = 0;

  /// Coordinator -> shard: dispatch (or retransmit) one request slot.
  virtual void send_work(WorkEnvelope work) = 0;

  /// Next matured work arrival; false when none has matured yet.
  virtual bool poll_work(WorkEnvelope& out) = 0;

  /// Shard -> coordinator liveness beacon.
  virtual void send_heartbeat(HeartbeatEnvelope heartbeat) = 0;

  /// Next matured heartbeat arrival.
  virtual bool poll_heartbeat(HeartbeatEnvelope& out) = 0;

  /// Next matured response arrival. Unlike poll() -- which drains the
  /// backlog regardless of delivery tick for the lossless replay path --
  /// this respects the virtual clock.
  virtual bool poll_ready(ResponseEnvelope& out) = 0;

  /// Whether `shard` is executing at the current tick (its crash/restart
  /// schedule). This is *shard-side* knowledge: the cluster's shard
  /// simulation consults it to decide whether work executes and
  /// heartbeats are emitted. The coordinator's failover decisions must
  /// rely on the FailureDetector (i.e. on heartbeat arrivals) alone.
  virtual bool shard_up(std::size_t shard) const = 0;

  /// Messages lost so far across all classes (drop + partition injection).
  virtual std::uint64_t dropped() const = 0;
};

/// The ideal cluster transport: FIFO, lossless, zero-delay, no crashes,
/// no partitions. The fault-tolerant replay over this transport is the
/// reference the hostile simulated network is compared against, and the
/// default when no transport is supplied.
class DirectClusterTransport final : public ClusterTransport {
 public:
  void send(ResponseEnvelope envelope) override;
  bool poll(ResponseEnvelope& out) override;
  std::uint64_t sent() const override { return sent_; }
  std::uint64_t delivered() const override { return delivered_; }

  std::uint64_t now() const override { return now_; }
  void advance(std::uint64_t ticks) override { now_ += ticks; }
  void send_work(WorkEnvelope work) override;
  bool poll_work(WorkEnvelope& out) override;
  void send_heartbeat(HeartbeatEnvelope heartbeat) override;
  bool poll_heartbeat(HeartbeatEnvelope& out) override;
  bool poll_ready(ResponseEnvelope& out) override { return poll(out); }
  bool shard_up(std::size_t) const override { return true; }
  std::uint64_t dropped() const override { return 0; }

 private:
  std::deque<ResponseEnvelope> pending_;
  std::deque<WorkEnvelope> work_pending_;
  std::deque<HeartbeatEnvelope> heartbeat_pending_;
  std::uint64_t now_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace idp::serve
