/// \file shard_transport.hpp
/// The shard -> coordinator message boundary: response envelopes, the
/// transport interface the coordinator drains, and the perfect (lossless,
/// in-order, zero-delay) DirectTransport default.
///
/// The transport is where distribution faults live. A shard stamps every
/// response with its origin shard and a per-shard send sequence; the
/// coordinator's merger must reconstruct one deterministic global log from
/// whatever arrival order the transport produces. The contract the sharded
/// determinism sweep enforces is *at-least-once, no-loss* delivery:
/// messages may be arbitrarily reordered, delayed and duplicated (the
/// simulated network under tests/netsim/ injects exactly those faults from
/// a seed), but every sent envelope is eventually delivered at least once.
/// Loss would need an acknowledgement/retransmit layer, which is future
/// work -- the merger therefore *detects* loss (ResultMerger::finish
/// throws) rather than silently producing a shorter log.
#pragma once

#include <cstdint>
#include <deque>

#include "serve/request.hpp"

namespace idp::serve {

/// One shard -> coordinator message.
struct ResponseEnvelope {
  std::size_t shard = 0;      ///< origin shard
  std::uint64_t sequence = 0; ///< per-shard send order (0, 1, ...)
  Response response;
};

/// Message channel between the shards and the coordinator. Single-threaded
/// use: the deterministic replay path sends and drains from one thread
/// (live mode bypasses the transport and fans into a locked sink instead).
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Accept one envelope for (eventual) delivery.
  virtual void send(ResponseEnvelope envelope) = 0;

  /// Deliver the next pending envelope; false when nothing is pending.
  virtual bool poll(ResponseEnvelope& out) = 0;

  /// Envelopes accepted by send().
  virtual std::uint64_t sent() const = 0;

  /// Envelopes handed out by poll() (>= sent() when duplicates exist).
  virtual std::uint64_t delivered() const = 0;
};

/// The ideal network: FIFO, lossless, no duplication. The sharded replay
/// under this transport is the reference the fault-injecting simulated
/// network is compared against.
class DirectTransport final : public ShardTransport {
 public:
  void send(ResponseEnvelope envelope) override;
  bool poll(ResponseEnvelope& out) override;
  std::uint64_t sent() const override { return sent_; }
  std::uint64_t delivered() const override { return delivered_; }

 private:
  std::deque<ResponseEnvelope> pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace idp::serve
