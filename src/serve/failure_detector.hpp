/// \file failure_detector.hpp
/// Heartbeat-based shard liveness for the fault-tolerant coordinator.
///
/// Every live shard emits a heartbeat each `heartbeat_interval_ticks` of
/// virtual time; the coordinator feeds arrivals into the FailureDetector
/// and declares a shard down after `timeout_ticks` of silence. The
/// detector is the coordinator's ONLY source of liveness -- it never peeks
/// at the transport's crash schedule -- so a partition that swallows
/// heartbeats is indistinguishable from a crash, exactly as in a real
/// cluster.
///
/// False positives are safe by construction: declaring a live shard down
/// merely reroutes its retransmits to a peer, and since every response is
/// a pure function of its request (run-id leases are keyed by request id,
/// not by shard) the rerouted execution is bitwise identical and the
/// merger dedups whichever copy arrives second. The detector therefore
/// tunes for availability, not for certainty.
#pragma once

#include <cstdint>
#include <vector>

namespace idp::obs {
class MetricsRegistry;
}

namespace idp::serve {

/// Liveness timing, in virtual ticks.
struct FailureDetectorConfig {
  /// Cadence at which each live shard emits a heartbeat.
  std::uint64_t heartbeat_interval_ticks = 16;

  /// Silence after which a shard is declared down. Must exceed the
  /// heartbeat interval (with delivery-jitter margin) or healthy shards
  /// flap.
  std::uint64_t timeout_ticks = 96;
};

enum class ShardHealth : std::uint8_t {
  kUp = 0,
  kDown = 1,
};

const char* to_string(ShardHealth health);

/// Timeout-based liveness ledger over K shards. Single-threaded, driven
/// by the coordinator loop. Every shard starts with a full grace period
/// (treated as heard-from at tick 0).
class FailureDetector {
 public:
  FailureDetector(FailureDetectorConfig config, std::size_t shards);

  const FailureDetectorConfig& config() const { return config_; }
  std::size_t shard_count() const { return last_seen_.size(); }

  /// A heartbeat from `shard` arrived at tick `now`. Positive evidence
  /// flips a down shard back to up immediately (rejoin).
  void heartbeat(std::size_t shard, std::uint64_t now);

  /// Sweep for timeouts at tick `now`, declaring silent shards down.
  void update(std::uint64_t now);

  /// Current verdict for one shard (as of the last update()/heartbeat()).
  ShardHealth health(std::size_t shard) const;

  /// Shards currently considered up.
  std::size_t up_count() const;

  /// Failover routing: the first up shard at or after `preferred`,
  /// scanning cyclically. Returns `preferred` itself when it is up -- or
  /// when every shard is down, in which case the caller keeps retrying
  /// the primary until something recovers.
  std::size_t route_around(std::size_t preferred) const;

  /// up -> down declarations observed.
  std::uint64_t failovers() const { return failovers_; }
  /// down -> up recoveries observed.
  std::uint64_t rejoins() const { return rejoins_; }

  /// Publish the detector's own ledger under serve.detector.* (failover /
  /// rejoin counters plus an up-shard gauge). The coordinator separately
  /// publishes the same transitions inside its FaultStats under
  /// serve.cluster.*; this surface exists so a detector used standalone
  /// still reports.
  void publish(obs::MetricsRegistry& registry) const;

 private:
  FailureDetectorConfig config_;
  std::vector<std::uint64_t> last_seen_;
  std::vector<bool> down_;
  std::uint64_t failovers_ = 0;
  std::uint64_t rejoins_ = 0;
};

}  // namespace idp::serve
