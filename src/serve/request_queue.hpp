/// \file request_queue.hpp
/// The service front door: a bounded, multi-class priority queue with
/// explicit admission control. A request is either *accepted* or
/// *rejected with a reason* -- the queue never drops silently. Capacity is
/// shared across the three priority classes, with an optional stat-only
/// reserve so emergency requests still admit when routine/batch traffic
/// has filled the house. Dispatch order is strict priority (stat before
/// routine before batch) and FIFO within a class, so a stat request can
/// never be inverted behind lower-priority work.
///
/// Graceful degradation: the queue doubles as the overload controller.
/// Optional shed watermarks turn sustained depth into *early, explicit*
/// rejection of the lowest-value classes -- batch work sheds first, then
/// routine, stat never -- so under overload the queue keeps headroom for
/// the traffic whose latency matters instead of filling up with batch
/// backlog. A shed is an admission outcome (kRejectedShed) with its own
/// counter, never a silent drop.
///
/// Determinism note: the queue orders *dispatch*, never results. Response
/// payloads derive from leased run-id blocks (serve/service.hpp), so the
/// service's output is bitwise independent of arrival interleaving or of
/// which worker pops what.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "serve/request.hpp"

namespace idp::obs {
class MetricsRegistry;
struct MetricLabels;
}  // namespace idp::obs

namespace idp::serve {

/// Queue sizing and admission-control knobs.
struct RequestQueueConfig {
  /// Total capacity across all priority classes; must be > 0 (a
  /// zero-capacity service could only reject, which is a config mistake).
  std::size_t capacity = 1024;

  /// Slots of `capacity` only stat requests may use: routine/batch
  /// admission requires depth < capacity - stat_reserve. Must be smaller
  /// than capacity.
  std::size_t stat_reserve = 0;

  /// Overload shedding: once depth >= batch_shed_depth, batch admissions
  /// return kRejectedShed instead of queueing (0 disables). Must not
  /// exceed the non-stat usable capacity, or the watermark could never
  /// fire before kRejectedFull made it moot.
  std::size_t batch_shed_depth = 0;

  /// Same watermark for routine work; sheds after batch (must be >=
  /// batch_shed_depth when both are enabled). Stat is never shed.
  std::size_t routine_shed_depth = 0;
};

/// Outcome of an admission attempt.
enum class Admission : std::uint8_t {
  kAccepted = 0,
  kRejectedFull = 1,     ///< explicit backpressure signal to the caller
  kRejectedClosed = 2,   ///< the service is shutting down
  kRejectedShed = 3,     ///< overload controller shed this class early
  kRejectedTimeout = 4,  ///< push_wait_for expired before space appeared
};

const char* to_string(Admission admission);

/// Snapshot of the queue's admission accounting -- the telemetry surface
/// the scheduler and the sharded cluster expose. Airtight by conservation:
/// offered == accepted + rejected_full + rejected_closed + shed +
/// timed_out -- every offered request lands in exactly one bucket, nothing
/// is ever dropped silently (obs::serve_conservation_rules() pins this).
struct QueueStats {
  std::size_t depth = 0;
  std::size_t high_water = 0;
  std::uint64_t offered = 0;  ///< admission attempts, any outcome
  std::uint64_t accepted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_closed = 0;  ///< offers against a closed queue
  std::uint64_t shed = 0;       ///< overload-controller rejections
  std::uint64_t timed_out = 0;  ///< bounded waits that expired

  /// Fold another queue's account in (cross-shard aggregation).
  void merge(const QueueStats& other) {
    depth += other.depth;
    high_water = high_water > other.high_water ? high_water : other.high_water;
    offered += other.offered;
    accepted += other.accepted;
    rejected_full += other.rejected_full;
    rejected_closed += other.rejected_closed;
    shed += other.shed;
    timed_out += other.timed_out;
  }

  /// Publish this snapshot into a metrics registry under the canonical
  /// serve.queue.* names (counters set, depth/high_water as gauges).
  void publish(obs::MetricsRegistry& registry,
               const obs::MetricLabels& labels) const;
};

/// One queued request plus its enqueue instant (for queue-wait telemetry).
struct QueuedRequest {
  Request request;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Thread-safe bounded priority queue (three FIFO lanes).
class RequestQueue {
 public:
  explicit RequestQueue(RequestQueueConfig config = {});

  const RequestQueueConfig& config() const { return config_; }

  /// Non-blocking admission: accepted, or rejected-full / rejected-shed /
  /// rejected-closed.
  Admission try_push(Request request);

  /// Blocking admission (backpressure): waits for space, then accepts;
  /// returns kRejectedClosed if the queue closes while waiting. A class
  /// above its shed watermark does not wait -- overload means "go away
  /// now", so it returns kRejectedShed immediately.
  Admission push_wait(Request request);

  /// Bounded-wait admission: like push_wait, but gives up with
  /// kRejectedTimeout once `timeout` elapses without space. Callers that
  /// cannot block forever on a full queue use this instead of try_push
  /// polling loops.
  Admission push_wait_for(Request request, std::chrono::nanoseconds timeout);

  /// Blocking dispatch: pops the oldest request of the highest non-empty
  /// priority class. Returns false when the queue is closed *and* drained
  /// (a closed queue still hands out everything it accepted).
  bool pop(QueuedRequest& out);

  /// Non-blocking dispatch.
  bool try_pop(QueuedRequest& out);

  /// Close the queue: subsequent pushes reject with kRejectedClosed,
  /// blocked pushers wake and reject, pops drain the remaining requests.
  void close();

  bool closed() const;

  /// Requests currently waiting (all classes).
  std::size_t depth() const;
  /// Largest depth ever observed.
  std::size_t high_water() const;

  // Per-counter accessors. These predate the metrics registry and remain
  // as thin wrappers over stats(); new code should snapshot the registry
  // (or stats()) instead of polling counters one lock each.
  std::uint64_t offered() const { return stats().offered; }
  std::uint64_t accepted() const { return stats().accepted; }
  std::uint64_t rejected() const { return stats().rejected_full; }
  std::uint64_t rejected_closed() const { return stats().rejected_closed; }
  std::uint64_t shed() const { return stats().shed; }
  std::uint64_t timed_out() const { return stats().timed_out; }

  /// One consistent snapshot of all the counters above.
  QueueStats stats() const;

 private:
  /// Admission rule for one class given the current depth.
  bool has_space_locked(Priority priority) const;
  /// Overload rule: above its watermark, a class sheds instead of queueing.
  bool should_shed_locked(Priority priority) const;
  Admission push_locked(Request&& request);

  RequestQueueConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< a request was enqueued / closed
  std::condition_variable space_;  ///< a slot freed up / closed
  std::array<std::deque<QueuedRequest>, kPriorityCount> lanes_;
  std::size_t depth_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rejected_closed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t timed_out_ = 0;
  bool closed_ = false;
};

}  // namespace idp::serve
