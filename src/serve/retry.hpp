/// \file retry.hpp
/// Virtual-clock retry machinery for the fault-tolerant coordinator.
///
/// Under a lossy transport the coordinator must re-request missing
/// responses instead of throwing. Two pieces make that deterministic:
///
/// - RetryPolicy: a deadline plus capped exponential backoff, expressed in
///   *virtual ticks* (the transport's clock), never wall time. The entire
///   retransmit schedule is therefore a pure function of the fault
///   schedule, and a hostile replay is exactly as reproducible as a
///   fault-free one.
/// - RetryTracker: the coordinator-side ledger of outstanding requests --
///   which slot was dispatched when, which deadline fires next, which
///   requests completed. A retransmit is always safe: responses are pure
///   functions of their request, and the merger dedups on request id, so
///   at-least-once dispatch composes into exactly-once merge.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace idp::serve {

/// Deadline + capped exponential backoff, in virtual ticks.
struct RetryPolicy {
  /// Deadline for the first dispatch: if no response merged within this
  /// many ticks, the request is retransmitted.
  std::uint64_t response_timeout_ticks = 96;

  /// Backoff ceiling: the doubled deadline saturates here, so a request
  /// stranded by a long outage keeps probing at a bounded cadence instead
  /// of backing off into silence.
  std::uint64_t max_backoff_ticks = 1024;

  /// Dispatches (initial + retransmits) a request may consume before the
  /// replay gives up loudly. Exhaustion means the fault schedule starved
  /// delivery outright -- an error, never a silent shortfall.
  std::size_t max_attempts = 24;
};

/// Deadline after dispatch number `attempt` (0-based): capped exponential
/// backoff, response_timeout_ticks * 2^attempt saturating at
/// max_backoff_ticks. Pure; overflow-safe for any attempt count.
std::uint64_t backoff_ticks(const RetryPolicy& policy, std::size_t attempt);

/// Coordinator-side ledger of outstanding dispatches and their virtual
/// deadlines. Single-threaded, like the merge loop that drives it.
class RetryTracker {
 public:
  explicit RetryTracker(RetryPolicy policy);

  const RetryPolicy& policy() const { return policy_; }

  /// Record a dispatch of request slot `index` at tick `now`: arms the
  /// slot's next deadline with the policy's backoff and returns the
  /// 0-based attempt number just consumed. Throws util::Error once the
  /// slot's retry budget is exhausted.
  std::size_t dispatched(std::size_t index, std::uint64_t now);

  /// Mark a slot complete: its pending deadline is disarmed and it will
  /// never be returned by expired() again. Idempotent.
  void completed(std::size_t index);

  /// Slots whose deadline has passed at `now` and which are still
  /// incomplete, in deterministic (deadline, arm-order) order. Each expiry
  /// is returned once; re-dispatching re-arms the slot.
  std::vector<std::size_t> expired(std::uint64_t now);

  /// Dispatches recorded so far.
  std::uint64_t dispatches() const { return dispatches_; }
  /// Dispatches beyond each slot's first (the retransmit count).
  std::uint64_t retries() const { return retries_; }
  /// Slots dispatched but not yet completed.
  std::size_t outstanding() const { return attempts_.size(); }

 private:
  RetryPolicy policy_;
  std::map<std::size_t, std::size_t> attempts_;  ///< slot -> dispatch count
  /// (deadline tick, slot); multimap keeps equal-tick expiries in arm
  /// order, so the retransmit sequence is deterministic.
  std::multimap<std::uint64_t, std::size_t> deadlines_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace idp::serve
