/// \file request_queue.cpp
/// Bounded multi-class priority queue implementation, including the
/// overload controller (shed watermarks) and the bounded-wait admission
/// path.

#include "serve/request_queue.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace idp::serve {

const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kRejectedFull:
      return "rejected_full";
    case Admission::kRejectedClosed:
      return "rejected_closed";
    case Admission::kRejectedShed:
      return "rejected_shed";
    case Admission::kRejectedTimeout:
      return "rejected_timeout";
  }
  return "unknown";
}

RequestQueue::RequestQueue(RequestQueueConfig config) : config_(config) {
  util::require(config_.capacity > 0,
                "request queue needs capacity > 0 (a zero-capacity service "
                "could only reject)");
  util::require(config_.stat_reserve < config_.capacity,
                "stat_reserve must leave room for non-stat admission");
  const std::size_t usable = config_.capacity - config_.stat_reserve;
  util::require(config_.batch_shed_depth <= usable,
                "batch_shed_depth above the non-stat capacity could never "
                "fire before rejected_full");
  util::require(config_.routine_shed_depth <= usable,
                "routine_shed_depth above the non-stat capacity could never "
                "fire before rejected_full");
  util::require(config_.batch_shed_depth == 0 ||
                    config_.routine_shed_depth == 0 ||
                    config_.batch_shed_depth <= config_.routine_shed_depth,
                "overload must shed batch work before routine work");
}

bool RequestQueue::has_space_locked(Priority priority) const {
  const std::size_t usable = priority == Priority::kStat
                                 ? config_.capacity
                                 : config_.capacity - config_.stat_reserve;
  return depth_ < usable;
}

bool RequestQueue::should_shed_locked(Priority priority) const {
  const std::size_t watermark =
      priority == Priority::kBatch     ? config_.batch_shed_depth
      : priority == Priority::kRoutine ? config_.routine_shed_depth
                                       : 0;  // stat is never shed
  return watermark > 0 && depth_ >= watermark;
}

Admission RequestQueue::push_locked(Request&& request) {
  const auto lane = static_cast<std::size_t>(request.priority);
  util::require(lane < kPriorityCount, "invalid priority class");
  lanes_[lane].push_back(
      QueuedRequest{std::move(request), std::chrono::steady_clock::now()});
  ++depth_;
  high_water_ = std::max(high_water_, depth_);
  ++accepted_;
  return Admission::kAccepted;
}

Admission RequestQueue::try_push(Request request) {
  Admission admission;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++offered_;
    if (closed_) {
      ++rejected_closed_;
      return Admission::kRejectedClosed;
    }
    if (should_shed_locked(request.priority)) {
      ++shed_;
      return Admission::kRejectedShed;
    }
    if (!has_space_locked(request.priority)) {
      ++rejected_;
      return Admission::kRejectedFull;
    }
    admission = push_locked(std::move(request));
  }
  ready_.notify_one();
  return admission;
}

Admission RequestQueue::push_wait(Request request) {
  Admission admission;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++offered_;
    // An overloaded class does not get to wait out the storm on the
    // queue's doorstep: shedding exists to push the backlog back to the
    // caller immediately.
    if (!closed_ && should_shed_locked(request.priority)) {
      ++shed_;
      return Admission::kRejectedShed;
    }
    space_.wait(lock, [&] {
      return closed_ || has_space_locked(request.priority);
    });
    if (closed_) {
      ++rejected_closed_;
      return Admission::kRejectedClosed;
    }
    admission = push_locked(std::move(request));
  }
  ready_.notify_one();
  return admission;
}

Admission RequestQueue::push_wait_for(Request request,
                                      std::chrono::nanoseconds timeout) {
  Admission admission;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++offered_;
    if (!closed_ && should_shed_locked(request.priority)) {
      ++shed_;
      return Admission::kRejectedShed;
    }
    const bool woke = space_.wait_for(lock, timeout, [&] {
      return closed_ || has_space_locked(request.priority);
    });
    if (!woke) {
      ++timed_out_;
      return Admission::kRejectedTimeout;
    }
    if (closed_) {
      ++rejected_closed_;
      return Admission::kRejectedClosed;
    }
    admission = push_locked(std::move(request));
  }
  ready_.notify_one();
  return admission;
}

bool RequestQueue::pop(QueuedRequest& out) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || depth_ > 0; });
    if (depth_ == 0) return false;  // closed and drained
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      out = std::move(lane.front());
      lane.pop_front();
      --depth_;
      break;
    }
  }
  // notify_all, not notify_one: with a stat reserve the space_ waiters
  // have *heterogeneous* predicates (a freed slot may admit a blocked
  // stat pusher but not a blocked routine one), so a single wakeup could
  // land on a waiter whose predicate is still false and strand the one
  // the slot was actually reserved for.
  space_.notify_all();
  return true;
}

bool RequestQueue::try_pop(QueuedRequest& out) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (depth_ == 0) return false;
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      out = std::move(lane.front());
      lane.pop_front();
      --depth_;
      break;
    }
  }
  space_.notify_all();  // heterogeneous waiter predicates; see pop()
  return true;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
  space_.notify_all();
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

std::size_t RequestQueue::high_water() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

QueueStats RequestQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  QueueStats stats;
  stats.depth = depth_;
  stats.high_water = high_water_;
  stats.offered = offered_;
  stats.accepted = accepted_;
  stats.rejected_full = rejected_;
  stats.rejected_closed = rejected_closed_;
  stats.shed = shed_;
  stats.timed_out = timed_out_;
  return stats;
}

void QueueStats::publish(obs::MetricsRegistry& registry,
                         const obs::MetricLabels& labels) const {
  registry.counter("serve.queue.offered", labels).set(offered);
  registry.counter("serve.queue.accepted", labels).set(accepted);
  registry.counter("serve.queue.rejected_full", labels).set(rejected_full);
  registry.counter("serve.queue.rejected_closed", labels).set(rejected_closed);
  registry.counter("serve.queue.shed", labels).set(shed);
  registry.counter("serve.queue.timed_out", labels).set(timed_out);
  registry.gauge("serve.queue.depth", labels)
      .set(static_cast<double>(depth));
  registry.gauge("serve.queue.high_water", labels)
      .set(static_cast<double>(high_water));
}

}  // namespace idp::serve
