/// \file result_sink.hpp
/// Where served results go: a sink interface the scheduler feeds from its
/// workers, a CSV implementation streaming responses + per-request
/// telemetry via util/csv, and the free function that writes a response
/// span as the canonical deterministic CSV.
///
/// Two outputs, two contracts:
/// - the *response* CSV is deterministic -- rows ordered by (request id,
///   channel), payload a pure function of the request log, so replays at
///   any parallelism produce bitwise identical files (the CsvResultSink
///   buffers live completions and sorts at close() to preserve this even
///   when workers finish out of order);
/// - the *telemetry* CSV is observational -- queue wait and service time
///   in wall-clock seconds, streamed in completion order, never expected
///   to reproduce.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace idp::serve {

/// Wall-clock observation of one served request.
struct RequestTelemetry {
  std::uint64_t request_id = 0;
  Priority priority = Priority::kRoutine;
  RequestKind kind = RequestKind::kQuantifiedRead;
  double queue_wait_s = 0.0;    ///< enqueue -> dispatch
  double service_time_s = 0.0;  ///< dispatch -> response
  std::uint32_t calibration_epoch = 0;
  std::uint32_t flags = 0;  ///< OR of the response's QuantFlag bits
};

/// Receives served results. Implementations must tolerate concurrent
/// calls from multiple scheduler workers.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void on_response(const Response& response) = 0;
  virtual void on_telemetry(const RequestTelemetry& telemetry) = 0;
  /// Flush/finalise; called once by Scheduler::drain_and_stop().
  virtual void close() = 0;
};

/// The canonical response CSV: one row per (request, channel), ordered by
/// (request id, channel) -- bitwise identical for bitwise identical
/// response sets. Columns: request_id, tenant, patient, device, priority,
/// kind, time_h, sensor_age_days, calibration_epoch, channel, target,
/// truth_mM, response, estimate_mM, ci_low_mM, ci_high_mM, flags,
/// qc_blank_residual, qc_standard_residual.
void write_responses_csv(std::span<const Response> responses,
                         const std::string& path);

/// One named latency account for the telemetry-summary export (e.g. the
/// queue-wait or service-time histogram of one priority class).
struct LatencySummarySeries {
  std::string series;
  util::LatencyHistogram histogram;
};

/// The telemetry-summary CSV: one row per series under the canonical
/// latency-summary schema -- a `series` key followed by
/// util::latency_summary_columns() -- the SAME columns the metrics
/// registry snapshot (obs::MetricsSnapshot::to_csv) exports for its
/// histogram samples, so telemetry summaries and registry exports join on
/// identical headers. Every statistic is order-independent, so summaries
/// of a deterministic replay reproduce bitwise.
void write_telemetry_summary_csv(std::span<const LatencySummarySeries> series,
                                 const std::string& path);

/// CSV sink: buffers responses (sorted and written at close() for the
/// determinism contract above) and streams telemetry rows as they arrive.
class CsvResultSink final : public ResultSink {
 public:
  CsvResultSink(std::string responses_path, std::string telemetry_path);
  ~CsvResultSink() override;

  void on_response(const Response& response) override;
  void on_telemetry(const RequestTelemetry& telemetry) override;
  void close() override;

  std::size_t buffered_responses() const;

 private:
  mutable std::mutex mutex_;
  std::string responses_path_;
  std::vector<Response> responses_;
  util::CsvWriter telemetry_;
  bool closed_ = false;
};

}  // namespace idp::serve
