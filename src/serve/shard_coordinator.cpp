/// \file shard_coordinator.cpp
/// ShardCluster + ResultMerger implementation: routing, deterministic
/// merged replay over a (possibly faulty) transport, the fault-tolerant
/// retry/failover replay loop, and the live fan-in mode.

#include "serve/shard_coordinator.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "sim/batch.hpp"
#include "util/error.hpp"

namespace idp::serve {

// --- ResultMerger -----------------------------------------------------------

bool ResultMerger::accept(const ResponseEnvelope& envelope) {
  ++stats_.delivered;

  const auto [it, fresh] =
      by_id_.try_emplace(envelope.response.request_id, envelope.response);
  (void)it;
  if (!fresh) {
    // Redelivery of an already-merged id: counted, content dropped. A
    // duplicate says nothing about wire reordering of fresh traffic, so
    // it must not feed the reorder tracker below.
    ++stats_.duplicates_seen;
    return false;
  }

  // Reorder depth over first deliveries only: how far behind its shard's
  // newest-seen sequence this fresh arrival is.
  auto [newest, inserted] =
      newest_sequence_.try_emplace(envelope.shard, envelope.sequence);
  if (!inserted) {
    if (envelope.sequence < newest->second) {
      stats_.max_reorder_distance = std::max(
          stats_.max_reorder_distance, newest->second - envelope.sequence);
    } else {
      newest->second = envelope.sequence;
    }
  }
  return true;
}

void MergeStats::publish(obs::MetricsRegistry& registry,
                         std::uint64_t merged) const {
  registry.counter("serve.merge.delivered").set(delivered);
  registry.counter("serve.merge.merged").set(merged);
  registry.counter("serve.merge.duplicates").set(duplicates_seen);
  registry.gauge("serve.merge.reorder_max")
      .set(static_cast<double>(max_reorder_distance));
}

void FaultStats::publish(obs::MetricsRegistry& registry) const {
  registry.counter("serve.cluster.dispatches").set(dispatches);
  registry.counter("serve.cluster.retries").set(retries);
  registry.counter("serve.cluster.reroutes").set(reroutes);
  registry.counter("serve.cluster.executions").set(executions);
  registry.counter("serve.cluster.work_arrivals").set(work_arrivals);
  registry.counter("serve.cluster.work_discarded").set(work_discarded);
  registry.counter("serve.cluster.heartbeats").set(heartbeats);
  registry.counter("serve.cluster.messages_dropped").set(messages_dropped);
  registry.counter("serve.cluster.failovers").set(shard_failovers);
  registry.counter("serve.cluster.rejoins").set(shard_rejoins);
  registry.gauge("serve.cluster.final_tick")
      .set(static_cast<double>(final_tick));
}

std::vector<Response> ResultMerger::finish(std::size_t expected) {
  // A shortfall means the transport lost messages and no retry layer
  // recovered them: a silently truncated global log would defeat the
  // bitwise-replay guarantee downstream consumers rely on.
  util::require(by_id_.size() == expected,
                "merge incomplete: transport lost responses");
  std::vector<Response> out;
  out.reserve(by_id_.size());
  for (auto& [id, response] : by_id_) out.push_back(std::move(response));
  by_id_.clear();
  newest_sequence_.clear();
  return out;
}

// --- FanInSink --------------------------------------------------------------

FanInSink::FanInSink(ResultSink* inner, std::size_t shards)
    : inner_(inner), open_shards_(shards) {
  util::require(shards > 0, "fan-in needs at least one shard stream");
}

void FanInSink::on_response(const Response& response) {
  util::require(open_shards_.load(std::memory_order_acquire) > 0,
                "fan-in response after the last shard closed");
  if (inner_ != nullptr) inner_->on_response(response);
}

void FanInSink::on_telemetry(const RequestTelemetry& telemetry) {
  util::require(open_shards_.load(std::memory_order_acquire) > 0,
                "fan-in telemetry after the last shard closed");
  if (inner_ != nullptr) inner_->on_telemetry(telemetry);
}

void FanInSink::close() {
  // Countdown-close: the K'th close (one per draining shard) closes the
  // inner sink exactly once. CAS loop so an extra close can never wrap
  // the counter and resurrect a closed sink -- it throws instead.
  std::size_t open = open_shards_.load(std::memory_order_acquire);
  for (;;) {
    util::require(open > 0, "fan-in closed more times than it has shards");
    if (open_shards_.compare_exchange_weak(open, open - 1,
                                           std::memory_order_acq_rel)) {
      break;
    }
  }
  if (open == 1 && inner_ != nullptr) inner_->close();
}

// --- ShardCluster -----------------------------------------------------------

ShardCluster::ShardCluster(quant::CalibrationStore& store,
                           ServiceConfig service, ShardClusterConfig config)
    : config_(config), router_(config.router) {
  // Every shard gets an identically configured service over the shared
  // store. The store's campaign cache is first-insert-wins with stable
  // addresses and campaign builds are pure functions of their run-id
  // block, so shards sharing it stay bitwise independent of each other.
  services_.reserve(router_.shard_count());
  for (std::size_t s = 0; s < router_.shard_count(); ++s) {
    services_.push_back(std::make_unique<DiagnosticsService>(store, service));
  }
}

ShardCluster::~ShardCluster() { drain_and_stop(); }

DiagnosticsService& ShardCluster::shard(std::size_t s) {
  util::require(s < services_.size(), "shard index out of range");
  return *services_[s];
}

LeaseCensus ShardCluster::census_of(
    std::span<const Request> log, std::span<const std::size_t> owner_of,
    std::span<const std::size_t> primary) const {
  util::require(owner_of.size() == log.size() && primary.size() == log.size(),
                "census ownership must cover the whole log");
  LeaseCensus census;
  census.per_shard.resize(shard_count());
  const DiagnosticsService& reference = *services_.front();
  const std::uint64_t lease_width = reference.config().run_ids_per_request;
  std::map<std::uint64_t, std::size_t> block_owner;
  std::vector<std::set<std::uint64_t>> shard_sessions(shard_count());
  for (std::size_t i = 0; i < log.size(); ++i) {
    const Request& r = log[i];
    const std::size_t s = owner_of[i];
    util::require(s < shard_count(), "census owner shard out of range");
    ShardLeaseDomain& domain = census.per_shard[s];
    const std::uint64_t base = reference.lease_base(r.id);
    if (domain.requests == 0) {
      domain.first_run_id = base;
      domain.last_run_id = base + lease_width - 1;
    } else {
      domain.first_run_id = std::min(domain.first_run_id, base);
      domain.last_run_id = std::max(domain.last_run_id, base + lease_width - 1);
    }
    ++domain.requests;
    if (s != primary[i]) ++domain.failover_requests;
    shard_sessions[s].insert(hash_of(r.session));
    // A lease block claimed twice -- by another shard (routing bug) or by
    // the same shard (duplicate request id) -- breaks the disjointness
    // the determinism contract rests on. Failover moves whole requests,
    // never splits a block, so this holds under rerouting too.
    const auto [owner, fresh] = block_owner.try_emplace(base, s);
    (void)owner;
    if (!fresh) census.disjoint = false;
  }
  for (std::size_t s = 0; s < shard_count(); ++s) {
    census.per_shard[s].sessions = shard_sessions[s].size();
  }
  return census;
}

LeaseCensus ShardCluster::lease_census(std::span<const Request> log) const {
  std::vector<std::size_t> primary(log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    primary[i] = router_.route(log[i].session);
  }
  return census_of(log, primary, primary);
}

LeaseCensus ShardCluster::lease_census(
    std::span<const Request> log,
    std::span<const std::size_t> executed_by) const {
  std::vector<std::size_t> primary(log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    primary[i] = router_.route(log[i].session);
  }
  return census_of(log, executed_by, primary);
}

ShardedReplayResult ShardCluster::replay(std::span<const Request> log,
                                         std::size_t parallelism,
                                         ShardTransport* transport) {
  DirectTransport direct;
  if (transport == nullptr) transport = &direct;

  // Route up front: shard assignment and per-shard send sequences are
  // fixed before anything executes, exactly like run-id leases. Under
  // streaming, the route span travels in each request's capture instead
  // of recording here (the fold reproduces it bit for bit).
  const bool streaming = stream_ != nullptr;
  std::vector<std::size_t> shard_of(log.size());
  std::vector<std::vector<std::size_t>> routed(shard_count());
  for (std::size_t i = 0; i < log.size(); ++i) {
    shard_of[i] = router_.route(log[i].session);
    routed[shard_of[i]].push_back(i);
    if (!streaming && trace_ != nullptr) {
      trace_->record(log[i].id, obs::SpanKind::kShardRoute, shard_of[i], 0, 0,
                     log[i].time_h);
    }
  }

  // Execute everything through one BatchRunner (each request on its own
  // shard's service) so parallelism semantics match Scheduler::replay and
  // shards genuinely run concurrently. Streaming captures publish in log
  // order during THIS phase -- before transport and merge -- so the frame
  // sequence never depends on the transport's delivery schedule.
  std::vector<Response> responses(log.size());
  const sim::BatchRunner runner(parallelism);
  std::optional<obs::TelemetryStream> stream_out;
  std::optional<obs::StreamSequencer> sequencer;
  if (streaming) {
    stream_out.emplace(*stream_, trace_, metrics_);
    sequencer.emplace(*stream_out, log.size());
  }
  runner.run(log.size(), [&](std::size_t i) {
    if (streaming) {
      obs::TelemetryCapture capture;
      capture.span(log[i].id, obs::SpanKind::kShardRoute, shard_of[i], 0, 0,
                   log[i].time_h);
      responses[i] = services_[shard_of[i]]->execute(log[i], &capture);
      sequencer->deposit(i, std::move(capture));
    } else {
      responses[i] = services_[shard_of[i]]->execute(log[i]);
    }
  });

  // Stream shard result streams into the transport round-robin, so
  // cross-shard interleaving is real even before the transport reorders.
  ShardedReplayResult result;
  result.per_shard_requests.reserve(shard_count());
  for (const std::vector<std::size_t>& indices : routed) {
    result.per_shard_requests.push_back(indices.size());
  }
  std::vector<std::size_t> cursor(shard_count(), 0);
  for (bool pending = !log.empty(); pending;) {
    pending = false;
    for (std::size_t s = 0; s < shard_count(); ++s) {
      if (cursor[s] >= routed[s].size()) continue;
      ResponseEnvelope envelope;
      envelope.shard = s;
      envelope.sequence = cursor[s];
      envelope.response = std::move(responses[routed[s][cursor[s]]]);
      transport->send(std::move(envelope));
      if (++cursor[s] < routed[s].size()) pending = true;
    }
  }

  // Coordinator drain + sorted merge keyed on request id.
  ResultMerger merger;
  ResponseEnvelope envelope;
  while (transport->poll(envelope)) {
    if (merger.accept(envelope) && trace_ != nullptr) {
      trace_->record(envelope.response.request_id, obs::SpanKind::kMerge,
                     envelope.shard, envelope.sequence, 0,
                     envelope.response.time_h);
    }
  }
  result.merge = merger.stats();
  result.responses = merger.finish(log.size());
  if (metrics_ != nullptr) {
    result.merge.publish(*metrics_, result.responses.size());
  }
  return result;
}

// GCC 12's -Wfree-nonheap-object misfires on the stack-local bookkeeping
// vectors below once their destructors inline into this frame (PR 104475
// family); the allocation and deallocation are both the std::vector's own.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

FaultTolerantReplayResult ShardCluster::replay_fault_tolerant(
    std::span<const Request> log, std::size_t parallelism,
    ClusterTransport* transport, const FaultToleranceConfig& fault_config) {
  DirectClusterTransport direct;
  if (transport == nullptr) transport = &direct;

  // Route up front, and index responses by request id so arrivals map
  // back to their log slot.
  std::vector<std::size_t> shard_of(log.size());
  std::map<std::uint64_t, std::size_t> index_of;
  FaultTolerantReplayResult result;
  result.per_shard_requests.assign(shard_count(), 0);
  result.executed_by.assign(log.size(), 0);
  for (std::size_t i = 0; i < log.size(); ++i) {
    shard_of[i] = router_.route(log[i].session);
    ++result.per_shard_requests[shard_of[i]];
    const auto [it, fresh] = index_of.try_emplace(log[i].id, i);
    (void)it;
    util::require(fresh, "request ids in a log must be unique");
  }

  // Precompute the primary-route responses through one BatchRunner; this
  // is the only place `parallelism` applies -- the fault simulation below
  // is a single-threaded virtual-clock loop, so its behaviour is a pure
  // function of (log, config, fault schedule) at any parallelism. A real
  // shard computes a response on first execution and caches it for
  // retransmits; precomputing expresses the identical purity statement.
  // Streaming: the fault-tolerant path streams each request's capture
  // once, here, in log order. Recovery telemetry (kRetry / kReroute /
  // kFailover / kMerge, and failover re-executions) depends on the fault
  // schedule and records into the batch recorder only -- the stream's
  // determinism contract is over (log, seed, config) alone.
  std::vector<Response> primary_responses(log.size());
  const sim::BatchRunner runner(parallelism);
  std::optional<obs::TelemetryStream> stream_out;
  std::optional<obs::StreamSequencer> sequencer;
  if (stream_ != nullptr) {
    stream_out.emplace(*stream_, trace_, metrics_);
    sequencer.emplace(*stream_out, log.size());
  }
  runner.run(log.size(), [&](std::size_t i) {
    if (stream_ != nullptr) {
      obs::TelemetryCapture capture;
      primary_responses[i] = services_[shard_of[i]]->execute(log[i], &capture);
      sequencer->deposit(i, std::move(capture));
    } else {
      primary_responses[i] = services_[shard_of[i]]->execute(log[i]);
    }
  });

  RetryTracker tracker(fault_config.retry);
  FailureDetector detector(fault_config.detector, shard_count());
  ResultMerger merger;
  std::vector<std::uint64_t> next_heartbeat(shard_count(), 0);
  std::vector<std::uint64_t> next_sequence(shard_count(), 0);
  std::vector<std::uint64_t> attempts(log.size(), 0);

  // Dispatch = (re)transmit one request slot to the best shard the
  // coordinator currently believes is alive. Failover lives here: when
  // the detector declared the primary down, the work goes to the first
  // surviving peer -- which executes it live with the request's own
  // run-id lease, so the rerouted response is bitwise identical.
  const auto dispatch = [&](std::size_t index) {
    (void)tracker.dispatched(index, transport->now());
    const std::size_t primary = shard_of[index];
    const std::size_t target = detector.route_around(primary);
    if (target != primary) ++result.faults.reroutes;
    ++attempts[index];
    if (trace_ != nullptr) {
      const std::uint64_t id = log[index].id;
      const double time_h = log[index].time_h;
      if (attempts[index] == 1) {
        trace_->record(id, obs::SpanKind::kShardRoute, target, 0,
                       transport->now(), time_h);
      } else {
        trace_->record(id, obs::SpanKind::kRetry, target,
                       attempts[index] - 1, transport->now(), time_h);
      }
      if (target != primary) {
        trace_->record(id, obs::SpanKind::kReroute, target,
                       attempts[index] - 1, transport->now(), time_h,
                       static_cast<double>(primary));
      }
    }
    transport->send_work(WorkEnvelope{target, static_cast<std::uint64_t>(index)});
  };

  for (std::size_t i = 0; i < log.size(); ++i) dispatch(i);

  while (merger.merged() < log.size()) {
    util::ensure(transport->now() <= fault_config.max_ticks,
                 "fault schedule starved the replay: virtual-time ceiling "
                 "exceeded before every response merged");

    // Shard side: live shards emit heartbeats on their cadence. Crashed
    // shards stay silent, which is exactly the evidence the detector
    // turns into a failover.
    for (std::size_t s = 0; s < shard_count(); ++s) {
      if (!transport->shard_up(s)) continue;
      if (transport->now() >= next_heartbeat[s]) {
        transport->send_heartbeat(
            HeartbeatEnvelope{s, transport->now()});
        ++result.faults.heartbeats;
        next_heartbeat[s] =
            transport->now() + detector.config().heartbeat_interval_ticks;
      }
    }

    // Shard side: matured work arrivals execute. Work addressed to a
    // crashed shard is lost with it (the retry deadline recovers the
    // request). Re-execution is harmless: any shard's execution of
    // request r is bitwise identical, and the merger dedups.
    WorkEnvelope work;
    while (transport->poll_work(work)) {
      ++result.faults.work_arrivals;
      if (!transport->shard_up(work.shard)) {
        // Counted, never silently lost: the retry deadline recovers the
        // request, and the work conservation identity balances with it.
        ++result.faults.work_discarded;
        continue;
      }
      const std::size_t index = static_cast<std::size_t>(work.work_id);
      ++result.faults.executions;
      ResponseEnvelope envelope;
      envelope.shard = work.shard;
      envelope.sequence = next_sequence[work.shard]++;
      envelope.response = work.shard == shard_of[index]
                              ? primary_responses[index]
                              : services_[work.shard]->execute(log[index]);
      transport->send(std::move(envelope));
    }

    // Coordinator side: fold in liveness evidence, then sweep timeouts.
    HeartbeatEnvelope heartbeat;
    while (transport->poll_heartbeat(heartbeat)) {
      detector.heartbeat(heartbeat.shard, transport->now());
    }
    if (trace_ != nullptr) {
      // Bracket update() to trace the detector's verdict transitions.
      std::vector<ShardHealth> before(shard_count());
      for (std::size_t s = 0; s < shard_count(); ++s) {
        before[s] = detector.health(s);
      }
      detector.update(transport->now());
      for (std::size_t s = 0; s < shard_count(); ++s) {
        const ShardHealth now_health = detector.health(s);
        if (now_health == before[s]) continue;
        trace_->record(s,
                       now_health == ShardHealth::kDown
                           ? obs::SpanKind::kFailover
                           : obs::SpanKind::kRejoin,
                       0, 0, transport->now());
      }
    } else {
      detector.update(transport->now());
    }

    // Coordinator side: merge matured responses; completion cancels the
    // pending retry.
    ResponseEnvelope envelope;
    while (transport->poll_ready(envelope)) {
      if (merger.accept(envelope)) {
        const std::size_t index = index_of.at(envelope.response.request_id);
        result.executed_by[index] = envelope.shard;
        tracker.completed(index);
        if (trace_ != nullptr) {
          trace_->record(envelope.response.request_id, obs::SpanKind::kMerge,
                         envelope.shard, envelope.sequence, transport->now(),
                         envelope.response.time_h);
        }
      }
    }

    // Retransmit everything past its deadline (capped exponential
    // backoff; throws once a request exhausts its attempt budget).
    for (const std::size_t index : tracker.expired(transport->now())) {
      dispatch(index);
    }

    transport->advance(1);
  }

  result.faults.dispatches = tracker.dispatches();
  result.faults.retries = tracker.retries();
  result.faults.messages_dropped = transport->dropped();
  result.faults.shard_failovers = detector.failovers();
  result.faults.shard_rejoins = detector.rejoins();
  result.faults.final_tick = transport->now();
  result.merge = merger.stats();
  result.responses = merger.finish(log.size());
  if (metrics_ != nullptr) {
    result.merge.publish(*metrics_, result.responses.size());
    result.faults.publish(*metrics_);
  }
  return result;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void ShardCluster::start(ResultSink* sink) {
  util::require(!running_, "cluster is already running");
  util::require(!live_used_,
                "cluster cannot restart after drain_and_stop (its shard "
                "schedulers are one-shot; construct a fresh cluster)");
  live_used_ = true;
  fan_in_ = std::make_unique<FanInSink>(sink, shard_count());
  schedulers_.reserve(shard_count());
  for (std::size_t s = 0; s < shard_count(); ++s) {
    schedulers_.push_back(
        std::make_unique<Scheduler>(*services_[s], config_.scheduler));
    Scheduler& scheduler = *schedulers_.back();
    // Wire observability before the workers exist: the scheduler resolves
    // its per-priority metric handles under this shard's label.
    scheduler.set_trace(trace_);
    if (metrics_ != nullptr) {
      scheduler.set_metrics(metrics_, static_cast<std::int32_t>(s));
    }
    if (stream_ != nullptr) {
      scheduler.set_stream(stream_, static_cast<std::int32_t>(s));
    }
    scheduler.start(fan_in_.get());
  }
  running_ = true;
}

Admission ShardCluster::submit(Request request) {
  util::require(running_, "cluster is not running");
  return schedulers_[router_.route(request.session)]->submit(
      std::move(request));
}

Admission ShardCluster::submit_wait(Request request) {
  util::require(running_, "cluster is not running");
  return schedulers_[router_.route(request.session)]->submit_wait(
      std::move(request));
}

Admission ShardCluster::submit_wait_for(Request request,
                                        std::chrono::nanoseconds timeout) {
  util::require(running_, "cluster is not running");
  return schedulers_[router_.route(request.session)]->submit_wait_for(
      std::move(request), timeout);
}

void ShardCluster::drain_and_stop() {
  if (!running_) return;
  for (const std::unique_ptr<Scheduler>& scheduler : schedulers_) {
    scheduler->drain_and_stop();  // closes the fan-in once per shard
  }
  running_ = false;
}

std::uint64_t ShardCluster::completed() const {
  std::uint64_t n = 0;
  for (const std::unique_ptr<Scheduler>& scheduler : schedulers_) {
    n += scheduler->completed();
  }
  return n;
}

PriorityTelemetry ShardCluster::telemetry(Priority priority) const {
  PriorityTelemetry merged;
  for (const std::unique_ptr<Scheduler>& scheduler : schedulers_) {
    merged.merge(scheduler->telemetry(priority));
  }
  return merged;
}

QueueStats ShardCluster::queue_stats() const {
  QueueStats merged;
  for (const std::unique_ptr<Scheduler>& scheduler : schedulers_) {
    merged.merge(scheduler->queue_stats());
  }
  return merged;
}

void ShardCluster::set_trace(obs::TraceRecorder* trace) {
  trace_ = trace;
  for (const std::unique_ptr<DiagnosticsService>& service : services_) {
    service->set_trace(trace);
  }
}

void ShardCluster::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (const std::unique_ptr<DiagnosticsService>& service : services_) {
    service->set_metrics(metrics);
  }
}

void ShardCluster::set_stream(obs::TelemetryBus* stream) { stream_ = stream; }

void ShardCluster::publish_metrics(obs::MetricsRegistry& registry) const {
  for (std::size_t s = 0; s < schedulers_.size(); ++s) {
    schedulers_[s]->publish_metrics(registry, static_cast<std::int32_t>(s));
  }
}

}  // namespace idp::serve
