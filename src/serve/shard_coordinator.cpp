/// \file shard_coordinator.cpp
/// ShardCluster + ResultMerger implementation: routing, deterministic
/// merged replay over a (possibly faulty) transport, and the live fan-in
/// mode.

#include "serve/shard_coordinator.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "sim/batch.hpp"
#include "util/error.hpp"

namespace idp::serve {

// --- ResultMerger -----------------------------------------------------------

void ResultMerger::accept(const ResponseEnvelope& envelope) {
  ++stats_.delivered;

  // Reorder depth: how far behind its shard's newest-seen sequence this
  // arrival is. Tracked before dedup so duplicate redeliveries count too.
  auto [newest, inserted] =
      newest_sequence_.try_emplace(envelope.shard, envelope.sequence);
  if (!inserted) {
    if (envelope.sequence < newest->second) {
      stats_.max_reorder_distance = std::max(
          stats_.max_reorder_distance, newest->second - envelope.sequence);
    } else {
      newest->second = envelope.sequence;
    }
  }

  const auto [it, fresh] =
      by_id_.try_emplace(envelope.response.request_id, envelope.response);
  (void)it;
  if (!fresh) ++stats_.duplicates_dropped;
}

std::vector<Response> ResultMerger::finish(std::size_t expected) {
  // A shortfall means the transport lost messages: the merge contract is
  // at-least-once delivery, and a silently truncated global log would
  // defeat the bitwise-replay guarantee downstream consumers rely on.
  util::require(by_id_.size() == expected,
                "merge incomplete: transport lost responses");
  std::vector<Response> out;
  out.reserve(by_id_.size());
  for (auto& [id, response] : by_id_) out.push_back(std::move(response));
  by_id_.clear();
  newest_sequence_.clear();
  return out;
}

// --- ShardCluster -----------------------------------------------------------

ShardCluster::ShardCluster(quant::CalibrationStore& store,
                           ServiceConfig service, ShardClusterConfig config)
    : config_(config), router_(config.router) {
  // Every shard gets an identically configured service over the shared
  // store. The store's campaign cache is first-insert-wins with stable
  // addresses and campaign builds are pure functions of their run-id
  // block, so shards sharing it stay bitwise independent of each other.
  services_.reserve(router_.shard_count());
  for (std::size_t s = 0; s < router_.shard_count(); ++s) {
    services_.push_back(std::make_unique<DiagnosticsService>(store, service));
  }
}

ShardCluster::~ShardCluster() { drain_and_stop(); }

DiagnosticsService& ShardCluster::shard(std::size_t s) {
  util::require(s < services_.size(), "shard index out of range");
  return *services_[s];
}

LeaseCensus ShardCluster::lease_census(std::span<const Request> log) const {
  LeaseCensus census;
  census.per_shard.resize(shard_count());
  const DiagnosticsService& reference = *services_.front();
  const std::uint64_t lease_width =
      reference.config().run_ids_per_request;
  std::map<std::uint64_t, std::size_t> block_owner;
  std::vector<std::set<std::uint64_t>> shard_sessions(shard_count());
  for (const Request& r : log) {
    const std::size_t s = router_.route(r.session);
    ShardLeaseDomain& domain = census.per_shard[s];
    const std::uint64_t base = reference.lease_base(r.id);
    if (domain.requests == 0) {
      domain.first_run_id = base;
      domain.last_run_id = base + lease_width - 1;
    } else {
      domain.first_run_id = std::min(domain.first_run_id, base);
      domain.last_run_id = std::max(domain.last_run_id, base + lease_width - 1);
    }
    ++domain.requests;
    shard_sessions[s].insert(hash_of(r.session));
    // A lease block claimed twice -- by another shard (routing bug) or by
    // the same shard (duplicate request id) -- breaks the disjointness the
    // determinism contract rests on.
    const auto [owner, fresh] = block_owner.try_emplace(base, s);
    (void)owner;
    if (!fresh) census.disjoint = false;
  }
  for (std::size_t s = 0; s < shard_count(); ++s) {
    census.per_shard[s].sessions = shard_sessions[s].size();
  }
  return census;
}

ShardedReplayResult ShardCluster::replay(std::span<const Request> log,
                                         std::size_t parallelism,
                                         ShardTransport* transport) {
  DirectTransport direct;
  if (transport == nullptr) transport = &direct;

  // Route up front: shard assignment and per-shard send sequences are
  // fixed before anything executes, exactly like run-id leases.
  std::vector<std::size_t> shard_of(log.size());
  std::vector<std::vector<std::size_t>> routed(shard_count());
  for (std::size_t i = 0; i < log.size(); ++i) {
    shard_of[i] = router_.route(log[i].session);
    routed[shard_of[i]].push_back(i);
  }

  // Execute everything through one BatchRunner (each request on its own
  // shard's service) so parallelism semantics match Scheduler::replay and
  // shards genuinely run concurrently.
  std::vector<Response> responses(log.size());
  const sim::BatchRunner runner(parallelism);
  runner.run(log.size(), [&](std::size_t i) {
    responses[i] = services_[shard_of[i]]->execute(log[i]);
  });

  // Stream shard result streams into the transport round-robin, so
  // cross-shard interleaving is real even before the transport reorders.
  ShardedReplayResult result;
  result.per_shard_requests.reserve(shard_count());
  for (const std::vector<std::size_t>& indices : routed) {
    result.per_shard_requests.push_back(indices.size());
  }
  std::vector<std::size_t> cursor(shard_count(), 0);
  for (bool pending = !log.empty(); pending;) {
    pending = false;
    for (std::size_t s = 0; s < shard_count(); ++s) {
      if (cursor[s] >= routed[s].size()) continue;
      ResponseEnvelope envelope;
      envelope.shard = s;
      envelope.sequence = cursor[s];
      envelope.response = std::move(responses[routed[s][cursor[s]]]);
      transport->send(std::move(envelope));
      if (++cursor[s] < routed[s].size()) pending = true;
    }
  }

  // Coordinator drain + sorted merge keyed on request id.
  ResultMerger merger;
  ResponseEnvelope envelope;
  while (transport->poll(envelope)) merger.accept(envelope);
  result.merge = merger.stats();
  result.responses = merger.finish(log.size());
  return result;
}

void ShardCluster::start(ResultSink* sink) {
  util::require(!running_, "cluster is already running");
  util::require(!live_used_,
                "cluster cannot restart after drain_and_stop (its shard "
                "schedulers are one-shot; construct a fresh cluster)");
  live_used_ = true;
  fan_in_ = std::make_unique<FanInSink>(sink, shard_count());
  schedulers_.reserve(shard_count());
  for (std::size_t s = 0; s < shard_count(); ++s) {
    schedulers_.push_back(
        std::make_unique<Scheduler>(*services_[s], config_.scheduler));
    schedulers_.back()->start(fan_in_.get());
  }
  running_ = true;
}

Admission ShardCluster::submit(Request request) {
  util::require(running_, "cluster is not running");
  return schedulers_[router_.route(request.session)]->submit(
      std::move(request));
}

Admission ShardCluster::submit_wait(Request request) {
  util::require(running_, "cluster is not running");
  return schedulers_[router_.route(request.session)]->submit_wait(
      std::move(request));
}

void ShardCluster::drain_and_stop() {
  if (!running_) return;
  for (const std::unique_ptr<Scheduler>& scheduler : schedulers_) {
    scheduler->drain_and_stop();  // closes the fan-in once per shard
  }
  running_ = false;
}

std::uint64_t ShardCluster::completed() const {
  std::uint64_t n = 0;
  for (const std::unique_ptr<Scheduler>& scheduler : schedulers_) {
    n += scheduler->completed();
  }
  return n;
}

PriorityTelemetry ShardCluster::telemetry(Priority priority) const {
  PriorityTelemetry merged;
  for (const std::unique_ptr<Scheduler>& scheduler : schedulers_) {
    merged.merge(scheduler->telemetry(priority));
  }
  return merged;
}

}  // namespace idp::serve
