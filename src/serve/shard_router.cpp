/// \file shard_router.cpp
/// Consistent-hash ring construction and lookup.

#include "serve/shard_router.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idp::serve {

namespace {

/// splitmix64 finaliser (the same full-avalanche mix as hash_of).
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Domain tag keeping ring points off any other splitmix consumer's stream.
constexpr std::uint64_t kRingSeedDomain = 0xa5a348e2b4b3d1c7ULL;

}  // namespace

ShardRouter::ShardRouter(ShardRouterConfig config) : config_(config) {
  util::require(config_.shards > 0, "router needs at least one shard");
  util::require(config_.vnodes > 0,
                "router needs at least one virtual node per shard");
  ring_.reserve(config_.shards * config_.vnodes);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      // The point of (shard, vnode) never depends on the shard *count*, so
      // adding shard K+1 adds points without moving any existing ones --
      // the consistent-hashing property.
      const std::uint64_t point =
          splitmix(kRingSeedDomain ^ (static_cast<std::uint64_t>(s) << 32) ^
                   static_cast<std::uint64_t>(v));
      ring_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  // Sort by (point, shard): the shard tiebreak makes the (astronomically
  // unlikely) point collision deterministic too.
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::owner_of(std::uint64_t hash) const {
  // First ring point at or after the hash, wrapping to the smallest point.
  const auto it =
      std::lower_bound(ring_.begin(), ring_.end(), hash,
                       [](const std::pair<std::uint64_t, std::uint32_t>& e,
                          std::uint64_t h) { return e.first < h; });
  return it == ring_.end() ? ring_.front().second : it->second;
}

std::vector<std::size_t> ShardRouter::route_counts(
    std::span<const Request> log) const {
  std::vector<std::size_t> counts(config_.shards, 0);
  for (const Request& r : log) ++counts[route(r.session)];
  return counts;
}

}  // namespace idp::serve
