/// \file scheduler.cpp
/// Scheduler implementation: deterministic replay fan-out and the live
/// worker loop with latency telemetry.

#include "serve/scheduler.hpp"

#include <chrono>
#include <utility>

#include "sim/batch.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace idp::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Scheduler::Scheduler(DiagnosticsService& service, SchedulerConfig config)
    : service_(service), config_(config), queue_(config.queue) {
  if (config_.workers == 0) {
    config_.workers = util::ThreadPool::default_parallelism();
  }
}

Scheduler::~Scheduler() { drain_and_stop(); }

std::vector<Response> Scheduler::replay(std::span<const Request> log,
                                        std::size_t parallelism) {
  // Every request's run-id lease is fixed by its id before anything
  // executes, and each response writes to its pre-assigned slot -- the
  // BatchRunner contract, extended to the service layer.
  std::vector<Response> responses(log.size());
  const sim::BatchRunner runner(parallelism);
  if (stream_ == nullptr) {
    runner.run(log.size(),
               [&](std::size_t i) { responses[i] = service_.execute(log[i]); });
    return responses;
  }
  // Streaming replay: each request's telemetry records into a private
  // capture while it executes, and captures publish in log order through
  // the sequencer -- the published per-topic frame sequence is a pure
  // function of (log, configuration), independent of parallelism.
  obs::StreamSequencer sequencer(*stream_out_, log.size());
  runner.run(log.size(), [&](std::size_t i) {
    obs::TelemetryCapture capture;
    responses[i] = service_.execute(log[i], &capture);
    sequencer.deposit(i, std::move(capture));
  });
  return responses;
}

void Scheduler::set_stream(obs::TelemetryBus* stream, std::int32_t shard) {
  util::require(!running_, "attach the telemetry stream before start()");
  stream_ = stream;
  stream_shard_ = shard;
  stream_out_ =
      stream_ == nullptr
          ? nullptr
          : std::make_unique<obs::TelemetryStream>(
                *stream_, service_.trace(), service_.metrics());
}

void Scheduler::start(ResultSink* sink) {
  util::require(!running_, "scheduler is already running");
  // Live mode is one-shot: drain_and_stop closes the queue permanently,
  // and restarted workers would exit immediately against it while
  // submit() kept rejecting -- an up-looking scheduler that serves
  // nothing. Make that misuse loud instead.
  util::require(!queue_.closed(),
                "scheduler cannot restart after drain_and_stop");
  sink_ = sink;
  running_ = true;
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Scheduler::note_admission(std::uint64_t id, Priority priority,
                               std::int32_t tenant, double time_h,
                               Admission admission) {
  const obs::TraceEvent event{id, obs::SpanKind::kAdmission,
                              static_cast<std::uint64_t>(priority), 0, 0,
                              time_h, static_cast<double>(admission)};
  if (stream_out_ != nullptr) {
    // Streams the span AND folds it into the service's attached recorder;
    // a separately attached scheduler recorder still gets its copy.
    stream_out_->publish_span(tenant, event);
    if (trace_ != nullptr && trace_ != service_.trace()) trace_->record(event);
    return;
  }
  if (trace_ != nullptr) trace_->record(event);
}

Admission Scheduler::submit(Request request) {
  const std::uint64_t id = request.id;
  const Priority priority = request.priority;
  const auto tenant = static_cast<std::int32_t>(request.session.tenant);
  const double time_h = request.time_h;
  const Admission admission = queue_.try_push(std::move(request));
  note_admission(id, priority, tenant, time_h, admission);
  return admission;
}

Admission Scheduler::submit_wait(Request request) {
  const std::uint64_t id = request.id;
  const Priority priority = request.priority;
  const auto tenant = static_cast<std::int32_t>(request.session.tenant);
  const double time_h = request.time_h;
  const Admission admission = queue_.push_wait(std::move(request));
  note_admission(id, priority, tenant, time_h, admission);
  return admission;
}

Admission Scheduler::submit_wait_for(Request request,
                                     std::chrono::nanoseconds timeout) {
  const std::uint64_t id = request.id;
  const Priority priority = request.priority;
  const auto tenant = static_cast<std::int32_t>(request.session.tenant);
  const double time_h = request.time_h;
  const Admission admission =
      queue_.push_wait_for(std::move(request), timeout);
  note_admission(id, priority, tenant, time_h, admission);
  return admission;
}

void Scheduler::drain_and_stop() {
  if (!running_) return;
  queue_.close();  // pushes reject from here on; pops drain what was accepted
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  running_ = false;
  if (sink_ != nullptr) sink_->close();
  sink_ = nullptr;
}

std::uint64_t Scheduler::completed() const {
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  std::uint64_t n = 0;
  for (const PriorityTelemetry& t : telemetry_) n += t.completed;
  return n;
}

PriorityTelemetry Scheduler::telemetry(Priority priority) const {
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  return telemetry_[static_cast<std::size_t>(priority)];
}

void Scheduler::set_metrics(obs::MetricsRegistry* metrics, std::int32_t shard) {
  util::require(!running_, "attach metrics before start()");
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    completed_metric_ = {};
    queue_wait_metric_ = {};
    service_time_metric_ = {};
    return;
  }
  // Resolve the per-priority handles once; registry references are stable,
  // so the worker hot path is an atomic add plus one histogram lock.
  for (std::size_t p = 0; p < kPriorityCount; ++p) {
    obs::MetricLabels labels;
    labels.shard = shard;
    labels.priority = static_cast<std::int32_t>(p);
    completed_metric_[p] =
        &metrics_->counter("serve.scheduler.completed", labels);
    queue_wait_metric_[p] =
        &metrics_->histogram("serve.scheduler.queue_wait_s", labels);
    service_time_metric_[p] =
        &metrics_->histogram("serve.scheduler.service_time_s", labels);
  }
}

void Scheduler::publish_metrics(obs::MetricsRegistry& registry,
                                std::int32_t shard) const {
  obs::MetricLabels shard_labels;
  shard_labels.shard = shard;
  queue_stats().publish(registry, shard_labels);
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  for (std::size_t p = 0; p < kPriorityCount; ++p) {
    obs::MetricLabels labels = shard_labels;
    labels.priority = static_cast<std::int32_t>(p);
    registry.counter("serve.scheduler.completed", labels)
        .set(telemetry_[p].completed);
    if (&registry != metrics_) {
      // The live registry already saw every observation streamed by the
      // workers; merging the account again would double-count it.
      registry.histogram("serve.scheduler.queue_wait_s", labels)
          .merge(telemetry_[p].queue_wait);
      registry.histogram("serve.scheduler.service_time_s", labels)
          .merge(telemetry_[p].service_time);
    }
  }
}

void Scheduler::worker_loop() {
  QueuedRequest item;
  while (queue_.pop(item)) {
    const auto dispatched = std::chrono::steady_clock::now();
    const double queue_wait = seconds_between(item.enqueued_at, dispatched);

    obs::TelemetryCapture capture;
    const bool streaming = stream_out_ != nullptr;
    const Response response =
        service_.execute(item.request, streaming ? &capture : nullptr);

    const double service_time =
        seconds_between(dispatched, std::chrono::steady_clock::now());

    RequestTelemetry telemetry;
    telemetry.request_id = response.request_id;
    telemetry.priority = response.priority;
    telemetry.kind = response.kind;
    telemetry.queue_wait_s = queue_wait;
    telemetry.service_time_s = service_time;
    telemetry.calibration_epoch = response.calibration_epoch;
    telemetry.flags = static_cast<std::uint32_t>(response.flags());

    {
      const std::lock_guard<std::mutex> lock(telemetry_mutex_);
      PriorityTelemetry& account =
          telemetry_[static_cast<std::size_t>(response.priority)];
      ++account.completed;
      account.queue_wait.add(queue_wait);
      account.service_time.add(service_time);
    }
    const auto lane = static_cast<std::size_t>(response.priority);
    if (metrics_ != nullptr) {
      completed_metric_[lane]->add(1);
      queue_wait_metric_[lane]->observe(queue_wait);
      service_time_metric_[lane]->observe(service_time);
    }
    // Observational span: `value` is wall seconds, the one deliberate
    // exception to the pure-function field contract (live mode only).
    const obs::TraceEvent queue_wait_span{
        response.request_id, obs::SpanKind::kQueueWait, lane, 0, 0,
        response.time_h, queue_wait};
    if (streaming) {
      // Stream the request's capture at completion, with the scheduler's
      // wall-clock account riding along as non-fold deltas (the direct
      // writes above already applied them; the stream only publishes).
      obs::MetricLabels labels;
      labels.shard = stream_shard_;
      labels.priority = static_cast<std::int32_t>(lane);
      capture.ops.push_back({obs::MetricType::kCounter,
                             "serve.scheduler.completed", labels, 1.0,
                             false});
      capture.observe("serve.scheduler.queue_wait_s", labels, queue_wait,
                      false);
      capture.observe("serve.scheduler.service_time_s", labels, service_time,
                      false);
      capture.span(queue_wait_span);
      stream_out_->publish(capture);
      if (trace_ != nullptr && trace_ != service_.trace()) {
        trace_->record(queue_wait_span);
      }
    } else if (trace_ != nullptr) {
      trace_->record(queue_wait_span);
    }
    if (sink_ != nullptr) {
      sink_->on_response(response);
      sink_->on_telemetry(telemetry);
    }
  }
}

}  // namespace idp::serve
