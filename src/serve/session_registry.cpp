/// \file session_registry.cpp
/// Sharded session registry implementation: per-shard locking, stable
/// session addresses and the first-insert-wins warm calibration cache.

#include "serve/session_registry.hpp"

#include "util/error.hpp"

namespace idp::serve {

const quant::Calibration& Session::epoch_calibration(
    std::uint32_t channel, std::uint32_t epoch,
    const std::function<quant::Calibration()>& build) {
  const std::pair<std::uint32_t, std::uint32_t> key{channel, epoch};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = calibrations_.find(key);
    if (it != calibrations_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return *it->second;
    }
  }
  // Build outside the lock: a recalibration campaign is seconds of
  // simulated chemistry. Concurrent builders of the same (channel, epoch)
  // produce bitwise identical campaigns (the builder is a pure function of
  // the session identity), so whichever insert lands first wins.
  auto built = std::make_unique<quant::Calibration>(build());
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = calibrations_.try_emplace(key, std::move(built));
  if (inserted) {
    built_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return *it->second;
}

SessionRegistry::SessionRegistry(std::size_t shards) : shards_(shards) {
  util::require(shards > 0, "registry needs at least one shard");
}

Session& SessionRegistry::get_or_create(const SessionKey& key) {
  const std::uint64_t hash = hash_of(key);
  Shard& shard = shard_for(hash);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(key);
  if (it != shard.sessions.end()) return *it->second;
  const auto [inserted, _] =
      shard.sessions.try_emplace(key, std::make_unique<Session>(key, hash));
  return *inserted->second;
}

Session* SessionRegistry::find(const SessionKey& key) {
  Shard& shard = shard_for(hash_of(key));
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(key);
  return it == shard.sessions.end() ? nullptr : it->second.get();
}

std::size_t SessionRegistry::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.sessions.size();
  }
  return n;
}

RegistryStats SessionRegistry::stats() const {
  RegistryStats stats;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    stats.sessions += shard.sessions.size();
    for (const auto& [key, session] : shard.sessions) {
      stats.requests += session->requests_served();
      stats.warm_hits += session->warm_hits();
      stats.calibrations_built += session->calibrations_built();
    }
  }
  return stats;
}

}  // namespace idp::serve
