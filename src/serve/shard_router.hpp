/// \file shard_router.hpp
/// Consistent-hash session routing for the sharded service runtime.
///
/// A ShardRouter places `vnodes` virtual points per shard on a 64-bit hash
/// ring and routes a session key to the shard owning the first ring point
/// at or after hash_of(key). The mapping is a pure function of
/// (shard count, vnodes, key) -- no state, no locks -- so every node of a
/// cluster and every replay of a recorded log agree on the placement
/// without coordination. Consistent hashing (rather than `hash % K`) keeps
/// resharding cheap: growing K -> K+1 remaps only the keys whose ring
/// successor changed, about 1/(K+1) of the population, instead of nearly
/// all of them.
///
/// Routing is by *session* (tenant, patient, device), never by request id:
/// every request of one sensor deployment lands on the same shard, so the
/// shard's session registry and warm recalibration caches behave exactly
/// as they would on a single node.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/request.hpp"

namespace idp::serve {

/// Ring geometry.
struct ShardRouterConfig {
  /// Number of shards (K); must be > 0.
  std::size_t shards = 1;

  /// Virtual points per shard; more points flatten the load split at the
  /// cost of a larger (still tiny) ring. Must be > 0.
  std::size_t vnodes = 64;
};

/// Deterministic consistent-hash ring over the session-key hash space.
class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterConfig config = {});

  const ShardRouterConfig& config() const { return config_; }
  std::size_t shard_count() const { return config_.shards; }

  /// Shard owning a session key.
  std::size_t route(const SessionKey& key) const {
    return owner_of(hash_of(key));
  }

  /// Shard owning a raw 64-bit hash (the ring successor of `hash`).
  std::size_t owner_of(std::uint64_t hash) const;

  /// Requests of a log routed to each shard (index = shard).
  std::vector<std::size_t> route_counts(std::span<const Request> log) const;

 private:
  ShardRouterConfig config_;
  /// (ring point, shard), sorted by point; lookups binary-search this.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace idp::serve
