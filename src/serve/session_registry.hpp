/// \file session_registry.hpp
/// The sharded session registry: maps (tenant, patient, device) to the
/// live state of that sensor deployment so repeated requests from the same
/// virtual patient reuse warm state instead of rebuilding it per request.
///
/// What "warm state" means here is chosen for determinism: a Session
/// caches things that are *pure functions of the session identity and the
/// service configuration* -- most importantly the per-(channel, epoch)
/// recalibration campaigns, which cost a full blank + sweep campaign to
/// build -- plus commutative counters (requests served, warm hits). It
/// deliberately does NOT cache order-dependent state like probe chemistry
/// or front-end noise streams: those would make a response depend on which
/// requests ran before it, breaking the replay guarantee. Concurrent
/// builders of the same (channel, epoch) entry agree bitwise and the first
/// insert wins -- the same idiom as quant::CalibrationStore.
///
/// Sharding: sessions are distributed over independently locked shards by
/// hash_of(key), so thousands of concurrent sessions do not contend on one
/// mutex. Session objects have stable addresses for their lifetime (the
/// registry never evicts).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "quant/calibration_store.hpp"
#include "serve/request.hpp"

namespace idp::serve {

/// Live state of one (tenant, patient, device) sensor deployment.
class Session {
 public:
  Session(const SessionKey& key, std::uint64_t site)
      : key_(key), site_(site) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionKey& key() const { return key_; }

  /// Stable site id (hash of the key): seeds the degradation model and
  /// owns the session's recalibration run-id slots.
  std::uint64_t site_id() const { return site_; }

  /// Requests that have touched this session (commutative counter).
  std::uint64_t requests_served() const { return requests_; }
  void note_request() { requests_.fetch_add(1, std::memory_order_relaxed); }

  /// The warm per-(channel, epoch) recalibration cache. Returns the cached
  /// calibration, building it via `build` outside the session lock when
  /// missing. `build` must be a pure function of (session, channel, epoch)
  /// so concurrent builders agree bitwise; the first insert wins and the
  /// entry's address is stable afterwards.
  const quant::Calibration& epoch_calibration(
      std::uint32_t channel, std::uint32_t epoch,
      const std::function<quant::Calibration()>& build);

  /// Warm-state accounting: cache hits vs campaigns actually built.
  std::uint64_t warm_hits() const { return hits_; }
  std::uint64_t calibrations_built() const { return built_; }

 private:
  SessionKey key_;
  std::uint64_t site_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> built_{0};
  mutable std::mutex mutex_;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::unique_ptr<quant::Calibration>>
      calibrations_;
};

/// Aggregated registry statistics (one locked sweep over all shards).
struct RegistryStats {
  std::size_t sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t calibrations_built = 0;
};

/// Sharded (tenant, patient, device) -> Session map.
class SessionRegistry {
 public:
  /// \param shards  independently locked shards; must be > 0.
  explicit SessionRegistry(std::size_t shards = 16);

  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// The session for a key, created on first sight. Thread-safe; the
  /// returned reference is stable for the registry's lifetime.
  Session& get_or_create(const SessionKey& key);

  /// The session for a key, or nullptr when it has never been seen.
  Session* find(const SessionKey& key);

  /// Live sessions across all shards.
  std::size_t size() const;

  /// One consistent-enough snapshot of the registry counters.
  RegistryStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<SessionKey, std::unique_ptr<Session>> sessions;
  };

  Shard& shard_for(std::uint64_t hash) {
    return shards_[hash % shards_.size()];
  }

  std::vector<Shard> shards_;
};

}  // namespace idp::serve
