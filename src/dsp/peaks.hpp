/// \file peaks.hpp
/// Voltammetric peak detection: the paper identifies targets by the
/// *position* of CV current peaks and their concentration by the *height*
/// (Section I-B). This module finds baseline-corrected peaks in a sweep.
#pragma once

#include <span>
#include <vector>

#include "sim/trace.hpp"

namespace idp::dsp {

/// One detected peak.
struct Peak {
  std::size_t index = 0;   ///< sample index within the analysed segment
  double position = 0.0;   ///< abscissa (potential [V] for CV)
  double height = 0.0;     ///< baseline-corrected magnitude (>= 0)
  double prominence = 0.0; ///< topographic prominence in the raw signal
};

/// Peak search options.
struct PeakOptions {
  double min_prominence = 0.0;   ///< reject peaks shallower than this
  std::size_t min_separation = 1;///< minimum index distance between peaks
  std::size_t smooth_half_window = 3;  ///< Savitzky-Golay half-width (0 = off)
};

/// Find local maxima of y(x) with at least the requested prominence.
/// x must be strictly monotonic (either direction); heights are measured
/// from a straight baseline drawn between the segment endpoints.
std::vector<Peak> find_peaks(std::span<const double> x,
                             std::span<const double> y,
                             const PeakOptions& options);

/// Find the *reduction* (cathodic) peaks of a voltammogram: analyses the
/// first cathodic sweep segment, negates the current (so reduction peaks
/// become maxima) and reports peaks with potential positions -- directly
/// comparable to Table II's reduction potentials.
std::vector<Peak> find_reduction_peaks(const sim::CvCurve& curve,
                                       const PeakOptions& options);

/// Baseline-corrected cathodic response read at a fixed potential: the
/// maximum of the negated, baseline-corrected current within +/- `window`
/// volts of e0 on the cathodic sweep. Unlike peak detection this is well
/// defined for blank runs (it returns the local noise excursion), which is
/// what the calibration pipeline needs for Eq. 5 blanks.
double reduction_response_at(const sim::CvCurve& curve, double e0,
                             double window = 0.03,
                             std::size_t smooth_half_window = 3);

}  // namespace idp::dsp
