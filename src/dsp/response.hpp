/// \file response.hpp
/// Time-response metrology (Section II-B): steady-state response time (t90),
/// transient response time ((dV/dt)max), recovery time and sample
/// throughput -- the quantities Fig. 3 illustrates for a glucose biosensor.
#pragma once

#include "sim/trace.hpp"

namespace idp::dsp {

/// Analysis of a step response following an analyte injection.
struct StepResponse {
  double baseline = 0.0;        ///< mean before the event
  double steady_state = 0.0;    ///< mean over the tail window (Vss)
  double t90 = 0.0;             ///< time from event to 90% of the step [s]
  double transient_time = 0.0;  ///< time from event to max dV/dt [s]
  bool valid = false;           ///< false if the trace never reaches 90%
};

/// Analyse a trace around an injection at `event_time`. The steady state is
/// the mean of the last `tail_window` seconds; the baseline the mean of
/// everything up to the event.
StepResponse analyze_step(const sim::Trace& trace, double event_time,
                          double tail_window);

/// Time for the signal to return within `tolerance_fraction` of the
/// baseline after a removal event at `removal_time`; returns a negative
/// value if it never recovers within the trace.
double recovery_time(const sim::Trace& trace, double removal_time,
                     double baseline, double tolerance_fraction);

/// Samples per unit time given response + recovery times (Section II-B).
double sample_throughput(double response_time, double recovery);

}  // namespace idp::dsp
