/// \file calibration.hpp
/// Calibration-curve metrology implementing the paper's definitions:
///   * Eq. 5: LOD = Vb + 3 sigma_b (ACS rule, < 7% false-positive risk);
///   * Eq. 6: average sensitivity Savg = dV / dC over the measured range;
///   * Eq. 7: maximum non-linearity NLmax = max |V_C - V_C0 - Savg (C-C0)|;
/// plus regression-based sensitivity and automatic linear-range detection.
#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.hpp"

namespace idp::dsp {

/// Contiguous concentration window over which the response is linear.
struct LinearRange {
  bool found = false;
  double c_low = 0.0;      ///< [mol/m^3]
  double c_high = 0.0;     ///< [mol/m^3]
  std::size_t first = 0;   ///< index of first point in the window
  std::size_t last = 0;    ///< index of last point (inclusive)
  util::LinearFit fit;     ///< fit over the window
};

/// Calibration data set: response vs concentration plus repeated blanks.
class CalibrationCurve {
 public:
  /// Add a (concentration [mol/m^3], response) pair. Points may arrive in
  /// any order; they are kept sorted by concentration.
  void add_point(double concentration, double response);

  /// Add one blank (zero-concentration) measurement.
  void add_blank(double response);

  std::size_t point_count() const { return c_.size(); }
  std::size_t blank_count() const { return blanks_.size(); }
  /// Number of *distinct* concentration values among the points (replicate
  /// measurements at one concentration count once). Fitting needs >= 2,
  /// linear-range certification >= 3.
  std::size_t distinct_concentration_count() const;
  const std::vector<double>& concentrations() const { return c_; }
  const std::vector<double>& responses() const { return v_; }

  /// Mean of the blank measurements (Vb). Requires >= 1 blank.
  double blank_mean() const;
  /// Standard deviation of the blanks (sigma_b). Requires >= 2 blanks.
  double blank_sigma() const;
  /// Eq. 5: the LOD expressed in *signal* units, Vb + 3 sigma_b.
  double lod_signal() const;

  /// Least-squares fit over all points. Requires >= 2 points at >= 2
  /// distinct concentrations (replicate-only data has no slope and throws
  /// std::invalid_argument instead of producing a degenerate fit).
  util::LinearFit fit() const;
  /// Regression sensitivity: slope of fit() [signal / (mol/m^3)].
  double sensitivity() const { return fit().slope; }

  /// Eq. 6: endpoint average sensitivity dV/dC over the measured range.
  double average_sensitivity() const;

  /// Eq. 7: maximum non-linearity relative to reference point `ref_index`
  /// using the endpoint Savg.
  double max_nonlinearity(std::size_t ref_index = 0) const;

  /// LOD in concentration units: the concentration whose *fitted* signal
  /// equals lod_signal(), i.e. (Vb + 3 sigma_b - Vb) / S = 3 sigma_b / S
  /// evaluated with the regression sensitivity over the linear range when
  /// available, the global fit otherwise.
  double lod_concentration(double linear_tolerance = 0.05) const;

  /// Longest contiguous window (>= 3 points at >= 3 *distinct*
  /// concentrations -- replicates alone cannot certify linearity) whose fit
  /// residuals stay below `tolerance` times the response span of the window.
  LinearRange linear_range(double tolerance = 0.05) const;

 private:
  std::vector<double> c_;
  std::vector<double> v_;
  std::vector<double> blanks_;
};

}  // namespace idp::dsp
