/// \file response.cpp
/// Time-response metrology implementation: t90, transient (dV/dt)max,
/// recovery time and sample-throughput extraction (Fig. 3 quantities).

#include "dsp/response.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/smoothing.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace idp::dsp {

StepResponse analyze_step(const sim::Trace& trace, double event_time,
                          double tail_window) {
  util::require(!trace.empty(), "empty trace");
  util::require(tail_window > 0.0, "tail window must be positive");
  StepResponse r;

  const double t_end = trace.time().back();
  const auto pre = trace.window(0.0, event_time);
  r.baseline = pre.empty() ? trace.value_at(0) : util::mean(pre);
  r.steady_state = trace.mean_in_window(t_end - tail_window, t_end);

  const double step = r.steady_state - r.baseline;
  // A "step" at the level of floating-point residue is no step at all.
  const double floor =
      1e-9 * std::max({std::fabs(r.baseline), std::fabs(r.steady_state),
                       1e-30});
  if (std::fabs(step) <= floor) return r;
  const double level90 = r.baseline + 0.9 * step;

  // Smooth to keep sample noise from triggering the 90% crossing early;
  // scale the window with the record length so second-scale noise averages
  // out on minute-scale records.
  const std::size_t half_window =
      std::max<std::size_t>(4, trace.size() / 40);
  const std::vector<double> smooth =
      savitzky_golay(trace.value(), half_window);
  const bool rising = step > 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.time_at(i) <= event_time) continue;
    const bool crossed =
        rising ? smooth[i] >= level90 : smooth[i] <= level90;
    if (crossed) {
      r.t90 = trace.time_at(i) - event_time;
      r.valid = true;
      break;
    }
  }

  // Transient response time: argmax |dV/dt| after the event.
  const std::vector<double> dv = derivative(trace.time(), smooth);
  double best = -1.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.time_at(i) <= event_time) continue;
    if (std::fabs(dv[i]) > best) {
      best = std::fabs(dv[i]);
      r.transient_time = trace.time_at(i) - event_time;
    }
  }
  return r;
}

double recovery_time(const sim::Trace& trace, double removal_time,
                     double baseline, double tolerance_fraction) {
  util::require(tolerance_fraction > 0.0, "tolerance must be positive");
  const std::vector<double> smooth = savitzky_golay(trace.value(), 4);
  // Band around the baseline proportional to the excursion present at the
  // removal instant.
  const double v_removal = trace.interpolate(removal_time);
  const double band = tolerance_fraction * std::fabs(v_removal - baseline);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.time_at(i) <= removal_time) continue;
    if (std::fabs(smooth[i] - baseline) <= band) {
      return trace.time_at(i) - removal_time;
    }
  }
  return -1.0;
}

double sample_throughput(double response_time, double recovery) {
  util::require(response_time > 0.0 && recovery >= 0.0, "invalid times");
  return 1.0 / (response_time + recovery);
}

}  // namespace idp::dsp
