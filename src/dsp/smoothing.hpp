/// \file smoothing.hpp
/// Noise smoothing for slow biosensing signals: moving average and
/// Savitzky-Golay (quadratic) filters. Applied before peak detection so the
/// 10 nA-scale quantisation steps do not masquerade as peaks.
#pragma once

#include <span>
#include <vector>

namespace idp::dsp {

/// Centred moving average with half-width `half_window` (window size
/// 2*half_window+1); edges use the available samples.
std::vector<double> moving_average(std::span<const double> y,
                                   std::size_t half_window);

/// Savitzky-Golay smoothing: least-squares quadratic fit over a centred
/// window of half-width m (window 2m+1, m >= 1), evaluated at the centre.
/// Edges fall back to the moving average. Preserves peak heights much
/// better than plain averaging.
std::vector<double> savitzky_golay(std::span<const double> y, std::size_t m);

/// First derivative estimate dy/dx by central differences (one-sided at the
/// boundaries). xs must be strictly increasing and match y in size.
std::vector<double> derivative(std::span<const double> x,
                               std::span<const double> y);

}  // namespace idp::dsp
