/// \file peaks.cpp
/// Peak detection implementation: baseline correction and
/// baseline-corrected peak extraction from voltammetric sweeps.

#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "dsp/smoothing.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace idp::dsp {

namespace {

/// Topographic prominence of peak `p` in signal y: height above the highest
/// of the two "cols" separating it from higher ground (or the boundaries).
double prominence_of(std::span<const double> y, std::size_t p) {
  const double hp = y[p];
  double left_min = hp, right_min = hp;
  for (std::size_t i = p; i-- > 0;) {
    if (y[i] > hp) break;
    left_min = std::min(left_min, y[i]);
    if (i == 0) break;
  }
  for (std::size_t i = p + 1; i < y.size(); ++i) {
    if (y[i] > hp) break;
    right_min = std::min(right_min, y[i]);
  }
  return hp - std::max(left_min, right_min);
}

}  // namespace

std::vector<Peak> find_peaks(std::span<const double> x,
                             std::span<const double> y,
                             const PeakOptions& options) {
  util::require(x.size() == y.size(), "x/y size mismatch");
  if (y.size() < 3) return {};

  // Smooth, then subtract the straight baseline between the endpoints.
  std::vector<double> smooth =
      options.smooth_half_window > 0
          ? savitzky_golay(y, options.smooth_half_window)
          : std::vector<double>(y.begin(), y.end());
  const double x0 = x.front(), x1 = x.back();
  const double y0 = smooth.front(), y1 = smooth.back();
  std::vector<double> corrected(smooth.size());
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    const double base = y0 + (y1 - y0) * (x[i] - x0) / (x1 - x0);
    corrected[i] = smooth[i] - base;
  }

  // Local maxima of the corrected signal. A floor proportional to the
  // signal magnitude rejects floating-point ripples on flat or smooth data.
  double magnitude = 0.0;
  for (double v : smooth) magnitude = std::max(magnitude, std::fabs(v));
  const double floor = std::max(options.min_prominence, 1e-9 * magnitude);
  std::vector<Peak> candidates;
  for (std::size_t i = 1; i + 1 < corrected.size(); ++i) {
    if (corrected[i] >= corrected[i - 1] && corrected[i] > corrected[i + 1]) {
      Peak p;
      p.index = i;
      p.position = x[i];
      p.height = std::max(corrected[i], 0.0);
      p.prominence = prominence_of(corrected, i);
      if (p.prominence >= floor) candidates.push_back(p);
    }
  }

  // Enforce minimum separation, keeping the most prominent peaks.
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) {
              return a.prominence > b.prominence;
            });
  std::vector<Peak> accepted;
  for (const Peak& p : candidates) {
    const bool clash = std::any_of(
        accepted.begin(), accepted.end(), [&](const Peak& q) {
          const std::size_t d =
              p.index > q.index ? p.index - q.index : q.index - p.index;
          return d < options.min_separation;
        });
    if (!clash) accepted.push_back(p);
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const Peak& a, const Peak& b) { return a.position < b.position; });
  return accepted;
}

namespace {

/// Extract the first cathodic sweep as (increasing potential, negated
/// current); returns false if none exists.
bool cathodic_sweep(const sim::CvCurve& curve, std::vector<double>& xs,
                    std::vector<double>& ys) {
  for (const auto& seg : curve.segments()) {
    if (seg.last - seg.first < 3) continue;
    if (curve.potential()[seg.last - 1] >= curve.potential()[seg.first]) {
      continue;
    }
    std::vector<double> x, y;
    x.reserve(seg.last - seg.first);
    y.reserve(seg.last - seg.first);
    for (std::size_t i = seg.last; i-- > seg.first;) {
      x.push_back(curve.potential()[i]);
      y.push_back(-curve.current()[i]);
    }
    xs.clear();
    ys.clear();
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (xs.empty() || x[i] > xs.back()) {
        xs.push_back(x[i]);
        ys.push_back(y[i]);
      }
    }
    return xs.size() >= 3;
  }
  return false;
}

}  // namespace

double reduction_response_at(const sim::CvCurve& curve, double e0,
                             double window, std::size_t smooth_half_window) {
  std::vector<double> xs, ys;
  if (!cathodic_sweep(curve, xs, ys)) return 0.0;
  const std::vector<double> smooth =
      smooth_half_window > 0 ? savitzky_golay(ys, smooth_half_window)
                             : std::vector<double>(ys.begin(), ys.end());
  // Pre-wave baseline: fit a line over the leading (most positive) 15% of
  // the sweep -- before any reduction wave -- and extrapolate it. An
  // endpoint-to-endpoint baseline would swallow sigmoidal catalytic waves
  // whose plateau persists to the vertex.
  const std::size_t n_base = std::max<std::size_t>(3, xs.size() * 15 / 100);
  const std::size_t start = xs.size() - n_base;  // xs ascends; lead = top
  const util::LinearFit base = util::linear_fit(
      std::span<const double>(xs.data() + start, n_base),
      std::span<const double>(smooth.data() + start, n_base));
  // Average the corrected response over the window: a mean statistic stays
  // unbiased on blank (noise-only) sweeps, which Eq. 5 relies on, whereas a
  // max statistic would inflate sigma_b.
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::fabs(xs[i] - e0) > window) continue;
    sum += smooth[i] - util::evaluate(base, xs[i]);
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::vector<Peak> find_reduction_peaks(const sim::CvCurve& curve,
                                       const PeakOptions& options) {
  std::vector<double> xs, ys;
  if (!cathodic_sweep(curve, xs, ys)) return {};
  return find_peaks(xs, ys, options);
}

}  // namespace idp::dsp
