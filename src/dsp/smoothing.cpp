/// \file smoothing.cpp
/// Smoothing filter implementation: moving average and Savitzky-Golay
/// (quadratic) filters applied ahead of peak detection.

#include "dsp/smoothing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::dsp {

std::vector<double> moving_average(std::span<const double> y,
                                   std::size_t half_window) {
  std::vector<double> out(y.size());
  const auto n = static_cast<std::ptrdiff_t>(y.size());
  const auto hw = static_cast<std::ptrdiff_t>(half_window);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - hw);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + hw);
    double s = 0.0;
    for (std::ptrdiff_t k = lo; k <= hi; ++k) s += y[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(i)] = s / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> savitzky_golay(std::span<const double> y, std::size_t m) {
  util::require(m >= 1, "window half-width must be >= 1");
  if (y.size() < 2 * m + 1) return moving_average(y, m);

  // Quadratic SG weights on [-m, m]: w_k = A + B*k^2 where the closed form
  // follows from the normal equations of the quadratic fit.
  const double md = static_cast<double>(m);
  const double w = 2.0 * md + 1.0;              // window size
  const double s2 = md * (md + 1.0) * w / 3.0;  // sum k^2
  double s4 = 0.0;                              // sum k^4
  for (double k = -md; k <= md; ++k) s4 += k * k * k * k;
  const double det = w * s4 - s2 * s2;
  std::vector<double> weight(2 * m + 1);
  for (std::size_t j = 0; j < weight.size(); ++j) {
    const double k = static_cast<double>(j) - md;
    weight[j] = (s4 - s2 * k * k) / det;
  }

  std::vector<double> out = moving_average(y, m);  // edge fallback
  for (std::size_t i = m; i + m < y.size(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < weight.size(); ++j) {
      s += weight[j] * y[i - m + j];
    }
    out[i] = s;
  }
  return out;
}

std::vector<double> derivative(std::span<const double> x,
                               std::span<const double> y) {
  util::require(x.size() == y.size(), "x/y size mismatch");
  util::require(x.size() >= 2, "need at least two points");
  const std::size_t n = x.size();
  std::vector<double> d(n);
  d[0] = (y[1] - y[0]) / (x[1] - x[0]);
  d[n - 1] = (y[n - 1] - y[n - 2]) / (x[n - 1] - x[n - 2]);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    d[i] = (y[i + 1] - y[i - 1]) / (x[i + 1] - x[i - 1]);
  }
  return d;
}

}  // namespace idp::dsp
