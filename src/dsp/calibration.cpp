/// \file calibration.cpp
/// Calibration metrology implementation: calibration-curve fitting, LOD
/// (Eq. 5), average sensitivity (Eq. 6) and max nonlinearity (Eq. 7).

#include "dsp/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idp::dsp {

void CalibrationCurve::add_point(double concentration, double response) {
  util::require(concentration >= 0.0, "negative concentration");
  const auto it = std::lower_bound(c_.begin(), c_.end(), concentration);
  const auto idx = static_cast<std::size_t>(it - c_.begin());
  c_.insert(it, concentration);
  v_.insert(v_.begin() + static_cast<std::ptrdiff_t>(idx), response);
}

void CalibrationCurve::add_blank(double response) {
  blanks_.push_back(response);
}

std::size_t CalibrationCurve::distinct_concentration_count() const {
  // c_ is kept sorted, so distinct values are adjacent.
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (i == 0 || c_[i] > c_[i - 1]) ++distinct;
  }
  return distinct;
}

double CalibrationCurve::blank_mean() const {
  util::require(!blanks_.empty(), "no blank measurements");
  return util::mean(blanks_);
}

double CalibrationCurve::blank_sigma() const {
  util::require(blanks_.size() >= 2, "need >= 2 blanks for sigma");
  return util::stddev(blanks_);
}

double CalibrationCurve::lod_signal() const {
  return blank_mean() + 3.0 * blank_sigma();
}

util::LinearFit CalibrationCurve::fit() const {
  util::require(distinct_concentration_count() >= 2,
                "need >= 2 distinct concentrations for a fit");
  return util::linear_fit(c_, v_);
}

double CalibrationCurve::average_sensitivity() const {
  util::require(c_.size() >= 2, "need >= 2 points");
  const double dc = c_.back() - c_.front();
  util::require(dc > 0.0, "degenerate concentration range");
  return (v_.back() - v_.front()) / dc;
}

double CalibrationCurve::max_nonlinearity(std::size_t ref_index) const {
  util::require(ref_index < c_.size(), "reference index out of range");
  const double savg = average_sensitivity();
  const double c0 = c_[ref_index];
  const double v0 = v_[ref_index];
  double nl = 0.0;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    nl = std::max(nl, std::fabs(v_[i] - v0 - savg * (c_[i] - c0)));
  }
  return nl;
}

double CalibrationCurve::lod_concentration(double linear_tolerance) const {
  const double sigma3 = 3.0 * blank_sigma();
  const LinearRange range = linear_range(linear_tolerance);
  const double slope = range.found ? range.fit.slope : fit().slope;
  util::require(std::fabs(slope) > 0.0, "zero sensitivity");
  return sigma3 / std::fabs(slope);
}

LinearRange CalibrationCurve::linear_range(double tolerance) const {
  LinearRange best;
  const std::size_t n = c_.size();
  if (n < 3) return best;
  // Running count of distinct concentrations up to each index (c_ sorted):
  // the window [first, last] holds distinct[last] - distinct[first] + 1
  // distinct values. Windows with fewer than 3 cannot certify linearity --
  // two distinct abscissae always fit a line exactly, so replicates at the
  // ends of a 3+ point window must not masquerade as a linear range.
  std::vector<std::size_t> distinct(n);
  for (std::size_t i = 0; i < n; ++i) {
    distinct[i] = (i == 0) ? 1 : distinct[i - 1] + (c_[i] > c_[i - 1] ? 1 : 0);
  }
  for (std::size_t first = 0; first + 2 < n; ++first) {
    for (std::size_t last = first + 2; last < n; ++last) {
      const std::size_t count = last - first + 1;
      const std::span<const double> xs(c_.data() + first, count);
      const std::span<const double> ys(v_.data() + first, count);
      if (xs.back() <= xs.front()) continue;
      if (distinct[last] - distinct[first] + 1 < 3) continue;
      const util::LinearFit f = util::linear_fit(xs, ys);
      const double span =
          *std::max_element(ys.begin(), ys.end()) -
          *std::min_element(ys.begin(), ys.end());
      if (span <= 0.0) continue;
      if (f.max_abs_residual <= tolerance * span) {
        const double width = xs.back() - xs.front();
        const double best_width = best.found ? best.c_high - best.c_low : -1.0;
        if (width > best_width) {
          best.found = true;
          best.c_low = xs.front();
          best.c_high = xs.back();
          best.first = first;
          best.last = last;
          best.fit = f;
        }
      }
    }
  }
  return best;
}

}  // namespace idp::dsp
