/// \file golden_test.cpp
/// Golden-trace regression harness: canonical chronoamperometry and cyclic
/// voltammetry traces, the multiplexed panel scan, the calibration
/// figure-of-merit table and a small cohort report are diffed against
/// checked-in CSV fixtures with per-fixture tolerances.
///
/// The fixtures were generated from the pre-degradation-subsystem tree, so
/// these tests also pin the acceptance criterion that an identity
/// (default-constructed) fault::DegradationModel leaves every measurement
/// bitwise unchanged.
///
/// To regenerate deliberately after an intended modelling change:
///   IDP_UPDATE_GOLDEN=1 ./build/golden_golden_test
/// (see tests/golden/README.md for the full workflow).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "afe/mux.hpp"
#include "bio/library.hpp"
#include "netsim/sim_network.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/calibration_store.hpp"
#include "scenario/longitudinal.hpp"
#include "serve/result_sink.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard_coordinator.hpp"
#include "serve/traffic.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

namespace idp {
namespace {

constexpr const char* kFixtureDir = IDP_TESTS_DIR "/golden/fixtures";

bool update_mode() {
  const char* env = std::getenv("IDP_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0';
}

std::string fixture_path(const std::string& name) {
  return std::string(kFixtureDir) + "/" + name + ".csv";
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// A fixture is a CSV table preceded by '# key=value' tolerance lines.
struct GoldenFixture {
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  util::CsvTable table;
};

GoldenFixture load_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  if (!in.good()) {
    ADD_FAILURE() << "missing golden fixture " << fixture_path(name)
                  << " -- run with IDP_UPDATE_GOLDEN=1 to create it";
    return {};
  }
  GoldenFixture fixture;
  std::string text, line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line[0] == '#') {
      const auto eq = line.find('=');
      if (eq != std::string::npos) {
        const std::string key = line.substr(2, eq - 2);
        const double value = std::strtod(line.c_str() + eq + 1, nullptr);
        if (key == "rel_tol") fixture.rel_tol = value;
        if (key == "abs_tol") fixture.abs_tol = value;
      }
      continue;
    }
    text += line;
    text += '\n';
  }
  fixture.table = util::parse_csv(text);
  return fixture;
}

void write_fixture(const std::string& name, const util::CsvTable& current,
                   double rel_tol, double abs_tol) {
  std::ofstream out(fixture_path(name), std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write fixture " << fixture_path(name);
  out << "# idp-golden v1\n";
  out << "# rel_tol=" << fmt(rel_tol) << "\n";
  out << "# abs_tol=" << fmt(abs_tol) << "\n";
  for (std::size_t i = 0; i < current.header.size(); ++i) {
    if (i) out << ',';
    out << util::csv_escape(current.header[i]);
  }
  out << '\n';
  for (const auto& row : current.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << util::csv_escape(row[i]);
    }
    out << '\n';
  }
  std::printf("[golden] updated %s (%zu rows)\n", fixture_path(name).c_str(),
              current.rows.size());
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// Diff `current` against the checked-in fixture. Every fixture column must
/// exist in the current output (matched by header name, so the platform may
/// *add* columns without invalidating old fixtures); row counts must match
/// exactly; numeric cells compare within the fixture's tolerances and
/// non-numeric cells compare verbatim.
void check_golden(const std::string& name, const util::CsvTable& current,
                  double rel_tol, double abs_tol) {
  if (update_mode()) {
    write_fixture(name, current, rel_tol, abs_tol);
    return;
  }
  const GoldenFixture fixture = load_fixture(name);
  if (fixture.table.header.empty()) return;  // missing fixture already failed
  ASSERT_EQ(fixture.table.rows.size(), current.rows.size())
      << "golden '" << name << "': row count changed";
  for (const std::string& column : fixture.table.header) {
    const std::size_t fc = fixture.table.column(column);
    const std::size_t cc = current.column(column);  // throws if dropped
    std::size_t mismatches = 0;
    for (std::size_t r = 0; r < current.rows.size(); ++r) {
      const std::string& want = fixture.table.rows[r][fc];
      const std::string& got = current.rows[r][cc];
      double a = 0.0, b = 0.0;
      if (parse_double(want, a) && parse_double(got, b)) {
        const double tol =
            fixture.abs_tol +
            fixture.rel_tol * std::max(std::fabs(a), std::fabs(b));
        if (!(std::fabs(a - b) <= tol)) {
          if (++mismatches <= 3) {
            ADD_FAILURE() << "golden '" << name << "' column '" << column
                          << "' row " << r << ": fixture " << want
                          << " vs current " << got << " (tol " << tol << ")";
          }
        }
      } else if (want != got) {
        if (++mismatches <= 3) {
          ADD_FAILURE() << "golden '" << name << "' column '" << column
                        << "' row " << r << ": fixture '" << want
                        << "' vs current '" << got << "'";
        }
      }
    }
    EXPECT_EQ(mismatches, 0u)
        << "golden '" << name << "' column '" << column << "': " << mismatches
        << " mismatching rows";
  }
}

util::CsvTable make_table(std::vector<std::string> header) {
  util::CsvTable t;
  t.header = std::move(header);
  return t;
}

// --- canonical measurement setup (the campaign-grade acquisition path) ------

quant::CampaignConfig golden_campaign() {
  quant::CampaignConfig config;
  config.seed = 0x601d;  // fixed golden seed, distinct from any test seed
  config.calibration_points = 5;
  config.blank_measurements = 6;
  config.ca_duration_s = 10.0;
  return config;
}

/// Mid-linear-range concentration the canonical traces are recorded at.
double golden_concentration(bio::TargetId target) {
  const bio::TargetSpec& spec = bio::spec(target);
  return 0.5 * (spec.linear_lo_mM + spec.linear_hi_mM);
}

sim::Trace golden_ca_trace(bio::TargetId target) {
  const quant::CampaignConfig campaign = golden_campaign();
  bio::ProbePtr probe = quant::make_campaign_probe(campaign, target);
  probe->set_bulk_concentration(bio::to_string(target),
                                golden_concentration(target));
  afe::AnalogFrontEnd fe(quant::campaign_frontend_config(campaign, 77));
  sim::EngineConfig cfg;
  cfg.seed = campaign.seed;
  const sim::MeasurementEngine engine(cfg);
  const auto protocol = std::get<sim::ChronoamperometryProtocol>(
      quant::default_protocol_for(campaign, target));
  return engine.run_chronoamperometry_seeded(
      1, sim::Channel{probe.get(), nullptr}, protocol, fe);
}

// --- the golden scenarios ---------------------------------------------------

class GoldenTrace : public ::testing::TestWithParam<bio::TargetId> {};

TEST_P(GoldenTrace, ChronoamperometryMatchesFixture) {
  const bio::TargetId target = GetParam();
  const sim::Trace trace = golden_ca_trace(target);
  util::CsvTable table = make_table({"time_s", "current_A"});
  for (std::size_t i = 0; i < trace.size(); ++i) {
    table.rows.push_back({fmt(trace.time()[i]), fmt(trace.value()[i])});
  }
  check_golden("ca_" + bio::to_string(target), table, 1e-9, 1e-18);
}

INSTANTIATE_TEST_SUITE_P(Oxidases, GoldenTrace,
                         ::testing::Values(bio::TargetId::kGlucose,
                                           bio::TargetId::kLactate,
                                           bio::TargetId::kGlutamate),
                         [](const auto& param_info) {
                           return bio::to_string(param_info.param);
                         });

TEST(Golden, BenzphetamineVoltammogramMatchesFixture) {
  const quant::CampaignConfig campaign = golden_campaign();
  const bio::TargetId target = bio::TargetId::kBenzphetamine;
  bio::ProbePtr probe = quant::make_campaign_probe(campaign, target);
  probe->set_bulk_concentration(bio::to_string(target),
                                golden_concentration(target));
  afe::AnalogFrontEnd fe(quant::campaign_frontend_config(campaign, 78));
  sim::EngineConfig cfg;
  cfg.seed = campaign.seed;
  const sim::MeasurementEngine engine(cfg);
  const auto protocol = std::get<sim::CyclicVoltammetryProtocol>(
      quant::default_protocol_for(campaign, target));
  const sim::CvCurve curve = engine.run_cyclic_voltammetry_seeded(
      1, sim::Channel{probe.get(), nullptr}, protocol, fe);

  util::CsvTable table = make_table({"time_s", "potential_V", "current_A"});
  for (std::size_t i = 0; i < curve.size(); ++i) {
    table.rows.push_back({fmt(curve.time()[i]), fmt(curve.potential()[i]),
                          fmt(curve.current()[i])});
  }
  check_golden("cv_benzphetamine", table, 1e-9, 1e-18);
}

TEST(Golden, MultiplexedPanelScanMatchesFixture) {
  // Two-channel Fig. 4-style scan: glucose chronoamperometry plus
  // benzphetamine CYP voltammetry through one shared mux.
  const quant::CampaignConfig campaign = golden_campaign();
  bio::ProbePtr glucose =
      quant::make_campaign_probe(campaign, bio::TargetId::kGlucose);
  bio::ProbePtr benz =
      quant::make_campaign_probe(campaign, bio::TargetId::kBenzphetamine);
  glucose->set_bulk_concentration(
      "glucose", golden_concentration(bio::TargetId::kGlucose));
  benz->set_bulk_concentration(
      "benzphetamine", golden_concentration(bio::TargetId::kBenzphetamine));

  afe::AnalogFrontEnd fe1(quant::campaign_frontend_config(campaign, 81));
  afe::AnalogFrontEnd fe2(quant::campaign_frontend_config(campaign, 82));
  std::vector<sim::Channel> channels{sim::Channel{glucose.get(), nullptr},
                                     sim::Channel{benz.get(), nullptr}};
  std::vector<sim::ChannelProtocol> protocols{
      quant::default_protocol_for(campaign, bio::TargetId::kGlucose),
      quant::default_protocol_for(campaign, bio::TargetId::kBenzphetamine)};
  std::vector<afe::AnalogFrontEnd*> frontends{&fe1, &fe2};
  afe::AnalogMux mux{afe::MuxSpec{}};

  sim::EngineConfig cfg;
  cfg.seed = campaign.seed;
  sim::MeasurementEngine engine(cfg);
  const sim::PanelScanResult result =
      engine.run_panel(channels, protocols, frontends, mux, 1);

  util::CsvTable table =
      make_table({"channel", "time_s", "potential_V", "current_A"});
  for (std::size_t c = 0; c < result.entries.size(); ++c) {
    const sim::PanelEntryResult& entry = result.entries[c];
    if (entry.technique == bio::Technique::kChronoamperometry) {
      const auto& p = std::get<sim::ChronoamperometryProtocol>(protocols[c]);
      for (std::size_t i = 0; i < entry.amperogram.size(); ++i) {
        table.rows.push_back({fmt(static_cast<double>(c)),
                              fmt(entry.amperogram.time()[i]),
                              fmt(p.potential),
                              fmt(entry.amperogram.value()[i])});
      }
    } else {
      for (std::size_t i = 0; i < entry.voltammogram.size(); ++i) {
        table.rows.push_back({fmt(static_cast<double>(c)),
                              fmt(entry.voltammogram.time()[i]),
                              fmt(entry.voltammogram.potential()[i]),
                              fmt(entry.voltammogram.current()[i])});
      }
    }
  }
  check_golden("panel_scan", table, 1e-9, 1e-18);
}

TEST(Golden, PanelFigureOfMeritTableMatchesFixture) {
  // The Table III-shaped summary for the four headline targets, built from
  // full calibration campaigns: regression sensitivity, Eq. 5 blank
  // statistics and the certified inversion window.
  quant::CalibrationStore store(golden_campaign());
  const bio::TargetId targets[] = {
      bio::TargetId::kGlucose, bio::TargetId::kLactate,
      bio::TargetId::kGlutamate, bio::TargetId::kBenzphetamine};

  util::CsvTable table =
      make_table({"target", "slope_A_per_mM", "blank_mean_A", "blank_sigma_A",
                  "lod_signal_A", "c_low_mM", "c_high_mM",
                  "response_sigma_A"});
  for (bio::TargetId target : targets) {
    const dsp::CalibrationCurve& curve = store.curve(target);
    const quant::Quantifier& quantifier = store.quantifier(target);
    table.rows.push_back({bio::to_string(target), fmt(quantifier.slope()),
                          fmt(curve.blank_mean()), fmt(curve.blank_sigma()),
                          fmt(curve.lod_signal()), fmt(quantifier.c_low()),
                          fmt(quantifier.c_high()),
                          fmt(quantifier.response_sigma())});
  }
  check_golden("panel_figure_of_merit", table, 1e-9, 1e-18);
}

TEST(Golden, CohortReportMatchesFixture) {
  // A small longitudinal cohort run end-to-end (campaign, scans,
  // quantification). The fixture pins the per-sample columns of the
  // pre-degradation platform; added columns are allowed, changed values are
  // not.
  scenario::AnalytePlan glucose;
  glucose.target = bio::TargetId::kGlucose;
  glucose.pk.volume_of_distribution_l = 15.0;
  glucose.pk.elimination_half_life_h = 1.5;
  glucose.pk.absorption_half_life_h = 0.4;
  glucose.pk.bioavailability = 0.8;
  glucose.pk.molar_mass_g_per_mol = 180.2;
  glucose.regimen =
      scenario::repeated_regimen(0.5, 6.0, 2, 6000.0, scenario::Route::kOral);
  glucose.baseline_mM = 1.2;

  scenario::AnalytePlan lactate;
  lactate.target = bio::TargetId::kLactate;
  lactate.pk.volume_of_distribution_l = 30.0;
  lactate.pk.elimination_half_life_h = 0.8;
  lactate.pk.absorption_half_life_h = 0.2;
  lactate.pk.bioavailability = 1.0;
  lactate.pk.molar_mass_g_per_mol = 90.1;
  lactate.regimen = {scenario::DoseEvent{1.0, 4000.0, scenario::Route::kIvBolus}};
  lactate.baseline_mM = 0.8;
  const std::vector<scenario::AnalytePlan> plans{glucose, lactate};

  scenario::CohortSpec spec;
  spec.patients = 2;
  spec.seed = 601;
  const auto cohort = scenario::generate_cohort(spec, plans);

  quant::CampaignConfig campaign = golden_campaign();
  campaign.ca_duration_s = 6.0;
  quant::CalibrationStore store(campaign);

  scenario::LongitudinalConfig config;
  config.sample_times_h = {0.0, 1.5, 4.0};
  config.engine_seed = 0x601d;
  config.parallelism = 1;
  const scenario::LongitudinalRunner runner(store, config);
  const scenario::CohortReport report = runner.run(plans, cohort);

  const std::string tmp = ::testing::TempDir() + "/idp_golden_cohort.csv";
  report.to_csv(tmp);
  const util::CsvTable table = util::read_csv(tmp);
  std::remove(tmp.c_str());
  check_golden("cohort_report", table, 1e-9, 1e-18);
}

TEST(Golden, ShardedReplayK2MatchesFixture) {
  // The merged cross-shard response log: a fixed mixed request log replayed
  // through a 2-shard cluster with the seeded simulated network injecting
  // reorder, bounded delay and duplication between the shards and the
  // coordinator. The fixture pins the merged canonical response CSV -- the
  // exact payload the single-node scheduler would produce -- so any change
  // to routing, lease assignment, the merge or the service model shows up
  // as a diff here.
  quant::CampaignConfig campaign = golden_campaign();
  campaign.calibration_points = 4;
  campaign.blank_measurements = 4;
  campaign.ca_duration_s = 6.0;
  quant::CalibrationStore store(campaign);

  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose, bio::TargetId::kLactate};
  config.engine_seed = 0x601d;
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.05;
  aging.enzyme_decay_per_day = 0.02;
  aging.seed = 0x601d ^ 0x5e47e;
  config.degradation = fault::DegradationModel(aging);
  config.recalibration_interval_days = 4.0;

  serve::ShardClusterConfig cluster_config;
  cluster_config.router.shards = 2;
  serve::ShardCluster cluster(store, config, cluster_config);

  serve::TrafficSpec traffic;
  traffic.requests = 24;
  traffic.sessions = 6;
  traffic.seed = 0x601d;
  traffic.duration_h = 9.0 * 24.0;  // crosses two recalibration epochs
  const std::vector<serve::Request> log =
      serve::synthesize_traffic(traffic, cluster.shard(0));

  test::SimNetConfig net;
  net.seed = 0x601d;
  net.max_delay_ticks = 32;
  net.duplicate_prob = 0.15;
  test::SimNetTransport transport(net);

  const serve::ShardedReplayResult result = cluster.replay(log, 1, &transport);
  const std::string tmp = ::testing::TempDir() + "/idp_golden_sharded.csv";
  serve::write_responses_csv(result.responses, tmp);
  const util::CsvTable table = util::read_csv(tmp);
  std::remove(tmp.c_str());
  check_golden("sharded_replay_k2", table, 1e-9, 1e-18);
}

TEST(Golden, ObsTraceK2MatchesFixture) {
  // The canonical observability trace of the ShardedReplayK2 scenario:
  // the same fixed log through the same 2-shard cluster and seeded
  // network, with a TraceRecorder attached. The fixture pins the sorted
  // span table *exactly* (zero tolerance) -- the trace is a pure function
  // of (log, seed, config), so any change to lease assignment, routing,
  // epoch scheduling or the span taxonomy itself is a diff here.
  quant::CampaignConfig campaign = golden_campaign();
  campaign.calibration_points = 4;
  campaign.blank_measurements = 4;
  campaign.ca_duration_s = 6.0;
  quant::CalibrationStore store(campaign);

  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose, bio::TargetId::kLactate};
  config.engine_seed = 0x601d;
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.05;
  aging.enzyme_decay_per_day = 0.02;
  aging.seed = 0x601d ^ 0x5e47e;
  config.degradation = fault::DegradationModel(aging);
  config.recalibration_interval_days = 4.0;

  serve::ShardClusterConfig cluster_config;
  cluster_config.router.shards = 2;
  serve::ShardCluster cluster(store, config, cluster_config);
  obs::TraceRecorder trace;
  cluster.set_trace(&trace);

  serve::TrafficSpec traffic;
  traffic.requests = 24;
  traffic.sessions = 6;
  traffic.seed = 0x601d;
  traffic.duration_h = 9.0 * 24.0;
  const std::vector<serve::Request> log =
      serve::synthesize_traffic(traffic, cluster.shard(0));

  test::SimNetConfig net;
  net.seed = 0x601d;
  net.max_delay_ticks = 32;
  net.duplicate_prob = 0.15;
  test::SimNetTransport transport(net);

  (void)cluster.replay(log, 1, &transport);
  const std::string tmp = ::testing::TempDir() + "/idp_golden_obs_trace.csv";
  trace.to_csv(tmp);
  const util::CsvTable table = util::read_csv(tmp);
  std::remove(tmp.c_str());
  check_golden("obs_trace_k2", table, 0.0, 0.0);  // exact: no noise anywhere
}

TEST(Golden, ObsMetricsJsonlK2MatchesFixture) {
  // The canonical metrics export of the ShardedReplayK2 scenario, pinned
  // BYTE for byte: the same fixed log through the same 2-shard cluster and
  // seeded network, with a MetricsRegistry attached, exported as JSONL.
  // Unlike the CSV goldens this diff is on the raw file bytes (%.17g
  // doubles, sorted sample order, fixed key order), so it pins the export
  // format itself alongside the values -- the JSONL counterpart of the
  // zero-tolerance obs_trace_k2 fixture.
  quant::CampaignConfig campaign = golden_campaign();
  campaign.calibration_points = 4;
  campaign.blank_measurements = 4;
  campaign.ca_duration_s = 6.0;
  quant::CalibrationStore store(campaign);

  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose, bio::TargetId::kLactate};
  config.engine_seed = 0x601d;
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.05;
  aging.enzyme_decay_per_day = 0.02;
  aging.seed = 0x601d ^ 0x5e47e;
  config.degradation = fault::DegradationModel(aging);
  config.recalibration_interval_days = 4.0;

  serve::ShardClusterConfig cluster_config;
  cluster_config.router.shards = 2;
  serve::ShardCluster cluster(store, config, cluster_config);
  obs::MetricsRegistry metrics;
  cluster.set_metrics(&metrics);

  serve::TrafficSpec traffic;
  traffic.requests = 24;
  traffic.sessions = 6;
  traffic.seed = 0x601d;
  traffic.duration_h = 9.0 * 24.0;
  const std::vector<serve::Request> log =
      serve::synthesize_traffic(traffic, cluster.shard(0));

  test::SimNetConfig net;
  net.seed = 0x601d;
  net.max_delay_ticks = 32;
  net.duplicate_prob = 0.15;
  test::SimNetTransport transport(net);

  (void)cluster.replay(log, 1, &transport);
  const std::string tmp = ::testing::TempDir() + "/idp_golden_obs_metrics.jsonl";
  metrics.snapshot().to_jsonl(tmp);
  std::ifstream current_in(tmp, std::ios::binary);
  ASSERT_TRUE(current_in.good());
  const std::string current((std::istreambuf_iterator<char>(current_in)),
                            std::istreambuf_iterator<char>());
  std::remove(tmp.c_str());
  ASSERT_FALSE(current.empty());

  const std::string path =
      std::string(kFixtureDir) + "/obs_metrics_k2.jsonl";
  if (update_mode()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
    out << current;
    std::printf("[golden] updated %s (%zu bytes)\n", path.c_str(),
                current.size());
    return;
  }
  std::ifstream fixture_in(path, std::ios::binary);
  if (!fixture_in.good()) {
    ADD_FAILURE() << "missing golden fixture " << path
                  << " -- run with IDP_UPDATE_GOLDEN=1 to create it";
    return;
  }
  const std::string fixture((std::istreambuf_iterator<char>(fixture_in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(fixture, current)
      << "obs_metrics_k2.jsonl is byte-exact: any diff means the JSONL "
         "schema, the sample order or a metric value changed";
}

TEST(Golden, FleetHealthReportMatchesFixture) {
  // A 30-day degraded fleet through the real service QC path: four
  // sessions on one service with fouling + enzyme decay + interference
  // storms live, a QC check per sensor every 3 days, the merged response
  // log streamed into the FleetHealthAnalyzer. The fixture pins the
  // ranked root-cause report -- classifier thresholds, feature
  // extraction, scoring and the ranking order all diff here.
  quant::CampaignConfig campaign = golden_campaign();
  campaign.calibration_points = 4;
  campaign.blank_measurements = 4;
  campaign.ca_duration_s = 6.0;
  quant::CalibrationStore store(campaign);

  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose};
  config.engine_seed = 0x601d;
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.06;
  aging.enzyme_decay_per_day = 0.03;
  aging.sensor_variability = 0.3;
  aging.storms_per_day = 0.1;
  aging.storm_current_A = 1e-8;
  aging.seed = 0x601d;
  config.degradation = fault::DegradationModel(aging);
  serve::DiagnosticsService service(store, config);

  std::vector<serve::Request> log;
  std::uint64_t id = 0;
  for (std::uint32_t day = 0; day <= 30; day += 3) {
    for (std::uint64_t patient = 0; patient < 4; ++patient) {
      serve::Request qc;
      qc.id = id++;
      qc.session = {.tenant = 1, .patient = patient, .device = 0};
      qc.priority = serve::Priority::kRoutine;
      qc.kind = serve::RequestKind::kQcCheck;
      qc.channel = 0;
      qc.time_h = 24.0 * day + static_cast<double>(patient);
      log.push_back(qc);
    }
  }

  serve::Scheduler scheduler(service);
  const std::vector<serve::Response> responses = scheduler.replay(log, 1);

  // Thresholds tuned to the integrated QC path's residual scale: the
  // service standardises against the calibration's response sigma, so a
  // deep attenuation registers as a few sigma (vs the drill's synthetic
  // 30-sigma-per-unit-signal scale) and honest measurement noise sits
  // near 1.5 sigma of first-difference volatility.
  obs::HealthThresholds thresholds;
  thresholds.volatility = 3.0;
  thresholds.attenuation_drop = 1.5;
  obs::FleetHealthAnalyzer analyzer(thresholds);
  for (const serve::Response& r : responses) analyzer.add_response(r);
  const obs::FleetHealthReport report = analyzer.report();
  ASSERT_EQ(report.sensors.size(), 4u);

  const std::string tmp = ::testing::TempDir() + "/idp_golden_fleet.csv";
  report.to_csv(tmp);
  const util::CsvTable table = util::read_csv(tmp);
  std::remove(tmp.c_str());
  check_golden("fleet_health_report", table, 1e-9, 1e-18);
}

}  // namespace
}  // namespace idp
