/// \file quantifier_test.cpp
/// Quantifier semantics: monotone inversion, out-of-range clamping flags,
/// LOD flagging and confidence-interval propagation from blank sigma and
/// fit residuals.

#include "quant/quantifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace idp::quant {
namespace {

/// Noiseless straight curve v = slope * c + intercept over [0.5, 4.0] with
/// deterministic blanks of known sigma.
dsp::CalibrationCurve line_curve(double slope, double intercept,
                                 double blank_sigma = 0.1) {
  dsp::CalibrationCurve c;
  // Two-point blank set with exactly the requested sigma.
  const double half = blank_sigma / std::sqrt(2.0);
  c.add_blank(intercept - half);
  c.add_blank(intercept + half);
  for (double conc : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    c.add_point(conc, slope * conc + intercept);
  }
  return c;
}

TEST(Quantifier, InvertsExactlyOnNoiselessLine) {
  const Quantifier q(line_curve(2.0, 0.3));
  ASSERT_TRUE(q.valid());
  const ConcentrationEstimate est = q.quantify(2.0 * 2.2 + 0.3);
  EXPECT_NEAR(est.value, 2.2, 1e-9);
  EXPECT_FALSE(est.clamped());
  EXPECT_FALSE(est.below_lod());
  EXPECT_TRUE(est.ok());
}

TEST(Quantifier, UsesCertifiedLinearRange) {
  const Quantifier q(line_curve(2.0, 0.0));
  EXPECT_DOUBLE_EQ(q.c_low(), 0.5);
  EXPECT_DOUBLE_EQ(q.c_high(), 4.0);
  EXPECT_NEAR(q.slope(), 2.0, 1e-9);
}

TEST(Quantifier, ClampsAndFlagsAboveRange) {
  const Quantifier q(line_curve(2.0, 0.0));
  const ConcentrationEstimate est = q.quantify(2.0 * 9.0);
  EXPECT_DOUBLE_EQ(est.value, 4.0);  // clamped to c_high
  EXPECT_TRUE(has_flag(est.flags, QuantFlag::kAboveRange));
  EXPECT_FALSE(has_flag(est.flags, QuantFlag::kBelowRange));
  EXPECT_TRUE(est.clamped());
  // ...but the CI still brackets the unclamped inversion.
  EXPECT_GT(est.ci_high, 9.0 - 1e-9);
}

TEST(Quantifier, ClampsAndFlagsBelowRange) {
  const Quantifier q(line_curve(2.0, 0.0));
  const ConcentrationEstimate est = q.quantify(2.0 * 0.1);
  EXPECT_DOUBLE_EQ(est.value, 0.5);  // clamped to c_low
  EXPECT_TRUE(has_flag(est.flags, QuantFlag::kBelowRange));
  EXPECT_TRUE(est.clamped());
}

TEST(Quantifier, FlagsResponsesUnderTheLod) {
  // sigma_b = 0.1 -> LOD excursion threshold 0.3 above the blank mean.
  const Quantifier q(line_curve(2.0, 0.0, 0.1));
  EXPECT_TRUE(q.lod_known());
  const ConcentrationEstimate low = q.quantify(0.2);
  EXPECT_TRUE(low.below_lod());
  const ConcentrationEstimate high = q.quantify(2.0);
  EXPECT_FALSE(high.below_lod());
}

TEST(Quantifier, ConfidenceIntervalWidthIsPropagatedSigma) {
  const double sigma_b = 0.1;
  const Quantifier q(line_curve(2.0, 0.0, sigma_b),
                     QuantifierOptions{.linear_tolerance = 0.07,
                                       .coverage_z = 3.0});
  // Noiseless points: residual_rms ~ 0, so sigma == blank sigma.
  EXPECT_NEAR(q.response_sigma(), sigma_b, 1e-9);
  const ConcentrationEstimate est = q.quantify(2.0 * 2.0);
  const double half = 3.0 * sigma_b / 2.0;
  EXPECT_NEAR(est.ci_high - est.value, half, 1e-9);
  EXPECT_NEAR(est.value - est.ci_low, half, 1e-9);
}

TEST(Quantifier, CiFloorsAtZeroConcentration) {
  const Quantifier q(line_curve(2.0, 0.0, 0.5));
  const ConcentrationEstimate est = q.quantify(2.0 * 0.5);
  EXPECT_GE(est.ci_low, 0.0);
}

TEST(Quantifier, ResidualsWidenTheInterval) {
  // Noisy calibration points: residual RMS adds in quadrature.
  dsp::CalibrationCurve c;
  c.add_blank(-0.05);
  c.add_blank(0.05);
  util::Rng rng(11);
  for (double conc : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    c.add_point(conc, 2.0 * conc + rng.gaussian(0.2));
  }
  const Quantifier noisy(c, QuantifierOptions{.linear_tolerance = 0.3,
                                              .coverage_z = 3.0});
  const Quantifier clean(line_curve(2.0, 0.0, 0.05 * std::sqrt(2.0)));
  EXPECT_GT(noisy.response_sigma(), clean.response_sigma());
}

TEST(Quantifier, InvertsNegativeSlopeCurves) {
  // Cathodic conventions can make responses fall with concentration.
  dsp::CalibrationCurve c;
  c.add_blank(10.0 - 0.05);
  c.add_blank(10.0 + 0.05);
  for (double conc : {1.0, 2.0, 3.0, 4.0}) {
    c.add_point(conc, 10.0 - 2.0 * conc);
  }
  const Quantifier q(c);
  ASSERT_TRUE(q.valid());
  EXPECT_LT(q.slope(), 0.0);
  const ConcentrationEstimate est = q.quantify(10.0 - 2.0 * 2.5);
  EXPECT_NEAR(est.value, 2.5, 1e-9);
  EXPECT_FALSE(est.below_lod());
  // A response near the blank level is below LOD for a falling curve too.
  EXPECT_TRUE(q.quantify(9.99).below_lod());
}

TEST(Quantifier, GlobalFitFallbackIsFlagged) {
  // Strong curvature: no window passes a 1% tolerance, so the quantifier
  // falls back to the global fit and says so on every estimate.
  dsp::CalibrationCurve c;
  c.add_blank(-0.01);
  c.add_blank(0.01);
  for (double conc : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    c.add_point(conc, 2.0 * conc / (1.0 + conc / 1.5));
  }
  const Quantifier q(c, QuantifierOptions{.linear_tolerance = 0.01,
                                          .coverage_z = 3.0});
  const ConcentrationEstimate est = q.quantify(1.0);
  EXPECT_TRUE(has_flag(est.flags, QuantFlag::kGlobalFit));
  EXPECT_FALSE(est.ok());
}

TEST(Quantifier, NoBlanksDisablesLodFlag) {
  dsp::CalibrationCurve c;
  for (double conc : {1.0, 2.0, 3.0}) c.add_point(conc, 2.0 * conc);
  const Quantifier q(c);
  EXPECT_FALSE(q.lod_known());
  EXPECT_FALSE(q.quantify(0.0).below_lod());
}

TEST(Quantifier, DefaultConstructedIsInvalid) {
  const Quantifier q;
  EXPECT_FALSE(q.valid());
  EXPECT_THROW(q.quantify(1.0), std::invalid_argument);
}

TEST(Quantifier, RejectsDegenerateCurves) {
  dsp::CalibrationCurve flat;
  flat.add_point(1.0, 1.0);
  flat.add_point(1.0, 1.1);
  EXPECT_THROW(Quantifier{flat}, std::invalid_argument);

  dsp::CalibrationCurve zero_slope;
  for (double conc : {1.0, 2.0, 3.0}) zero_slope.add_point(conc, 5.0);
  EXPECT_THROW(Quantifier{zero_slope}, std::invalid_argument);

  EXPECT_THROW(
      Quantifier(line_curve(2.0, 0.0),
                 QuantifierOptions{.linear_tolerance = 0.07, .coverage_z = 0.0}),
      std::invalid_argument);
}

TEST(QuantFlagOps, BitmaskSemantics) {
  QuantFlag f = QuantFlag::kNone;
  EXPECT_FALSE(has_flag(f, QuantFlag::kBelowLod));
  f |= QuantFlag::kBelowLod;
  f |= QuantFlag::kBelowRange;
  EXPECT_TRUE(has_flag(f, QuantFlag::kBelowLod));
  EXPECT_TRUE(has_flag(f, QuantFlag::kBelowRange));
  EXPECT_FALSE(has_flag(f, QuantFlag::kAboveRange));
  EXPECT_EQ(f & QuantFlag::kAboveRange, QuantFlag::kNone);
}

}  // namespace
}  // namespace idp::quant
