/// \file calibration_store_test.cpp
/// CalibrationStore semantics: campaign shape, caching, deterministic
/// parallel builds, and the end-to-end round trip -- simulate a known
/// concentration through the measurement engine, quantify it via a
/// store-built curve, and recover the truth within the propagated
/// confidence interval across the probe library's linear ranges.

#include "quant/calibration_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace idp::quant {
namespace {

/// Fast campaign for tests: short chronoamperometry windows, few points.
CampaignConfig test_config() {
  CampaignConfig config;
  config.seed = 20260731;
  config.calibration_points = 5;
  config.blank_measurements = 6;
  config.ca_duration_s = 10.0;
  return config;
}

TEST(CalibrationStore, CampaignProducesTheConfiguredCurveShape) {
  CalibrationStore store(test_config());
  const dsp::CalibrationCurve& curve = store.curve(bio::TargetId::kGlucose);
  EXPECT_EQ(curve.blank_count(), 6u);
  EXPECT_EQ(curve.point_count(), 5u);
  // The sweep spans the probe's specified linear range.
  const bio::TargetSpec& spec = bio::spec(bio::TargetId::kGlucose);
  EXPECT_NEAR(curve.concentrations().back(), spec.linear_hi_mM, 1e-9);
  EXPECT_GE(curve.concentrations().front(), spec.linear_lo_mM - 1e-9);
  // And yields an invertible, positive-sensitivity quantifier.
  const Quantifier& q = store.quantifier(bio::TargetId::kGlucose);
  ASSERT_TRUE(q.valid());
  EXPECT_GT(q.slope(), 0.0);
}

TEST(CalibrationStore, CachesPerTargetAndProtocol) {
  CalibrationStore store(test_config());
  const Quantifier& a = store.quantifier(bio::TargetId::kGlucose);
  const Quantifier& b = store.quantifier(bio::TargetId::kGlucose);
  EXPECT_EQ(&a, &b);  // one campaign, stable address
  EXPECT_EQ(store.cached_count(), 1u);

  // A different protocol for the same target is a distinct entry.
  sim::ChronoamperometryProtocol longer;
  longer.potential = std::get<sim::ChronoamperometryProtocol>(
                         default_protocol_for(store.config(),
                                              bio::TargetId::kGlucose))
                         .potential;
  longer.duration = 20.0;
  const Quantifier& c = store.quantifier(bio::TargetId::kGlucose, longer);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(store.cached_count(), 2u);
}

// (Parallel-prepare bitwise invariance is covered by the campaign workload
// of tests/determinism/determinism_sweep_test.cpp.)

TEST(CalibrationStore, PrepareDedupesTargets) {
  CalibrationStore store(test_config());
  const std::vector<bio::TargetId> targets{bio::TargetId::kGlucose,
                                           bio::TargetId::kGlucose,
                                           bio::TargetId::kLactate};
  store.prepare(targets, 2);
  EXPECT_EQ(store.cached_count(), 2u);
}

TEST(CalibrationStore, RejectsDegenerateCampaigns) {
  CampaignConfig config = test_config();
  config.calibration_points = 2;
  EXPECT_THROW(CalibrationStore{config}, std::invalid_argument);
  config = test_config();
  config.blank_measurements = 1;
  EXPECT_THROW(CalibrationStore{config}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Round trip: measure a known concentration the same way the campaign
// calibrated, then invert. The estimate must recover the truth within the
// propagated confidence interval -- the acceptance contract of the
// quantification layer, checked across probe families.
// ---------------------------------------------------------------------------

class RoundTrip : public ::testing::TestWithParam<bio::TargetId> {};

TEST_P(RoundTrip, RecoversTruthWithinConfidenceInterval) {
  const bio::TargetId target = GetParam();
  CampaignConfig config = test_config();
  CalibrationStore store(config);
  const Quantifier& quantifier = store.quantifier(target);
  ASSERT_TRUE(quantifier.valid());

  // Fresh measurement setup: same configuration as the campaign but an
  // independent noise realisation (different engine seed + run ids).
  sim::EngineConfig engine_config;
  engine_config.seed = 777;
  const sim::MeasurementEngine engine(engine_config);
  bio::ProbePtr probe = make_campaign_probe(config, target);
  afe::AnalogFrontEnd frontend(campaign_frontend_config(config, 4242));
  const sim::ChannelProtocol protocol = default_protocol_for(config, target);
  const std::string name = bio::to_string(target);

  // Probe several truths across the calibrated window (clear of the edges,
  // where clamping legitimately kicks in).
  const double lo = quantifier.c_low();
  const double hi = quantifier.c_high();
  std::uint64_t run_id = 0;
  for (double f : {0.3, 0.55, 0.8}) {
    const double truth = lo + f * (hi - lo);
    probe->set_bulk_concentration(name, truth);
    double response = 0.0;
    if (std::holds_alternative<sim::ChronoamperometryProtocol>(protocol)) {
      const sim::Trace trace = engine.run_chronoamperometry_seeded(
          ++run_id, sim::Channel{probe.get(), nullptr},
          std::get<sim::ChronoamperometryProtocol>(protocol), frontend);
      response = panel_response(target, trace, sim::CvCurve{});
    } else {
      const sim::CvCurve curve = engine.run_cyclic_voltammetry_seeded(
          ++run_id, sim::Channel{probe.get(), nullptr},
          std::get<sim::CyclicVoltammetryProtocol>(protocol), frontend);
      response = panel_response(target, sim::Trace{}, curve);
    }

    const ConcentrationEstimate est = quantifier.quantify(response);
    // Detectability is only promised above the *measured* LOD. Glutamate's
    // paper LOD (1574 uM) sits inside its own 0.5-2 mM linear range, so a
    // mid-range glutamate sample flagging below-LOD is correct behaviour.
    const double lod_mM = (quantifier.lod_signal() - quantifier.blank_mean()) /
                          std::fabs(quantifier.slope());
    if (truth > 1.5 * lod_mM) {
      EXPECT_FALSE(est.below_lod()) << name << " at " << truth << " mM";
    }
    EXPECT_LE(est.ci_low, truth) << name << " at " << truth << " mM";
    EXPECT_GE(est.ci_high, truth) << name << " at " << truth << " mM";
    // The point estimate itself lands near the truth (10% of the window
    // plus the CI half-width -- generous, but catches gross inversions).
    const double slack =
        0.10 * (hi - lo) + (est.ci_high - est.ci_low) / 2.0;
    EXPECT_NEAR(est.value, truth, slack) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(ProbeLibrary, RoundTrip,
                         ::testing::Values(bio::TargetId::kGlucose,
                                           bio::TargetId::kLactate,
                                           bio::TargetId::kGlutamate,
                                           bio::TargetId::kBenzphetamine),
                         [](const auto& param_info) {
                           return bio::to_string(param_info.param);
                         });

}  // namespace
}  // namespace idp::quant
