/// \file drift_test.cpp
/// DriftDetector (EWMA + two-sided CUSUM) semantics and the
/// RecalibrationPolicy trigger predicate / validation.

#include "quant/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace idp::quant {
namespace {

TEST(DriftDetector, StartsQuiet) {
  const DriftDetector d;
  EXPECT_EQ(d.observation_count(), 0u);
  EXPECT_EQ(d.ewma(), 0.0);
  EXPECT_EQ(d.cusum(), 0.0);
}

TEST(DriftDetector, ValidatesOptions) {
  EXPECT_THROW(DriftDetector({.ewma_lambda = 0.0}), std::invalid_argument);
  EXPECT_THROW(DriftDetector({.ewma_lambda = 1.5}), std::invalid_argument);
  EXPECT_THROW(DriftDetector({.ewma_lambda = 0.2, .cusum_slack = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(DriftDetector().observe(std::nan("")), std::invalid_argument);
}

TEST(DriftDetector, EwmaTracksASustainedShift) {
  DriftDetector d({.ewma_lambda = 0.5});
  d.observe(2.0);
  EXPECT_DOUBLE_EQ(d.ewma(), 2.0);  // first observation initialises
  d.observe(2.0);
  EXPECT_DOUBLE_EQ(d.ewma(), 2.0);
  d.observe(0.0);
  EXPECT_DOUBLE_EQ(d.ewma(), 1.0);
}

TEST(DriftDetector, CusumIgnoresNoiseWithinSlack) {
  DriftDetector d({.ewma_lambda = 0.2, .cusum_slack = 0.5});
  // Alternating residuals inside the slack band never accumulate.
  for (int i = 0; i < 50; ++i) d.observe(i % 2 == 0 ? 0.4 : -0.4);
  EXPECT_LT(d.cusum(), 1.0);
}

TEST(DriftDetector, CusumAccumulatesPersistentDrift) {
  DriftDetector d({.ewma_lambda = 0.2, .cusum_slack = 0.5});
  for (int i = 0; i < 10; ++i) d.observe(1.5);
  // Each step adds (1.5 - 0.5) = 1.0 to the upward sum.
  EXPECT_NEAR(d.cusum_positive(), 10.0, 1e-12);
  EXPECT_EQ(d.cusum_negative(), 0.0);
  EXPECT_DOUBLE_EQ(d.cusum(), d.cusum_positive());
}

TEST(DriftDetector, TwoSided) {
  DriftDetector d({.ewma_lambda = 0.2, .cusum_slack = 0.5});
  for (int i = 0; i < 10; ++i) d.observe(-1.5);  // signal loss (fouling)
  EXPECT_NEAR(d.cusum_negative(), 10.0, 1e-12);
  EXPECT_EQ(d.cusum_positive(), 0.0);
}

TEST(DriftDetector, ResetRestarts) {
  DriftDetector d;
  d.observe(5.0);
  d.reset();
  EXPECT_EQ(d.observation_count(), 0u);
  EXPECT_EQ(d.ewma(), 0.0);
  EXPECT_EQ(d.cusum(), 0.0);
}

TEST(RecalibrationPolicy, TriggersOnEitherStatistic) {
  RecalibrationPolicy policy;
  policy.enabled = true;
  policy.cusum_threshold = 4.0;
  policy.ewma_threshold = 1.5;

  DriftDetector quiet;
  EXPECT_FALSE(policy.triggered(quiet));

  DriftDetector cusum_trip({.ewma_lambda = 0.01, .cusum_slack = 0.0});
  for (int i = 0; i < 10; ++i) cusum_trip.observe(0.5);  // EWMA stays low
  EXPECT_GE(cusum_trip.cusum(), 4.0);
  EXPECT_LT(std::fabs(cusum_trip.ewma()), 1.5);
  EXPECT_TRUE(policy.triggered(cusum_trip));

  DriftDetector ewma_trip({.ewma_lambda = 1.0, .cusum_slack = 10.0});
  ewma_trip.observe(-2.0);  // one big residual; CUSUM swallowed by slack
  EXPECT_EQ(ewma_trip.cusum(), 0.0);
  EXPECT_TRUE(policy.triggered(ewma_trip));
}

TEST(RecalibrationPolicy, ValidatesTuning) {
  RecalibrationPolicy policy;
  policy.validate();  // disabled: anything goes
  policy.enabled = true;
  policy.validate();  // defaults are sane
  policy.qc_fraction = 0.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.qc_fraction = 0.5;
  policy.cusum_threshold = -1.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.cusum_threshold = 8.0;
  policy.min_interval_h = -1.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.min_interval_h = 24.0;
  policy.detector.ewma_lambda = 2.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace idp::quant
