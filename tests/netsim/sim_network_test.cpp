/// \file sim_network_test.cpp
/// Properties of the simulated-network transport itself: seeded
/// reproducibility, at-least-once no-loss delivery, genuine reorder within
/// the bounded-delay envelope, duplication, and the degenerate
/// configuration collapsing to FIFO. The perfect DirectTransport is pinned
/// alongside as the reference behaviour.

#include "netsim/sim_network.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "serve/shard_transport.hpp"

namespace idp {
namespace {

serve::ResponseEnvelope envelope(std::uint64_t id, std::size_t shard = 0) {
  serve::ResponseEnvelope e;
  e.shard = shard;
  e.sequence = id;
  e.response.request_id = id;
  return e;
}

/// Drain a transport into the delivered request-id sequence.
std::vector<std::uint64_t> drain(serve::ShardTransport& transport) {
  std::vector<std::uint64_t> ids;
  serve::ResponseEnvelope e;
  while (transport.poll(e)) ids.push_back(e.response.request_id);
  return ids;
}

TEST(DirectTransport, IsFifoAndLossless) {
  serve::DirectTransport transport;
  for (std::uint64_t i = 0; i < 100; ++i) transport.send(envelope(i));
  EXPECT_EQ(transport.sent(), 100u);
  const std::vector<std::uint64_t> ids = drain(transport);
  ASSERT_EQ(ids.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(ids[i], i);
  EXPECT_EQ(transport.delivered(), 100u);
  serve::ResponseEnvelope e;
  EXPECT_FALSE(transport.poll(e));
}

TEST(SimNet, DeliverySequenceIsAPureFunctionOfTheSeed) {
  const auto run = [](std::uint64_t seed) {
    test::SimNetConfig config;
    config.seed = seed;
    config.max_delay_ticks = 16;
    config.duplicate_prob = 0.2;
    test::SimNetTransport transport(config);
    for (std::uint64_t i = 0; i < 200; ++i) transport.send(envelope(i));
    return drain(transport);
  };
  EXPECT_EQ(run(7), run(7)) << "same seed must replay the same wire order";
  EXPECT_NE(run(7), run(8)) << "the fault schedule ignores its seed";
}

TEST(SimNet, DeliversEveryMessageAtLeastOnceAndCountsDuplicates) {
  test::SimNetConfig config;
  config.seed = 3;
  config.max_delay_ticks = 24;
  config.duplicate_prob = 0.25;
  test::SimNetTransport transport(config);
  constexpr std::uint64_t kMessages = 400;
  for (std::uint64_t i = 0; i < kMessages; ++i) transport.send(envelope(i));

  const std::vector<std::uint64_t> ids = drain(transport);
  const std::set<std::uint64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), kMessages) << "no message may be lost";
  EXPECT_EQ(ids.size(), kMessages + transport.duplicated());
  EXPECT_GT(transport.duplicated(), 0u)
      << "a 25% duplication rate over 400 sends produced no duplicate";
  EXPECT_EQ(transport.delivered(), ids.size());
}

TEST(SimNet, ReordersWithinTheBoundedDelayEnvelope) {
  test::SimNetConfig config;
  config.seed = 11;
  config.max_delay_ticks = 8;
  config.duplicate_prob = 0.0;
  test::SimNetTransport transport(config);
  constexpr std::uint64_t kMessages = 300;
  for (std::uint64_t i = 0; i < kMessages; ++i) transport.send(envelope(i));

  const std::vector<std::uint64_t> ids = drain(transport);
  ASSERT_EQ(ids.size(), kMessages);
  std::size_t inversions = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    // Messages sent after ids[i] but delivered before it must have been
    // sent within its delay window: at most max_delay_ticks of them.
    std::size_t overtakers = 0;
    for (std::size_t j = 0; j < i; ++j) {
      if (ids[j] > ids[i]) ++overtakers;
    }
    if (overtakers > 0) ++inversions;
    EXPECT_LE(overtakers, config.max_delay_ticks)
        << "message " << ids[i] << " was overtaken beyond the delay bound";
  }
  EXPECT_GT(inversions, 0u)
      << "an 8-tick delay window over 300 sends produced no reorder";
}

TEST(SimNet, ZeroDelayZeroDuplicationCollapsesToFifo) {
  test::SimNetConfig config;
  config.seed = 5;
  config.max_delay_ticks = 0;
  config.duplicate_prob = 0.0;
  test::SimNetTransport transport(config);
  for (std::uint64_t i = 0; i < 50; ++i) transport.send(envelope(i));
  const std::vector<std::uint64_t> ids = drain(transport);
  ASSERT_EQ(ids.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(ids[i], i);
}

TEST(SimNet, DropAccountingIsExactAndSeedPure) {
  const auto run = [](std::uint64_t seed) {
    test::SimNetConfig config;
    config.seed = seed;
    config.max_delay_ticks = 16;
    config.duplicate_prob = 0.10;
    config.drop_prob = 0.20;
    test::SimNetTransport transport(config);
    constexpr std::uint64_t kMessages = 400;
    for (std::uint64_t i = 0; i < kMessages; ++i) transport.send(envelope(i));
    const std::vector<std::uint64_t> ids = drain(transport);
    // Every send is accounted for exactly once: delivered as the
    // original, delivered again as a duplicate, or counted dropped.
    EXPECT_EQ(ids.size(),
              kMessages - transport.dropped() + transport.duplicated());
    EXPECT_GT(transport.dropped(), 0u)
        << "a 20% drop rate over 400 sends lost nothing";
    EXPECT_LT(transport.dropped(), kMessages);
    return std::pair(ids, transport.dropped());
  };
  EXPECT_EQ(run(21), run(21)) << "the loss pattern must be seed-pure";
  EXPECT_NE(run(21).first, run(22).first);
}

TEST(SimNet, CrashWindowsGateShardUpByVirtualTime) {
  test::SimNetConfig config;
  config.crashes = {{.shard = 1, .from_tick = 10, .until_tick = 20}};
  test::SimNetTransport transport(config);
  EXPECT_TRUE(transport.shard_up(0));
  EXPECT_TRUE(transport.shard_up(1)) << "window must not start early";
  transport.advance(10);
  EXPECT_TRUE(transport.shard_up(0)) << "a crash is per-shard";
  EXPECT_FALSE(transport.shard_up(1));
  transport.advance(9);  // tick 19: last down tick of [10, 20)
  EXPECT_FALSE(transport.shard_up(1));
  transport.advance(1);  // tick 20: restarted
  EXPECT_TRUE(transport.shard_up(1));
}

TEST(SimNet, PartitionCutsBothDirectionsOfOneLink) {
  test::SimNetConfig config;
  config.max_delay_ticks = 0;
  config.duplicate_prob = 0.0;
  config.partitions = {{.shard = 0, .from_tick = 0, .until_tick = 1000}};
  test::SimNetTransport transport(config);

  // All three message classes on the partitioned link are lost...
  transport.send(envelope(1, /*shard=*/0));
  transport.send_work(serve::WorkEnvelope{.shard = 0, .work_id = 1});
  transport.send_heartbeat(serve::HeartbeatEnvelope{.shard = 0});
  EXPECT_EQ(transport.dropped(), 3u);

  // ...while the un-partitioned shard's traffic flows.
  transport.send(envelope(2, /*shard=*/1));
  transport.send_work(serve::WorkEnvelope{.shard = 1, .work_id = 2});
  transport.send_heartbeat(serve::HeartbeatEnvelope{.shard = 1});
  EXPECT_EQ(transport.dropped(), 3u);

  serve::ResponseEnvelope response;
  ASSERT_TRUE(transport.poll_ready(response));
  EXPECT_EQ(response.shard, 1u);
  EXPECT_FALSE(transport.poll_ready(response));
  serve::WorkEnvelope work;
  ASSERT_TRUE(transport.poll_work(work));
  EXPECT_EQ(work.work_id, 2u);
  EXPECT_FALSE(transport.poll_work(work));
  serve::HeartbeatEnvelope heartbeat;
  ASSERT_TRUE(transport.poll_heartbeat(heartbeat));
  EXPECT_EQ(heartbeat.shard, 1u);
  EXPECT_FALSE(transport.poll_heartbeat(heartbeat));
}

TEST(SimNet, TimeGatedPollsOnlyDeliverMaturedMessages) {
  test::SimNetConfig config;
  config.seed = 9;
  config.max_delay_ticks = 64;
  config.duplicate_prob = 0.0;
  test::SimNetTransport transport(config);
  constexpr std::uint64_t kMessages = 32;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    transport.send_work(serve::WorkEnvelope{.shard = 0, .work_id = i});
  }

  // Drain with the virtual clock: nothing may arrive before its delivery
  // tick, and letting time run must eventually deliver everything.
  std::size_t delivered = 0;
  serve::WorkEnvelope work;
  bool saw_immature_gap = false;
  for (std::uint64_t tick = 0; tick < kMessages + 65 && delivered < kMessages;
       ++tick) {
    bool any = false;
    while (transport.poll_work(work)) {
      ++delivered;
      any = true;
    }
    if (!any && delivered < kMessages) saw_immature_gap = true;
    transport.advance(1);
  }
  EXPECT_EQ(delivered, kMessages);
  EXPECT_TRUE(saw_immature_gap)
      << "a 64-tick delay envelope never made poll_work wait";
}

}  // namespace
}  // namespace idp
