/// \file fault_tolerance_test.cpp
/// The fault-tolerance acceptance drill: one recorded mixed traffic log
/// replayed through a K-shard cluster over a *hostile* simulated network
/// -- per-message drops, a shard crash/restart window, a bidirectional
/// partition, plus the PR 6 reorder/delay/duplication -- must merge into
/// a global log *bitwise identical* to fault-free single-node execution,
/// across K in {1, 2, 4}, five seeds and parallelism {1, 2, hardware}.
/// The retry/failover machinery must demonstrably have worked (drops,
/// retries, failovers, rejoins all observed, loudly accounted), the whole
/// fault history must be a pure function of the seed, and the lease
/// census must prove run-id disjointness survived failover rerouting.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/determinism.hpp"
#include "netsim/sim_network.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard_coordinator.hpp"
#include "serve/traffic.hpp"
#include "util/error.hpp"

namespace idp {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 1234, 0xfeedbeef, 2026};
constexpr std::size_t kShardCounts[] = {1, 2, 4};
constexpr std::size_t kLevels[] = {1, 2, 0};  // 0 = hardware concurrency

/// One shared store: campaigns are keyed by (target, protocol) and the
/// service seed lives in the engine, so every seed variant reuses it.
quant::CalibrationStore& shared_store() {
  static quant::CalibrationStore store = [] {
    quant::CampaignConfig campaign;
    campaign.seed = 626262;
    campaign.calibration_points = 4;
    campaign.blank_measurements = 4;
    campaign.ca_duration_s = 6.0;
    return quant::CalibrationStore(campaign);
  }();
  return store;
}

serve::ServiceConfig service_config(std::uint64_t seed) {
  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose, bio::TargetId::kLactate};
  config.engine_seed = seed;
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.05;
  aging.enzyme_decay_per_day = 0.02;
  aging.seed = seed ^ 0x5ea11;
  config.degradation = fault::DegradationModel(aging);
  config.recalibration_interval_days = 4.0;
  return config;
}

/// One fixed mixed log: 24 requests over 9 days (crossing two epoch
/// boundaries) from 6 sessions across 3 tenants.
const std::vector<serve::Request>& traffic_log() {
  static const std::vector<serve::Request> log = [] {
    serve::DiagnosticsService reference(shared_store(), service_config(1));
    serve::TrafficSpec spec;
    spec.requests = 24;
    spec.sessions = 6;
    spec.tenants = 3;
    spec.seed = 11;
    spec.duration_h = 9.0 * 24.0;
    return serve::synthesize_traffic(spec, reference);
  }();
  return log;
}

std::uint64_t digest_responses(const std::vector<serve::Response>& responses) {
  test::BitDigest d;
  test::fold(d, std::span<const serve::Response>(responses));
  return d.value();
}

std::uint64_t single_node_digest(std::uint64_t seed) {
  serve::DiagnosticsService service(shared_store(), service_config(seed));
  serve::Scheduler scheduler(service);
  return digest_responses(scheduler.replay(traffic_log(), 1));
}

/// The hostile schedule every sweep point runs under: 5% loss, 10%
/// duplication, 24-tick delay envelope, `crash_shard` crashed for ticks
/// [10, 300) (the initial dispatch wave dies with it), and
/// `partition_shard` partitioned for [350, 520) (long enough to outlast
/// the failure detector's timeout, so heartbeat silence -- not the crash
/// schedule -- drives a second failover). Callers pick crash_shard as a
/// shard that owns traffic, so the outage provably blocks progress until
/// failover or restart.
test::SimNetConfig hostile_net(std::uint64_t seed, std::size_t crash_shard,
                               std::size_t partition_shard) {
  test::SimNetConfig net;
  net.seed = seed;
  net.max_delay_ticks = 24;
  net.duplicate_prob = 0.10;
  net.drop_prob = 0.05;
  net.crashes = {{.shard = crash_shard, .from_tick = 10, .until_tick = 300}};
  net.partitions = {
      {.shard = partition_shard, .from_tick = 350, .until_tick = 520}};
  return net;
}

class FaultTolerantReplay : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultTolerantReplay, MergedLogSurvivesLossCrashAndPartitionBitwise) {
  const std::size_t shards = GetParam();
  const std::vector<serve::Request>& log = traffic_log();

  serve::FaultStats totals;
  std::uint64_t duplicates_seen = 0;
  for (const std::uint64_t seed : kSeeds) {
    const std::uint64_t baseline = single_node_digest(seed);
    for (const std::size_t parallelism : kLevels) {
      serve::ShardClusterConfig cluster_config;
      cluster_config.router.shards = shards;
      serve::ShardCluster cluster(shared_store(), service_config(seed),
                                  cluster_config);

      // The fault schedule varies with every sweep point; the merged log
      // must not. Crash the shard owning the log's first request (it has
      // work, so the outage provably bites) and partition its neighbour.
      const std::size_t crash_shard = cluster.route(log[0].session);
      test::SimNetTransport transport(
          hostile_net(seed * 1000 + shards * 10 + parallelism, crash_shard,
                      (crash_shard + 1) % shards));
      const serve::FaultTolerantReplayResult result =
          cluster.replay_fault_tolerant(log, parallelism, &transport);

      EXPECT_EQ(digest_responses(result.responses), baseline)
          << "K=" << shards << " seed=" << seed
          << " parallelism=" << parallelism
          << " diverged from fault-free single-node execution";

      // Conservation: primaries cover the log, every response has an
      // executor, and the executor really served it.
      EXPECT_EQ(std::accumulate(result.per_shard_requests.begin(),
                                result.per_shard_requests.end(),
                                std::size_t{0}),
                log.size());
      ASSERT_EQ(result.executed_by.size(), log.size());
      for (const std::size_t executor : result.executed_by) {
        EXPECT_LT(executor, shards);
      }

      // Run-id disjointness must survive failover rerouting: the census
      // over the *actual* executors still assigns every lease block to
      // exactly one shard, and its failover column matches executed_by.
      const serve::LeaseCensus census =
          cluster.lease_census(log, result.executed_by);
      EXPECT_TRUE(census.disjoint);
      std::uint64_t rerouted = 0;
      for (std::size_t i = 0; i < log.size(); ++i) {
        if (result.executed_by[i] != cluster.route(log[i].session)) {
          ++rerouted;
        }
      }
      std::uint64_t census_requests = 0, census_failovers = 0;
      for (const serve::ShardLeaseDomain& domain : census.per_shard) {
        census_requests += domain.requests;
        census_failovers += domain.failover_requests;
      }
      EXPECT_EQ(census_requests, log.size());
      EXPECT_EQ(census_failovers, rerouted);

      totals.retries += result.faults.retries;
      totals.reroutes += result.faults.reroutes;
      totals.messages_dropped += result.faults.messages_dropped;
      totals.shard_failovers += result.faults.shard_failovers;
      totals.shard_rejoins += result.faults.shard_rejoins;
      totals.heartbeats += result.faults.heartbeats;
      duplicates_seen += result.merge.duplicates_seen;
    }
  }

  // The harness must actually have been hostile, and every recovery
  // mechanism must actually have fired across the 15 fault schedules.
  EXPECT_GT(totals.messages_dropped, 0u);
  EXPECT_GT(totals.retries, 0u) << "nothing was ever retransmitted";
  EXPECT_GT(totals.shard_failovers, 0u)
      << "the crash window never tripped the failure detector";
  EXPECT_GT(totals.shard_rejoins, 0u)
      << "the restarted shard never rejoined";
  EXPECT_GT(totals.heartbeats, 0u);
  EXPECT_GT(duplicates_seen, 0u);
  if (shards > 1) {
    EXPECT_GT(totals.reroutes, 0u)
        << "with peers available, the crash window must cause failover "
           "rerouting";
  } else {
    EXPECT_EQ(totals.reroutes, 0u)
        << "a single-shard cluster has nowhere to reroute";
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, FaultTolerantReplay,
                         ::testing::ValuesIn(kShardCounts),
                         [](const auto& param_info) {
                           return "K" + std::to_string(param_info.param);
                         });

TEST(FaultTolerantReplay, FaultHistoryIsAPureFunctionOfTheSeed) {
  // Same seed -> bit-identical fault history, not just identical output:
  // every counter in FaultStats and MergeStats must replay exactly.
  const auto run = [](std::uint64_t seed) {
    serve::ShardClusterConfig config;
    config.router.shards = 2;
    serve::ShardCluster cluster(shared_store(), service_config(4), config);
    const std::size_t crash_shard =
        cluster.route(traffic_log()[0].session);
    test::SimNetTransport transport(
        hostile_net(seed, crash_shard, (crash_shard + 1) % 2));
    return cluster.replay_fault_tolerant(traffic_log(), 1, &transport);
  };
  const serve::FaultTolerantReplayResult a = run(77);
  const serve::FaultTolerantReplayResult b = run(77);
  EXPECT_EQ(digest_responses(a.responses), digest_responses(b.responses));
  EXPECT_EQ(a.executed_by, b.executed_by);
  EXPECT_EQ(a.faults.dispatches, b.faults.dispatches);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.reroutes, b.faults.reroutes);
  EXPECT_EQ(a.faults.executions, b.faults.executions);
  EXPECT_EQ(a.faults.heartbeats, b.faults.heartbeats);
  EXPECT_EQ(a.faults.messages_dropped, b.faults.messages_dropped);
  EXPECT_EQ(a.faults.shard_failovers, b.faults.shard_failovers);
  EXPECT_EQ(a.faults.shard_rejoins, b.faults.shard_rejoins);
  EXPECT_EQ(a.faults.final_tick, b.faults.final_tick);
  EXPECT_EQ(a.merge.delivered, b.merge.delivered);
  EXPECT_EQ(a.merge.duplicates_seen, b.merge.duplicates_seen);
  EXPECT_EQ(a.merge.max_reorder_distance, b.merge.max_reorder_distance);

  // And a different seed must produce a different history (the injection
  // is not vacuous).
  const serve::FaultTolerantReplayResult c = run(78);
  EXPECT_EQ(digest_responses(a.responses), digest_responses(c.responses))
      << "output must be seed-independent even though the history is not";
  EXPECT_NE(a.faults.final_tick + a.faults.dispatches +
                a.faults.messages_dropped,
            c.faults.final_tick + c.faults.dispatches +
                c.faults.messages_dropped);
}

TEST(FaultTolerantReplay, PerfectTransportDegeneratesToThePlainReplay) {
  serve::ShardClusterConfig config;
  config.router.shards = 2;
  serve::ShardCluster plain(shared_store(), service_config(5), config);
  const std::uint64_t expected =
      digest_responses(plain.replay(traffic_log(), 1).responses);

  serve::ShardCluster cluster(shared_store(), service_config(5), config);
  const serve::FaultTolerantReplayResult result =
      cluster.replay_fault_tolerant(traffic_log(), 1);
  EXPECT_EQ(digest_responses(result.responses), expected);
  EXPECT_EQ(result.faults.retries, 0u);
  EXPECT_EQ(result.faults.reroutes, 0u);
  EXPECT_EQ(result.faults.messages_dropped, 0u);
  EXPECT_EQ(result.faults.shard_failovers, 0u);
  EXPECT_EQ(result.faults.dispatches, traffic_log().size());
  EXPECT_EQ(result.faults.executions, traffic_log().size());
  for (std::size_t i = 0; i < traffic_log().size(); ++i) {
    EXPECT_EQ(result.executed_by[i],
              cluster.route(traffic_log()[i].session));
  }
}

TEST(FaultTolerantReplay, StarvationHitsTheVirtualTimeCeilingLoudly) {
  serve::ShardClusterConfig config;
  config.router.shards = 2;
  serve::ShardCluster cluster(shared_store(), service_config(6), config);
  // Both shards crashed for (effectively) ever: no response can merge,
  // and the replay must throw at the tick ceiling instead of spinning.
  test::SimNetConfig net;
  net.crashes = {{.shard = 0, .from_tick = 0, .until_tick = 1'000'000'000},
                 {.shard = 1, .from_tick = 0, .until_tick = 1'000'000'000}};
  test::SimNetTransport transport(net);
  serve::FaultToleranceConfig fault_config;
  fault_config.max_ticks = 2'000;
  fault_config.retry.max_attempts = 1'000'000;  // budget must not fire first
  EXPECT_THROW(cluster.replay_fault_tolerant(traffic_log(), 1, &transport,
                                             fault_config),
               util::Error);
}

TEST(FaultTolerantReplay, ExhaustedRetryBudgetFailsLoudly) {
  serve::ShardClusterConfig config;
  config.router.shards = 2;
  serve::ShardCluster cluster(shared_store(), service_config(7), config);
  test::SimNetConfig net;
  net.drop_prob = 1.0;  // the network eats everything
  test::SimNetTransport transport(net);
  serve::FaultToleranceConfig fault_config;
  fault_config.retry.max_attempts = 3;
  fault_config.retry.response_timeout_ticks = 8;
  fault_config.retry.max_backoff_ticks = 16;
  EXPECT_THROW(cluster.replay_fault_tolerant(traffic_log(), 1, &transport,
                                             fault_config),
               util::Error);
}

}  // namespace
}  // namespace idp
