/// \file sim_network.hpp
/// The simulated-network harness: a seeded virtual transport between the
/// service shards and the coordinator that injects the distribution faults
/// the merge contract must survive -- message reorder, bounded delay,
/// duplication, and (for the fault-tolerant replay path) loss, shard
/// crash/restart windows and bidirectional partitions -- deterministically
/// per seed (FoundationDB-style deterministic-simulation testing, scaled
/// to this repo's shard layer).
///
/// Fault model -- every message class (responses, work dispatches,
/// heartbeats) passes the same pipeline at send time:
/// - every send() advances the virtual clock by one tick;
/// - a message to/from a *partitioned* shard is lost outright. Partition
///   windows are part of the schedule, not of the random stream -- no rng
///   draw is consumed -- so the same seed with and without partitions
///   drops/delays all surviving traffic identically;
/// - with probability `drop_prob` the message is lost (seeded draw);
/// - with probability `duplicate_prob` an identical duplicate is also
///   scheduled at an independently drawn delivery tick (at-least-once,
///   never exactly-once);
/// - the survivor is scheduled at `now + U[0, max_delay_ticks]`, so
///   messages overtake each other whenever a later send draws a smaller
///   delay: *reorder through bounded delay*, never unbounded.
///
/// Crash windows are shard-side faults, not link faults: shard_up()
/// reports them, and the cluster's shard simulation discards work that
/// arrives at (and withholds heartbeats from) a crashed shard. The
/// coordinator never sees this schedule -- it learns liveness through
/// heartbeat silence alone.
///
/// Delivery order is (delivery tick, schedule nonce) -- a pure function of
/// (seed, send sequence) -- and every loss is schedule- or seed-driven, so
/// the entire fault history is a pure function of (config, send sequence):
/// a replay through this transport is exactly as reproducible as the
/// perfect DirectClusterTransport while exercising a thoroughly hostile
/// network.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "serve/shard_transport.hpp"
#include "util/random.hpp"

namespace idp::test {

/// One shard crash/restart window: the shard is down -- discarding
/// arriving work, emitting no heartbeats -- for ticks in [from, until).
struct ShardOutageWindow {
  std::size_t shard = 0;
  std::uint64_t from_tick = 0;
  std::uint64_t until_tick = 0;
};

/// One bidirectional partition window: the coordinator <-> shard link is
/// cut -- both directions lose every message -- for ticks in [from, until).
struct PartitionWindow {
  std::size_t shard = 0;
  std::uint64_t from_tick = 0;
  std::uint64_t until_tick = 0;
};

/// Fault intensity of the simulated network.
struct SimNetConfig {
  std::uint64_t seed = 1;
  /// Per-message delivery delay is uniform in [0, max_delay_ticks] virtual
  /// ticks (one tick per send). 0 = in-order.
  std::uint64_t max_delay_ticks = 32;
  /// Probability a message is delivered twice.
  double duplicate_prob = 0.10;
  /// Probability a message is lost (requires the retrying fault-tolerant
  /// replay path; the no-loss replay() contract would throw).
  double drop_prob = 0.0;
  /// Shard crash/restart schedule.
  std::vector<ShardOutageWindow> crashes;
  /// Link partition schedule.
  std::vector<PartitionWindow> partitions;
};

/// Seeded reorder/delay/duplication/loss/crash/partition transport for
/// tests. Implements the full ClusterTransport vocabulary; the legacy
/// ShardTransport subset (send/poll) keeps its original no-loss,
/// drain-regardless-of-tick behaviour so the PR 6 replay path is
/// untouched when drops and schedules are left empty.
class SimNetTransport final : public serve::ClusterTransport {
 public:
  explicit SimNetTransport(SimNetConfig config = {})
      : config_(std::move(config)), rng_(config_.seed ^ kSeedDomain) {}

  // --- responses (shard -> coordinator) ------------------------------------

  void send(serve::ResponseEnvelope envelope) override {
    ++sent_;
    transmit(pending_, envelope.shard, std::move(envelope));
  }

  /// Legacy drain: delivers the next pending response regardless of its
  /// delivery tick (wire order still holds). The no-loss replay path
  /// drains everything after the fact, so maturity gating would be noise.
  bool poll(serve::ResponseEnvelope& out) override {
    if (pending_.empty()) return false;
    out = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    ++delivered_;
    return true;
  }

  /// Time-gated drain: only messages whose delivery tick has been reached.
  bool poll_ready(serve::ResponseEnvelope& out) override {
    if (!matured(pending_)) return false;
    return poll(out);
  }

  std::uint64_t sent() const override { return sent_; }
  std::uint64_t delivered() const override { return delivered_; }

  // --- virtual clock --------------------------------------------------------

  std::uint64_t now() const override { return now_; }
  void advance(std::uint64_t ticks) override { now_ += ticks; }

  // --- work dispatches (coordinator -> shard) -------------------------------

  void send_work(serve::WorkEnvelope work) override {
    transmit(work_pending_, work.shard, work);
  }

  bool poll_work(serve::WorkEnvelope& out) override {
    if (!matured(work_pending_)) return false;
    out = work_pending_.begin()->second;
    work_pending_.erase(work_pending_.begin());
    return true;
  }

  // --- heartbeats (shard -> coordinator) ------------------------------------

  void send_heartbeat(serve::HeartbeatEnvelope heartbeat) override {
    transmit(heartbeat_pending_, heartbeat.shard, heartbeat);
  }

  bool poll_heartbeat(serve::HeartbeatEnvelope& out) override {
    if (!matured(heartbeat_pending_)) return false;
    out = heartbeat_pending_.begin()->second;
    heartbeat_pending_.erase(heartbeat_pending_.begin());
    return true;
  }

  // --- fault schedule -------------------------------------------------------

  bool shard_up(std::size_t shard) const override {
    for (const ShardOutageWindow& w : config_.crashes) {
      if (w.shard == shard && in_window(now_, w.from_tick, w.until_tick)) {
        return false;
      }
    }
    return true;
  }

  std::uint64_t dropped() const override { return dropped_; }

  /// Messages that were scheduled twice.
  std::uint64_t duplicated() const { return duplicated_; }

 private:
  /// Seed-domain tag: a SimNet sharing a seed with any other harness
  /// component still draws an independent stream.
  static constexpr std::uint64_t kSeedDomain = 0x082efa98ec4e6c89ULL;

  using Key = std::pair<std::uint64_t, std::uint64_t>;

  static bool in_window(std::uint64_t tick, std::uint64_t from,
                        std::uint64_t until) {
    return tick >= from && tick < until;
  }

  bool partitioned(std::size_t shard, std::uint64_t tick) const {
    for (const PartitionWindow& w : config_.partitions) {
      if (w.shard == shard && in_window(tick, w.from_tick, w.until_tick)) {
        return true;
      }
    }
    return false;
  }

  template <typename Message>
  bool matured(const std::map<Key, Message>& queue) const {
    return !queue.empty() && queue.begin()->first.first <= now_;
  }

  /// The shared send pipeline: clock tick, partition loss (schedule-based,
  /// no draw), seeded drop, seeded duplication, seeded delay.
  template <typename Message>
  void transmit(std::map<Key, Message>& queue, std::size_t shard,
                Message message) {
    ++now_;
    if (partitioned(shard, now_)) {
      ++dropped_;
      return;
    }
    if (config_.drop_prob > 0.0 &&
        rng_.uniform(0.0, 1.0) < config_.drop_prob) {
      ++dropped_;
      return;
    }
    if (config_.duplicate_prob > 0.0 &&
        rng_.uniform(0.0, 1.0) < config_.duplicate_prob) {
      ++duplicated_;
      schedule(queue, message);  // the duplicate draws its own delivery tick
    }
    schedule(queue, std::move(message));
  }

  template <typename Message>
  void schedule(std::map<Key, Message>& queue, Message message) {
    const std::uint64_t at = now_ + rng_.index(config_.max_delay_ticks + 1);
    queue.emplace(Key(at, nonce_++), std::move(message));
  }

  SimNetConfig config_;
  util::Rng rng_;
  std::uint64_t now_ = 0;
  std::uint64_t nonce_ = 0;
  /// (delivery tick, schedule nonce) -> message; map order IS wire order.
  std::map<Key, serve::ResponseEnvelope> pending_;
  std::map<Key, serve::WorkEnvelope> work_pending_;
  std::map<Key, serve::HeartbeatEnvelope> heartbeat_pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace idp::test
