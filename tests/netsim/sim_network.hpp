/// \file sim_network.hpp
/// The simulated-network harness: a seeded virtual transport between the
/// service shards and the coordinator that injects the distribution faults
/// the merge contract must survive -- message reorder, bounded delay and
/// duplication -- deterministically per seed (FoundationDB-style
/// deterministic-simulation testing, scaled to this repo's shard layer).
///
/// Fault model:
/// - every send() advances a virtual clock by one tick and schedules the
///   message at `now + U[0, max_delay_ticks]` (seeded uniform draw), so
///   messages overtake each other whenever a later send draws a smaller
///   delay: *reorder through bounded delay*, never unbounded;
/// - with probability `duplicate_prob` a send also schedules an identical
///   duplicate at an independently drawn delivery tick (at-least-once
///   delivery, never exactly-once);
/// - no loss: the ResultMerger's finish() contract treats loss as an
///   error, and retransmission is future work (see shard_transport.hpp).
///
/// Delivery order is (delivery tick, schedule nonce) -- a pure function of
/// (seed, send sequence) -- so a replay through this transport is exactly
/// as reproducible as the perfect DirectTransport, while exercising a
/// thoroughly hostile arrival order.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "serve/shard_transport.hpp"
#include "util/random.hpp"

namespace idp::test {

/// Fault intensity of the simulated network.
struct SimNetConfig {
  std::uint64_t seed = 1;
  /// Per-message delivery delay is uniform in [0, max_delay_ticks] virtual
  /// ticks (one tick per send). 0 = in-order.
  std::uint64_t max_delay_ticks = 32;
  /// Probability a message is delivered twice.
  double duplicate_prob = 0.10;
};

/// Seeded reorder/delay/duplication transport for tests.
class SimNetTransport final : public serve::ShardTransport {
 public:
  explicit SimNetTransport(SimNetConfig config = {})
      : config_(config), rng_(config.seed ^ kSeedDomain) {}

  void send(serve::ResponseEnvelope envelope) override {
    ++sent_;
    ++now_;
    if (config_.duplicate_prob > 0.0 &&
        rng_.uniform(0.0, 1.0) < config_.duplicate_prob) {
      ++duplicated_;
      schedule(envelope);  // the duplicate draws its own delivery tick
    }
    schedule(std::move(envelope));
  }

  bool poll(serve::ResponseEnvelope& out) override {
    if (pending_.empty()) return false;
    out = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    ++delivered_;
    return true;
  }

  std::uint64_t sent() const override { return sent_; }
  std::uint64_t delivered() const override { return delivered_; }

  /// Messages that were scheduled twice.
  std::uint64_t duplicated() const { return duplicated_; }

 private:
  /// Seed-domain tag: a SimNet sharing a seed with any other harness
  /// component still draws an independent stream.
  static constexpr std::uint64_t kSeedDomain = 0x082efa98ec4e6c89ULL;

  void schedule(serve::ResponseEnvelope envelope) {
    const std::uint64_t at = now_ + rng_.index(config_.max_delay_ticks + 1);
    pending_.emplace(std::pair(at, nonce_++), std::move(envelope));
  }

  SimNetConfig config_;
  util::Rng rng_;
  std::uint64_t now_ = 0;
  std::uint64_t nonce_ = 0;
  /// (delivery tick, schedule nonce) -> envelope; map order IS wire order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, serve::ResponseEnvelope>
      pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicated_ = 0;
};

}  // namespace idp::test
