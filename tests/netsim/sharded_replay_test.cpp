/// \file sharded_replay_test.cpp
/// The ShardedReplay driver -- the acceptance criterion of the sharded
/// service scale-out: one recorded mixed traffic log (panel scans,
/// quantified reads, QC checks; degradation and scheduled recalibration
/// epochs live) replayed through a K-shard cluster under an injected
/// reorder/delay/duplication fault schedule must merge into a global log
/// *bitwise identical* to single-node Scheduler execution, across
/// K in {1, 2, 4}, five seeds and parallelism {1, 2, hardware}. Routing,
/// lease-subdomain disjointness and consistent-hash stability ride along.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/determinism.hpp"
#include "netsim/sim_network.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard_coordinator.hpp"
#include "serve/traffic.hpp"

namespace idp {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 1234, 0xfeedbeef, 2026};
constexpr std::size_t kShardCounts[] = {1, 2, 4};
constexpr std::size_t kLevels[] = {1, 2, 0};  // 0 = hardware concurrency

/// One shared store: campaigns are keyed by (target, protocol) and the
/// service seed lives in the engine, so every seed variant reuses it.
quant::CalibrationStore& shared_store() {
  static quant::CalibrationStore store = [] {
    quant::CampaignConfig campaign;
    campaign.seed = 626262;
    campaign.calibration_points = 4;
    campaign.blank_measurements = 4;
    campaign.ca_duration_s = 6.0;
    return quant::CalibrationStore(campaign);
  }();
  return store;
}

serve::ServiceConfig service_config(std::uint64_t seed) {
  serve::ServiceConfig config;
  config.panel = {bio::TargetId::kGlucose, bio::TargetId::kLactate};
  config.engine_seed = seed;
  fault::DegradationParams aging;
  aging.fouling_rate_per_day = 0.05;
  aging.enzyme_decay_per_day = 0.02;
  aging.seed = seed ^ 0x5ea11;
  config.degradation = fault::DegradationModel(aging);
  config.recalibration_interval_days = 4.0;
  return config;
}

/// One fixed mixed log: 24 requests over 9 days (crossing two epoch
/// boundaries) from 6 sessions across 3 tenants. The *service* seed is
/// what varies per sweep point.
const std::vector<serve::Request>& traffic_log() {
  static const std::vector<serve::Request> log = [] {
    serve::DiagnosticsService reference(shared_store(), service_config(1));
    serve::TrafficSpec spec;
    spec.requests = 24;
    spec.sessions = 6;
    spec.tenants = 3;
    spec.seed = 11;
    spec.duration_h = 9.0 * 24.0;
    return serve::synthesize_traffic(spec, reference);
  }();
  return log;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::uint64_t digest_responses(const std::vector<serve::Response>& responses) {
  test::BitDigest d;
  test::fold(d, std::span<const serve::Response>(responses));
  return d.value();
}

std::uint64_t single_node_digest(std::uint64_t seed) {
  serve::DiagnosticsService service(shared_store(), service_config(seed));
  serve::Scheduler scheduler(service);
  return digest_responses(scheduler.replay(traffic_log(), 1));
}

class ShardedReplay : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedReplay, MergedLogIsBitwiseIdenticalToSingleNodeUnderFaults) {
  const std::size_t shards = GetParam();
  const std::vector<serve::Request>& log = traffic_log();

  std::uint64_t duplicates_seen = 0;
  std::uint64_t reorder_seen = 0;
  std::vector<std::uint64_t> baselines;
  for (const std::uint64_t seed : kSeeds) {
    const std::uint64_t baseline = single_node_digest(seed);
    baselines.push_back(baseline);
    for (const std::size_t parallelism : kLevels) {
      serve::ShardClusterConfig cluster_config;
      cluster_config.router.shards = shards;
      serve::ShardCluster cluster(shared_store(), service_config(seed),
                                  cluster_config);

      // The fault schedule varies with every sweep point; the merged log
      // must not.
      test::SimNetConfig net;
      net.seed = seed * 1000 + shards * 10 + parallelism;
      net.max_delay_ticks = 32;
      net.duplicate_prob = 0.15;
      test::SimNetTransport transport(net);

      const serve::ShardedReplayResult result =
          cluster.replay(log, parallelism, &transport);
      EXPECT_EQ(digest_responses(result.responses), baseline)
          << "K=" << shards << " seed=" << seed
          << " parallelism=" << parallelism
          << " diverged from single-node execution";

      EXPECT_EQ(std::accumulate(result.per_shard_requests.begin(),
                                result.per_shard_requests.end(),
                                std::size_t{0}),
                log.size());
      EXPECT_GE(result.merge.delivered, log.size());
      duplicates_seen += result.merge.duplicates_seen;
      reorder_seen += result.merge.max_reorder_distance;
    }
  }
  // The harness must actually have been hostile: across 15 fault
  // schedules at 15% duplication, duplicates (and, for K >= 1, reorder)
  // must have been injected and survived.
  EXPECT_GT(duplicates_seen, 0u);
  EXPECT_GT(reorder_seen, 0u);

  // Different service seeds must produce different logs (otherwise the
  // equality above would be vacuous).
  for (std::size_t i = 1; i < baselines.size(); ++i) {
    EXPECT_NE(baselines[i], baselines[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedReplay,
                         ::testing::ValuesIn(kShardCounts),
                         [](const auto& param_info) {
                           return "K" + std::to_string(param_info.param);
                         });

TEST(ShardCluster, LeaseSubdomainsAreDisjointAcrossShards) {
  serve::ShardClusterConfig config;
  config.router.shards = 4;
  serve::ShardCluster cluster(shared_store(), service_config(1), config);
  const serve::LeaseCensus census = cluster.lease_census(traffic_log());
  EXPECT_TRUE(census.disjoint);
  ASSERT_EQ(census.per_shard.size(), 4u);
  std::uint64_t requests = 0, sessions = 0;
  for (const serve::ShardLeaseDomain& domain : census.per_shard) {
    requests += domain.requests;
    sessions += domain.sessions;
    if (domain.requests > 0) {
      EXPECT_GE(domain.first_run_id, serve::kServeRunDomain);
      EXPECT_LT(domain.last_run_id, serve::kServeRecalDomain);
    }
  }
  EXPECT_EQ(requests, traffic_log().size());
  EXPECT_EQ(sessions, 6u) << "every session is owned by exactly one shard";
}

TEST(ShardRouter, RoutingIsDeterministicAndSessionSticky) {
  const serve::ShardRouter router(serve::ShardRouterConfig{.shards = 4});
  const serve::ShardRouter same(serve::ShardRouterConfig{.shards = 4});
  for (const serve::Request& r : traffic_log()) {
    EXPECT_EQ(router.route(r.session), same.route(r.session));
    EXPECT_LT(router.route(r.session), 4u);
  }
}

TEST(ShardRouter, ConsistentHashingMovesFewKeysWhenGrowing) {
  // hash % K remaps ~(K-1)/K of all keys on K -> K+1; the ring must do an
  // order of magnitude better (expected ~1/(K+1), asserted loosely).
  const serve::ShardRouter four(serve::ShardRouterConfig{.shards = 4});
  const serve::ShardRouter five(serve::ShardRouterConfig{.shards = 5});
  constexpr std::size_t kKeys = 4000;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    serve::SessionKey key;
    key.tenant = static_cast<std::uint32_t>(i % 7);
    key.patient = i;
    key.device = static_cast<std::uint32_t>(i % 3);
    const std::size_t before = four.route(key);
    const std::size_t after = five.route(key);
    if (after != before) {
      ++moved;
      EXPECT_EQ(after, 4u) << "keys may only move to the new shard";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys / 2) << "resharding moved far too many keys";
}

TEST(ShardRouter, SpreadsLoadAcrossShards) {
  const serve::ShardRouter router(
      serve::ShardRouterConfig{.shards = 8, .vnodes = 128});
  std::vector<std::size_t> counts(8, 0);
  for (std::size_t i = 0; i < 8000; ++i) {
    serve::SessionKey key;
    key.tenant = static_cast<std::uint32_t>(i % 11);
    key.patient = i * 131;
    key.device = static_cast<std::uint32_t>(i % 2);
    ++counts[router.route(key)];
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], 8000u / 8 / 4)
        << "shard " << s << " is starved (got " << counts[s] << " of 8000)";
    EXPECT_LT(counts[s], 8000u / 8 * 4)
        << "shard " << s << " is overloaded (got " << counts[s] << " of 8000)";
  }
}

TEST(ShardRouter, ValidatesConfiguration) {
  EXPECT_THROW(serve::ShardRouter(serve::ShardRouterConfig{.shards = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      serve::ShardRouter(serve::ShardRouterConfig{.shards = 1, .vnodes = 0}),
      std::invalid_argument);
}

TEST(ResultMerger, DetectsLossLoudly) {
  serve::ResultMerger merger;
  serve::ResponseEnvelope e;
  e.shard = 0;
  e.sequence = 0;
  e.response.request_id = 7;
  merger.accept(e);
  EXPECT_THROW(merger.finish(2), std::invalid_argument)
      << "a short merge must throw, never return a truncated log";
}

TEST(ShardClusterLive, LiveShardedServingMatchesMergedReplayBitwise) {
  // Live mode end-to-end: the same log pushed through K=2 live shard
  // schedulers (hardware workers each, out-of-order completion) must
  // produce the replay's exact response set, and the cross-shard merged
  // telemetry must account for every request.
  const std::vector<serve::Request>& log = traffic_log();
  serve::ShardClusterConfig config;
  config.router.shards = 2;
  config.scheduler.queue.capacity = 64;

  serve::ShardCluster replay_cluster(shared_store(), service_config(3),
                                     config);
  const std::uint64_t replay_digest =
      digest_responses(replay_cluster.replay(log, 1).responses);

  serve::ShardCluster live(shared_store(), service_config(3), config);
  const std::string dir = ::testing::TempDir();
  {
    serve::CsvResultSink sink(dir + "/sharded_live_responses.csv",
                              dir + "/sharded_live_telemetry.csv");
    live.start(&sink);
    for (const serve::Request& r : log) {
      EXPECT_EQ(live.submit_wait(r), serve::Admission::kAccepted);
    }
    live.drain_and_stop();
    EXPECT_EQ(live.completed(), log.size());
  }

  // Cross-shard merged telemetry must account for every request.
  std::uint64_t telemetry_total = 0;
  for (std::size_t p = 0; p < serve::kPriorityCount; ++p) {
    const serve::PriorityTelemetry t =
        live.telemetry(static_cast<serve::Priority>(p));
    EXPECT_EQ(t.queue_wait.count(), t.completed);
    EXPECT_EQ(t.service_time.count(), t.completed);
    telemetry_total += t.completed;
  }
  EXPECT_EQ(telemetry_total, log.size());

  // The live cluster's canonical response CSV must be byte-identical to
  // the CSV of the merged replay (the sink sorts by request id at close,
  // the merger by construction).
  serve::ShardCluster again(shared_store(), service_config(3), config);
  const serve::ShardedReplayResult merged = again.replay(log, 0);
  EXPECT_EQ(digest_responses(merged.responses), replay_digest);
  serve::write_responses_csv(merged.responses, dir + "/sharded_replay.csv");
  EXPECT_EQ(slurp(dir + "/sharded_live_responses.csv"),
            slurp(dir + "/sharded_replay.csv"));

  EXPECT_THROW(live.start(), std::invalid_argument)
      << "a drained cluster must not restart";
}

}  // namespace
}  // namespace idp
