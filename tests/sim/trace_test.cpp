#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace idp::sim {
namespace {

TEST(Trace, PushAndAccess) {
  Trace t;
  t.push(0.1, 1.0);
  t.push(0.2, 2.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.time_at(1), 0.2);
  EXPECT_DOUBLE_EQ(t.value_at(1), 2.0);
}

TEST(Trace, RequiresIncreasingTime) {
  Trace t;
  t.push(1.0, 0.0);
  EXPECT_THROW(t.push(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.push(0.5, 0.0), std::invalid_argument);
}

TEST(Trace, InterpolationBetweenSamples) {
  Trace t;
  t.push(0.0, 0.0);
  t.push(1.0, 10.0);
  EXPECT_DOUBLE_EQ(t.interpolate(0.5), 5.0);
}

TEST(Trace, WindowedMean) {
  Trace t;
  for (int i = 0; i < 10; ++i) t.push(i, i);
  EXPECT_DOUBLE_EQ(t.mean_in_window(5.0, 9.0), 7.0);
  EXPECT_TRUE(t.window(100.0, 200.0).empty());
}

TEST(Trace, CsvRoundTrip) {
  Trace t;
  t.push(0.1, 1e-9);
  t.push(0.2, 2e-9);
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  t.to_csv(path, "current_A");
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,current_A");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
}

TEST(CvCurve, SegmentsSplitAtVertex) {
  CvCurve c;
  // Down sweep then up sweep.
  double t = 0.0;
  for (double e = 0.1; e > -0.5; e -= 0.01) c.push(t += 1.0, e, -1e-9);
  for (double e = -0.5; e < 0.1; e += 0.01) c.push(t += 1.0, e, 1e-9);
  const auto segs = c.segments();
  ASSERT_GE(segs.size(), 2u);
  // First segment is cathodic (potential decreasing).
  EXPECT_LT(c.potential()[segs[0].last - 1], c.potential()[segs[0].first]);
}

TEST(CvCurve, SingleSweepIsOneSegment) {
  CvCurve c;
  double t = 0.0;
  for (double e = 0.1; e > -0.5; e -= 0.01) c.push(t += 1.0, e, 0.0);
  EXPECT_EQ(c.segments().size(), 1u);
}

TEST(CvCurve, CsvHasThreeColumns) {
  CvCurve c;
  c.push(0.1, 0.05, 1e-9);
  const std::string path = ::testing::TempDir() + "/cv_test.csv";
  c.to_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,potential_V,current_A");
}

}  // namespace
}  // namespace idp::sim
