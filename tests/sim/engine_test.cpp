#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bio/library.hpp"
#include "dsp/peaks.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace idp::sim {
namespace {

using namespace idp::util::literals;

afe::AnalogFrontEnd lab_frontend(std::uint64_t seed = 7) {
  afe::AfeConfig c;
  c.tia = afe::lab_grade_tia();
  c.adc = afe::AdcSpec{.bits = 16, .v_low = -10.0, .v_high = 10.0,
                       .sample_rate = 10.0};
  c.seed = seed;
  return afe::AnalogFrontEnd(c);
}

EngineConfig quiet_config() {
  EngineConfig c;
  c.sensor_noise = false;
  return c;
}

TEST(Engine, ChronoamperometryProducesSampledTrace) {
  MeasurementEngine engine(quiet_config());
  auto probe = bio::make_probe(bio::TargetId::kGlucose);
  probe->set_bulk_concentration("glucose", 2.0);
  afe::AnalogFrontEnd fe = lab_frontend();
  ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 20.0;
  p.sample_rate = 10.0;
  const Trace t =
      engine.run_chronoamperometry(Channel{probe.get(), nullptr}, p, fe);
  EXPECT_NEAR(static_cast<double>(t.size()), 200.0, 3.0);
  EXPECT_GT(t.time().front(), 0.0);
  EXPECT_LE(t.time().back(), 20.0 + 0.2);
}

TEST(Engine, SamplingInstantsAreExactGridMultiples) {
  // The sampling clock derives instants from an integer counter, so the
  // k-th sample sits at exactly (k+1)*period even over long runs (a naive
  // `next += period` accumulator drifts by an ulp per sample).
  MeasurementEngine engine(quiet_config());
  auto probe = bio::make_probe(bio::TargetId::kGlucose);
  probe->set_bulk_concentration("glucose", 1.0);
  afe::AnalogFrontEnd fe = lab_frontend();
  ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 120.0;
  p.sample_rate = 10.0;
  const Trace t =
      engine.run_chronoamperometry(Channel{probe.get(), nullptr}, p, fe);
  ASSERT_GE(t.size(), 1000u);
  const double period = 1.0 / p.sample_rate;
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ(t.time_at(i), static_cast<double>(i + 1) * period);
  }
}

TEST(Engine, CurrentRisesAfterInjection) {
  MeasurementEngine engine(quiet_config());
  auto probe = bio::make_probe(bio::TargetId::kGlucose);
  afe::AnalogFrontEnd fe = lab_frontend();
  ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 90.0;
  const InjectionEvent inj{10.0, "glucose", 2.0};
  const Trace t = engine.run_chronoamperometry(Channel{probe.get(), nullptr},
                                               p, fe, {&inj, 1});
  const double before = t.mean_in_window(5.0, 9.5);
  const double after = t.mean_in_window(80.0, 90.0);
  EXPECT_GT(after, before + 50e-9);  // ~2 mM glucose ~= 127 nA
}

TEST(Engine, DeterministicWithSameSeeds) {
  EngineConfig cfg;
  cfg.seed = 42;
  MeasurementEngine e1(cfg), e2(cfg);
  auto p1 = bio::make_probe(bio::TargetId::kGlucose);
  auto p2 = bio::make_probe(bio::TargetId::kGlucose);
  p1->set_bulk_concentration("glucose", 1.0);
  p2->set_bulk_concentration("glucose", 1.0);
  afe::AnalogFrontEnd f1 = lab_frontend(3), f2 = lab_frontend(3);
  ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 10.0;
  const Trace t1 = e1.run_chronoamperometry(Channel{p1.get(), nullptr}, p, f1);
  const Trace t2 = e2.run_chronoamperometry(Channel{p2.get(), nullptr}, p, f2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.value_at(i), t2.value_at(i));
  }
}

TEST(Engine, RepeatedRunsDiffer) {
  // Each run consumes fresh noise (needed for honest Eq. 5 blanks).
  MeasurementEngine engine{EngineConfig{}};
  auto probe = bio::make_probe(bio::TargetId::kGlucose);
  afe::AnalogFrontEnd fe = lab_frontend();
  ChronoamperometryProtocol p;
  p.potential = 550_mV;
  p.duration = 10.0;
  const Trace t1 =
      engine.run_chronoamperometry(Channel{probe.get(), nullptr}, p, fe);
  const Trace t2 =
      engine.run_chronoamperometry(Channel{probe.get(), nullptr}, p, fe);
  EXPECT_NE(t1.value_at(5), t2.value_at(5));
}

TEST(Engine, CvSweepsTheProgrammedWindow) {
  MeasurementEngine engine(quiet_config());
  auto probe = bio::make_probe(bio::TargetId::kCholesterol);
  afe::AnalogFrontEnd fe = lab_frontend();
  CyclicVoltammetryProtocol p;
  p.e_start = 0.1;
  p.e_vertex = -0.65;
  p.scan_rate = 20_mV_per_s;
  const CvCurve c =
      engine.run_cyclic_voltammetry(Channel{probe.get(), nullptr}, p, fe);
  EXPECT_NEAR(idp::util::max_value(c.potential()), 0.1, 0.02);
  EXPECT_NEAR(idp::util::min_value(c.potential()), -0.65, 0.02);
  EXPECT_GE(c.segments().size(), 2u);
}

TEST(Engine, CvShowsCholesterolReductionWave) {
  MeasurementEngine engine(quiet_config());
  auto probe = bio::make_probe(bio::TargetId::kCholesterol);
  probe->set_bulk_concentration("cholesterol", 0.045);
  afe::AnalogFrontEnd fe = lab_frontend();
  CyclicVoltammetryProtocol p;
  p.e_start = 0.1;
  p.e_vertex = -0.65;
  p.scan_rate = 20_mV_per_s;
  const CvCurve c =
      engine.run_cyclic_voltammetry(Channel{probe.get(), nullptr}, p, fe);
  const double r = dsp::reduction_response_at(c, -0.400, 0.05);
  EXPECT_GT(r, 5e-9);  // ~11 nA at 45 uM by Table III sensitivity
}

TEST(Engine, ChargingCurrentAddsHysteresis) {
  EngineConfig cfg = quiet_config();
  MeasurementEngine engine(cfg);
  auto probe = bio::make_probe(bio::TargetId::kCholesterol);
  const chem::Electrode we(chem::ElectrodeRole::kWorking,
                           chem::ElectrodeMaterial::kGold,
                           chem::ElectrodeGeometry{0.23e-6},
                           chem::Nanostructure::kCarbonNanotube);
  afe::AnalogFrontEnd fe = lab_frontend();
  CyclicVoltammetryProtocol p;
  p.e_start = 0.1;
  p.e_vertex = -0.3;
  p.scan_rate = 20_mV_per_s;
  const CvCurve with_dl =
      engine.run_cyclic_voltammetry(Channel{probe.get(), &we}, p, fe);
  // At a potential where no faradaic wave exists, forward and reverse
  // currents differ by ~2 * Cdl * v.
  double i_fwd = 0.0, i_rev = 0.0;
  const auto segs = with_dl.segments();
  ASSERT_GE(segs.size(), 2u);
  for (std::size_t i = segs[0].first; i < segs[0].last; ++i) {
    if (std::fabs(with_dl.potential()[i] - (-0.05)) < 0.01) {
      i_fwd = with_dl.current()[i];
    }
  }
  for (std::size_t i = segs[1].first; i < segs[1].last; ++i) {
    if (std::fabs(with_dl.potential()[i] - (-0.05)) < 0.01) {
      i_rev = with_dl.current()[i];
    }
  }
  const double expected_gap = 2.0 * we.charging_current(20_mV_per_s);
  EXPECT_NEAR(i_rev - i_fwd, expected_gap, 0.5 * expected_gap);
}

TEST(Engine, PanelScanSequencesChannels) {
  MeasurementEngine engine(quiet_config());
  auto glucose = bio::make_probe(bio::TargetId::kGlucose);
  auto chol = bio::make_probe(bio::TargetId::kCholesterol);
  glucose->set_bulk_concentration("glucose", 2.0);
  chol->set_bulk_concentration("cholesterol", 0.045);

  afe::AnalogFrontEnd fe1 = lab_frontend(1), fe2 = lab_frontend(2);
  std::vector<Channel> channels{Channel{glucose.get(), nullptr},
                                Channel{chol.get(), nullptr}};
  ChronoamperometryProtocol ca;
  ca.potential = 550_mV;
  ca.duration = 10.0;
  CyclicVoltammetryProtocol cv;
  cv.e_start = 0.1;
  cv.e_vertex = -0.65;
  cv.scan_rate = 20_mV_per_s;
  std::vector<ChannelProtocol> protocols{ca, cv};
  std::vector<afe::AnalogFrontEnd*> fes{&fe1, &fe2};
  afe::AnalogMux mux(afe::MuxSpec{});

  const PanelScanResult result =
      engine.run_panel(channels, protocols, fes, mux);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].technique, bio::Technique::kChronoamperometry);
  EXPECT_EQ(result.entries[1].technique, bio::Technique::kCyclicVoltammetry);
  // Sequential: entry 1 starts after entry 0 stops.
  EXPECT_GE(result.entries[1].start_time, result.entries[0].stop_time);
  // Total time ~ 10 s CA + 75 s CV + settling.
  EXPECT_NEAR(result.total_time, 85.0, 2.0);
}

TEST(Engine, PanelRequiresMatchingSpans) {
  MeasurementEngine engine(quiet_config());
  auto probe = bio::make_probe(bio::TargetId::kGlucose);
  afe::AnalogFrontEnd fe = lab_frontend();
  std::vector<Channel> channels{Channel{probe.get(), nullptr}};
  std::vector<ChannelProtocol> protocols;  // wrong size
  std::vector<afe::AnalogFrontEnd*> fes{&fe};
  afe::AnalogMux mux(afe::MuxSpec{});
  EXPECT_THROW(engine.run_panel(channels, protocols, fes, mux),
               std::invalid_argument);
}

TEST(Engine, ProtocolDurationHelper) {
  ChronoamperometryProtocol ca;
  ca.duration = 42.0;
  EXPECT_DOUBLE_EQ(protocol_duration(ca), 42.0);
  CyclicVoltammetryProtocol cv;
  cv.e_start = 0.1;
  cv.e_vertex = -0.9;
  cv.scan_rate = 0.02;
  cv.cycles = 2;
  EXPECT_NEAR(protocol_duration(cv), 200.0, 1e-9);
}

}  // namespace
}  // namespace idp::sim
