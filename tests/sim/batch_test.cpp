/// \file batch_test.cpp
/// BatchRunner semantics (index coverage, exception policy, map ordering)
/// plus the seeded-vs-counter run-id equivalence. The parallelism-
/// invariance sweep of the panel runtime lives in
/// tests/determinism/determinism_sweep_test.cpp.

#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "afe/frontend.hpp"
#include "afe/mux.hpp"
#include "bio/library.hpp"
#include "sim/engine.hpp"

namespace idp::sim {
namespace {

TEST(BatchRunner, DefaultsToHardwareConcurrency) {
  const BatchRunner runner;
  EXPECT_GE(runner.parallelism(), 1u);
}

TEST(BatchRunner, RunsEveryIndexExactlyOnce) {
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(97);
    const BatchRunner runner(parallelism);
    runner.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(BatchRunner, MapCollectsResultsInIndexOrder) {
  const BatchRunner runner(4);
  const std::vector<int> out = runner.map<int>(
      50, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(BatchRunner, RethrowsLowestIndexExceptionAfterRunningAllJobs) {
  // Both execution paths share the contract: every job runs even when an
  // earlier one throws, and the lowest-index exception wins.
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    const BatchRunner runner(parallelism);
    std::atomic<int> executed{0};
    try {
      runner.run(32, [&](std::size_t i) {
        executed.fetch_add(1);
        if (i == 7 || i == 21) {
          throw std::runtime_error("job " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception at parallelism " << parallelism;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 7");
    }
    EXPECT_EQ(executed.load(), 32);
  }
}

TEST(BatchRunner, ZeroJobsIsANoop) {
  const BatchRunner runner(4);
  runner.run(0, [](std::size_t) { FAIL() << "job must not run"; });
}

// ---------------------------------------------------------------------------
// Run-id semantics
// ---------------------------------------------------------------------------

afe::AnalogFrontEnd lab_frontend(std::uint64_t seed) {
  afe::AfeConfig c;
  c.tia = afe::lab_grade_tia();
  c.adc = afe::AdcSpec{.bits = 16, .v_low = -10.0, .v_high = 10.0,
                       .sample_rate = 10.0};
  c.seed = seed;
  return afe::AnalogFrontEnd(c);
}

TEST(BatchPanel, SeededRunsMatchCounterBasedRuns) {
  // The explicit-run-id API consumes ids exactly as the legacy counter
  // would: run k of a fresh engine uses id k.
  auto p1 = bio::make_probe(bio::TargetId::kGlucose);
  auto p2 = bio::make_probe(bio::TargetId::kGlucose);
  p1->set_bulk_concentration("glucose", 1.0);
  p2->set_bulk_concentration("glucose", 1.0);

  EngineConfig cfg;
  cfg.seed = 7;
  MeasurementEngine legacy(cfg), seeded(cfg);
  ChronoamperometryProtocol p;
  p.potential = 0.55;
  p.duration = 5.0;

  afe::AnalogFrontEnd f1 = lab_frontend(3), f2 = lab_frontend(3);
  const Trace t1 = legacy.run_chronoamperometry(Channel{p1.get(), nullptr}, p, f1);
  const Trace t2 = seeded.run_chronoamperometry_seeded(
      seeded.reserve_run_ids(1) + 1, Channel{p2.get(), nullptr}, p, f2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_DOUBLE_EQ(t1.value_at(i), t2.value_at(i));
  }
}

}  // namespace
}  // namespace idp::sim
