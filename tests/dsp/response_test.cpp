#include "dsp/response.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace idp::dsp {
namespace {

/// First-order step response with time constant tau starting at t0.
sim::Trace first_order_step(double t0, double tau, double amplitude,
                            double duration, double fs = 10.0) {
  sim::Trace t;
  for (double x = 1.0 / fs; x < duration; x += 1.0 / fs) {
    const double v =
        x < t0 ? 0.0 : amplitude * (1.0 - std::exp(-(x - t0) / tau));
    t.push(x, v);
  }
  return t;
}

TEST(StepResponse, T90OfFirstOrderIs2Point3Tau) {
  const double tau = 13.0;
  const sim::Trace t = first_order_step(10.0, tau, 100e-9, 120.0);
  const StepResponse r = analyze_step(t, 10.0, 10.0);
  ASSERT_TRUE(r.valid);
  // t90 = ln(10) * tau ~= 2.303 tau, relative to the *true* steady state;
  // the finite-window steady-state estimate biases slightly low.
  EXPECT_NEAR(r.t90, 2.303 * tau, 0.15 * 2.303 * tau);
}

TEST(StepResponse, BaselineAndSteadyState) {
  const sim::Trace t = first_order_step(10.0, 5.0, 50e-9, 80.0);
  const StepResponse r = analyze_step(t, 10.0, 10.0);
  EXPECT_NEAR(r.baseline, 0.0, 1e-12);
  EXPECT_NEAR(r.steady_state, 50e-9, 1e-9);
}

TEST(StepResponse, TransientTimeNearStepForFirstOrder) {
  // dV/dt of a first-order response peaks immediately after the event.
  const sim::Trace t = first_order_step(10.0, 13.0, 100e-9, 120.0);
  const StepResponse r = analyze_step(t, 10.0, 10.0);
  EXPECT_LT(r.transient_time, 5.0);
}

TEST(StepResponse, InvalidWhenNoStep) {
  sim::Trace t;
  for (double x = 0.1; x < 50.0; x += 0.1) t.push(x, 42e-9);
  const StepResponse r = analyze_step(t, 10.0, 5.0);
  EXPECT_FALSE(r.valid);
}

TEST(StepResponse, FallingStepHandled) {
  const double tau = 8.0;
  sim::Trace t;
  for (double x = 0.1; x < 80.0; x += 0.1) {
    const double v =
        x < 10.0 ? 100e-9 : 100e-9 * std::exp(-(x - 10.0) / tau);
    t.push(x, v);
  }
  const StepResponse r = analyze_step(t, 10.0, 5.0);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.steady_state, 10e-9);
  EXPECT_NEAR(r.t90, 2.303 * tau, 0.2 * 2.303 * tau);
}

TEST(RecoveryTime, ReturnsToBaseline) {
  const double tau = 5.0;
  sim::Trace t;
  for (double x = 0.1; x < 80.0; x += 0.1) {
    const double v =
        x < 10.0 ? 100e-9 : 100e-9 * std::exp(-(x - 10.0) / tau);
    t.push(x, v);
  }
  const double rec = recovery_time(t, 10.0, 0.0, 0.1);
  // exp(-t/tau) = 0.1 at t = 2.3 tau.
  EXPECT_NEAR(rec, 2.303 * tau, 0.2 * 2.303 * tau);
}

TEST(RecoveryTime, NegativeWhenNeverRecovers) {
  sim::Trace t;
  for (double x = 0.1; x < 30.0; x += 0.1) t.push(x, 100e-9);
  EXPECT_LT(recovery_time(t, 10.0, 0.0, 0.05), 0.0);
}

TEST(Throughput, CombinesResponseAndRecovery) {
  // Section II-B: samples per unit time from response + recovery.
  EXPECT_NEAR(sample_throughput(30.0, 30.0), 1.0 / 60.0, 1e-12);
  EXPECT_THROW(sample_throughput(0.0, 10.0), std::invalid_argument);
}

/// Property: t90 grows monotonically with tau.
class T90Monotone : public ::testing::TestWithParam<double> {};

TEST_P(T90Monotone, TracksTau) {
  const double tau = GetParam();
  const sim::Trace t = first_order_step(5.0, tau, 100e-9, 30.0 + 6.0 * tau);
  const StepResponse r = analyze_step(t, 5.0, 5.0);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.t90, 1.8 * tau);
  EXPECT_LT(r.t90, 3.2 * tau);
}

INSTANTIATE_TEST_SUITE_P(Taus, T90Monotone,
                         ::testing::Values(2.0, 5.0, 13.0, 25.0));

}  // namespace
}  // namespace idp::dsp
