#include "dsp/smoothing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace idp::dsp {
namespace {

TEST(MovingAverage, FlattensConstant) {
  const std::vector<double> xs(20, 3.0);
  const auto out = moving_average(xs, 3);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(MovingAverage, ReducesNoiseVariance) {
  idp::util::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.gaussian());
  const auto out = moving_average(xs, 4);
  EXPECT_LT(idp::util::stddev(out), 0.5 * idp::util::stddev(xs));
}

TEST(MovingAverage, HandlesEdges) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto out = moving_average(xs, 5);
  EXPECT_EQ(out.size(), xs.size());
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // mean of all available
}

TEST(SavitzkyGolay, PreservesQuadraticExactly) {
  std::vector<double> xs;
  for (int i = 0; i < 41; ++i) {
    const double x = i * 0.1;
    xs.push_back(2.0 * x * x - 3.0 * x + 1.0);
  }
  const auto out = savitzky_golay(xs, 5);
  for (std::size_t i = 5; i + 5 < xs.size(); ++i) {
    EXPECT_NEAR(out[i], xs[i], 1e-9);
  }
}

TEST(SavitzkyGolay, PreservesPeakBetterThanMovingAverage) {
  // A Gaussian peak: SG keeps the apex, the boxcar flattens it.
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) {
    const double x = (i - 50) / 10.0;
    xs.push_back(std::exp(-x * x));
  }
  const auto sg = savitzky_golay(xs, 7);
  const auto ma = moving_average(xs, 7);
  EXPECT_GT(sg[50], ma[50]);
  EXPECT_GT(sg[50], 0.97);
}

TEST(SavitzkyGolay, ShortInputFallsBack) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(savitzky_golay(xs, 5).size(), xs.size());
}

TEST(SavitzkyGolay, RejectsZeroWindow) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(savitzky_golay(xs, 0), std::invalid_argument);
}

TEST(Derivative, LinearSignalConstantSlope) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i * 0.5);
    y.push_back(3.0 * i * 0.5 + 1.0);
  }
  const auto d = derivative(x, y);
  for (double v : d) EXPECT_NEAR(v, 3.0, 1e-9);
}

TEST(Derivative, NonuniformSpacing) {
  const std::vector<double> x{0.0, 1.0, 3.0, 4.0};
  std::vector<double> y;
  for (double xi : x) y.push_back(xi * xi);
  const auto d = derivative(x, y);
  // central difference of x^2 across [0,3] at x=1: (9-0)/3 = 3 (exact for
  // parabola would be 2; the asymmetric stencil bias is expected)
  EXPECT_NEAR(d[1], 3.0, 1e-12);
}

TEST(Derivative, RejectsMismatch) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y{0.0};
  EXPECT_THROW(derivative(x, y), std::invalid_argument);
}

}  // namespace
}  // namespace idp::dsp
