#include "dsp/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace idp::dsp {
namespace {

/// Calibration data for a sensor with slope s, blank level b, and
/// Michaelis-Menten style saturation above `km` (km <= 0: perfectly linear).
CalibrationCurve make_curve(double s, double b, double km = 0.0,
                            double noise = 0.0, std::uint64_t seed = 1) {
  CalibrationCurve c;
  idp::util::Rng rng(seed);
  for (int i = 0; i < 8; ++i) {
    c.add_blank(b + (noise > 0.0 ? rng.gaussian(noise) : 0.0));
  }
  for (double conc : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    double v = km > 0.0 ? s * conc / (1.0 + conc / km) : s * conc;
    v += b + (noise > 0.0 ? rng.gaussian(noise) : 0.0);
    c.add_point(conc, v);
  }
  return c;
}

TEST(Calibration, BlankStatistics) {
  CalibrationCurve c;
  c.add_blank(1.0);
  c.add_blank(3.0);
  EXPECT_DOUBLE_EQ(c.blank_mean(), 2.0);
  EXPECT_NEAR(c.blank_sigma(), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(c.lod_signal(), 2.0 + 3.0 * std::sqrt(2.0), 1e-12);  // Eq. 5
}

TEST(Calibration, BlankGuards) {
  CalibrationCurve c;
  EXPECT_THROW(c.blank_mean(), std::invalid_argument);
  c.add_blank(1.0);
  EXPECT_THROW(c.blank_sigma(), std::invalid_argument);
}

TEST(Calibration, FitRecoversSlope) {
  const CalibrationCurve c = make_curve(2.0, 0.1);
  EXPECT_NEAR(c.fit().slope, 2.0, 1e-9);
  EXPECT_NEAR(c.fit().intercept, 0.1, 1e-9);
  EXPECT_NEAR(c.sensitivity(), 2.0, 1e-9);
}

TEST(Calibration, AverageSensitivityEq6) {
  // Savg = dV/dC between the measured endpoints.
  const CalibrationCurve c = make_curve(2.0, 0.0, 4.0);
  const double v_lo = 2.0 * 0.5 / (1.0 + 0.5 / 4.0);
  const double v_hi = 2.0 * 4.0 / (1.0 + 4.0 / 4.0);
  EXPECT_NEAR(c.average_sensitivity(), (v_hi - v_lo) / 3.5, 1e-9);
}

TEST(Calibration, NonlinearityZeroForLine) {
  const CalibrationCurve c = make_curve(2.0, 0.5);
  EXPECT_NEAR(c.max_nonlinearity(), 0.0, 1e-9);
}

TEST(Calibration, NonlinearityPositiveForSaturation) {
  const CalibrationCurve c = make_curve(2.0, 0.0, 3.0);
  EXPECT_GT(c.max_nonlinearity(), 0.1);  // Eq. 7
}

TEST(Calibration, LodConcentrationIs3SigmaOverS) {
  CalibrationCurve c = make_curve(2.0, 0.0);
  // Deterministic blanks at two values for a known sigma.
  CalibrationCurve c2;
  c2.add_blank(0.0);
  c2.add_blank(0.2);  // mean 0.1, sigma ~0.1414
  for (double conc : {1.0, 2.0, 3.0}) c2.add_point(conc, 2.0 * conc);
  EXPECT_NEAR(c2.lod_concentration(), 3.0 * 0.1414 / 2.0, 0.01);
}

TEST(Calibration, LinearRangeWholeSpanForLine) {
  const CalibrationCurve c = make_curve(2.0, 0.0);
  const LinearRange r = c.linear_range(0.05);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.c_low, 0.5);
  EXPECT_DOUBLE_EQ(r.c_high, 4.0);
}

TEST(Calibration, LinearRangeExcludesCurvedPoints) {
  // Strong Michaelis-Menten curvature: no window covering every point is
  // linear within 5%, so the detector must drop points at one end. (The MM
  // curve flattens toward the asymptote, so it is the strongly-curved low
  // end that gets excluded.)
  const CalibrationCurve c = make_curve(2.0, 0.0, /*km=*/2.0);
  const LinearRange r = c.linear_range(0.05);
  ASSERT_TRUE(r.found);
  EXPECT_LT(r.last - r.first + 1, c.point_count());
  EXPECT_GT(r.c_low, 0.5);
}

TEST(Calibration, LinearRangeNeedsThreePoints) {
  CalibrationCurve c;
  c.add_point(1.0, 1.0);
  c.add_point(2.0, 2.0);
  EXPECT_FALSE(c.linear_range(0.05).found);
}

TEST(Calibration, PointsKeptSortedByConcentration) {
  CalibrationCurve c;
  c.add_point(3.0, 30.0);
  c.add_point(1.0, 10.0);
  c.add_point(2.0, 20.0);
  EXPECT_DOUBLE_EQ(c.concentrations()[0], 1.0);
  EXPECT_DOUBLE_EQ(c.concentrations()[2], 3.0);
  EXPECT_DOUBLE_EQ(c.responses()[0], 10.0);
}

TEST(Calibration, NoisyDataStillRecoversSlope) {
  const CalibrationCurve c = make_curve(2.0, 0.0, 0.0, /*noise=*/0.05, 17);
  EXPECT_NEAR(c.fit().slope, 2.0, 0.15);
  EXPECT_GT(c.fit().r_squared, 0.98);
}

TEST(Calibration, RejectsNegativeConcentration) {
  CalibrationCurve c;
  EXPECT_THROW(c.add_point(-1.0, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Degenerate-data guards exposed by inversion (the quantifier feeds measured
// responses back through these fits, so NaN slopes must be impossible).
// ---------------------------------------------------------------------------

TEST(Calibration, DistinctConcentrationCountIgnoresReplicates) {
  CalibrationCurve c;
  c.add_point(1.0, 10.0);
  c.add_point(1.0, 10.2);
  c.add_point(2.0, 20.0);
  c.add_point(2.0, 19.8);
  EXPECT_EQ(c.point_count(), 4u);
  EXPECT_EQ(c.distinct_concentration_count(), 2u);
}

TEST(Calibration, FitThrowsOnReplicateOnlyData) {
  // All points at one concentration: a slope is undefined. The guard must
  // throw std::invalid_argument -- never return a NaN/degenerate fit.
  CalibrationCurve c;
  c.add_point(2.0, 1.0);
  c.add_point(2.0, 1.1);
  c.add_point(2.0, 0.9);
  EXPECT_THROW(c.fit(), std::invalid_argument);
  EXPECT_THROW(c.sensitivity(), std::invalid_argument);
}

TEST(Calibration, FitAveragesReplicatesAtTwoConcentrations) {
  CalibrationCurve c;
  c.add_point(1.0, 9.0);
  c.add_point(1.0, 11.0);
  c.add_point(3.0, 29.0);
  c.add_point(3.0, 31.0);
  const util::LinearFit f = c.fit();
  EXPECT_TRUE(std::isfinite(f.slope));
  EXPECT_NEAR(f.slope, 10.0, 1e-9);
}

TEST(Calibration, LinearRangeRejectsWindowsWithoutThreeDistinctPoints) {
  // Four points but only two distinct concentrations: every window fits a
  // line exactly through two abscissae, which certifies nothing.
  CalibrationCurve c;
  c.add_point(1.0, 10.0);
  c.add_point(1.0, 10.0);
  c.add_point(2.0, 20.0);
  c.add_point(2.0, 20.0);
  EXPECT_FALSE(c.linear_range(0.05).found);
}

TEST(Calibration, LinearRangeAcceptsReplicatesInsideARealWindow) {
  // A replicated middle point must not disqualify an otherwise linear
  // window; the window just needs three distinct concentrations.
  CalibrationCurve c;
  c.add_point(1.0, 10.0);
  c.add_point(2.0, 20.0);
  c.add_point(2.0, 20.0);
  c.add_point(3.0, 30.0);
  const LinearRange r = c.linear_range(0.05);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.c_low, 1.0);
  EXPECT_DOUBLE_EQ(r.c_high, 3.0);
  EXPECT_TRUE(std::isfinite(r.fit.slope));
  EXPECT_NEAR(r.fit.slope, 10.0, 1e-9);
}

TEST(Calibration, LodConcentrationSurvivesDuplicatePoints) {
  CalibrationCurve c;
  c.add_blank(0.0);
  c.add_blank(0.2);
  c.add_point(1.0, 2.0);
  c.add_point(1.0, 2.0);
  c.add_point(2.0, 4.0);
  // Only two distinct concentrations: no certified linear range, so the
  // LOD falls back to the global fit -- which is finite and well defined.
  const double lod = c.lod_concentration();
  EXPECT_TRUE(std::isfinite(lod));
  EXPECT_GT(lod, 0.0);
}

/// Property: LOD in concentration units scales inversely with sensitivity.
class LodScaling : public ::testing::TestWithParam<double> {};

TEST_P(LodScaling, InverseInSlope) {
  const double s = GetParam();
  CalibrationCurve c;
  c.add_blank(0.0);
  c.add_blank(0.1);
  for (double conc : {1.0, 2.0, 3.0, 4.0}) c.add_point(conc, s * conc);
  const double lod = c.lod_concentration();
  EXPECT_NEAR(lod * s, 3.0 * idp::util::stddev(std::vector<double>{0.0, 0.1}),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Slopes, LodScaling,
                         ::testing::Values(0.5, 1.0, 2.0, 10.0));

}  // namespace
}  // namespace idp::dsp
