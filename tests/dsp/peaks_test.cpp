#include "dsp/peaks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hpp"

namespace idp::dsp {
namespace {

/// Synthesise x in [0,1] and a sum of Gaussian peaks on a linear baseline.
struct Synth {
  std::vector<double> x, y;
};

Synth make_signal(const std::vector<std::pair<double, double>>& peaks,
                  double baseline_slope = 0.0, double noise = 0.0,
                  std::uint64_t seed = 1) {
  Synth s;
  idp::util::Rng rng(seed);
  for (int i = 0; i <= 400; ++i) {
    const double x = i / 400.0;
    double y = baseline_slope * x;
    for (const auto& [pos, height] : peaks) {
      const double dx = (x - pos) / 0.03;
      y += height * std::exp(-dx * dx);
    }
    if (noise > 0.0) y += rng.gaussian(noise);
    s.x.push_back(x);
    s.y.push_back(y);
  }
  return s;
}

TEST(FindPeaks, SingleCleanPeak) {
  const Synth s = make_signal({{0.5, 1.0}});
  const auto peaks = find_peaks(s.x, s.y, PeakOptions{});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].position, 0.5, 0.01);
  EXPECT_NEAR(peaks[0].height, 1.0, 0.05);
}

TEST(FindPeaks, BaselineCorrectedHeight) {
  const Synth s = make_signal({{0.5, 1.0}}, /*baseline_slope=*/2.0);
  const auto peaks = find_peaks(s.x, s.y, PeakOptions{});
  ASSERT_GE(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].height, 1.0, 0.08);
}

TEST(FindPeaks, TwoSeparatedPeaks) {
  const Synth s = make_signal({{0.3, 1.0}, {0.7, 0.6}});
  PeakOptions opt;
  opt.min_prominence = 0.1;
  const auto peaks = find_peaks(s.x, s.y, opt);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].position, 0.3, 0.01);
  EXPECT_NEAR(peaks[1].position, 0.7, 0.01);
  EXPECT_GT(peaks[0].height, peaks[1].height);
}

TEST(FindPeaks, ProminenceFiltersRipples) {
  const Synth s = make_signal({{0.5, 1.0}}, 0.0, /*noise=*/0.02, 3);
  PeakOptions opt;
  opt.min_prominence = 0.3;
  opt.smooth_half_window = 5;
  const auto peaks = find_peaks(s.x, s.y, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].position, 0.5, 0.02);
}

TEST(FindPeaks, MinSeparationKeepsStrongest) {
  const Synth s = make_signal({{0.48, 1.0}, {0.52, 0.8}});
  PeakOptions opt;
  opt.min_prominence = 0.05;
  opt.min_separation = 100;  // force them to merge
  const auto peaks = find_peaks(s.x, s.y, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].position, 0.48, 0.03);
}

TEST(FindPeaks, EmptyForFlatSignal) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(1.0);
  }
  EXPECT_TRUE(find_peaks(x, y, PeakOptions{}).empty());
}

TEST(FindPeaks, SizeMismatchThrows) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(find_peaks(x, y, PeakOptions{}), std::invalid_argument);
}

/// Build a voltammogram with a cathodic wave at the given potential.
sim::CvCurve make_cv(double e_peak, double depth) {
  sim::CvCurve c;
  double t = 0.0;
  for (double e = 0.1; e > -0.8; e -= 0.002) {
    const double dx = (e - e_peak) / 0.04;
    c.push(t += 0.1, e, -depth * std::exp(-dx * dx));
  }
  for (double e = -0.8; e < 0.1; e += 0.002) {
    c.push(t += 0.1, e, 0.0);
  }
  return c;
}

TEST(ReductionPeaks, FindsCathodicWave) {
  const sim::CvCurve c = make_cv(-0.4, 10e-9);
  PeakOptions opt;
  opt.min_prominence = 1e-9;
  const auto peaks = find_reduction_peaks(c, opt);
  ASSERT_GE(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].position, -0.4, 0.02);
  EXPECT_NEAR(peaks[0].height, 10e-9, 2e-9);
}

TEST(ReductionPeaks, EmptyWithoutCathodicSegment) {
  sim::CvCurve c;
  double t = 0.0;
  for (double e = -0.8; e < 0.1; e += 0.01) c.push(t += 1.0, e, 0.0);
  EXPECT_TRUE(find_reduction_peaks(c, PeakOptions{}).empty());
}

TEST(ReductionResponse, ReadsWaveDepthAtPotential) {
  // The metric is the *mean* corrected response over the window (unbiased
  // on blanks); over +/-20 mV of a 40 mV-wide Gaussian that is ~0.9 peak.
  const sim::CvCurve c = make_cv(-0.4, 10e-9);
  EXPECT_NEAR(reduction_response_at(c, -0.4, 0.02), 9e-9, 1.5e-9);
  // Away from the wave the response is ~0.
  EXPECT_LT(reduction_response_at(c, -0.1, 0.03), 1.5e-9);
}

TEST(ReductionResponse, SurvivesSigmoidalWave) {
  // A catalytic S-wave: current steps down and *stays* down to the vertex;
  // the pre-wave baseline must not cancel it.
  sim::CvCurve c;
  double t = 0.0;
  for (double e = 0.1; e > -0.8; e -= 0.002) {
    const double s = 1.0 / (1.0 + std::exp((e + 0.4) / 0.02));
    c.push(t += 0.1, e, -8e-9 * s);
  }
  const double r = reduction_response_at(c, -0.45, 0.06);
  EXPECT_GT(r, 5e-9);
}

TEST(ReductionResponse, ZeroForEmptyCurve) {
  EXPECT_DOUBLE_EQ(reduction_response_at(sim::CvCurve{}, -0.4), 0.0);
}

/// Property: detected position error stays below 10 mV across wave depths.
class ReductionPosition : public ::testing::TestWithParam<double> {};

TEST_P(ReductionPosition, AccuratePosition) {
  const double depth = GetParam();
  const sim::CvCurve c = make_cv(-0.25, depth);
  PeakOptions opt;
  opt.min_prominence = depth / 5.0;
  const auto peaks = find_reduction_peaks(c, opt);
  ASSERT_GE(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].position, -0.25, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Depths, ReductionPosition,
                         ::testing::Values(1e-9, 10e-9, 100e-9, 1e-6));

}  // namespace
}  // namespace idp::dsp
